//! # randrecon — Deriving Private Information from Randomized Data
//!
//! Facade crate re-exporting the whole workspace. See the crate-level docs of
//! the individual sub-crates for details; the README and DESIGN.md map each
//! subsystem back to the SIGMOD 2005 paper it reproduces.
//!
//! ```
//! // The facade simply re-exports the sub-crates under shorter names.
//! use randrecon::linalg::Matrix;
//! let eye = Matrix::identity(3);
//! assert_eq!(eye.trace(), 3.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use randrecon_core as core;
pub use randrecon_data as data;
pub use randrecon_experiments as experiments;
pub use randrecon_linalg as linalg;
pub use randrecon_metrics as metrics;
pub use randrecon_noise as noise;
pub use randrecon_stats as stats;
