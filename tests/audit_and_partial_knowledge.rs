//! Integration tests for the extension features: the privacy-audit battery and
//! the partial-value-disclosure attack, exercised through the public facade.

use randrecon::core::audit::PrivacyAudit;
use randrecon::core::partial::{KnownAttributes, PartialKnowledgeBeDr};
use randrecon::core::{be_dr::BeDr, Reconstructor};
use randrecon::data::synthetic::{EigenSpectrum, SyntheticDataset};
use randrecon::linalg::Matrix;
use randrecon::metrics::rmse;
use randrecon::noise::additive::AdditiveRandomizer;
use randrecon::stats::rng::seeded_rng;

fn release(
    seed: u64,
) -> (
    SyntheticDataset,
    AdditiveRandomizer,
    randrecon::data::DataTable,
) {
    let spectrum = EigenSpectrum::principal_plus_small(3, 300.0, 15, 3.0).unwrap();
    let ds = SyntheticDataset::generate(&spectrum, 600, seed).unwrap();
    let randomizer = AdditiveRandomizer::gaussian(9.0).unwrap();
    let disguised = randomizer
        .disguise(&ds.table, &mut seeded_rng(seed + 1))
        .unwrap();
    (ds, randomizer, disguised)
}

#[test]
fn privacy_audit_flags_correlated_release_as_weak() {
    let (ds, randomizer, disguised) = release(101);
    let report = PrivacyAudit::default()
        .run(&ds.table, &disguised, randomizer.model())
        .unwrap();

    // The promised privacy (noise std 9) is eroded substantially.
    assert!(
        report.privacy_erosion_factor() > 1.5,
        "erosion factor {}",
        report.privacy_erosion_factor()
    );
    // The strongest attack is one of the correlation-exploiting schemes.
    assert!(matches!(
        report.strongest().attack,
        "BE-DR" | "PCA-DR" | "SF"
    ));
    // Every attack outcome carries per-attribute detail for all 15 attributes.
    for outcome in &report.outcomes {
        assert_eq!(outcome.per_attribute_rmse.len(), 15);
    }
    // The rendered table mentions the erosion factor and at least one scheme.
    let table = report.to_table();
    assert!(table.contains("privacy erosion factor"));
    assert!(table.contains("BE-DR"));
}

#[test]
fn audit_on_uncorrelated_release_reports_little_erosion() {
    // Flat spectrum: no correlation to exploit, so the strongest attack cannot
    // do much better than the univariate optimum and erosion stays modest.
    let spectrum = EigenSpectrum::principal_plus_small(10, 150.0, 10, 150.0).unwrap();
    let ds = SyntheticDataset::generate(&spectrum, 600, 202).unwrap();
    let randomizer = AdditiveRandomizer::gaussian(9.0).unwrap();
    let disguised = randomizer
        .disguise(&ds.table, &mut seeded_rng(203))
        .unwrap();
    let report = PrivacyAudit::default()
        .run(&ds.table, &disguised, randomizer.model())
        .unwrap();
    let correlated_release = {
        let (ds_c, r_c, d_c) = release(204);
        PrivacyAudit::default()
            .run(&ds_c.table, &d_c, r_c.model())
            .unwrap()
    };
    assert!(
        report.privacy_erosion_factor() < correlated_release.privacy_erosion_factor(),
        "uncorrelated release ({}) should erode less than the correlated one ({})",
        report.privacy_erosion_factor(),
        correlated_release.privacy_erosion_factor()
    );
}

#[test]
fn partial_knowledge_strictly_improves_the_attack() {
    let (ds, randomizer, disguised) = release(303);
    let plain = BeDr::default()
        .reconstruct(&disguised, randomizer.model())
        .unwrap();
    let plain_rmse = rmse(&ds.table, &plain).unwrap();

    // Adversary learns three attributes of every record through a side channel.
    let known = KnownAttributes::new(vec![0, 7, 14]).unwrap();
    let known_values = Matrix::from_fn(ds.table.n_records(), 3, |i, c| {
        ds.table.values().get(i, known.indices()[c])
    });
    let partial = PartialKnowledgeBeDr::default()
        .reconstruct(&disguised, randomizer.model(), &known, &known_values)
        .unwrap();
    let partial_rmse = rmse(&ds.table, &partial).unwrap();

    assert!(
        partial_rmse < plain_rmse,
        "side knowledge must improve the attack: {partial_rmse} vs {plain_rmse}"
    );
    // The audit's strongest attack is still an upper bound on what the
    // partial-knowledge adversary achieves without side information.
    let report = PrivacyAudit {
        tolerance: Some(3.0),
        include_udr: false,
    }
    .run(&ds.table, &disguised, randomizer.model())
    .unwrap();
    assert!(partial_rmse <= report.strongest().rmse * 1.01);
}
