//! Cross-crate integration tests: the full disguise → attack → measure
//! pipeline through the public facade, checking the paper's qualitative
//! claims end to end.

use randrecon::core::{
    be_dr::BeDr, ndr::Ndr, pca_dr::PcaDr, spectral::SpectralFiltering, udr::Udr, Reconstructor,
};
use randrecon::data::synthetic::{EigenSpectrum, SyntheticDataset};
use randrecon::metrics::privacy::disclosure_rate;
use randrecon::metrics::rmse;
use randrecon::noise::additive::AdditiveRandomizer;
use randrecon::stats::rng::seeded_rng;

fn correlated_workload(m: usize, p: usize, n: usize, seed: u64) -> SyntheticDataset {
    let spectrum = EigenSpectrum::principal_plus_small(p, 400.0, m, 4.0).unwrap();
    SyntheticDataset::generate(&spectrum, n, seed).unwrap()
}

/// The paper's core ordering on correlated data:
/// BE-DR ≤ PCA-DR < UDR < NDR (all well below the noise level).
#[test]
fn attack_hierarchy_on_correlated_data() {
    let ds = correlated_workload(40, 5, 1_200, 9001);
    let sigma = 10.0;
    let randomizer = AdditiveRandomizer::gaussian(sigma).unwrap();
    let disguised = randomizer
        .disguise(&ds.table, &mut seeded_rng(9002))
        .unwrap();
    let model = randomizer.model();

    let ndr = rmse(&ds.table, &Ndr.reconstruct(&disguised, model).unwrap()).unwrap();
    let udr = rmse(
        &ds.table,
        &Udr::default().reconstruct(&disguised, model).unwrap(),
    )
    .unwrap();
    let sf = rmse(
        &ds.table,
        &SpectralFiltering::default()
            .reconstruct(&disguised, model)
            .unwrap(),
    )
    .unwrap();
    let pca = rmse(
        &ds.table,
        &PcaDr::largest_gap().reconstruct(&disguised, model).unwrap(),
    )
    .unwrap();
    let be = rmse(
        &ds.table,
        &BeDr::default().reconstruct(&disguised, model).unwrap(),
    )
    .unwrap();

    // NDR error is the noise level itself.
    assert!(
        (ndr - sigma).abs() < 0.5,
        "NDR {ndr} should be ~ sigma {sigma}"
    );
    // Correlation-based attacks all beat the univariate baseline.
    assert!(sf < udr, "SF {sf} < UDR {udr}");
    assert!(pca < udr, "PCA {pca} < UDR {udr}");
    assert!(be < udr, "BE {be} < UDR {udr}");
    // BE-DR is the strongest (allowing a tiny numerical margin vs PCA-DR).
    assert!(be <= pca * 1.05, "BE {be} should be <= PCA {pca}");
    // And the strongest attack removes most of the noise.
    assert!(
        be < 0.4 * sigma,
        "BE-DR should cancel most of the noise, got {be}"
    );
}

/// Disguising and attacking must preserve shape, schema and finiteness.
#[test]
fn shapes_and_schemas_survive_the_pipeline() {
    let ds = correlated_workload(12, 3, 300, 77);
    let randomizer = AdditiveRandomizer::uniform(6.0).unwrap();
    let disguised = randomizer.disguise(&ds.table, &mut seeded_rng(78)).unwrap();
    assert_eq!(disguised.schema(), ds.table.schema());

    let attacks: Vec<Box<dyn Reconstructor>> = vec![
        Box::new(Ndr),
        Box::new(Udr::default()),
        Box::new(SpectralFiltering::default()),
        Box::new(PcaDr::largest_gap()),
        Box::new(BeDr::default()),
    ];
    for attack in attacks {
        let out = attack.reconstruct(&disguised, randomizer.model()).unwrap();
        assert_eq!(
            out.values().shape(),
            ds.table.values().shape(),
            "{}",
            attack.name()
        );
        assert_eq!(out.schema(), ds.table.schema(), "{}", attack.name());
        assert!(!out.values().has_non_finite(), "{}", attack.name());
    }
}

/// More noise means more privacy for every scheme — errors grow monotonically
/// with sigma.
#[test]
fn noise_level_controls_privacy() {
    let ds = correlated_workload(20, 4, 800, 555);
    let mut previous_be = 0.0;
    let mut previous_udr = 0.0;
    for (i, &sigma) in [2.0, 8.0, 32.0].iter().enumerate() {
        let randomizer = AdditiveRandomizer::gaussian(sigma).unwrap();
        let disguised = randomizer
            .disguise(&ds.table, &mut seeded_rng(556 + i as u64))
            .unwrap();
        let model = randomizer.model();
        let be = rmse(
            &ds.table,
            &BeDr::default().reconstruct(&disguised, model).unwrap(),
        )
        .unwrap();
        let udr = rmse(
            &ds.table,
            &Udr::default().reconstruct(&disguised, model).unwrap(),
        )
        .unwrap();
        if i > 0 {
            assert!(be > previous_be, "BE-DR error should grow with sigma");
            assert!(udr > previous_udr, "UDR error should grow with sigma");
        }
        previous_be = be;
        previous_udr = udr;
    }
}

/// The correlated-noise defense (Section 8) raises the best attack's error at
/// equal noise budget, and record-level disclosure drops accordingly.
#[test]
fn correlated_noise_defense_end_to_end() {
    let ds = correlated_workload(30, 10, 1_000, 31_415);
    let sigma = 6.0;

    // Classic scheme.
    let classic = AdditiveRandomizer::gaussian(sigma).unwrap();
    let disguised_classic = classic.disguise(&ds.table, &mut seeded_rng(1)).unwrap();
    let be_classic = rmse(
        &ds.table,
        &BeDr::default()
            .reconstruct(&disguised_classic, classic.model())
            .unwrap(),
    )
    .unwrap();
    let disclosure_classic = disclosure_rate(
        &ds.table,
        &BeDr::default()
            .reconstruct(&disguised_classic, classic.model())
            .unwrap(),
        2.0,
    )
    .unwrap();

    // Defense: noise covariance proportional to the data covariance with the
    // same total power (sigma^2 per attribute on average).
    let ratio = sigma * sigma * ds.n_attributes() as f64 / ds.covariance.trace();
    let defended = AdditiveRandomizer::correlated(ds.covariance.scale(ratio)).unwrap();
    let disguised_defended = defended.disguise(&ds.table, &mut seeded_rng(2)).unwrap();
    let be_defended = rmse(
        &ds.table,
        &BeDr::default()
            .reconstruct(&disguised_defended, defended.model())
            .unwrap(),
    )
    .unwrap();
    let disclosure_defended = disclosure_rate(
        &ds.table,
        &BeDr::default()
            .reconstruct(&disguised_defended, defended.model())
            .unwrap(),
        2.0,
    )
    .unwrap();

    assert!(
        be_defended > be_classic,
        "defense should raise BE-DR error: classic {be_classic}, defended {be_defended}"
    );
    assert!(
        disclosure_defended < disclosure_classic,
        "defense should reduce disclosure: classic {disclosure_classic}, defended {disclosure_defended}"
    );
}

/// Determinism: the same seeds produce byte-identical pipelines.
#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        let ds = correlated_workload(10, 2, 200, 8);
        let randomizer = AdditiveRandomizer::gaussian(4.0).unwrap();
        let disguised = randomizer.disguise(&ds.table, &mut seeded_rng(9)).unwrap();
        BeDr::default()
            .reconstruct(&disguised, randomizer.model())
            .unwrap()
    };
    let a = run();
    let b = run();
    assert!(a.approx_eq(&b, 0.0));
}
