//! Release-mode streaming smoke test (CI `--ignored` slow job).
//!
//! Runs the bounded-memory flagship scenario — 500 k × 64 records, fully
//! streamed (generation, disguising, both attack passes and the metrics-only
//! MSE sink all move chunk by chunk; no `n × m` matrix is ever allocated) —
//! through the unified five-scheme streaming driver and checks every attack
//! actually works at that scale. Takes ~30 s in release and minutes in
//! debug, hence `#[ignore]`: it rides the existing
//! `cargo test --release -- --ignored` CI job.

use randrecon::experiments::streaming::StreamingScenario;

#[test]
#[ignore = "release-mode 500k-record five-scheme streaming sweep; runs in the slow CI job"]
fn streaming_attacks_survive_500k_by_64_with_bounded_memory() {
    let scenario = StreamingScenario::large_500k();
    assert_eq!(scenario.n_records, 500_000);
    assert_eq!(scenario.n_attributes, 64);
    let outcome = scenario.run().expect("500k streaming scenario must run");

    // NDR streams the disguised values through unchanged, so its measured
    // MSE is the empirical σ² = 100 noise floor.
    let floor = outcome.noise_floor_mse();
    assert!(
        (outcome.ndr.mse - floor).abs() / floor < 0.05,
        "streaming NDR mse {} should sit at the noise floor {floor}",
        outcome.ndr.mse
    );
    // UDR exploits the marginals only; PCA-DR and BE-DR must decisively
    // beat the floor on this highly correlated workload (6 principal
    // components out of 64).
    assert!(
        outcome.udr.mse < 0.6 * floor,
        "streaming UDR mse {} vs noise floor {floor}",
        outcome.udr.mse
    );
    for (label, mse) in [("PCA-DR", outcome.pca_dr.mse), ("BE-DR", outcome.be_dr.mse)] {
        assert!(
            mse < 0.25 * floor,
            "streaming {label} mse {mse} should be far below the noise floor {floor}"
        );
    }
    // SF only has to beat the floor here: with bulk eigenvalues of 4 under
    // σ² = 100 noise, the Marčenko–Pastur edge (≈102.3 at n = 500k) sits
    // below the disguised bulk (≈104), so SF keeps almost every component —
    // the "non-principal eigenvalues not small ⇒ SF bound inaccurate"
    // weakness the paper documents.
    assert!(
        outcome.sf.mse < floor,
        "streaming SF mse {} vs noise floor {floor}",
        outcome.sf.mse
    );
    // BE-DR at least as strong as PCA-DR (Section 6), and both beat UDR.
    assert!(outcome.be_dr.mse <= outcome.pca_dr.mse * 1.05);
    assert!(outcome.pca_dr.mse < outcome.udr.mse);
    // The largest-gap rule recovers the planted component count at scale.
    assert_eq!(outcome.pca_dr.components_kept, Some(6));
    // Sanity on the throughput bookkeeping.
    for (_, scheme) in outcome.schemes() {
        assert!(scheme.records_per_second > 0.0);
        assert!(scheme.seconds > 0.0);
    }
    println!("{outcome}");
}
