//! Release-mode streaming smoke test (CI `--ignored` slow job).
//!
//! Runs the bounded-memory flagship scenario — 500 k × 64 records, fully
//! streamed (generation, disguising, both attack passes and the metrics-only
//! MSE sink all move chunk by chunk; no `n × m` matrix is ever allocated) —
//! and checks the attacks actually work at that scale. Takes ~15 s in
//! release and minutes in debug, hence `#[ignore]`: it rides the existing
//! `cargo test --release -- --ignored` CI job.

use randrecon::experiments::streaming::StreamingScenario;

#[test]
#[ignore = "release-mode 500k-record streaming smoke test; runs in the slow CI job"]
fn streaming_attacks_survive_500k_by_64_with_bounded_memory() {
    let scenario = StreamingScenario::large_500k();
    assert_eq!(scenario.n_records, 500_000);
    assert_eq!(scenario.n_attributes, 64);
    let outcome = scenario.run().expect("500k streaming scenario must run");

    // Both attacks must decisively beat the σ² = 100 noise floor on this
    // highly correlated workload (6 principal components out of 64).
    let floor = outcome.noise_floor_mse();
    assert!(
        outcome.be_dr.mse < 0.25 * floor,
        "streaming BE-DR mse {} should be far below the noise floor {floor}",
        outcome.be_dr.mse
    );
    assert!(
        outcome.pca_dr.mse < 0.25 * floor,
        "streaming PCA-DR mse {} should be far below the noise floor {floor}",
        outcome.pca_dr.mse
    );
    // BE-DR at least as strong as PCA-DR (Section 6).
    assert!(outcome.be_dr.mse <= outcome.pca_dr.mse * 1.05);
    // The largest-gap rule recovers the planted component count at scale.
    assert_eq!(outcome.pca_dr.components_kept, Some(6));
    // Sanity on the throughput bookkeeping.
    assert!(outcome.be_dr.records_per_second > 0.0);
    assert!(outcome.be_dr.seconds > 0.0);
    println!("{outcome}");
}
