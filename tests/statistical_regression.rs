//! End-to-end statistical regression tests against golden values.
//!
//! Seeded UDR, spectral-filtering, BE-DR and PCA-DR runs at (n = 2000,
//! m ∈ {16, 64}) whose reconstruction MSE must stay within ±2% of the
//! values checked into `tests/golden/attack_mse.json` — all four non-trivial
//! schemes are golden-locked, so a driver refactor (like the unified
//! streaming engine) cannot silently shift any of them. A ninth entry locks
//! a correlated-noise scenario end to end through the declarative scenario
//! engine (`randrecon_experiments::scenario`), pinning the spec-driven
//! execution path — grid expansion, workload grouping, the core attack
//! engine dispatch and the Section 8 noise construction — to a golden too. The attacks are
//! spectral or posterior-analytic at their core, so any change to the
//! eigensolver (or the covariance estimation, the posterior kernels, or the
//! sampling streams feeding them) that shifts attack accuracy — rather than
//! merely reordering floating-point noise — trips these tests instead of
//! silently degrading the reproduction.
//!
//! To regenerate the goldens after an *intentional* statistical change, run
//! `cargo test --test statistical_regression -- --ignored --nocapture` and
//! copy the printed JSON into `tests/golden/attack_mse.json` — and repeat
//! with `--features fma` for `tests/golden/attack_mse_fma.json`, the
//! separately baselined goldens of the opt-in contraction profile.

use randrecon::core::{
    be_dr::BeDr, pca_dr::PcaDr, spectral::SpectralFiltering, udr::Udr, Reconstructor,
};
use randrecon::data::synthetic::{EigenSpectrum, SyntheticDataset};
use randrecon::experiments::scenario::{
    AttackSpec, DataSpec, EngineSpec, MetricKind, NoiseSpec, ScenarioSpec, SpectrumSpec,
};
use randrecon::experiments::SchemeKind;
use randrecon::metrics::mse;
use randrecon::noise::additive::AdditiveRandomizer;
use randrecon::stats::rng::seeded_rng;

/// Tolerance around each golden value: the runs are fully seeded, so 2%
/// headroom is pure slack for cross-platform libm differences.
const REL_TOL: f64 = 0.02;

const N_RECORDS: usize = 2_000;
const NOISE_SIGMA: f64 = 10.0;

/// One seeded disguise → attack → MSE measurement.
fn attack_mse(m: usize, attack: &dyn Reconstructor) -> f64 {
    // Paper-shaped workload: m/8 principal components at 400, bulk at 4.
    let spectrum = EigenSpectrum::principal_plus_small(m / 8, 400.0, m, 4.0).unwrap();
    let ds = SyntheticDataset::generate(&spectrum, N_RECORDS, 1_000 + m as u64).unwrap();
    let randomizer = AdditiveRandomizer::gaussian(NOISE_SIGMA).unwrap();
    let disguised = randomizer
        .disguise(&ds.table, &mut seeded_rng(2_000 + m as u64))
        .unwrap();
    let reconstructed = attack.reconstruct(&disguised, randomizer.model()).unwrap();
    mse(&ds.table, &reconstructed).unwrap()
}

/// One seeded correlated-noise BE-DR run, driven end to end through the
/// declarative scenario engine: the Section 8 defense (similarity 0.5, the
/// same per-attribute noise budget σ² = 100 as the independent runs) at
/// n = 2000, m = 16.
fn correlated_scenario_mse() -> f64 {
    let spec = ScenarioSpec {
        label: "golden-correlated".to_string(),
        x: 0.0,
        data: DataSpec::SyntheticMvn {
            spectrum: SpectrumSpec::PrincipalPlusSmall {
                p: 2,
                principal: 400.0,
                m: 16,
                small: 4.0,
            },
            records: N_RECORDS,
        },
        noise: NoiseSpec::CorrelatedSimilar {
            similarity: 0.5,
            noise_variance: NOISE_SIGMA * NOISE_SIGMA,
        },
        attack: AttackSpec::Scheme(SchemeKind::BeDr),
        engine: EngineSpec::InMemory,
        metrics: vec![MetricKind::Mse],
        trials: 1,
        seed: 3_016,
        seed_offset: 0,
        dataset_seed: None,
        noise_seed: None,
    };
    spec.run()
        .expect("correlated golden scenario")
        .metric(MetricKind::Mse)
        .expect("mse metric requested")
}

/// Runs (and caches) the nine seeded pipelines, so the goldens test and the
/// ordering test share one set of measurements instead of re-running the
/// attacks per test.
fn measure_all() -> &'static [(String, f64)] {
    static MEASURED: std::sync::OnceLock<Vec<(String, f64)>> = std::sync::OnceLock::new();
    MEASURED.get_or_init(|| {
        let mut out = Vec::new();
        for m in [16usize, 64] {
            out.push((format!("be_dr_n2000_m{m}"), attack_mse(m, &BeDr::default())));
            out.push((
                format!("pca_dr_n2000_m{m}"),
                attack_mse(m, &PcaDr::largest_gap()),
            ));
            out.push((
                format!("udr_n2000_m{m}"),
                attack_mse(m, &Udr::gaussian_prior()),
            ));
            out.push((
                format!("sf_n2000_m{m}"),
                attack_mse(m, &SpectralFiltering::default()),
            ));
        }
        out.push((
            "be_dr_correlated_n2000_m16".to_string(),
            correlated_scenario_mse(),
        ));
        out
    })
}

/// Minimal parser for the flat `{"key": number, ...}` golden file (the
/// workspace's serde is an offline stub without JSON support).
fn parse_goldens(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for part in text.split(',') {
        let Some((key_part, value_part)) = part.split_once(':') else {
            continue;
        };
        let key: String = key_part
            .chars()
            .filter(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        let value: String = value_part
            .chars()
            .filter(|c| !c.is_whitespace() && *c != '}')
            .collect();
        if key.is_empty() {
            continue;
        }
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("bad golden value for {key}: {value}"));
        out.push((key, value));
    }
    out
}

/// Default builds check against the bit-exact baseline; the opt-in `fma`
/// contraction profile has its own re-baselined goldens next to it (the
/// fused kernels shift every MSE in the last bits, far inside `REL_TOL`,
/// but the baselines are kept separate so neither profile borrows slack
/// from the other).
fn golden_path() -> std::path::PathBuf {
    let file = if cfg!(feature = "fma") {
        "attack_mse_fma.json"
    } else {
        "attack_mse.json"
    };
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(file)
}

#[test]
fn attack_mse_matches_goldens() {
    let text = std::fs::read_to_string(golden_path()).expect("golden file present");
    let goldens = parse_goldens(&text);
    assert_eq!(goldens.len(), 9, "expected 9 golden entries");
    let measured = measure_all();
    for (key, value) in measured {
        let golden = goldens
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("no golden entry for {key}"))
            .1;
        let rel = (value - golden).abs() / golden;
        assert!(
            rel <= REL_TOL,
            "{key}: measured MSE {value} drifted {:.2}% from golden {golden}",
            rel * 100.0
        );
    }
}

/// The qualitative ordering the goldens encode must also hold outright:
/// BE-DR beats PCA-DR (Section 6), the correlation-exploiting schemes beat
/// the marginals-only UDR on this correlated workload, and every scheme
/// beats the raw noise level σ².
#[test]
fn attack_mse_ordering_is_preserved() {
    let measured = measure_all();
    let get = |key: &str| {
        measured
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .unwrap()
    };
    let noise_mse = NOISE_SIGMA * NOISE_SIGMA;
    for m in [16, 64] {
        let be = get(&format!("be_dr_n2000_m{m}"));
        let pca = get(&format!("pca_dr_n2000_m{m}"));
        let udr = get(&format!("udr_n2000_m{m}"));
        let sf = get(&format!("sf_n2000_m{m}"));
        assert!(
            be <= pca * 1.05,
            "m={m}: BE-DR ({be}) should be ≤ PCA-DR ({pca})"
        );
        assert!(be < udr, "m={m}: BE-DR ({be}) should beat UDR ({udr})");
        assert!(pca < udr, "m={m}: PCA-DR ({pca}) should beat UDR ({udr})");
        for (label, mse) in [("BE-DR", be), ("PCA-DR", pca), ("UDR", udr), ("SF", sf)] {
            assert!(
                mse < noise_mse,
                "m={m}: {label} ({mse}) should beat σ² = {noise_mse}"
            );
        }
    }
    // The Section 8 defense works: correlated noise of the same power leaves
    // BE-DR far weaker than independent noise does.
    let be_independent = get("be_dr_n2000_m16");
    let be_correlated = get("be_dr_correlated_n2000_m16");
    assert!(
        be_correlated > 1.5 * be_independent,
        "correlated noise ({be_correlated}) should blunt BE-DR vs independent ({be_independent})"
    );
}

/// Golden regeneration helper — prints the JSON to paste into
/// `tests/golden/attack_mse.json` after an intentional statistical change.
#[test]
#[ignore = "golden regeneration helper; run with -- --ignored --nocapture"]
fn print_current_goldens() {
    let measured = measure_all();
    println!("{{");
    for (i, (key, value)) in measured.iter().enumerate() {
        let comma = if i + 1 < measured.len() { "," } else { "" };
        println!("  \"{key}\": {value:.12}{comma}");
    }
    println!("}}");
}
