//! Property-based integration tests tying the measured behaviour of the
//! attacks to the paper's closed-form theory (Theorems 4.1, 5.1, 5.2) across
//! randomized workloads.

use proptest::prelude::*;
use randrecon::core::covariance::estimate_original_covariance;
use randrecon::core::theory::{ndr_expected_mse, pca_noise_mse, udr_gaussian_expected_mse};
use randrecon::core::{ndr::Ndr, udr::Udr, Reconstructor};
use randrecon::data::synthetic::{EigenSpectrum, SyntheticDataset};
use randrecon::metrics::{mse, rmse};
use randrecon::noise::additive::AdditiveRandomizer;
use randrecon::stats::rng::seeded_rng;

proptest! {
    // These property tests run full pipelines, so keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Theorem 5.1: subtracting sigma^2 from the disguised covariance diagonal
    /// recovers the original covariance (within sampling error), for any
    /// workload shape and noise level in a reasonable range.
    #[test]
    fn covariance_estimate_tracks_truth(
        m in 4usize..10,
        p in 1usize..4,
        sigma in 2.0f64..12.0,
        seed in 0u64..1_000,
    ) {
        let p = p.min(m);
        let spectrum = EigenSpectrum::principal_plus_small(p, 300.0, m, 5.0).unwrap();
        let ds = SyntheticDataset::generate(&spectrum, 4_000, seed).unwrap();
        let randomizer = AdditiveRandomizer::gaussian(sigma).unwrap();
        let disguised = randomizer.disguise(&ds.table, &mut seeded_rng(seed ^ 0xABCD)).unwrap();
        let est = estimate_original_covariance(&disguised, randomizer.model()).unwrap();
        let rel = est.sub(&ds.covariance).unwrap().frobenius_norm() / ds.covariance.frobenius_norm();
        prop_assert!(rel < 0.25, "relative covariance error {rel} too large (m={m}, p={p}, sigma={sigma})");
    }

    /// Section 4.1: the NDR baseline's MSE equals the noise variance.
    #[test]
    fn ndr_mse_matches_theory(sigma in 1.0f64..15.0, seed in 0u64..1_000) {
        let spectrum = EigenSpectrum::principal_plus_small(2, 200.0, 6, 4.0).unwrap();
        let ds = SyntheticDataset::generate(&spectrum, 3_000, seed).unwrap();
        let randomizer = AdditiveRandomizer::gaussian(sigma).unwrap();
        let disguised = randomizer.disguise(&ds.table, &mut seeded_rng(seed + 1)).unwrap();
        let measured = mse(&ds.table, &Ndr.reconstruct(&disguised, randomizer.model()).unwrap()).unwrap();
        let expected = ndr_expected_mse(sigma * sigma).unwrap();
        prop_assert!((measured - expected).abs() / expected < 0.15,
            "NDR mse {measured} vs theory {expected}");
    }

    /// Theorem 4.1 (via the Gaussian closed form): UDR's error on an
    /// uncorrelated Gaussian workload matches v*s/(v+s).
    #[test]
    fn udr_mse_matches_theory_on_uncorrelated_data(sigma in 5.0f64..20.0, seed in 0u64..1_000) {
        let m = 6usize;
        let variance = 300.0;
        // p = m: flat spectrum, so attributes are (nearly) uncorrelated and the
        // univariate theory applies exactly.
        let spectrum = EigenSpectrum::principal_plus_small(m, variance, m, variance).unwrap();
        let ds = SyntheticDataset::generate(&spectrum, 4_000, seed).unwrap();
        let randomizer = AdditiveRandomizer::gaussian(sigma).unwrap();
        let disguised = randomizer.disguise(&ds.table, &mut seeded_rng(seed + 2)).unwrap();
        let measured = mse(&ds.table, &Udr::default().reconstruct(&disguised, randomizer.model()).unwrap()).unwrap();
        let expected = udr_gaussian_expected_mse(variance, sigma * sigma).unwrap();
        prop_assert!((measured - expected).abs() / expected < 0.2,
            "UDR mse {measured} vs theory {expected} (sigma={sigma})");
    }

    /// Theorem 5.2: projecting pure noise onto p of m principal directions
    /// keeps exactly p/m of its energy.
    #[test]
    fn projected_noise_energy_matches_theorem_5_2(
        m in 6usize..14,
        sigma in 2.0f64..10.0,
        seed in 0u64..1_000,
    ) {
        let p = (m / 3).max(1);
        let spectrum = EigenSpectrum::principal_plus_small(p, 400.0, m, 2.0).unwrap();
        let ds = SyntheticDataset::generate(&spectrum, 2_500, seed).unwrap();
        let randomizer = AdditiveRandomizer::gaussian(sigma).unwrap();
        let (_, noise_matrix) = randomizer.disguise_with_noise(&ds.table, &mut seeded_rng(seed + 3)).unwrap();

        // Project the noise onto the data's true principal subspace.
        let q_hat = ds.eigenvectors.leading_columns(p).unwrap();
        let projected = noise_matrix.matmul(&q_hat).unwrap().matmul(&q_hat.transpose()).unwrap();
        let measured: f64 = projected.as_slice().iter().map(|&v| v * v).sum::<f64>()
            / (projected.rows() * projected.cols()) as f64;
        let expected = pca_noise_mse(sigma * sigma, p, m).unwrap();
        prop_assert!((measured - expected).abs() / expected < 0.2,
            "projected noise mse {measured} vs theory {expected} (m={m}, p={p})");
    }

    /// Reconstructions never blow up: for any workload in range, BE-DR's error
    /// is bounded above by (roughly) the NDR error — exploiting structure can
    /// only help.
    #[test]
    fn be_dr_is_never_much_worse_than_ndr(
        m in 4usize..12,
        p in 1usize..5,
        sigma in 1.0f64..20.0,
        seed in 0u64..1_000,
    ) {
        let p = p.min(m);
        let spectrum = EigenSpectrum::principal_plus_small(p, 350.0, m, 10.0).unwrap();
        let ds = SyntheticDataset::generate(&spectrum, 600, seed).unwrap();
        let randomizer = AdditiveRandomizer::gaussian(sigma).unwrap();
        let disguised = randomizer.disguise(&ds.table, &mut seeded_rng(seed + 4)).unwrap();
        let be = rmse(&ds.table, &randrecon::core::be_dr::BeDr::default()
            .reconstruct(&disguised, randomizer.model()).unwrap()).unwrap();
        let ndr = rmse(&ds.table, &Ndr.reconstruct(&disguised, randomizer.model()).unwrap()).unwrap();
        prop_assert!(be <= ndr * 1.1, "BE-DR ({be}) should not be much worse than NDR ({ndr})");
    }
}
