//! Integration tests for the experiment harness: the quick configurations of
//! every figure must reproduce the qualitative shape the paper reports, and
//! results must round-trip through the CSV reporting path.

use randrecon::experiments::exp1::Experiment1;
use randrecon::experiments::exp2::Experiment2;
use randrecon::experiments::exp3::Experiment3;
use randrecon::experiments::exp4::Experiment4;
use randrecon::experiments::report::{render_report, write_report_csvs};
use randrecon::experiments::SchemeKind;

#[test]
fn figure1_shape_correlation_helps_more_with_more_attributes() {
    let series = Experiment1::quick().run().unwrap();
    // BE-DR's advantage over UDR widens as m grows.
    let first = &series.points[0];
    let last = series.points.last().unwrap();
    let gap_first =
        first.rmse_of(SchemeKind::Udr).unwrap() - first.rmse_of(SchemeKind::BeDr).unwrap();
    let gap_last = last.rmse_of(SchemeKind::Udr).unwrap() - last.rmse_of(SchemeKind::BeDr).unwrap();
    assert!(
        gap_last > gap_first,
        "BE-DR's advantage should widen with m: first {gap_first}, last {gap_last}"
    );
}

#[test]
fn figure2_shape_advantage_shrinks_as_p_grows() {
    let series = Experiment2::quick().run().unwrap();
    let first = &series.points[0];
    let last = series.points.last().unwrap();
    let gap_first =
        first.rmse_of(SchemeKind::Udr).unwrap() - first.rmse_of(SchemeKind::BeDr).unwrap();
    let gap_last = last.rmse_of(SchemeKind::Udr).unwrap() - last.rmse_of(SchemeKind::BeDr).unwrap();
    assert!(
        gap_first > gap_last,
        "BE-DR's advantage should shrink as p -> m: first {gap_first}, last {gap_last}"
    );
}

#[test]
fn figure3_shape_pca_crosses_udr_but_be_does_not() {
    let series = Experiment3::quick().run().unwrap();
    let last = series.points.last().unwrap();
    let udr = last.rmse_of(SchemeKind::Udr).unwrap();
    assert!(last.rmse_of(SchemeKind::PcaDr).unwrap() > udr);
    assert!(last.rmse_of(SchemeKind::BeDr).unwrap() <= udr * 1.05);
}

#[test]
fn figure4_shape_similar_noise_preserves_most_privacy() {
    let series = Experiment4::quick().run().unwrap();
    let be = series.series_for(SchemeKind::BeDr);
    assert!(
        be.first().unwrap().1 > be.last().unwrap().1,
        "most-similar noise (lowest dissimilarity) should give the highest BE-DR error: {be:?}"
    );
}

#[test]
fn reporting_round_trip() {
    let series = Experiment1::quick().run().unwrap();
    let text = render_report(std::slice::from_ref(&series));
    assert!(text.contains("Figure 1"));
    assert!(text.contains("BE-DR"));

    let dir = std::env::temp_dir().join("randrecon_integration_report");
    let paths = write_report_csvs(std::slice::from_ref(&series), &dir).unwrap();
    assert_eq!(paths.len(), 1);
    let csv = std::fs::read_to_string(&paths[0]).unwrap();
    assert!(csv.lines().count() > series.points.len());
    std::fs::remove_dir_all(&dir).ok();
}
