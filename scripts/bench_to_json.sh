#!/usr/bin/env bash
# Runs the `micro` benchmark harness and dumps every measurement to a JSON
# file (default BENCH_2.json at the repo root) for the perf trajectory.
#
# Usage: scripts/bench_to_json.sh [output.json]
#
# The criterion-compatible harness honours CRITERION_JSON: when set, it
# writes a JSON array of {group, bench, mean_ns, iterations, samples}
# objects after all groups have run. The `kernels_v1` group carries the
# PR-1 acceptance numbers (`be_dr/5000` vs `be_dr_seed/5000`); the
# `kernels_v2` group carries the PR-2 numbers — `eigen/256` vs
# `eigen_jacobi/256` is the tracked eigensolver speedup (acceptance ≥5×)
# and `mvn_sample_matrix/50000` vs its `_seed` twin the batched Box–Muller
# speedup. BENCH_1.json remains the frozen PR-1 record; pass it as the
# argument only to regenerate history deliberately.

set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_2.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

CRITERION_JSON="$tmp" cargo bench -p randrecon-bench --bench micro

# Guard against a harness that ignored CRITERION_JSON (e.g. the stub was
# swapped for real criterion): never clobber the perf record with nothing.
if [ ! -s "$tmp" ]; then
    echo "error: bench harness produced no JSON (CRITERION_JSON unsupported?); keeping existing $out" >&2
    exit 1
fi

mv "$tmp" "$out"
trap - EXIT
echo "wrote $out"

# Print the headline ratios so CI logs capture them.
python3 - "$out" <<'EOF' 2>/dev/null || true
import json, sys
results = {(r["group"], r["bench"]): r["mean_ns"] for r in json.load(open(sys.argv[1]))}
for n in (500, 5000, 50000):
    new = results.get(("kernels_v1", f"be_dr/{n}"))
    old = results.get(("kernels_v1", f"be_dr_seed/{n}"))
    if new and old:
        print(f"be_dr {n} rows: seed {old/1e6:.2f} ms -> now {new/1e6:.2f} ms  ({old/new:.2f}x)")
for m in (64, 128, 256):
    new = results.get(("kernels_v2", f"eigen/{m}"))
    old = results.get(("kernels_v2", f"eigen_jacobi/{m}"))
    if new and old:
        print(f"eigen m={m}: jacobi {old/1e6:.2f} ms -> householder+QL {new/1e6:.2f} ms  ({old/new:.2f}x)")
new = results.get(("kernels_v2", "mvn_sample_matrix/50000"))
old = results.get(("kernels_v2", "mvn_sample_matrix_seed/50000"))
if new and old:
    print(f"mvn 50k rows: scalar {old/1e6:.2f} ms -> batched {new/1e6:.2f} ms  ({old/new:.2f}x)")
EOF
