#!/usr/bin/env bash
# Runs the `micro` benchmark harness and dumps every measurement to a JSON
# file (default BENCH_10.json at the repo root) for the perf trajectory.
#
# Usage: scripts/bench_to_json.sh [output.json]
#
# The criterion-compatible harness honours CRITERION_JSON: when set, it
# writes a JSON array of {group, bench, mean_ns, iterations, samples}
# objects after all groups have run. The `kernels_v1` group carries the
# PR-1 acceptance numbers (`be_dr/5000` vs `be_dr_seed/5000`); the
# `kernels_v2` group the PR-2 numbers (`eigen/256` vs `eigen_jacobi/256`,
# acceptance >=5x); the `kernels_v3` group the PR-3 microkernel numbers
# (`matmul_micro/512` vs `matmul_blocked_seed/512`, acceptance >=1.5x); the
# `streaming` group the bounded-memory numbers: the PR-3 ratios
# (`be_dr_streaming/50000` vs `be_dr_in_memory/50000`, acceptance >=0.8x
# throughput, plus the fully-streamed `be_dr_streaming/500000` flagship)
# and the PR-4 unified-driver numbers (per-scheme `*_streaming/50000`
# throughput for NDR/UDR/SF/PCA-DR, plus `be_dr_streaming/50000` vs the
# forced-sequential `be_dr_streaming_seq/50000` — the double-buffered
# pass 2 must hold >=0.95x of the sequential throughput); and the
# `scenario` group the PR-5 declarative-runner numbers (`runner/8` vs
# `handrolled/8` over eight distinct-workload scenarios — the runner's
# scheduling overhead must stay <=5%); and the `journal` group the PR-6
# crash-resumability numbers (`journaled/8` vs `plain/8` over the same
# eight workloads — framing, checksumming and appending every outcome to
# the result journal must cost <=5%); and the `shard` group the PR-7
# sharded-runner numbers (`sharded/8` vs `plain/8` — the in-process
# sharding protocol: per-shard journals with shard-stamped headers,
# read-only recovery and the global-index merge must cost <=10% over a
# single-process run of the same eight workloads); and the `supervise`
# group the PR-8 supervision numbers (`supervised/8` vs `sharded/8` —
# per-shard heartbeat sidecars rewritten after every journaled cell plus
# an armed-but-never-firing cell deadline checked at trial/member/chunk
# boundaries must cost <=5% over bare in-process sharding of the same
# eight workloads); and the `moment_merge` group the PR-9 distributed-
# reduction numbers (`merged/8` vs `never/8` over eight streaming
# workloads split across 2 in-process shards -- dealing each group's
# pass-1 moment segments across shards as moment tasks, journaling the
# partials as v5 moment frames, and merging them in the coordinator's
# reduce step must cost <=10% over unsplit sharding of the same grid);
# and the `pipeline_ring` group the PR-10 chunk-engine numbers: pass 2
# through the N-slot ring (depths 4 and 8) vs the forced-sequential loop
# and the pinned two-slot depth at 50 k x 64 and the fully-streamed
# 500 k x 64 flagship (`be_dr_ring4/50000` vs `be_dr_sequential/50000`
# must hold >=0.95x throughput even on 1 core), plus the ROW_BLOCK-panel
# wide-table covariance rank-update vs the preserved per-row sweep at
# n = 1000, m in {128, 256} (`sample_covariance_n1000/256` vs
# `sample_covariance_rowsweep_n1000/256`, acceptance >=1.3x).
# BENCH_1.json … BENCH_9.json remain the frozen PR-1/…/9 records; pass
# one of them as the argument only to regenerate history deliberately.

set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_10.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

CRITERION_JSON="$tmp" cargo bench -p randrecon-bench --bench micro

# Guard against a harness that ignored CRITERION_JSON (e.g. the stub was
# swapped for real criterion): never clobber the perf record with nothing.
if [ ! -s "$tmp" ]; then
    echo "error: bench harness produced no JSON (CRITERION_JSON unsupported?); keeping existing $out" >&2
    exit 1
fi

mv "$tmp" "$out"
trap - EXIT
echo "wrote $out"

# Print the headline ratios so CI logs capture them.
python3 - "$out" <<'EOF' 2>/dev/null || true
import json, sys
results = {(r["group"], r["bench"]): r["mean_ns"] for r in json.load(open(sys.argv[1]))}
for n in (500, 5000, 50000):
    new = results.get(("kernels_v1", f"be_dr/{n}"))
    old = results.get(("kernels_v1", f"be_dr_seed/{n}"))
    if new and old:
        print(f"be_dr {n} rows: seed {old/1e6:.2f} ms -> now {new/1e6:.2f} ms  ({old/new:.2f}x)")
for m in (64, 128, 256):
    new = results.get(("kernels_v2", f"eigen/{m}"))
    old = results.get(("kernels_v2", f"eigen_jacobi/{m}"))
    if new and old:
        print(f"eigen m={m}: jacobi {old/1e6:.2f} ms -> householder+QL {new/1e6:.2f} ms  ({old/new:.2f}x)")
new = results.get(("kernels_v2", "mvn_sample_matrix/50000"))
old = results.get(("kernels_v2", "mvn_sample_matrix_seed/50000"))
if new and old:
    print(f"mvn 50k rows: scalar {old/1e6:.2f} ms -> batched {new/1e6:.2f} ms  ({old/new:.2f}x)")
for n in (256, 512):
    new = results.get(("kernels_v3", f"matmul_micro/{n}"))
    old = results.get(("kernels_v3", f"matmul_blocked_seed/{n}"))
    if new and old:
        print(f"matmul {n}x{n}: axpy-blocked {old/1e6:.2f} ms -> microkernel {new/1e6:.2f} ms  ({old/new:.2f}x, acceptance >=1.5x at 512)")
stream = results.get(("streaming", "be_dr_streaming/50000"))
memory = results.get(("streaming", "be_dr_in_memory/50000"))
if stream and memory:
    print(f"be_dr 50k rows: in-memory {memory/1e6:.2f} ms vs streaming {stream/1e6:.2f} ms  (throughput ratio {memory/stream:.2f}x, acceptance >=0.8x)")
seq = results.get(("streaming", "be_dr_streaming_seq/50000"))
if stream and seq:
    print(f"be_dr 50k streaming pass 2: sequential {seq/1e6:.2f} ms vs double-buffered {stream/1e6:.2f} ms  (throughput ratio {seq/stream:.2f}x, acceptance >=0.95x)")
for scheme in ("ndr", "udr", "sf", "pca_dr", "be_dr"):
    t = results.get(("streaming", f"{scheme}_streaming/50000"))
    if t:
        print(f"{scheme} 50k x 64 streaming: {t/1e6:.2f} ms  ({50000/(t/1e9):.0f} records/s)")
big = results.get(("streaming", "be_dr_streaming/500000"))
if big:
    print(f"be_dr 500k rows fully streamed: {big/1e9:.2f} s end-to-end ({500000/(big/1e9):.0f} records/s, bounded memory)")
runner = results.get(("scenario", "runner/8"))
hand = results.get(("scenario", "handrolled/8"))
if runner and hand:
    overhead = (runner - hand) / hand * 100
    print(f"scenario runner over 8 distinct workloads: hand-rolled {hand/1e6:.2f} ms vs runner {runner/1e6:.2f} ms  (scheduling overhead {overhead:+.1f}%, acceptance <=5%)")
journaled = results.get(("journal", "journaled/8"))
plain = results.get(("journal", "plain/8"))
if journaled and plain:
    overhead = (journaled - plain) / plain * 100
    print(f"result journal over 8 workloads: plain {plain/1e6:.2f} ms vs journaled {journaled/1e6:.2f} ms  (journaling overhead {overhead:+.1f}%, acceptance <=5%)")
sharded = results.get(("shard", "sharded/8"))
plain = results.get(("shard", "plain/8"))
if sharded and plain:
    overhead = (sharded - plain) / plain * 100
    print(f"sharded runner over 8 workloads (2 in-process shards): plain {plain/1e6:.2f} ms vs sharded {sharded/1e6:.2f} ms  (coordination overhead {overhead:+.1f}%, acceptance <=10%)")
supervised = results.get(("supervise", "supervised/8"))
bare = results.get(("supervise", "sharded/8"))
if supervised and bare:
    overhead = (supervised - bare) / bare * 100
    print(f"supervised sharding over 8 workloads: bare {bare/1e6:.2f} ms vs heartbeats+deadline {supervised/1e6:.2f} ms  (supervision overhead {overhead:+.1f}%, acceptance <=5%)")
merged = results.get(("moment_merge", "merged/8"))
never = results.get(("moment_merge", "never/8"))
if merged and never:
    overhead = (merged - never) / never * 100
    print(f"moment-merged sharding over 8 streaming workloads: unsplit {never/1e6:.2f} ms vs split+merged {merged/1e6:.2f} ms  (moment-merge overhead {overhead:+.1f}%, acceptance <=10%)")
for n in (50000, 500000):
    seq = results.get(("pipeline_ring", f"be_dr_sequential/{n}"))
    for depth in ("two_slot", "ring4", "ring8"):
        t = results.get(("pipeline_ring", f"be_dr_{depth}/{n}"))
        if t and seq:
            note = "  (acceptance >=0.95x)" if (n, depth) == (50000, "ring4") else ""
            print(f"pass-2 {depth} at {n} rows: sequential {seq/1e6:.2f} ms vs {t/1e6:.2f} ms  (throughput ratio {seq/t:.2f}x{note})")
for m in (128, 256):
    new = results.get(("pipeline_ring", f"sample_covariance_n1000/{m}"))
    old = results.get(("pipeline_ring", f"sample_covariance_rowsweep_n1000/{m}"))
    if new and old:
        note = ", acceptance >=1.3x" if m == 256 else ""
        print(f"covariance n=1000 m={m}: per-row sweep {old/1e6:.2f} ms -> blocked panels {new/1e6:.2f} ms  ({old/new:.2f}x{note})")
EOF
