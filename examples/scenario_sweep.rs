//! A grid sweep from one literal spec: the full {noise × engine × scheme}
//! matrix — 5 schemes × 3 noise models × both execution engines = 30
//! scenarios — expanded from a single [`ScenarioGrid`] literal and executed
//! in one `run()` call.
//!
//! This is the "handles as many scenarios as you can imagine" entry point:
//! a new cell of the evaluation matrix is one more axis value, not a new
//! driver file. Scenarios that share a workload (here: each {noise, engine}
//! pair, across its five schemes) generate their data and accumulate
//! streaming pass-1 moments once.
//!
//! Run with:
//! ```text
//! cargo run --release --example scenario_sweep
//! ```

use randrecon::experiments::report::results_table;
use randrecon::experiments::scenario::{
    AttackSpec, DataSpec, EngineSpec, GridAxis, MetricKind, NoiseSpec, ScenarioGrid, ScenarioSpec,
    SpectrumSpec,
};
use randrecon::experiments::SchemeKind;

fn main() {
    // The whole sweep as one literal value.
    let grid = ScenarioGrid {
        base: ScenarioSpec {
            label: "sweep".to_string(),
            x: 0.0,
            data: DataSpec::SyntheticMvn {
                spectrum: SpectrumSpec::PrincipalPlusSmall {
                    p: 4,
                    principal: 400.0,
                    m: 16,
                    small: 4.0,
                },
                records: 5_000,
            },
            noise: NoiseSpec::Gaussian { sigma: 10.0 },
            attack: AttackSpec::Scheme(SchemeKind::BeDr),
            engine: EngineSpec::InMemory,
            metrics: vec![MetricKind::Rmse],
            trials: 1,
            seed: 0xC0FFEE,
            seed_offset: 0,
            dataset_seed: None,
            noise_seed: None,
        },
        axes: vec![
            GridAxis::noises(&[
                ("gaussian", NoiseSpec::Gaussian { sigma: 10.0 }),
                ("uniform", NoiseSpec::Uniform { sigma: 10.0 }),
                (
                    "correlated",
                    NoiseSpec::CorrelatedSimilar {
                        similarity: 0.75,
                        noise_variance: 100.0,
                    },
                ),
            ]),
            GridAxis::engines(&[
                EngineSpec::InMemory,
                EngineSpec::Streaming { chunk_rows: 512 },
            ]),
            GridAxis::schemes(&SchemeKind::all()),
        ],
    };

    let specs = grid.expand_validated().expect("valid sweep grid");
    println!("one literal spec expanded into {} scenarios\n", specs.len());

    let results = grid.run().expect("sweep");
    println!("{}", results_table(&results));

    // The qualitative picture, straight off the results: BE-DR is the
    // strongest attack everywhere, and the correlated defense is the only
    // noise model that blunts it.
    let be_dr_rmse = |needle: &str| {
        results
            .iter()
            .find(|r| r.label.contains(needle) && r.scheme == Some(SchemeKind::BeDr))
            .and_then(|r| r.rmse())
            .expect("BE-DR cell present")
    };
    println!(
        "BE-DR under gaussian noise: {:.2}  |  under the correlated defense: {:.2}",
        be_dr_rmse("noise=gaussian/engine=in-memory"),
        be_dr_rmse("noise=correlated/engine=in-memory"),
    );
}
