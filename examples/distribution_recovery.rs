//! Scenario: the data-mining side of randomization.
//!
//! Randomization is only interesting because miners can still learn *aggregate*
//! structure from the disguised data. This example shows both halves of that
//! bargain on one attribute:
//!
//! * the miner recovers the original distribution from the disguised values
//!   with the Agrawal–Srikant reconstruction (good for mining), and
//! * the adversary goes further and recovers *individual* values with the
//!   posterior-mean attack (bad for privacy), which is exactly the gap the
//!   paper formalizes.
//!
//! Run with:
//! ```text
//! cargo run --release --example distribution_recovery
//! ```

use randrecon::stats::distributions::{ContinuousDistribution, Normal};
use randrecon::stats::posterior::histogram_posterior_mean;
use randrecon::stats::reconstruction::{reconstruct_distribution, ReconstructionConfig};
use randrecon::stats::rng::seeded_rng;
use randrecon::stats::summary;

fn main() {
    let mut rng = seeded_rng(31_337);

    // Original attribute: annual income-like, bimodal (two populations).
    let low_income = Normal::new(32_000.0, 6_000.0).expect("dist");
    let high_income = Normal::new(95_000.0, 12_000.0).expect("dist");
    let n = 6_000;
    let originals: Vec<f64> = (0..n)
        .map(|i| {
            if i % 3 == 0 {
                high_income.sample(&mut rng)
            } else {
                low_income.sample(&mut rng)
            }
        })
        .collect();

    // Randomization: add zero-mean Gaussian noise with sigma = 15,000 — large
    // enough that any individual disguised value looks uninformative.
    let noise = Normal::new(0.0, 15_000.0).expect("noise");
    let disguised: Vec<f64> = originals
        .iter()
        .map(|&x| x + noise.sample(&mut rng))
        .collect();

    println!(
        "original mean {:>12.0}  std {:>10.0}",
        summary::mean(&originals),
        summary::std_dev(&originals)
    );
    println!(
        "disguised mean {:>11.0}  std {:>10.0}",
        summary::mean(&disguised),
        summary::std_dev(&disguised)
    );

    // --- Miner's view: recover the distribution (aggregate utility). ---
    let config = ReconstructionConfig {
        bins: 120,
        max_iterations: 300,
        tolerance: 1e-5,
    };
    let recovered =
        reconstruct_distribution(&disguised, &noise, &config).expect("AS reconstruction");
    println!(
        "\nAgrawal-Srikant distribution reconstruction: {} iterations, converged = {}",
        recovered.iterations, recovered.converged
    );
    println!("reconstructed distribution, probability mass by income band:");
    let bands = [
        (20_000.0, 45_000.0),
        (45_000.0, 70_000.0),
        (70_000.0, 120_000.0),
    ];
    for (lo, hi) in bands {
        let mass: f64 = recovered
            .density
            .centers()
            .iter()
            .zip(recovered.density.masses().iter())
            .filter(|(&c, _)| c >= lo && c < hi)
            .map(|(_, &m)| m)
            .sum();
        let true_frac = originals.iter().filter(|&&x| x >= lo && x < hi).count() as f64 / n as f64;
        println!(
            "  {lo:>8.0} - {hi:>8.0}: reconstructed {:>5.1}%  (true {:>5.1}%)",
            mass * 100.0,
            true_frac * 100.0
        );
    }

    // --- Adversary's view: recover individual values (privacy loss). ---
    let estimates: Vec<f64> = disguised
        .iter()
        .map(|&y| histogram_posterior_mean(y, &recovered.density, &noise))
        .collect();
    let naive_rmse = rmse(&originals, &disguised);
    let attack_rmse = rmse(&originals, &estimates);
    println!("\nper-record error (RMSE):");
    println!("  reading the disguised value directly : {naive_rmse:>10.0}");
    println!("  posterior-mean attack                : {attack_rmse:>10.0}");
    println!(
        "\nThe same machinery that restores the distribution for the miner also\n\
         shrinks each individual's error well below the injected noise level —\n\
         the univariate baseline (UDR) of the paper. Exploiting cross-attribute\n\
         correlation (PCA-DR/BE-DR) tightens it further; see the other examples."
    );
}

fn rmse(a: &[f64], b: &[f64]) -> f64 {
    let sum: f64 = a
        .iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum();
    (sum / a.len() as f64).sqrt()
}
