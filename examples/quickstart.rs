//! Quickstart: disguise a small data set with additive noise, attack it with
//! every reconstruction scheme, and see how much of the "private" data leaks.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use randrecon::core::{
    be_dr::BeDr, ndr::Ndr, pca_dr::PcaDr, spectral::SpectralFiltering, udr::Udr, Reconstructor,
};
use randrecon::data::synthetic::{EigenSpectrum, SyntheticDataset};
use randrecon::metrics::{accuracy::normalized_rmse, rmse};
use randrecon::noise::additive::AdditiveRandomizer;
use randrecon::stats::rng::seeded_rng;

fn main() {
    // 1. A correlated data set: 40 attributes but only 5 independent "factors"
    //    (the situation the paper warns about — lots of redundancy).
    let spectrum = EigenSpectrum::principal_plus_small(5, 400.0, 40, 4.0).expect("valid spectrum");
    let dataset = SyntheticDataset::generate(&spectrum, 1_000, 42).expect("workload generation");
    println!(
        "original data: {} records x {} attributes, total variance {:.1}",
        dataset.n_records(),
        dataset.n_attributes(),
        dataset.covariance.trace()
    );

    // 2. The data owner disguises it with the classic scheme: independent
    //    zero-mean Gaussian noise, sigma = 10 (variance 100 per attribute).
    let randomizer = AdditiveRandomizer::gaussian(10.0).expect("valid noise level");
    let disguised = randomizer
        .disguise(&dataset.table, &mut seeded_rng(7))
        .expect("disguising");
    println!("disguised with independent Gaussian noise, sigma = 10 (the adversary knows this)\n");

    // 3. The adversary only sees `disguised` and the public noise model.
    let model = randomizer.model();
    let attacks: Vec<Box<dyn Reconstructor>> = vec![
        Box::new(Ndr),
        Box::new(Udr::default()),
        Box::new(SpectralFiltering::default()),
        Box::new(PcaDr::largest_gap()),
        Box::new(BeDr::default()),
    ];

    println!("{:<10} {:>12} {:>18}", "attack", "RMSE", "normalized RMSE");
    for attack in &attacks {
        let reconstruction = attack
            .reconstruct(&disguised, model)
            .expect("reconstruction");
        let err = rmse(&dataset.table, &reconstruction).expect("rmse");
        let nerr = normalized_rmse(&dataset.table, &reconstruction).expect("normalized rmse");
        println!("{:<10} {:>12.3} {:>18.3}", attack.name(), err, nerr);
    }

    println!(
        "\nThe noise standard deviation is 10.0, yet the correlation-exploiting\n\
         attacks (PCA-DR, BE-DR) reconstruct the data to within a fraction of\n\
         that — exactly the privacy breach the paper demonstrates."
    );
}
