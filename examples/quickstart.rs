//! Quickstart: disguise a small data set with additive noise, attack it with
//! every reconstruction scheme, and see how much of the "private" data leaks.
//!
//! The whole experiment is one declarative [`ScenarioSpec`] grid: the base
//! spec describes {data, noise, metrics, seed}, the scheme axis sweeps all
//! five attacks, and the runner executes them against one shared disguised
//! workload.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use randrecon::experiments::scenario::{
    GridAxis, MetricKind, NoiseSpec, ScenarioGrid, ScenarioSpec,
};
use randrecon::experiments::SchemeKind;

fn main() {
    // 1. A correlated data set: 40 attributes but only 5 independent
    //    "factors" (the situation the paper warns about — lots of
    //    redundancy), disguised with the classic scheme: independent
    //    zero-mean Gaussian noise, sigma = 10 (variance 100 per attribute).
    let mut base = ScenarioSpec::synthetic_quick("quickstart", 1_000, 40, 5);
    base.noise = NoiseSpec::Gaussian { sigma: 10.0 };
    base.metrics = vec![MetricKind::Rmse, MetricKind::NormalizedRmse];
    base.seed = 42;

    // 2. The sweep: the adversary only sees the disguised records and the
    //    public noise model; every scheme attacks the same release.
    let grid = ScenarioGrid {
        base,
        axes: vec![GridAxis::schemes(&SchemeKind::all())],
    };
    let results = grid.run().expect("quickstart grid");

    println!("{:<10} {:>12} {:>18}", "attack", "RMSE", "normalized RMSE");
    for r in &results {
        println!(
            "{:<10} {:>12.3} {:>18.3}",
            r.attack,
            r.metric(MetricKind::Rmse).unwrap(),
            r.metric(MetricKind::NormalizedRmse).unwrap()
        );
    }

    println!(
        "\nThe noise standard deviation is 10.0, yet the correlation-exploiting\n\
         attacks (PCA-DR, BE-DR) reconstruct the data to within a fraction of\n\
         that — exactly the privacy breach the paper demonstrates."
    );
}
