//! Scenario: deploying the paper's correlated-noise defense (Section 8).
//!
//! The same data owner as in the quickstart compares three ways of disguising
//! a highly correlated data set with the *same total noise budget*:
//!
//! 1. independent Gaussian noise (the classic scheme),
//! 2. correlated noise whose covariance mimics the data (the paper's improved
//!    scheme),
//! 3. anti-correlated noise concentrated on the non-principal components
//!    (what *not* to do).
//!
//! For each variant the example reports the best attack's RMSE (privacy) and
//! how well the original covariance can still be recovered for mining
//! (utility), demonstrating the paper's claim that the defense costs no
//! aggregate utility.
//!
//! Run with:
//! ```text
//! cargo run --release --example correlated_noise_defense
//! ```

use randrecon::core::covariance::estimate_original_covariance;
use randrecon::core::{be_dr::BeDr, pca_dr::PcaDr, spectral::SpectralFiltering, Reconstructor};
use randrecon::data::synthetic::{EigenSpectrum, SyntheticDataset};
use randrecon::metrics::dissimilarity::correlation_dissimilarity_from_covariances;
use randrecon::metrics::rmse;
use randrecon::metrics::utility::covariance_recovery_error;
use randrecon::noise::additive::AdditiveRandomizer;
use randrecon::noise::correlated::{interpolated_spectrum, noise_covariance, SimilarityLevel};
use randrecon::stats::rng::seeded_rng;

fn main() {
    // Highly correlated data: 50 dominant directions out of 100 attributes.
    let spectrum = EigenSpectrum::principal_plus_small(50, 400.0, 100, 4.0).expect("spectrum");
    let ds = SyntheticDataset::generate(&spectrum, 1_000, 1234).expect("workload");
    let per_attribute_noise_variance = 25.0; // same budget as sigma = 5 i.i.d.
    let total_noise_variance = per_attribute_noise_variance * ds.n_attributes() as f64;

    println!(
        "data set: {} records x {} attributes; noise budget = {:.0} variance per attribute\n",
        ds.n_records(),
        ds.n_attributes(),
        per_attribute_noise_variance
    );
    println!(
        "{:<28} {:>14} {:>10} {:>10} {:>10} {:>12}",
        "randomization", "dissimilarity", "SF", "PCA-DR", "BE-DR", "utility err"
    );

    let variants = [
        ("independent (classic)", SimilarityLevel::independent()),
        ("correlated, similar", SimilarityLevel::similar()),
        ("correlated, anti-similar", SimilarityLevel::anti_similar()),
    ];

    for (label, level) in variants {
        let noise_spec = interpolated_spectrum(&ds.eigenvalues, level, total_noise_variance)
            .expect("noise spectrum");
        let sigma_r = noise_covariance(&ds.eigenvectors, &noise_spec).expect("noise covariance");
        let dissimilarity = correlation_dissimilarity_from_covariances(&ds.covariance, &sigma_r)
            .expect("dissimilarity");

        let randomizer = AdditiveRandomizer::correlated(sigma_r).expect("randomizer");
        let disguised = randomizer
            .disguise(&ds.table, &mut seeded_rng(55))
            .expect("disguise");
        let model = randomizer.model();

        let sf = rmse(
            &ds.table,
            &SpectralFiltering::default()
                .reconstruct(&disguised, model)
                .expect("SF"),
        )
        .expect("rmse");
        let pca = rmse(
            &ds.table,
            &PcaDr::largest_gap()
                .reconstruct(&disguised, model)
                .expect("PCA"),
        )
        .expect("rmse");
        let be = rmse(
            &ds.table,
            &BeDr::default().reconstruct(&disguised, model).expect("BE"),
        )
        .expect("rmse");

        // Utility: the miner estimates the original covariance via Theorem 8.2.
        let estimated =
            estimate_original_covariance(&disguised, model).expect("covariance estimate");
        let utility_err = covariance_recovery_error(&ds.covariance, &estimated).expect("utility");

        println!(
            "{:<28} {:>14.4} {:>10.3} {:>10.3} {:>10.3} {:>11.1}%",
            label,
            dissimilarity,
            sf,
            pca,
            be,
            utility_err * 100.0
        );
    }

    println!(
        "\nWith the same noise budget, making the noise correlations mimic the\n\
         data (smallest dissimilarity) pushes every attack's error up towards\n\
         the noise level, while the covariance needed for mining is recovered\n\
         about as well as before — the paper's Section 8 result."
    );
}
