//! Scenario: a disguised medical survey.
//!
//! A hospital publishes a randomized version of a patient survey so that
//! researchers can mine aggregate patterns. The attributes are strongly
//! correlated (lab values track each other, dosage tracks weight, …), which is
//! precisely the condition under which the paper shows randomization fails.
//! This example builds such a survey, disguises it, attacks it with BE-DR, and
//! reports *per-attribute* and *per-patient* disclosure — the numbers a
//! privacy officer would actually care about.
//!
//! Run with:
//! ```text
//! cargo run --release --example medical_survey_attack
//! ```

use randrecon::core::{be_dr::BeDr, Reconstructor};
use randrecon::data::schema::{Attribute, Schema};
use randrecon::data::synthetic::{covariance_from_spectrum, random_orthogonal, EigenSpectrum};
use randrecon::data::DataTable;
use randrecon::linalg::Matrix;
use randrecon::metrics::accuracy::per_attribute_rmse;
use randrecon::metrics::privacy::{disclosure_rate, per_attribute_disclosure_rate};
use randrecon::noise::additive::AdditiveRandomizer;
use randrecon::stats::mvn::MultivariateNormal;
use randrecon::stats::rng::seeded_rng;

fn main() {
    let mut rng = seeded_rng(2026);

    // Survey schema: 8 numeric attributes a patient would consider private.
    let schema = Schema::new(vec![
        Attribute::sensitive("systolic_bp"),
        Attribute::sensitive("diastolic_bp"),
        Attribute::sensitive("cholesterol"),
        Attribute::sensitive("glucose"),
        Attribute::sensitive("bmi"),
        Attribute::sensitive("daily_dose_mg"),
        Attribute::sensitive("weight_kg"),
        Attribute::sensitive("hba1c"),
    ])
    .expect("schema");
    let m = schema.len();

    // Clinically plausible means and a strongly correlated covariance: two
    // dominant physiological "factors" drive all eight measurements.
    let means = [128.0, 82.0, 195.0, 105.0, 27.5, 40.0, 82.0, 6.1];
    let spectrum = EigenSpectrum::principal_plus_small(2, 300.0, m, 6.0).expect("spectrum");
    let q = random_orthogonal(m, &mut rng).expect("orthogonal basis");
    let covariance = covariance_from_spectrum(&spectrum, &q).expect("covariance");
    let mvn = MultivariateNormal::new(means.to_vec(), covariance).expect("mvn");
    let records: Matrix = mvn.sample_matrix(800, &mut rng);
    let survey = DataTable::new(schema, records).expect("table");

    println!(
        "survey: {} patients x {} sensitive attributes",
        survey.n_records(),
        survey.n_attributes()
    );

    // The hospital disguises every value with independent Gaussian noise,
    // sigma = 8 — large relative to most attributes' natural spread.
    let randomizer = AdditiveRandomizer::gaussian(8.0).expect("noise");
    let disguised = randomizer
        .disguise(&survey, &mut seeded_rng(99))
        .expect("disguise");

    // The adversary reconstructs with the Bayes-estimate attack.
    let reconstruction = BeDr::default()
        .reconstruct(&disguised, randomizer.model())
        .expect("attack");

    println!("\nper-attribute reconstruction error (RMSE, attack vs noise sigma = 8.0):");
    let per_attr = per_attribute_rmse(&survey, &reconstruction).expect("per-attribute rmse");
    for (attr, err) in survey.schema().names().iter().zip(per_attr.iter()) {
        println!("  {attr:<14} {err:>8.2}");
    }

    // Disclosure: how many individual values did the adversary land within
    // +/- 5 units of? Compare against the disguised data itself (what the
    // hospital *thought* it was releasing).
    let tolerance = 5.0;
    let naive = disclosure_rate(&survey, &disguised, tolerance).expect("naive disclosure");
    let attacked = disclosure_rate(&survey, &reconstruction, tolerance).expect("attack disclosure");
    println!("\nfraction of values within +/-{tolerance} of the truth:");
    println!(
        "  reading the disguised release directly : {:.1}%",
        naive * 100.0
    );
    println!(
        "  after the BE-DR attack                 : {:.1}%",
        attacked * 100.0
    );

    println!("\nper-attribute disclosure after the attack (+/-{tolerance}):");
    let per_attr_disc = per_attribute_disclosure_rate(&survey, &reconstruction, tolerance)
        .expect("per-attr disclosure");
    for (attr, rate) in survey.schema().names().iter().zip(per_attr_disc.iter()) {
        println!("  {attr:<14} {:>6.1}%", rate * 100.0);
    }

    println!(
        "\nCorrelation among lab values lets the attacker cancel most of the\n\
         injected noise: substantially more individual values are exposed than\n\
         the noise level alone would suggest."
    );
}
