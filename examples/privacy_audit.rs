//! Scenario: auditing a proposed randomized release before publishing it.
//!
//! The paper's practical advice to a data owner is to attack their own
//! release before sharing it. With the declarative scenario engine that
//! audit is a two-axis grid: {proposed noise model} × {attack battery}. The
//! example audits the same data set disguised two ways — the classic i.i.d.
//! scheme and the paper's correlated-noise defense (same total noise power)
//! — compares what the strongest attack achieves under each, and then drills
//! into the winning proposal with [`PrivacyAudit`] for the record-level
//! disclosure rates the RMSE summary hides.
//!
//! Run with:
//! ```text
//! cargo run --release --example privacy_audit
//! ```

use randrecon::core::audit::PrivacyAudit;
use randrecon::data::synthetic::{EigenSpectrum, SyntheticDataset};
use randrecon::experiments::scenario::{
    GridAxis, MetricKind, NoiseSpec, ScenarioGrid, ScenarioResult, ScenarioSpec,
};
use randrecon::experiments::SchemeKind;
use randrecon::noise::additive::AdditiveRandomizer;
use randrecon::stats::rng::seeded_rng;

fn main() {
    let sigma = 8.0f64;

    // The release candidate: 30 attributes driven by 4 latent factors.
    let mut base = ScenarioSpec::synthetic_quick("audit", 1_000, 30, 4);
    base.metrics = vec![MetricKind::Rmse];
    base.seed = 7_777;

    let grid = ScenarioGrid {
        base,
        axes: vec![
            GridAxis::noises(&[
                // Proposal 1: classic independent Gaussian noise.
                ("independent", NoiseSpec::Gaussian { sigma }),
                // Proposal 2: the Section 8 defense — noise concentrated on
                // the data's own principal components, same per-attribute
                // noise budget.
                (
                    "correlated-defense",
                    NoiseSpec::CorrelatedSimilar {
                        similarity: 1.0,
                        noise_variance: sigma * sigma,
                    },
                ),
            ]),
            GridAxis::schemes(&SchemeKind::all()),
        ],
    };
    let results = grid.run().expect("audit grid");

    let (classic, defended): (Vec<&ScenarioResult>, Vec<&ScenarioResult>) = results
        .iter()
        .partition(|r| r.label.contains("noise=independent"));

    let strongest = |batch: &[&ScenarioResult]| -> (String, f64) {
        batch
            .iter()
            .map(|r| (r.attack.clone(), r.rmse().unwrap()))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .expect("non-empty audit batch")
    };

    for (title, batch) in [
        (
            format!("proposal 1: independent Gaussian noise (sigma = {sigma})"),
            &classic,
        ),
        (
            "proposal 2: correlated noise, same total power".to_string(),
            &defended,
        ),
    ] {
        println!("=== {title} ===");
        println!("{:<10} {:>12}", "attack", "RMSE");
        for r in batch.iter() {
            println!("{:<10} {:>12.3}", r.attack, r.rmse().unwrap());
        }
        let (name, rmse) = strongest(batch);
        println!("strongest attack: {name} (RMSE {rmse:.3})\n");
    }

    let improvement = strongest(&defended).1 / strongest(&classic).1;
    println!(
        "strongest attack error grows by a factor of {improvement:.2} under the\n\
         correlated-noise defense; the data owner should prefer proposal 2 (or a\n\
         mechanism with formal guarantees — this attack is exactly why the field\n\
         moved to differential privacy).\n"
    );

    // Before signing off, drill into the rejected proposal with the full
    // audit battery: record-level disclosure rates show *how many* values an
    // adversary pins down, which the RMSE summary above cannot.
    let spectrum = EigenSpectrum::principal_plus_small(4, 400.0, 30, 4.0).expect("spectrum");
    let ds = SyntheticDataset::generate(&spectrum, 1_000, 7_777).expect("workload");
    let classic_randomizer = AdditiveRandomizer::gaussian(sigma).expect("classic randomizer");
    let classic_release = classic_randomizer
        .disguise(&ds.table, &mut seeded_rng(1))
        .expect("classic disguise");
    let report = PrivacyAudit::default()
        .run(&ds.table, &classic_release, classic_randomizer.model())
        .expect("audit");
    println!("=== record-level audit of proposal 1 ===");
    println!("{}", report.to_table());
    println!(
        "promised noise sigma = {sigma}, but correlation erodes it by {:.1}x;\n\
         most exposed attributes: {:?}",
        report.privacy_erosion_factor(),
        report.most_exposed_attributes(3)
    );
}
