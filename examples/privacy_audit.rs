//! Scenario: auditing a proposed randomized release before publishing it.
//!
//! The paper's practical advice to a data owner is to attack their own release
//! before sharing it. `PrivacyAudit` packages that workflow: it runs the whole
//! attack battery (NDR, UDR, SF, PCA-DR, BE-DR), measures RMSE and record-level
//! disclosure for each, and reports how much the promised noise level is eroded
//! by correlation. The example audits the same data set disguised two ways —
//! the classic i.i.d. scheme and the paper's correlated-noise defense — and
//! prints both reports side by side.
//!
//! Run with:
//! ```text
//! cargo run --release --example privacy_audit
//! ```

use randrecon::core::audit::PrivacyAudit;
use randrecon::data::synthetic::{EigenSpectrum, SyntheticDataset};
use randrecon::noise::additive::AdditiveRandomizer;
use randrecon::stats::rng::seeded_rng;

fn main() {
    // The release candidate: 30 attributes driven by 4 latent factors.
    let spectrum = EigenSpectrum::principal_plus_small(4, 400.0, 30, 4.0).expect("spectrum");
    let ds = SyntheticDataset::generate(&spectrum, 1_000, 7_777).expect("workload");
    let sigma = 8.0;
    let audit = PrivacyAudit::default();

    // Proposal 1: classic independent Gaussian noise.
    let classic = AdditiveRandomizer::gaussian(sigma).expect("classic randomizer");
    let classic_release = classic
        .disguise(&ds.table, &mut seeded_rng(1))
        .expect("classic disguise");
    let classic_report = audit
        .run(&ds.table, &classic_release, classic.model())
        .expect("classic audit");

    // Proposal 2: the Section 8 defense — noise covariance proportional to the
    // data covariance, same total noise power.
    let ratio = sigma * sigma * ds.n_attributes() as f64 / ds.covariance.trace();
    let defended =
        AdditiveRandomizer::correlated(ds.covariance.scale(ratio)).expect("correlated randomizer");
    let defended_release = defended
        .disguise(&ds.table, &mut seeded_rng(2))
        .expect("defended disguise");
    let defended_report = audit
        .run(&ds.table, &defended_release, defended.model())
        .expect("defended audit");

    println!("=== proposal 1: independent Gaussian noise (sigma = {sigma}) ===");
    println!("{}", classic_report.to_table());
    println!("=== proposal 2: correlated noise, same total power ===");
    println!("{}", defended_report.to_table());

    let improvement = defended_report.strongest().rmse / classic_report.strongest().rmse;
    println!(
        "strongest attack error grows by a factor of {improvement:.2} under the\n\
         correlated-noise defense; the data owner should prefer proposal 2 (or a\n\
         mechanism with formal guarantees — this attack is exactly why the field\n\
         moved to differential privacy)."
    );
}
