//! Dense, row-major `f64` matrix.
//!
//! [`Matrix`] is deliberately simple: a `Vec<f64>` plus a shape. All the
//! higher-level routines in this workspace (PCA, Bayes estimation, spectral
//! filtering, multivariate-normal sampling) are expressed in terms of the
//! operations defined here.

use crate::error::{LinalgError, Result};
use crate::kernels;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign};

/// A dense, row-major matrix of `f64` values.
///
/// Storage is a single contiguous `Vec<f64>` of length `rows * cols`; element
/// `(i, j)` lives at `data[i * cols + j]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix with every entry set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &v) in diag.iter().enumerate() {
            m.set(i, i, v);
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidData {
                reason: format!(
                    "expected {} elements for a {}x{} matrix, got {}",
                    rows * cols,
                    rows,
                    cols,
                    data.len()
                ),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// All rows must have the same length and there must be at least one row.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::Empty { op: "from_rows" });
        }
        let cols = rows[0].len();
        if cols == 0 {
            return Err(LinalgError::Empty { op: "from_rows" });
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(LinalgError::InvalidData {
                    reason: format!("row {i} has {} columns, expected {}", row.len(), cols),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix from a vector of owned rows.
    pub fn from_row_vecs(rows: Vec<Vec<f64>>) -> Result<Self> {
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Matrix::from_rows(&refs)
    }

    /// Creates a matrix whose columns are the given vectors.
    pub fn from_columns(columns: &[Vec<f64>]) -> Result<Self> {
        if columns.is_empty() {
            return Err(LinalgError::Empty { op: "from_columns" });
        }
        let rows = columns[0].len();
        if rows == 0 {
            return Err(LinalgError::Empty { op: "from_columns" });
        }
        for (j, col) in columns.iter().enumerate() {
            if col.len() != rows {
                return Err(LinalgError::InvalidData {
                    reason: format!("column {j} has {} rows, expected {}", col.len(), rows),
                });
            }
        }
        let mut m = Matrix::zeros(rows, columns.len());
        for (j, col) in columns.iter().enumerate() {
            for (i, &v) in col.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        Ok(m)
    }

    /// Creates a `rows × cols` matrix by evaluating `f(i, j)` for every entry.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    // ------------------------------------------------------------------
    // Shape and element access
    // ------------------------------------------------------------------

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns the element at `(i, j)`.
    ///
    /// # Panics
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        self.data[i * self.cols + j]
    }

    /// Sets the element at `(i, j)` to `value`.
    ///
    /// # Panics
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        self.data[i * self.cols + j] = value;
    }

    /// Read-only view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Returns row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns a mutable slice of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns column `j` as an owned vector.
    pub fn column(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Copies `values` into column `j`.
    ///
    /// # Panics
    /// Panics if `values.len() != rows`.
    pub fn set_column(&mut self, j: usize, values: &[f64]) {
        assert_eq!(values.len(), self.rows, "column length mismatch");
        for (i, &v) in values.iter().enumerate() {
            self.set(i, j, v);
        }
    }

    /// Copies `values` into row `i`.
    ///
    /// # Panics
    /// Panics if `values.len() != cols`.
    pub fn set_row(&mut self, i: usize, values: &[f64]) {
        assert_eq!(values.len(), self.cols, "row length mismatch");
        self.row_mut(i).copy_from_slice(values);
    }

    /// Iterator over rows as slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// Returns the main diagonal as a vector (length `min(rows, cols)`).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Swaps rows `a` and `b` in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            let t = self.get(a, j);
            self.set(a, j, self.get(b, j));
            self.set(b, j, t);
        }
    }

    // ------------------------------------------------------------------
    // Structural operations
    // ------------------------------------------------------------------

    /// Returns the transpose.
    ///
    /// Uses a tiled walk so both the source rows and destination columns are
    /// visited in cache-line-sized blocks instead of one full strided pass.
    pub fn transpose(&self) -> Matrix {
        const TILE: usize = 32;
        let (r, c) = (self.rows, self.cols);
        let mut out = Matrix::zeros(c, r);
        for i0 in (0..r).step_by(TILE) {
            let i1 = (i0 + TILE).min(r);
            for j0 in (0..c).step_by(TILE) {
                let j1 = (j0 + TILE).min(c);
                for i in i0..i1 {
                    let src = &self.data[i * c + j0..i * c + j1];
                    for (j, &v) in (j0..j1).zip(src.iter()) {
                        out.data[j * r + i] = v;
                    }
                }
            }
        }
        out
    }

    /// Returns a new matrix containing only the selected columns, in the given order.
    ///
    /// Used by PCA-based reconstruction to keep the first `p` eigenvectors.
    pub fn select_columns(&self, indices: &[usize]) -> Result<Matrix> {
        for &j in indices {
            if j >= self.cols {
                return Err(LinalgError::InvalidData {
                    reason: format!("column index {j} out of bounds ({} columns)", self.cols),
                });
            }
        }
        let mut out = Matrix::zeros(self.rows, indices.len());
        for (new_j, &j) in indices.iter().enumerate() {
            for i in 0..self.rows {
                out.set(i, new_j, self.get(i, j));
            }
        }
        Ok(out)
    }

    /// Returns the leading `p` columns as a new matrix.
    pub fn leading_columns(&self, p: usize) -> Result<Matrix> {
        let idx: Vec<usize> = (0..p).collect();
        self.select_columns(&idx)
    }

    /// Returns the submatrix with rows `r0..r1` and columns `c0..c1` (half-open ranges).
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Result<Matrix> {
        if r1 > self.rows || c1 > self.cols || r0 > r1 || c0 > c1 {
            return Err(LinalgError::InvalidData {
                reason: format!(
                    "invalid submatrix range rows {r0}..{r1}, cols {c0}..{c1} of {}x{}",
                    self.rows, self.cols
                ),
            });
        }
        let mut out = Matrix::zeros(r1 - r0, c1 - c0);
        for i in r0..r1 {
            for j in c0..c1 {
                out.set(i - r0, j - c0, self.get(i, j));
            }
        }
        Ok(out)
    }

    /// Stacks `self` on top of `other` (vertical concatenation).
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "vstack",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Concatenates `self` and `other` horizontally.
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "hstack",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(i, j, self.get(i, j));
            }
            for j in 0..other.cols {
                out.set(i, self.cols + j, other.get(i, j));
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Arithmetic
    // ------------------------------------------------------------------

    /// Element-wise addition.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise subtraction (`self - other`).
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "hadamard", |a, b| a * b)
    }

    fn zip_with<F: Fn(f64, f64) -> f64>(
        &self,
        other: &Matrix,
        op: &'static str,
        f: F,
    ) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                op,
                left: self.shape(),
                right: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// In-place element-wise addition (`self += other`), no allocation.
    pub fn add_assign_matrix(&mut self, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "add_assign",
                left: self.shape(),
                right: other.shape(),
            });
        }
        for (o, &v) in self.data.iter_mut().zip(other.data.iter()) {
            *o += v;
        }
        Ok(())
    }

    /// In-place element-wise subtraction (`self -= other`), no allocation.
    pub fn sub_assign_matrix(&mut self, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "sub_assign",
                left: self.shape(),
                right: other.shape(),
            });
        }
        for (o, &v) in self.data.iter_mut().zip(other.data.iter()) {
            *o -= v;
        }
        Ok(())
    }

    /// In-place scaling (`self *= scalar`), no allocation.
    pub fn scale_in_place(&mut self, scalar: f64) {
        for v in &mut self.data {
            *v *= scalar;
        }
    }

    /// Adds `row` to every row of the matrix in place.
    ///
    /// This is the broadcast the reconstruction schemes use to add column
    /// means (or the BE-DR prior pull) back to every record without cloning
    /// the data matrix.
    pub fn add_row_broadcast(&mut self, row: &[f64]) -> Result<()> {
        if row.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "add_row_broadcast",
                left: self.shape(),
                right: (1, row.len()),
            });
        }
        for r in self.data.chunks_exact_mut(self.cols) {
            for (o, &v) in r.iter_mut().zip(row.iter()) {
                *o += v;
            }
        }
        Ok(())
    }

    /// Multiplies every entry by `scalar`.
    pub fn scale(&self, scalar: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| v * scalar).collect(),
        }
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map<F: Fn(f64) -> f64>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Matrix product `self * other`.
    ///
    /// Dispatches to a cache-blocked, packed kernel (parallelized across the
    /// shared workspace pool) once the operand sizes justify it; tiny products
    /// use the plain i-k-j loop. Accumulation order over `k` is identical in
    /// both paths, so results are deterministic and independent of the
    /// machine's thread count.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                left: self.shape(),
                right: other.shape(),
            });
        }
        // Tiny problems: the blocked kernel's packing overhead isn't worth it.
        if self.rows * self.cols * other.cols < kernels::BLOCKED_MIN_FLOPS {
            return self.matmul_naive(other);
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        kernels::matmul_blocked(
            self.as_slice(),
            other.as_slice(),
            out.as_mut_slice(),
            self.rows,
            self.cols,
            other.cols,
        );
        Ok(out)
    }

    /// Reference matrix product: the unblocked i-k-j triple loop.
    ///
    /// Kept public so property tests and benchmarks can compare the blocked
    /// kernel against a straightforward implementation.
    pub fn matmul_naive(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps the inner loop contiguous over both `other`
        // and `out` rows.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let other_row = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(other_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix product with a transposed right operand: `self * otherᵀ`.
    ///
    /// Every output entry is a dot product of two *rows*, so both operands are
    /// read contiguously and no transposed copy of `other` is ever formed.
    /// This is the natural kernel for the `(Y Q̂) Q̂ᵀ` projections in PCA-DR /
    /// spectral filtering and the `Y (A Σ_r⁻¹)ᵀ` map in BE-DR.
    pub fn matmul_transpose_b(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul_transpose_b",
                left: self.shape(),
                right: (other.cols, other.rows),
            });
        }
        let (m, k) = (self.rows, self.cols);
        let n = other.rows;
        let mut out = Matrix::zeros(m, n);
        let a = self.as_slice();
        let b = other.as_slice();
        let pieces = randrecon_parallel::max_threads();
        let parallel = m * n * k >= kernels::PARALLEL_MIN_FLOPS && pieces > 1;
        let row_work = |i0: usize, rows_out: &mut [f64]| {
            for (di, out_row) in rows_out.chunks_exact_mut(n).enumerate() {
                let a_row = &a[(i0 + di) * k..(i0 + di + 1) * k];
                for (j, o) in out_row.iter_mut().enumerate() {
                    *o = kernels::dot(a_row, &b[j * k..(j + 1) * k]);
                }
            }
        };
        if parallel {
            randrecon_parallel::parallel_row_chunks_mut(out.as_mut_slice(), n, 8, pieces, row_work);
        } else {
            row_work(0, out.as_mut_slice());
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec",
                left: self.shape(),
                right: (v.len(), 1),
            });
        }
        Ok(self
            .row_iter()
            .map(|row| row.iter().zip(v.iter()).map(|(&a, &b)| a * b).sum())
            .collect())
    }

    /// Vector-matrix product `vᵀ * self`, returned as a plain vector.
    pub fn vecmat(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.rows != v.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "vecmat",
                left: (1, v.len()),
                right: self.shape(),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(i).iter()) {
                *o += vi * a;
            }
        }
        Ok(out)
    }

    /// Sum of diagonal entries.
    ///
    /// For a covariance matrix this is the total variance, which the paper's
    /// experiments keep constant across workloads so the UDR baseline is flat.
    pub fn trace(&self) -> f64 {
        self.diagonal().iter().sum()
    }

    /// Frobenius norm √(Σ aᵢⱼ²).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, &v| acc.max(v.abs()))
    }

    /// Sum over all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of each column, returned as a vector of length `cols`.
    pub fn column_means(&self) -> Vec<f64> {
        if self.rows == 0 {
            return vec![0.0; self.cols];
        }
        let mut means = vec![0.0; self.cols];
        for row in self.row_iter() {
            for (m, &v) in means.iter_mut().zip(row.iter()) {
                *m += v;
            }
        }
        let n = self.rows as f64;
        for m in &mut means {
            *m /= n;
        }
        means
    }

    /// Subtracts the column mean from every entry, returning the centered
    /// matrix and the mean vector.
    ///
    /// PCA (Section 5.1.1 of the paper) requires 0-mean data; this is the
    /// adjustment step the paper describes.
    pub fn center_columns(&self) -> (Matrix, Vec<f64>) {
        let means = self.column_means();
        let mut out = self.clone();
        for row in out.data.chunks_exact_mut(self.cols) {
            for (v, &m) in row.iter_mut().zip(means.iter()) {
                *v -= m;
            }
        }
        (out, means)
    }

    // ------------------------------------------------------------------
    // Predicates / comparisons
    // ------------------------------------------------------------------

    /// True if every pairwise difference with `other` is at most `tol` in
    /// absolute value (and the shapes match).
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// Maximum asymmetry `max |a_ij - a_ji|` (0 for a perfectly symmetric matrix).
    pub fn max_asymmetry(&self) -> f64 {
        if !self.is_square() {
            return f64::INFINITY;
        }
        let mut worst = 0.0_f64;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self.get(i, j) - self.get(j, i)).abs());
            }
        }
        worst
    }

    /// True if the matrix is square and symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        self.is_square() && self.max_asymmetry() <= tol
    }

    /// Returns `(A + Aᵀ) / 2`, the nearest symmetric matrix in Frobenius norm.
    ///
    /// Sample covariance matrices computed in floating point can pick up tiny
    /// asymmetries; decompositions that require exact symmetry call this first.
    pub fn symmetrize(&self) -> Result<Matrix> {
        let mut out = self.clone();
        out.symmetrize_in_place()?;
        Ok(out)
    }

    /// Replaces the matrix with `(A + Aᵀ) / 2` in place, touching only the
    /// off-diagonal pairs — no transpose or sum matrix is allocated.
    pub fn symmetrize_in_place(&mut self) -> Result<()> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                shape: self.shape(),
            });
        }
        let n = self.rows;
        for i in 0..n {
            for j in (i + 1)..n {
                let avg = 0.5 * (self.data[i * n + j] + self.data[j * n + i]);
                self.data[i * n + j] = avg;
                self.data[j * n + i] = avg;
            }
        }
        Ok(())
    }

    /// True if any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        Matrix::add(self, rhs).expect("matrix addition shape mismatch")
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        Matrix::sub(self, rhs).expect("matrix subtraction shape mismatch")
    }
}

impl Mul for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: &Matrix) -> Matrix {
        Matrix::matmul(self, rhs).expect("matrix multiplication shape mismatch")
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f64) -> Matrix {
        self.scale(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        self.add_assign_matrix(rhs)
            .expect("matrix += shape mismatch")
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        self.sub_assign_matrix(rhs)
            .expect("matrix -= shape mismatch")
    }
}

impl MulAssign<f64> for Matrix {
    fn mul_assign(&mut self, rhs: f64) {
        self.scale_in_place(rhs)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        let max_rows = 8usize;
        for (i, row) in self.row_iter().enumerate() {
            if i >= max_rows {
                writeln!(f, "  ... ({} more rows)", self.rows - max_rows)?;
                break;
            }
            write!(f, "  [")?;
            for (j, v) in row.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v:>10.4}")?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0][..], &[4.0, 5.0, 6.0][..]]).unwrap()
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(1, 2), 0.0);
        assert_eq!(i.trace(), 3.0);
    }

    #[test]
    fn from_flat_checks_length() {
        assert!(Matrix::from_flat(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        let m = Matrix::from_flat(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0][..]]);
        assert!(err.is_err());
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn from_columns_roundtrip() {
        let m = Matrix::from_columns(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.column(0), vec![1.0, 2.0]);
        assert!(Matrix::from_columns(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn from_fn_builds_expected_entries() {
        let m = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(m.get(2, 1), 7.0);
    }

    #[test]
    fn from_diag_is_diagonal() {
        let d = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.get(1, 1), 2.0);
        assert_eq!(d.get(0, 1), 0.0);
        assert_eq!(d.diagonal(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn rows_columns_access() {
        let m = sample();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.column(2), vec![3.0, 6.0]);
        let mut m2 = m.clone();
        m2.set_column(0, &[7.0, 8.0]);
        assert_eq!(m2.get(1, 0), 8.0);
        m2.set_row(0, &[0.0, 0.0, 0.0]);
        assert_eq!(m2.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn add_sub_scale() {
        let m = sample();
        let s = m.add(&m).unwrap();
        assert_eq!(s.get(1, 2), 12.0);
        let d = s.sub(&m).unwrap();
        assert!(d.approx_eq(&m, 1e-12));
        let sc = m.scale(0.5);
        assert_eq!(sc.get(0, 1), 1.0);
        assert!(m.add(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn operator_overloads() {
        let m = sample();
        let sum = &m + &m;
        assert_eq!(sum.get(0, 0), 2.0);
        let diff = &sum - &m;
        assert!(diff.approx_eq(&m, 1e-12));
        let scaled = &m * 2.0;
        assert_eq!(scaled.get(1, 0), 8.0);
        let neg = -&m;
        assert_eq!(neg.get(0, 0), -1.0);
    }

    #[test]
    fn matmul_against_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0][..], &[7.0, 8.0][..]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.get(0, 0), 19.0);
        assert_eq!(c.get(0, 1), 22.0);
        assert_eq!(c.get(1, 0), 43.0);
        assert_eq!(c.get(1, 1), 50.0);
        let via_op = &a * &b;
        assert_eq!(via_op, c);
        assert!(a.matmul(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let m = sample();
        let i3 = Matrix::identity(3);
        let i2 = Matrix::identity(2);
        assert!(m.matmul(&i3).unwrap().approx_eq(&m, 1e-12));
        assert!(i2.matmul(&m).unwrap().approx_eq(&m, 1e-12));
    }

    #[test]
    fn matvec_and_vecmat() {
        let m = sample();
        let mv = m.matvec(&[1.0, 0.0, -1.0]).unwrap();
        assert_eq!(mv, vec![-2.0, -2.0]);
        let vm = m.vecmat(&[1.0, 1.0]).unwrap();
        assert_eq!(vm, vec![5.0, 7.0, 9.0]);
        assert!(m.matvec(&[1.0]).is_err());
        assert!(m.vecmat(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn hadamard_product() {
        let m = sample();
        let h = m.hadamard(&m).unwrap();
        assert_eq!(h.get(1, 2), 36.0);
    }

    #[test]
    fn trace_norms_sums() {
        let m = Matrix::from_rows(&[&[3.0, 0.0][..], &[0.0, 4.0][..]]).unwrap();
        assert_eq!(m.trace(), 7.0);
        assert_eq!(m.frobenius_norm(), 5.0);
        assert_eq!(m.max_abs(), 4.0);
        assert_eq!(m.sum(), 7.0);
    }

    #[test]
    fn column_means_and_centering() {
        let m = Matrix::from_rows(&[&[1.0, 10.0][..], &[3.0, 20.0][..]]).unwrap();
        assert_eq!(m.column_means(), vec![2.0, 15.0]);
        let (centered, means) = m.center_columns();
        assert_eq!(means, vec![2.0, 15.0]);
        assert_eq!(centered.column_means(), vec![0.0, 0.0]);
        assert_eq!(centered.get(0, 0), -1.0);
    }

    #[test]
    fn select_and_leading_columns() {
        let m = sample();
        let s = m.select_columns(&[2, 0]).unwrap();
        assert_eq!(s.column(0), vec![3.0, 6.0]);
        assert_eq!(s.column(1), vec![1.0, 4.0]);
        let lead = m.leading_columns(2).unwrap();
        assert_eq!(lead.shape(), (2, 2));
        assert!(m.select_columns(&[5]).is_err());
    }

    #[test]
    fn submatrix_and_stacking() {
        let m = sample();
        let sub = m.submatrix(0, 2, 1, 3).unwrap();
        assert_eq!(sub.shape(), (2, 2));
        assert_eq!(sub.get(1, 1), 6.0);
        assert!(m.submatrix(0, 3, 0, 1).is_err());

        let v = m.vstack(&m).unwrap();
        assert_eq!(v.shape(), (4, 3));
        assert_eq!(v.get(3, 2), 6.0);
        let h = m.hstack(&m).unwrap();
        assert_eq!(h.shape(), (2, 6));
        assert_eq!(h.get(0, 3), 1.0);
        assert!(m.vstack(&Matrix::zeros(1, 2)).is_err());
        assert!(m.hstack(&Matrix::zeros(3, 1)).is_err());
    }

    #[test]
    fn symmetry_checks() {
        let s = Matrix::from_rows(&[&[2.0, 1.0][..], &[1.0, 3.0][..]]).unwrap();
        assert!(s.is_symmetric(0.0));
        let a = Matrix::from_rows(&[&[2.0, 1.0][..], &[1.5, 3.0][..]]).unwrap();
        assert!(!a.is_symmetric(1e-9));
        assert!((a.max_asymmetry() - 0.5).abs() < 1e-12);
        let sym = a.symmetrize().unwrap();
        assert!(sym.is_symmetric(1e-12));
        assert!((sym.get(0, 1) - 1.25).abs() < 1e-12);
        assert!(sample().symmetrize().is_err());
    }

    #[test]
    fn swap_rows_works() {
        let mut m = sample();
        m.swap_rows(0, 1);
        assert_eq!(m.row(0), &[4.0, 5.0, 6.0]);
        m.swap_rows(1, 1);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn indexing_operators() {
        let mut m = sample();
        assert_eq!(m[(0, 1)], 2.0);
        m[(0, 1)] = 9.0;
        assert_eq!(m.get(0, 1), 9.0);
    }

    #[test]
    fn map_and_non_finite_detection() {
        let m = sample();
        let sq = m.map(|v| v * v);
        assert_eq!(sq.get(1, 2), 36.0);
        assert!(!m.has_non_finite());
        let bad = m.map(|v| if v == 1.0 { f64::NAN } else { v });
        assert!(bad.has_non_finite());
    }

    #[test]
    fn display_is_reasonable() {
        let m = sample();
        let s = format!("{m}");
        assert!(s.contains("Matrix 2x3"));
        let big = Matrix::zeros(20, 2);
        let s = format!("{big}");
        assert!(s.contains("more rows"));
    }

    #[test]
    fn in_place_ops() {
        let m = sample();
        let mut a = m.clone();
        a += &m;
        assert_eq!(a.get(1, 2), 12.0);
        a -= &m;
        assert!(a.approx_eq(&m, 0.0));
        a *= 3.0;
        assert_eq!(a.get(0, 0), 3.0);
        assert!(a.add_assign_matrix(&Matrix::zeros(1, 1)).is_err());
        assert!(a.sub_assign_matrix(&Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn row_broadcast() {
        let mut m = sample();
        m.add_row_broadcast(&[10.0, 20.0, 30.0]).unwrap();
        assert_eq!(m.row(0), &[11.0, 22.0, 33.0]);
        assert_eq!(m.row(1), &[14.0, 25.0, 36.0]);
        assert!(m.add_row_broadcast(&[1.0]).is_err());
    }

    #[test]
    fn symmetrize_in_place_matches_allocating_version() {
        let a = Matrix::from_rows(&[&[2.0, 1.0][..], &[1.5, 3.0][..]]).unwrap();
        let mut b = a.clone();
        b.symmetrize_in_place().unwrap();
        assert!(b.approx_eq(&a.symmetrize().unwrap(), 0.0));
        let mut rect = Matrix::zeros(2, 3);
        assert!(rect.symmetrize_in_place().is_err());
    }

    #[test]
    fn blocked_matmul_matches_naive_at_scale() {
        // Big enough to cross the blocked-kernel threshold, with non-multiple
        // dimensions to exercise panel remainders.
        let a = Matrix::from_fn(37, 130, |i, j| ((i * 13 + j * 7) % 23) as f64 - 11.0);
        let b = Matrix::from_fn(130, 301, |i, j| ((i * 5 + j * 11) % 19) as f64 - 9.0);
        let blocked = a.matmul(&b).unwrap();
        let naive = a.matmul_naive(&b).unwrap();
        assert!(
            blocked.approx_eq(&naive, 0.0),
            "blocked kernel must be exact"
        );
    }

    #[test]
    fn matmul_transpose_b_matches_explicit_transpose() {
        let a = Matrix::from_fn(9, 14, |i, j| (i as f64) - 0.5 * j as f64);
        let b = Matrix::from_fn(6, 14, |i, j| 0.25 * (i as f64) * (j as f64) - 1.0);
        let fused = a.matmul_transpose_b(&b).unwrap();
        let explicit = a.matmul_naive(&b.transpose()).unwrap();
        assert!(fused.approx_eq(&explicit, 1e-12));
        assert!(a.matmul_transpose_b(&Matrix::zeros(3, 5)).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let m = sample();
        let json = serde_json_like(&m);
        assert!(json.contains("rows"));
    }

    // We avoid a serde_json dependency; this just exercises the Serialize impl
    // via the `serde` test-friendly `serde::Serialize` trait using a tiny
    // hand-rolled writer in the data crate. Here we only check it derives.
    fn serde_json_like(m: &Matrix) -> String {
        format!(
            "rows={} cols={} len={}",
            m.rows(),
            m.cols(),
            m.as_slice().len()
        )
    }
}
