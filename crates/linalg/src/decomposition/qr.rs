//! Householder QR decomposition.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// QR factorization `A = Q R` with `Q` orthogonal (`m × m`) and `R` upper
/// trapezoidal (`m × n`), computed with Householder reflections.
///
/// In this workspace QR serves two purposes: it is an alternative (more
/// numerically robust) way to orthonormalize the random bases the synthetic
/// workload generator needs, and it powers orthogonality checks in tests.
#[derive(Debug, Clone)]
pub struct Qr {
    q: Matrix,
    r: Matrix,
}

impl Qr {
    /// Factorizes `a` (requires `rows >= cols`).
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::Empty { op: "qr" });
        }
        if m < n {
            return Err(LinalgError::InvalidData {
                reason: format!("QR requires rows >= cols, got {m}x{n}"),
            });
        }
        let mut r = a.clone();
        let mut q = Matrix::identity(m);

        for k in 0..n.min(m - 1) {
            // Build the Householder vector for column k.
            let mut v: Vec<f64> = (k..m).map(|i| r.get(i, k)).collect();
            let alpha = -v[0].signum() * crate::vector::norm(&v);
            if alpha.abs() < 1e-300 {
                continue;
            }
            v[0] -= alpha;
            let vnorm = crate::vector::norm(&v);
            if vnorm < 1e-300 {
                continue;
            }
            for x in &mut v {
                *x /= vnorm;
            }
            // Apply H = I - 2 v vᵀ to R (rows k..m).
            for j in k..n {
                let mut dot = 0.0;
                for (idx, &vi) in v.iter().enumerate() {
                    dot += vi * r.get(k + idx, j);
                }
                for (idx, &vi) in v.iter().enumerate() {
                    let val = r.get(k + idx, j) - 2.0 * vi * dot;
                    r.set(k + idx, j, val);
                }
            }
            // Accumulate Q = Q * H (apply H to the right of Q, i.e. to Q's columns k..m).
            for i in 0..m {
                let mut dot = 0.0;
                for (idx, &vi) in v.iter().enumerate() {
                    dot += vi * q.get(i, k + idx);
                }
                for (idx, &vi) in v.iter().enumerate() {
                    let val = q.get(i, k + idx) - 2.0 * vi * dot;
                    q.set(i, k + idx, val);
                }
            }
        }
        // Clean tiny sub-diagonal noise in R.
        for i in 0..m {
            for j in 0..n.min(i) {
                if r.get(i, j).abs() < 1e-12 {
                    r.set(i, j, 0.0);
                }
            }
        }
        Ok(Qr { q, r })
    }

    /// The orthogonal factor `Q` (`m × m`).
    pub fn q(&self) -> &Matrix {
        &self.q
    }

    /// The upper-trapezoidal factor `R` (`m × n`).
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// The "thin" Q: first `n` columns of `Q`, an orthonormal basis of the
    /// column space of the input.
    pub fn thin_q(&self) -> Result<Matrix> {
        self.q.leading_columns(self.r.cols())
    }
}

/// Measures how far `q` is from having orthonormal columns:
/// `‖QᵀQ − I‖_∞` over entries.
pub fn orthonormality_defect(q: &Matrix) -> f64 {
    let gram = q.transpose().matmul(q).expect("shape is always compatible");
    let mut worst = 0.0_f64;
    for i in 0..gram.rows() {
        for j in 0..gram.cols() {
            let target = if i == j { 1.0 } else { 0.0 };
            worst = worst.max((gram.get(i, j) - target).abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[
            &[12.0, -51.0, 4.0][..],
            &[6.0, 167.0, -68.0][..],
            &[-4.0, 24.0, -41.0][..],
        ])
        .unwrap()
    }

    #[test]
    fn qr_recomposes() {
        let a = sample();
        let qr = Qr::new(&a).unwrap();
        let rebuilt = qr.q().matmul(qr.r()).unwrap();
        assert!(rebuilt.approx_eq(&a, 1e-9));
    }

    #[test]
    fn q_is_orthogonal() {
        let qr = Qr::new(&sample()).unwrap();
        assert!(orthonormality_defect(qr.q()) < 1e-10);
    }

    #[test]
    fn r_is_upper_triangular() {
        let qr = Qr::new(&sample()).unwrap();
        let r = qr.r();
        for i in 0..r.rows() {
            for j in 0..i.min(r.cols()) {
                assert!(r.get(i, j).abs() < 1e-9, "R[{i}][{j}] = {}", r.get(i, j));
            }
        }
    }

    #[test]
    fn tall_matrix_thin_q() {
        let a = Matrix::from_rows(&[
            &[1.0, 0.0][..],
            &[1.0, 1.0][..],
            &[0.0, 1.0][..],
            &[2.0, -1.0][..],
        ])
        .unwrap();
        let qr = Qr::new(&a).unwrap();
        let thin = qr.thin_q().unwrap();
        assert_eq!(thin.shape(), (4, 2));
        assert!(orthonormality_defect(&thin) < 1e-10);
        let rebuilt = qr.q().matmul(qr.r()).unwrap();
        assert!(rebuilt.approx_eq(&a, 1e-10));
    }

    #[test]
    fn rejects_wide_or_empty() {
        assert!(Qr::new(&Matrix::zeros(2, 3)).is_err());
        assert!(Qr::new(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn identity_recomposes_exactly() {
        // Householder reflections may flip signs (R = -I paired with Q = -I),
        // so check the recomposition and diagonality rather than R == I.
        let i = Matrix::identity(4);
        let qr = Qr::new(&i).unwrap();
        assert!(qr.q().matmul(qr.r()).unwrap().approx_eq(&i, 1e-12));
        assert!(orthonormality_defect(qr.q()) < 1e-12);
        for k in 0..4 {
            assert!((qr.r().get(k, k).abs() - 1.0).abs() < 1e-12);
        }
    }
}
