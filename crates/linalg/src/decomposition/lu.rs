//! LU decomposition with partial pivoting.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// LU factorization `P A = L U` with partial (row) pivoting.
///
/// The Bayes-estimate reconstruction needs general inverses of matrices that
/// are symmetric but not guaranteed numerically positive definite once sample
/// noise is subtracted from the diagonal (Theorem 5.1 can push small
/// eigenvalues slightly negative); LU with pivoting handles those cases.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (below diagonal, unit diagonal implied) and U (upper) factors.
    lu: Matrix,
    /// Row permutation: row `i` of the factored matrix is row `perm[i]` of the input.
    perm: Vec<usize>,
    /// Number of row swaps (for the determinant sign).
    swaps: usize,
}

const SINGULARITY_TOL: f64 = 1e-12;

impl Lu {
    /// Factorizes the square matrix `a`.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut swaps = 0usize;
        let scale = a.max_abs().max(1.0);

        for k in 0..n {
            // Find pivot.
            let mut pivot_row = k;
            let mut pivot_val = lu.get(k, k).abs();
            for i in (k + 1)..n {
                let v = lu.get(i, k).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val <= SINGULARITY_TOL * scale {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                lu.swap_rows(pivot_row, k);
                perm.swap(pivot_row, k);
                swaps += 1;
            }
            let pivot = lu.get(k, k);
            for i in (k + 1)..n {
                let factor = lu.get(i, k) / pivot;
                lu.set(i, k, factor);
                for j in (k + 1)..n {
                    let v = lu.get(i, j) - factor * lu.get(k, j);
                    lu.set(i, j, v);
                }
            }
        }
        Ok(Lu { lu, perm, swaps })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let sign = if self.swaps.is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        sign * (0..self.dim()).map(|i| self.lu.get(i, i)).product::<f64>()
    }

    /// Solves `A x = b`.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Apply permutation, then forward substitution with unit-lower L.
        let mut y: Vec<f64> = (0..n).map(|i| b[self.perm[i]]).collect();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.lu.get(i, k) * y[k];
            }
        }
        // Back substitution with U.
        let mut x = y;
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                x[i] -= self.lu.get(i, k) * x[k];
            }
            x[i] /= self.lu.get(i, i);
        }
        Ok(x)
    }

    /// Solves `A X = B` column by column.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu solve",
                left: (n, n),
                right: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let x = self.solve_vec(&b.column(j))?;
            out.set_column(j, &x);
        }
        Ok(out)
    }

    /// Computes `A⁻¹`.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve(&Matrix::identity(self.dim()))
    }
}

/// Convenience wrapper: invert a square matrix via LU with partial pivoting.
pub fn invert(a: &Matrix) -> Result<Matrix> {
    Lu::new(a)?.inverse()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[
            &[2.0, 1.0, 1.0][..],
            &[4.0, -6.0, 0.0][..],
            &[-2.0, 7.0, 2.0][..],
        ])
        .unwrap()
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = sample();
        let x_true = vec![1.0, -2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve_vec(&b).unwrap();
        for (got, want) in x.iter().zip(x_true.iter()) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let a = sample();
        let inv = Lu::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn determinant_matches_cofactor_expansion() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]).unwrap();
        let lu = Lu::new(&a).unwrap();
        assert!((lu.determinant() - (-2.0)).abs() < 1e-12);

        let d = Matrix::from_diag(&[2.0, 3.0, 5.0]);
        assert!((Lu::new(&d).unwrap().determinant() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_with_pivoting() {
        // This matrix forces a row swap on the first pivot.
        let a = Matrix::from_rows(&[&[0.0, 1.0][..], &[1.0, 0.0][..]]).unwrap();
        let lu = Lu::new(&a).unwrap();
        assert!((lu.determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_singular_and_rectangular() {
        let singular = Matrix::from_rows(&[&[1.0, 2.0][..], &[2.0, 4.0][..]]).unwrap();
        assert!(matches!(
            Lu::new(&singular),
            Err(LinalgError::Singular { .. })
        ));
        assert!(matches!(
            Lu::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn solve_rejects_bad_shapes() {
        let lu = Lu::new(&sample()).unwrap();
        assert!(lu.solve_vec(&[1.0]).is_err());
        assert!(lu.solve(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn matrix_solve_multiple_rhs() {
        let a = sample();
        let lu = Lu::new(&a).unwrap();
        let b = Matrix::identity(3);
        let x = lu.solve(&b).unwrap();
        assert!(a.matmul(&x).unwrap().approx_eq(&b, 1e-10));
    }

    #[test]
    fn invert_helper() {
        let a = sample();
        let inv = invert(&a).unwrap();
        assert!(a
            .matmul(&inv)
            .unwrap()
            .approx_eq(&Matrix::identity(3), 1e-10));
    }
}
