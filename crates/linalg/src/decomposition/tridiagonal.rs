//! Householder tridiagonalization and implicit-shift QL iteration.
//!
//! The classic one-shot dense symmetric eigensolver pipeline (EISPACK's
//! `tred2`/`tql2`, Golub & Van Loan §8.3): reduce `A` to tridiagonal form
//! `T = Qᵀ A Q` with `n − 2` Householder reflections, then chase the
//! off-diagonal entries of `T` to zero with implicitly shifted QL rotations
//! (Wilkinson shifts and deflation), accumulating every transform so the
//! eigenvectors fall out of the same pass. Total cost is `O(n³)` with a small
//! constant, versus `O(n³ · sweeps)` for cyclic Jacobi — the difference that
//! makes m = 256–512 covariance audits tractable.
//!
//! Layout choices mirror the rest of the crate's kernels:
//!
//! * the working copy keeps **full symmetric storage**, so the rank-2
//!   trailing-block update touches whole contiguous row segments (and stays
//!   exactly symmetric: both mirrored entries subtract the same two products);
//! * the orthogonal accumulation builds `Qᵀ` directly (rows are the columns
//!   of `Q`) by **right-multiplying** the reflectors in reverse order, which
//!   makes every row update independent — the back-transform parallelizes
//!   row-wise over the shared `randrecon-parallel` pool, as does the
//!   trailing-block update of the reduction itself;
//! * QL rotations act on two **adjacent rows** of `Qᵀ`, i.e. two contiguous
//!   cache lines, never on strided column pairs — and reach `Qᵀ` in
//!   **wave-front batches** ([`MAX_WAVE`] consecutive chase rotations over
//!   the band of rows they touch, one column panel at a time), so each band
//!   streams through memory once per wave instead of once per rotation
//!   while reproducing the one-rotation-at-a-time result bit for bit.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use randrecon_parallel::{max_threads, parallel_chunks_mut, parallel_row_chunks_mut};

/// Per-step multiply-add count above which the trailing-block update and the
/// eigenvector back-accumulation fan out across the shared pool. This is far
/// below `randrecon_parallel::PARALLEL_MIN_FLOPS` because a step is
/// re-dispatched `n` times per decomposition, so each dispatch must amortize
/// only its own fork/join, not a whole kernel launch.
const PAR_MIN_FLOPS: usize = 1 << 18;

/// Minimum rows handed to one worker, so a chunk always carries enough work
/// to cover the claim-and-dispatch overhead.
const PAR_MIN_ROWS: usize = 16;

/// Maximum implicit-shift QL iterations per eigenvalue before reporting
/// non-convergence. Symmetric tridiagonal QL converges cubically; real inputs
/// need 2–3 iterations per eigenvalue, so 50 only trips on NaN-poisoned data.
const MAX_QL_ITERS: usize = 50;

/// Rotations buffered per wave before they are applied to `Qᵀ`. A bulge
/// chase emits one rotation per step at consecutive descending indices, so a
/// wave of `K` rotations touches a band of `K + 1` adjacent rows — applying
/// them panel-by-panel loads that band once instead of streaming two full
/// rows per rotation, cutting `Qᵀ` memory traffic by ~`K/2`× on wide
/// (m ≥ 512) spectra.
const MAX_WAVE: usize = 32;

/// Column-panel width for the wave-front application. One panel's working
/// set is `(MAX_WAVE + 1) · WAVE_PANEL_COLS` doubles ≈ 33 KB — L2-resident
/// on any current core, so every rotation in the wave hits cache.
const WAVE_PANEL_COLS: usize = 128;

/// A symmetric matrix reduced to tridiagonal form `A = Q T Qᵀ`.
#[derive(Debug, Clone)]
pub struct Tridiagonal {
    /// Diagonal of `T` (length `n`).
    pub diagonal: Vec<f64>,
    /// Subdiagonal of `T` (length `n − 1`; empty for `n = 1`).
    pub subdiagonal: Vec<f64>,
    /// `Qᵀ`: the columns of the orthogonal factor stored as **rows**, so the
    /// QL rotations that follow touch contiguous memory.
    pub q_transposed: Matrix,
}

/// Reduces a symmetric matrix to tridiagonal form with Householder
/// reflections, accumulating the orthogonal transform.
///
/// The input must be square, non-empty, and symmetric to the same scaled
/// tolerance the Jacobi reference path enforces; sub-tolerance floating-point
/// asymmetries are averaged away before the reduction.
pub fn householder_tridiagonalize(a: &Matrix) -> Result<Tridiagonal> {
    let (diagonal, subdiagonal, reflectors) = reduce_to_tridiagonal(a, true)?;
    let q_transposed = accumulate_q_transposed(diagonal.len(), &reflectors);
    Ok(Tridiagonal {
        diagonal,
        subdiagonal,
        q_transposed,
    })
}

/// The Householder reduction itself, shared by the full decomposition and the
/// eigenvalues-only path: returns `(diagonal, subdiagonal, reflectors)` where
/// each reflector is `(v, β)` with `v[0] = 1` and `H = I − β v vᵀ` acting on
/// the trailing block that starts at row/column `k + 1`. With
/// `store_reflectors = false` the reflector list stays empty (each `v` is
/// dropped after its trailing update), so the eigenvalues-only path skips the
/// ~n²/2 doubles of reflector storage as well as the accumulation flops.
#[allow(clippy::type_complexity)]
fn reduce_to_tridiagonal(
    a: &Matrix,
    store_reflectors: bool,
) -> Result<(Vec<f64>, Vec<f64>, Vec<(Vec<f64>, f64)>)> {
    // Same gate as the Jacobi path (one shared implementation): genuinely
    // asymmetric input — a transposition bug upstream — is rejected, and the
    // symmetrize below only smooths sub-tolerance fp asymmetries.
    super::eigen::validate(a)?;
    let n = a.rows();
    let mut work = a.symmetrize()?;
    let mut subdiagonal = vec![0.0; n.saturating_sub(1)];
    let mut reflectors: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n.saturating_sub(2));

    for (k, sub) in subdiagonal.iter_mut().enumerate().take(n.saturating_sub(2)) {
        // The column below the diagonal equals the row right of it (symmetric
        // storage), and the row segment is contiguous.
        let x = work.row(k)[k + 1..].to_vec();
        let (v, beta, alpha) = householder_vector(&x);
        *sub = alpha;
        if beta != 0.0 {
            rank2_trailing_update(&mut work, k, &v, beta);
        }
        if store_reflectors {
            reflectors.push((v, beta));
        }
    }
    if n >= 2 {
        subdiagonal[n - 2] = work.get(n - 2, n - 1);
    }
    let diagonal: Vec<f64> = (0..n).map(|i| work.get(i, i)).collect();
    Ok((diagonal, subdiagonal, reflectors))
}

/// Householder vector for `x`: returns `(v, β, α)` with `v[0] = 1` such that
/// `(I − β v vᵀ) x = α e₁` and `α = ‖x‖₂`.
///
/// Uses the cancellation-free form of Golub & Van Loan Alg. 5.1.1: when
/// `x₀ > 0` the pivot `x₀ − ‖x‖` is computed as `−σ / (x₀ + ‖x‖)`.
fn householder_vector(x: &[f64]) -> (Vec<f64>, f64, f64) {
    let sigma: f64 = x[1..].iter().map(|&t| t * t).sum();
    let mut v = x.to_vec();
    v[0] = 1.0;
    if sigma == 0.0 {
        // Already a multiple of e₁: no reflection needed.
        return (v, 0.0, x[0]);
    }
    let mu = (x[0] * x[0] + sigma).sqrt();
    let v0 = if x[0] <= 0.0 {
        x[0] - mu
    } else {
        -sigma / (x[0] + mu)
    };
    let beta = 2.0 * v0 * v0 / (sigma + v0 * v0);
    for t in v.iter_mut().skip(1) {
        *t /= v0;
    }
    (v, beta, mu)
}

/// Applies the symmetric similarity update of one Householder step to the
/// trailing block `B = work[k+1.., k+1..]`:
///
/// ```text
/// p = β B v,   w = p − (β pᵀv / 2) v,   B ← B − v wᵀ − w vᵀ
/// ```
///
/// Both the matvec and the rank-2 update run row-wise over the shared pool
/// when the block is large enough.
fn rank2_trailing_update(work: &mut Matrix, k: usize, v: &[f64], beta: f64) {
    let n = work.rows();
    let base = k + 1;
    let r = n - base;
    debug_assert_eq!(v.len(), r);
    let parallel = 3 * r * r >= PAR_MIN_FLOPS && max_threads() > 1;

    // p = β B v (each entry is one contiguous row-segment dot product).
    let mut p = vec![0.0; r];
    {
        let work_ref: &Matrix = work;
        let fill = |start: usize, chunk: &mut [f64]| {
            for (t, pi) in chunk.iter_mut().enumerate() {
                let row = &work_ref.row(base + start + t)[base..];
                *pi = beta * dot_unchecked(row, v);
            }
        };
        if parallel {
            parallel_chunks_mut(&mut p, PAR_MIN_ROWS, max_threads(), fill);
        } else {
            fill(0, &mut p);
        }
    }

    let half = 0.5 * beta * dot_unchecked(&p, v);
    let w: Vec<f64> = p
        .iter()
        .zip(v.iter())
        .map(|(&pi, &vi)| pi - half * vi)
        .collect();

    // B ← B − v wᵀ − w vᵀ, one independent row at a time.
    let buf = &mut work.as_mut_slice()[base * n..];
    let update = |start_row: usize, chunk: &mut [f64]| {
        for (t, row) in chunk.chunks_exact_mut(n).enumerate() {
            let i = start_row + t;
            let (vi, wi) = (v[i], w[i]);
            for ((dst, &vj), &wj) in row[base..].iter_mut().zip(v.iter()).zip(w.iter()) {
                *dst -= vi * wj + wi * vj;
            }
        }
    };
    if parallel {
        parallel_row_chunks_mut(buf, n, PAR_MIN_ROWS, max_threads(), update);
    } else {
        update(0, buf);
    }
}

/// Accumulates `Qᵀ = H_{n−3} ⋯ H₁ H₀` by right-multiplying the reflectors in
/// reverse order onto an identity matrix.
///
/// Right multiplication makes every row update independent (`rowᵢ ← rowᵢ −
/// β (rowᵢ · v) vᵀ` on the trailing columns), so the back-transform
/// parallelizes row-wise; and because reflector `k` only touches rows and
/// columns `k+1..`, the non-identity block grows as `k` decreases and each
/// step costs `2(n−k−1)²` flops — `2n³/3` in total.
fn accumulate_q_transposed(n: usize, reflectors: &[(Vec<f64>, f64)]) -> Matrix {
    let mut qt = Matrix::identity(n);
    for (k, (v, beta)) in reflectors.iter().enumerate().rev() {
        if *beta == 0.0 {
            continue;
        }
        let base = k + 1;
        let r = n - base;
        let buf = &mut qt.as_mut_slice()[base * n..];
        let apply = |_start: usize, chunk: &mut [f64]| {
            for row in chunk.chunks_exact_mut(n) {
                let seg = &mut row[base..];
                let s = beta * dot_unchecked(seg, v);
                for (dst, &vj) in seg.iter_mut().zip(v.iter()) {
                    *dst -= s * vj;
                }
            }
        };
        if 2 * r * r >= PAR_MIN_FLOPS && max_threads() > 1 {
            parallel_row_chunks_mut(buf, n, PAR_MIN_ROWS, max_threads(), apply);
        } else {
            apply(0, buf);
        }
    }
    qt
}

/// Diagonalizes a symmetric tridiagonal matrix in place with implicitly
/// shifted QL iterations, applying every rotation to the rows of `qt`.
///
/// On return `diagonal` holds the (unsorted) eigenvalues and the rows of `qt`
/// the corresponding eigenvectors. `subdiagonal` must have length
/// `diagonal.len() − 1` (or be empty for a 1×1 input).
///
/// This is EISPACK `tql2`: per eigenvalue, find the deflation split, form the
/// Wilkinson shift from the leading 2×2 block, and chase a bulge from the
/// bottom of the block to the top with Givens rotations. Each rotation
/// updates two adjacent, contiguous rows of `qt`; rotations reach `qt` in
/// wave-front batches (see [`apply_rotation_wave`]) that replay them in
/// chase order, so the accumulated eigenvectors are bit-identical to
/// immediate per-rotation application.
pub fn ql_implicit_shift(diagonal: &mut [f64], subdiagonal: &[f64], qt: &mut Matrix) -> Result<()> {
    debug_assert_eq!(qt.shape(), (diagonal.len(), diagonal.len()));
    ql_core(diagonal, subdiagonal, Some(qt))
}

/// Descending eigenvalues of a symmetric matrix **without** eigenvector
/// accumulation (EISPACK `tqlrat`'s role): skips both the `2n³/3`-flop
/// reflector accumulation and the per-rotation `Qᵀ` row updates, which
/// dominate the full decomposition's cost. This is the right entry point for
/// consumers that only need the spectrum — spectrum-distance metrics, trace
/// checks, bandwidth audits.
///
/// Validation matches [`householder_tridiagonalize`]: the input must be
/// square and non-empty and is symmetrized defensively.
pub fn symmetric_eigenvalues(a: &Matrix) -> Result<Vec<f64>> {
    let (mut values, subdiagonal, _reflectors) = reduce_to_tridiagonal(a, false)?;
    ql_core(&mut values, &subdiagonal, None)?;
    values.sort_by(|x, y| y.partial_cmp(x).unwrap_or(std::cmp::Ordering::Equal));
    Ok(values)
}

/// Shared QL driver; `qt` is `None` on the eigenvalues-only path.
fn ql_core(diagonal: &mut [f64], subdiagonal: &[f64], mut qt: Option<&mut Matrix>) -> Result<()> {
    let n = diagonal.len();
    if n <= 1 {
        return Ok(());
    }
    debug_assert_eq!(subdiagonal.len(), n - 1);
    // e[i] couples rows i and i+1; e[n−1] is a permanent zero sentinel.
    let mut e = vec![0.0; n];
    e[..n - 1].copy_from_slice(subdiagonal);

    // Deflation scale: the largest |d| + |e| encountered so far (EISPACK
    // tql2's `tst1`). A coupling is negligible relative to the *matrix*
    // scale, not just its two neighbouring diagonal entries — graded spectra
    // (400s next to 4s) otherwise stall: rounding noise from the large block
    // floors the small block's couplings above any locally scaled tolerance.
    let mut tst1 = 0.0_f64;

    for l in 0..n {
        tst1 = tst1.max(diagonal[l].abs() + e[l].abs());
        let mut iter = 0;
        loop {
            // Deflation: find the first negligible coupling at or after l.
            let mut m = l;
            while m + 1 < n {
                if e[m].abs() <= f64::EPSILON * tst1 {
                    break;
                }
                m += 1;
            }
            if m == l {
                break; // d[l] is an eigenvalue.
            }
            iter += 1;
            if iter > MAX_QL_ITERS {
                return Err(LinalgError::EigenDidNotConverge {
                    sweeps: iter,
                    off_diagonal_norm: e[l].abs(),
                });
            }
            // Wilkinson shift from the 2×2 block at the low end.
            let mut g = (diagonal[l + 1] - diagonal[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = diagonal[m] - diagonal[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0_f64, 1.0_f64);
            let mut p = 0.0;
            let mut underflowed = false;
            // Rotations are buffered into a wave and applied to `Qᵀ` in
            // batches: the chase emits them at consecutive descending
            // indices, so `wave[k]` acts on rows `(wave_hi − k, wave_hi −
            // k + 1)`. The wave-front application replays them in exactly
            // the order the chase produced them, so `Qᵀ` is bit-identical
            // to rotating after every step.
            let mut wave: Vec<(f64, f64)> = Vec::with_capacity(MAX_WAVE);
            let mut wave_hi = 0usize;
            for i in (l..m).rev() {
                let f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // The bulge vanished mid-chase: deflate and restart
                    // (the rotations already emitted still apply — the
                    // wave is flushed below before the restart).
                    diagonal[i + 1] -= p;
                    e[m] = 0.0;
                    underflowed = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = diagonal[i + 1] - p;
                r = (diagonal[i] - g) * s + 2.0 * c * b;
                p = s * r;
                diagonal[i + 1] = g + p;
                g = c * r - b;
                if let Some(q) = qt.as_deref_mut() {
                    if wave.is_empty() {
                        wave_hi = i;
                    }
                    wave.push((c, s));
                    if wave.len() == MAX_WAVE {
                        apply_rotation_wave(q, wave_hi, &wave);
                        wave.clear();
                    }
                }
            }
            if let (Some(q), false) = (qt.as_deref_mut(), wave.is_empty()) {
                apply_rotation_wave(q, wave_hi, &wave);
            }
            if underflowed {
                continue;
            }
            diagonal[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

/// Applies a wave of bulge-chase Givens rotations to `qt`: `rotations[k] =
/// (c, s)` acts on the adjacent row pair `(hi − k, hi − k + 1)`, exactly as
/// the chase emitted them (descending indices, overlapping pairs).
///
/// The band of `len + 1` rows the wave touches is processed one
/// [`WAVE_PANEL_COLS`]-wide column panel at a time; within a panel every
/// rotation runs over cache-hot row segments, so the band streams through
/// memory once per wave instead of once per rotation. Column panels are
/// independent and each element sees the same rotations in the same order
/// as immediate application, so the result is **bit-identical** to rotating
/// row pairs one at a time (the pinned scalar reference kept in the tests).
fn apply_rotation_wave(qt: &mut Matrix, hi: usize, rotations: &[(f64, f64)]) {
    let n = qt.cols();
    let lo = hi + 1 - rotations.len();
    // The touched band: rows lo ..= hi + 1.
    let band = &mut qt.as_mut_slice()[lo * n..(hi + 2) * n];
    let mut c0 = 0;
    while c0 < n {
        let w = WAVE_PANEL_COLS.min(n - c0);
        for (k, &(c, s)) in rotations.iter().enumerate() {
            let i = hi - k - lo; // band-local index of the pair's upper row
            let (head, tail) = band.split_at_mut((i + 1) * n);
            let seg_i = &mut head[i * n + c0..i * n + c0 + w];
            let seg_i1 = &mut tail[c0..c0 + w];
            for (a, b) in seg_i.iter_mut().zip(seg_i1.iter_mut()) {
                let f = *b;
                *b = s * *a + c * f;
                *a = c * *a - s * f;
            }
        }
        c0 += w;
    }
}

/// Applies the Givens rotation `(c, s)` to rows `i` and `i + 1` of `qt` —
/// the scalar per-rotation kernel the wave-front application must reproduce
/// bit for bit; kept as the pinned reference for the tests.
#[cfg(test)]
fn rotate_adjacent_rows(qt: &mut Matrix, i: usize, c: f64, s: f64) {
    let n = qt.cols();
    let (head, tail) = qt.as_mut_slice().split_at_mut((i + 1) * n);
    let row_i = &mut head[i * n..];
    let row_i1 = &mut tail[..n];
    for (a, b) in row_i.iter_mut().zip(row_i1.iter_mut()) {
        let f = *b;
        *b = s * *a + c * f;
        *a = c * *a - s * f;
    }
}

/// Length-unchecked dot product for the hot inner loops (callers guarantee
/// equal lengths structurally).
#[inline]
fn dot_unchecked(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::qr::orthonormality_defect;

    fn deterministic_symmetric(n: usize) -> Matrix {
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a.set(i, j, ((i * 31 + j * 17) % 23) as f64 / 23.0 - 0.4);
            }
        }
        a.symmetrize().unwrap()
    }

    #[test]
    fn tridiagonalization_is_a_similarity_transform() {
        let a = deterministic_symmetric(12);
        let tri = householder_tridiagonalize(&a).unwrap();
        // Rebuild T explicitly and check A = Qᵀᵀ T Qᵀ = Q T Qᵀ.
        let n = a.rows();
        let mut t = Matrix::from_diag(&tri.diagonal);
        for i in 0..n - 1 {
            t.set(i, i + 1, tri.subdiagonal[i]);
            t.set(i + 1, i, tri.subdiagonal[i]);
        }
        let q = tri.q_transposed.transpose();
        let rebuilt = q.matmul(&t).unwrap().matmul(&tri.q_transposed).unwrap();
        assert!(rebuilt.approx_eq(&a, 1e-10));
        assert!(orthonormality_defect(&q) < 1e-12);
    }

    #[test]
    fn tridiagonalization_preserves_trace() {
        let a = deterministic_symmetric(20);
        let tri = householder_tridiagonalize(&a).unwrap();
        let trace_t: f64 = tri.diagonal.iter().sum();
        assert!((trace_t - a.trace()).abs() < 1e-9);
    }

    #[test]
    fn small_inputs_are_trivial() {
        let one = Matrix::from_diag(&[3.0]);
        let tri = householder_tridiagonalize(&one).unwrap();
        assert_eq!(tri.diagonal, vec![3.0]);
        assert!(tri.subdiagonal.is_empty());

        let two = Matrix::from_rows(&[&[1.0, 2.0][..], &[2.0, 5.0][..]]).unwrap();
        let tri = householder_tridiagonalize(&two).unwrap();
        assert_eq!(tri.diagonal, vec![1.0, 5.0]);
        assert_eq!(tri.subdiagonal, vec![2.0]);

        assert!(householder_tridiagonalize(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn eigenvalues_only_path_rejects_asymmetric_input() {
        // Same gate as every other eigensolver entry point: a transposition
        // bug upstream must surface, not get silently averaged away.
        let asym = Matrix::from_rows(&[&[1.0, 2.0][..], &[0.0, 1.0][..]]).unwrap();
        assert!(matches!(
            symmetric_eigenvalues(&asym),
            Err(LinalgError::NotSymmetric { .. })
        ));
    }

    #[test]
    fn eigenvalues_only_path_matches_full_decomposition() {
        let a = deterministic_symmetric(25);
        let fast = symmetric_eigenvalues(&a).unwrap();
        let full = crate::decomposition::SymmetricEigen::householder_ql(&a).unwrap();
        assert_eq!(fast.len(), full.eigenvalues.len());
        let scale = a.frobenius_norm().max(1.0);
        for (x, y) in fast.iter().zip(full.eigenvalues.iter()) {
            assert!((x - y).abs() <= 1e-12 * scale, "{x} vs {y}");
        }
    }

    /// The wave-front application must reproduce the pinned scalar
    /// per-rotation kernel **bit for bit** — for full waves, partial
    /// trailing waves, single-rotation waves, and matrix widths that do not
    /// divide the column-panel width.
    #[test]
    fn rotation_waves_match_the_scalar_kernel_bit_for_bit() {
        // Deterministic (c, s) pairs on the unit circle.
        let rotation = |t: usize| -> (f64, f64) {
            let angle = (t * 37 % 101) as f64 / 101.0 * std::f64::consts::TAU;
            (angle.cos(), angle.sin())
        };
        for (n, chase_len) in [(7usize, 5usize), (50, 49), (200, 130), (137, 70)] {
            let mut scalar = deterministic_symmetric(n);
            let mut waved = scalar.clone();
            // One synthetic bulge chase: rotations at descending indices
            // hi, hi−1, …, hi−chase_len+1, exactly as ql_core emits them.
            let hi = n - 2;
            let lo = hi + 1 - chase_len;
            for (t, i) in (lo..=hi).rev().enumerate() {
                let (c, s) = rotation(t);
                rotate_adjacent_rows(&mut scalar, i, c, s);
            }
            // Same rotations, batched the way ql_core batches them.
            let mut wave: Vec<(f64, f64)> = Vec::new();
            let mut wave_hi = 0usize;
            for (t, i) in (lo..=hi).rev().enumerate() {
                if wave.is_empty() {
                    wave_hi = i;
                }
                wave.push(rotation(t));
                if wave.len() == MAX_WAVE {
                    apply_rotation_wave(&mut waved, wave_hi, &wave);
                    wave.clear();
                }
            }
            if !wave.is_empty() {
                apply_rotation_wave(&mut waved, wave_hi, &wave);
            }
            let bits =
                |m: &Matrix| -> Vec<u64> { m.as_slice().iter().map(|x| x.to_bits()).collect() };
            assert_eq!(bits(&scalar), bits(&waved), "n={n}, chase_len={chase_len}");
        }
    }

    #[test]
    fn ql_diagonalizes_a_known_tridiagonal() {
        // T = tridiag(subdiag = 1, diag = 2) has eigenvalues
        // 2 + 2 cos(kπ/(n+1)), k = 1..n.
        let n = 10;
        let mut d = vec![2.0; n];
        let e = vec![1.0; n - 1];
        let mut qt = Matrix::identity(n);
        ql_implicit_shift(&mut d, &e, &mut qt).unwrap();
        let mut got = d.clone();
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (k, &val) in got.iter().enumerate() {
            let expect =
                2.0 + 2.0 * (std::f64::consts::PI * (n - k) as f64 / (n as f64 + 1.0)).cos();
            assert!((val - expect).abs() < 1e-10, "k={k}: {val} vs {expect}");
        }
        assert!(orthonormality_defect(&qt) < 1e-12);
    }
}
