//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! The factorization and both solvers operate on contiguous row slices of the
//! flat storage (prefix dot products / row `axpy` updates), so the inner
//! loops carry no per-element bounds checks and vectorize. Callers should
//! prefer [`Cholesky::solve`] / [`Cholesky::solve_matrix`] over
//! [`Cholesky::inverse`]: a solve against the actual right-hand side is both
//! faster and more accurate than materializing `A⁻¹` and multiplying.

use crate::error::{LinalgError, Result};
use crate::kernels;
use crate::matrix::Matrix;

/// Lower-triangular Cholesky factor `L` of an SPD matrix `A = L Lᵀ`.
///
/// Used for two things in this workspace:
/// 1. sampling from a multivariate normal with covariance `Σ` (draw `z ~ N(0, I)`
///    and return `μ + L z`), which is how the synthetic workloads of Section 7.1
///    and the correlated-noise defense of Section 8 are generated;
/// 2. solving / inverting the SPD systems that appear in the Bayes-estimate
///    reconstruction, e.g. `(Σ_x⁻¹ + σ⁻² I)⁻¹` in Equation (11).
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes `a`, which must be square, symmetric (within `1e-8` relative
    /// tolerance) and positive definite.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let tol = 1e-8 * a.max_abs().max(1.0);
        if !a.is_symmetric(tol) {
            return Err(LinalgError::NotSymmetric {
                max_asymmetry: a.max_asymmetry(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        let ld = l.as_mut_slice();
        let ad = a.as_slice();
        for j in 0..n {
            // Row-prefix dot products over contiguous storage: row i of L
            // holds L[i][..=i], so the Σ L[i][k]·L[j][k] terms are dots of
            // row prefixes.
            let prefix_j = &ld[j * n..j * n + j];
            let diag = ad[j * n + j] - kernels::dot(prefix_j, prefix_j);
            if diag <= 0.0 || !diag.is_finite() {
                return Err(LinalgError::NotPositiveDefinite {
                    pivot: j,
                    value: diag,
                });
            }
            let ljj = diag.sqrt();
            ld[j * n + j] = ljj;
            let inv_ljj = 1.0 / ljj;
            let (upper, lower) = ld.split_at_mut((j + 1) * n);
            let prefix_j = &upper[j * n..j * n + j];
            for (di, row_i) in lower.chunks_exact_mut(n).enumerate() {
                let i = j + 1 + di;
                let sum = ad[i * n + j] - kernels::dot(&row_i[..j], prefix_j);
                row_i[j] = sum * inv_ljj;
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A x = b` for a single right-hand side.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        let ld = self.l.as_slice();
        // Forward substitution: L y = b. The Σ L[i][k]·y[k] term is a dot of
        // L's row-i prefix with the solved prefix of y — both contiguous.
        let mut y = b.to_vec();
        for i in 0..n {
            let (solved, rest) = y.split_at_mut(i);
            rest[0] = (rest[0] - kernels::dot(&ld[i * n..i * n + i], solved)) / ld[i * n + i];
        }
        // Back substitution: Lᵀ x = y, computed with row-oriented updates so
        // L is still read along rows: once x[i] is known, subtract
        // x[i]·L[i][k] from every pending y[k] (k < i).
        let mut x = y;
        for i in (0..n).rev() {
            let (pending, known) = x.split_at_mut(i);
            known[0] /= ld[i * n + i];
            let xi = known[0];
            for (yk, &lik) in pending.iter_mut().zip(&ld[i * n..i * n + i]) {
                *yk -= xi * lik;
            }
        }
        Ok(x)
    }

    /// Solves `A X = B` for a matrix right-hand side.
    ///
    /// Alias for [`Cholesky::solve_matrix`], kept for source compatibility.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix> {
        self.solve_matrix(b)
    }

    /// Solves `A X = B` for all right-hand sides at once.
    ///
    /// Both substitution passes update whole rows of the solution with
    /// contiguous `axpy` operations (`row_i -= L[i][k] · row_k`), so the cost
    /// is one O(n²·rhs) sweep of vectorized row arithmetic instead of
    /// `rhs` independent strided column extractions.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve",
                left: (n, n),
                right: b.shape(),
            });
        }
        let rhs = b.cols();
        let ld = self.l.as_slice();
        let mut x = b.clone();
        let xd = x.as_mut_slice();
        // Forward substitution: L Y = B, row by row.
        for i in 0..n {
            let (solved, rest) = xd.split_at_mut(i * rhs);
            let row_i = &mut rest[..rhs];
            for (k, &lik) in ld[i * n..i * n + i].iter().enumerate() {
                kernels::axpy(row_i, -lik, &solved[k * rhs..k * rhs + rhs]);
            }
            let inv = 1.0 / ld[i * n + i];
            for v in row_i.iter_mut() {
                *v *= inv;
            }
        }
        // Back substitution: Lᵀ X = Y. Row i of X, once final, is subtracted
        // from every earlier row k with weight L[i][k] (reading L along rows).
        for i in (0..n).rev() {
            let (pending, rest) = xd.split_at_mut(i * rhs);
            let row_i = &mut rest[..rhs];
            let inv = 1.0 / ld[i * n + i];
            for v in row_i.iter_mut() {
                *v *= inv;
            }
            let row_i = &rest[..rhs];
            for (k, &lik) in ld[i * n..i * n + i].iter().enumerate() {
                kernels::axpy(&mut pending[k * rhs..k * rhs + rhs], -lik, row_i);
            }
        }
        Ok(x)
    }

    /// Computes `A⁻¹`.
    ///
    /// Prefer [`Cholesky::solve_matrix`] against the actual right-hand side:
    /// no reconstruction path in this workspace materializes an inverse.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Log-determinant of `A` (= 2 Σ log Lᵢᵢ), useful for multivariate-normal
    /// log densities.
    pub fn log_determinant(&self) -> f64 {
        (0..self.dim()).map(|i| self.l.get(i, i).ln()).sum::<f64>() * 2.0
    }

    /// Determinant of `A`.
    pub fn determinant(&self) -> f64 {
        self.log_determinant().exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = B Bᵀ + I for a fixed B, guaranteed SPD.
        Matrix::from_rows(&[
            &[4.0, 2.0, 0.6][..],
            &[2.0, 5.0, 1.0][..],
            &[0.6, 1.0, 3.0][..],
        ])
        .unwrap()
    }

    #[test]
    fn factorization_recomposes() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let l = ch.l();
        let rebuilt = l.matmul(&l.transpose()).unwrap();
        assert!(rebuilt.approx_eq(&a, 1e-10));
        // L is lower triangular.
        assert_eq!(l.get(0, 1), 0.0);
        assert_eq!(l.get(0, 2), 0.0);
        assert_eq!(l.get(1, 2), 0.0);
    }

    #[test]
    fn solve_matches_direct_substitution() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let b = vec![1.0, -2.0, 0.5];
        let x = ch.solve_vec(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (got, want) in ax.iter().zip(b.iter()) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd3();
        let inv = Cholesky::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn determinant_of_diagonal() {
        let d = Matrix::from_diag(&[2.0, 3.0, 4.0]);
        let ch = Cholesky::new(&d).unwrap();
        assert!((ch.determinant() - 24.0).abs() < 1e-9);
        assert!((ch.log_determinant() - 24.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_spd() {
        let not_pd = Matrix::from_rows(&[&[1.0, 2.0][..], &[2.0, 1.0][..]]).unwrap();
        assert!(matches!(
            Cholesky::new(&not_pd),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        let rect = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::new(&rect),
            Err(LinalgError::NotSquare { .. })
        ));
        let asym = Matrix::from_rows(&[&[2.0, 1.0][..], &[0.0, 2.0][..]]).unwrap();
        assert!(matches!(
            Cholesky::new(&asym),
            Err(LinalgError::NotSymmetric { .. })
        ));
    }

    #[test]
    fn solve_rejects_wrong_size() {
        let ch = Cholesky::new(&spd3()).unwrap();
        assert!(ch.solve_vec(&[1.0, 2.0]).is_err());
        assert!(ch.solve(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn solve_matrix_right_hand_side() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 0.0][..], &[0.0, 1.0][..], &[1.0, 1.0][..]]).unwrap();
        let x = ch.solve(&b).unwrap();
        let ax = a.matmul(&x).unwrap();
        assert!(ax.approx_eq(&b, 1e-10));
    }
}
