//! Cholesky factorization of symmetric positive-definite matrices.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Lower-triangular Cholesky factor `L` of an SPD matrix `A = L Lᵀ`.
///
/// Used for two things in this workspace:
/// 1. sampling from a multivariate normal with covariance `Σ` (draw `z ~ N(0, I)`
///    and return `μ + L z`), which is how the synthetic workloads of Section 7.1
///    and the correlated-noise defense of Section 8 are generated;
/// 2. solving / inverting the SPD systems that appear in the Bayes-estimate
///    reconstruction, e.g. `(Σ_x⁻¹ + σ⁻² I)⁻¹` in Equation (11).
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes `a`, which must be square, symmetric (within `1e-8` relative
    /// tolerance) and positive definite.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let tol = 1e-8 * a.max_abs().max(1.0);
        if !a.is_symmetric(tol) {
            return Err(LinalgError::NotSymmetric {
                max_asymmetry: a.max_asymmetry(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut diag = a.get(j, j);
            for k in 0..j {
                let ljk = l.get(j, k);
                diag -= ljk * ljk;
            }
            if diag <= 0.0 || !diag.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j, value: diag });
            }
            let ljj = diag.sqrt();
            l.set(j, j, ljj);
            for i in (j + 1)..n {
                let mut sum = a.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                l.set(i, j, sum / ljj);
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A x = b` for a single right-hand side.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Forward substitution: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l.get(i, k) * y[k];
            }
            y[i] = sum / self.l.get(i, i);
        }
        // Back substitution: Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l.get(k, i) * x[k];
            }
            x[i] = sum / self.l.get(i, i);
        }
        Ok(x)
    }

    /// Solves `A X = B` column by column.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve",
                left: (n, n),
                right: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = b.column(j);
            let x = self.solve_vec(&col)?;
            out.set_column(j, &x);
        }
        Ok(out)
    }

    /// Computes `A⁻¹`.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve(&Matrix::identity(self.dim()))
    }

    /// Log-determinant of `A` (= 2 Σ log Lᵢᵢ), useful for multivariate-normal
    /// log densities.
    pub fn log_determinant(&self) -> f64 {
        (0..self.dim()).map(|i| self.l.get(i, i).ln()).sum::<f64>() * 2.0
    }

    /// Determinant of `A`.
    pub fn determinant(&self) -> f64 {
        self.log_determinant().exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = B Bᵀ + I for a fixed B, guaranteed SPD.
        Matrix::from_rows(&[
            &[4.0, 2.0, 0.6][..],
            &[2.0, 5.0, 1.0][..],
            &[0.6, 1.0, 3.0][..],
        ])
        .unwrap()
    }

    #[test]
    fn factorization_recomposes() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let l = ch.l();
        let rebuilt = l.matmul(&l.transpose()).unwrap();
        assert!(rebuilt.approx_eq(&a, 1e-10));
        // L is lower triangular.
        assert_eq!(l.get(0, 1), 0.0);
        assert_eq!(l.get(0, 2), 0.0);
        assert_eq!(l.get(1, 2), 0.0);
    }

    #[test]
    fn solve_matches_direct_substitution() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let b = vec![1.0, -2.0, 0.5];
        let x = ch.solve_vec(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (got, want) in ax.iter().zip(b.iter()) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd3();
        let inv = Cholesky::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn determinant_of_diagonal() {
        let d = Matrix::from_diag(&[2.0, 3.0, 4.0]);
        let ch = Cholesky::new(&d).unwrap();
        assert!((ch.determinant() - 24.0).abs() < 1e-9);
        assert!((ch.log_determinant() - 24.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_spd() {
        let not_pd = Matrix::from_rows(&[&[1.0, 2.0][..], &[2.0, 1.0][..]]).unwrap();
        assert!(matches!(
            Cholesky::new(&not_pd),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        let rect = Matrix::zeros(2, 3);
        assert!(matches!(Cholesky::new(&rect), Err(LinalgError::NotSquare { .. })));
        let asym = Matrix::from_rows(&[&[2.0, 1.0][..], &[0.0, 2.0][..]]).unwrap();
        assert!(matches!(
            Cholesky::new(&asym),
            Err(LinalgError::NotSymmetric { .. })
        ));
    }

    #[test]
    fn solve_rejects_wrong_size() {
        let ch = Cholesky::new(&spd3()).unwrap();
        assert!(ch.solve_vec(&[1.0, 2.0]).is_err());
        assert!(ch.solve(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn solve_matrix_right_hand_side() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let b = Matrix::from_rows(&[
            &[1.0, 0.0][..],
            &[0.0, 1.0][..],
            &[1.0, 1.0][..],
        ])
        .unwrap();
        let x = ch.solve(&b).unwrap();
        let ax = a.matmul(&x).unwrap();
        assert!(ax.approx_eq(&b, 1e-10));
    }
}
