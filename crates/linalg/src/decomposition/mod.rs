//! Matrix decompositions.
//!
//! * [`Cholesky`] — for sampling from multivariate normals and for inverting
//!   the SPD matrices that show up in the Bayes-estimate reconstruction.
//! * [`Lu`] — general linear solves / inverses / determinants.
//! * [`Qr`] — Householder QR, used for orthogonality checks and as an
//!   alternative orthonormalization path.
//! * [`SymmetricEigen`] — cyclic Jacobi eigendecomposition of symmetric
//!   matrices; this is the workhorse behind PCA-DR and Spectral Filtering.

mod cholesky;
mod eigen;
mod lu;
mod qr;

pub use cholesky::Cholesky;
pub use eigen::{recompose, SymmetricEigen};
pub use lu::{invert, Lu};
pub use qr::{orthonormality_defect, Qr};
