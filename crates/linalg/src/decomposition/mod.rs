//! Matrix decompositions.
//!
//! * [`Cholesky`] — for sampling from multivariate normals and for inverting
//!   the SPD matrices that show up in the Bayes-estimate reconstruction.
//! * [`Lu`] — general linear solves / inverses / determinants.
//! * [`Qr`] — Householder QR, used for orthogonality checks and as an
//!   alternative orthonormalization path.
//! * [`SymmetricEigen`] — symmetric eigendecomposition; the workhorse behind
//!   PCA-DR and Spectral Filtering. The default path is Householder
//!   tridiagonalization + implicit-shift QL ([`tridiagonal`]); the original
//!   cyclic Jacobi solver survives as the pinned reference
//!   ([`eigen_jacobi`]) and as the small-m fallback.

mod cholesky;
mod eigen;
mod lu;
mod qr;
pub mod tridiagonal;

pub use cholesky::Cholesky;
pub use eigen::{eigen_jacobi, recompose, SymmetricEigen};
pub use lu::{invert, Lu};
pub use qr::{orthonormality_defect, Qr};
pub use tridiagonal::{symmetric_eigenvalues, Tridiagonal};
