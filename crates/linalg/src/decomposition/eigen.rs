//! Symmetric eigendecomposition.
//!
//! Two solvers share one result type and one sorting/sign convention:
//!
//! * **Householder + implicit-shift QL** ([`SymmetricEigen::householder_ql`],
//!   the default behind [`SymmetricEigen::new`] above a small-dimension
//!   threshold): the classic one-shot `O(n³)` pipeline in
//!   [`super::tridiagonal`]. This is the production path for every spectral
//!   consumer — PCA-DR, spectral filtering, covariance clipping, bandwidth
//!   selection, and the theory curves.
//! * **Cyclic Jacobi** ([`eigen_jacobi`] / [`SymmetricEigen::jacobi`]): the
//!   original solver, retained as the pinned reference the same way
//!   `matmul_naive` anchors `matmul`. Every rotation is easy to audit and the
//!   property tests assert the QL path matches it to 1e-9, which is what
//!   lets the fast path be trusted on the attack pipeline. It also serves as
//!   the small-m fallback, where its simplicity beats the tridiagonal
//!   pipeline's setup cost.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

use super::tridiagonal::{householder_tridiagonalize, ql_implicit_shift};

/// Eigendecomposition `A = Q Λ Qᵀ` of a symmetric matrix.
///
/// Eigenpairs are sorted by **descending** eigenvalue, matching the paper's
/// convention (λ₁ ≥ λ₂ ≥ … ≥ λ_m); column `k` of [`SymmetricEigen::eigenvectors`]
/// is the eigenvector for [`SymmetricEigen::eigenvalues`]`[k]`. Each
/// eigenvector's sign is normalized so its largest-magnitude component is
/// positive, making results comparable across solver paths.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in descending order.
    pub eigenvalues: Vec<f64>,
    /// Matrix whose columns are the corresponding (orthonormal) eigenvectors.
    pub eigenvectors: Matrix,
}

/// Maximum number of full Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 100;

/// Below this dimension [`SymmetricEigen::new`] stays on the Jacobi path: for
/// tiny matrices the quadratic-convergence sweeps finish in microseconds and
/// the tridiagonal pipeline's reflector setup is pure overhead.
const TRIDIAGONAL_MIN_DIM: usize = 12;

impl SymmetricEigen {
    /// Decomposes a symmetric matrix.
    ///
    /// Dispatches to the Householder + implicit-shift QL pipeline, falling
    /// back to cyclic Jacobi below [`TRIDIAGONAL_MIN_DIM`]. Both paths
    /// produce the same sorted, sign-normalized eigenpairs (to numerical
    /// precision; the property tests pin the agreement at 1e-9).
    pub fn new(a: &Matrix) -> Result<Self> {
        // Both targets validate the input themselves; no pre-check here.
        if a.rows() < TRIDIAGONAL_MIN_DIM {
            Self::jacobi(a)
        } else {
            Self::householder_ql(a)
        }
    }

    /// Decomposes a symmetric matrix with the Householder + implicit-shift QL
    /// pipeline regardless of size (see [`super::tridiagonal`]).
    pub fn householder_ql(a: &Matrix) -> Result<Self> {
        // Validation (square, non-empty, symmetric) happens inside the
        // reduction, so it runs exactly once per decomposition.
        let mut tri = householder_tridiagonalize(a)?;
        let mut qt = tri.q_transposed;
        ql_implicit_shift(&mut tri.diagonal, &tri.subdiagonal, &mut qt)?;
        Ok(finish_sorted(tri.diagonal, qt))
    }

    /// Decomposes a symmetric matrix with cyclic Jacobi sweeps and the default
    /// convergence tolerance (off-diagonal Frobenius norm below
    /// `1e-12 · ‖A‖_F`, floor `1e-300`). Pinned reference path.
    pub fn jacobi(a: &Matrix) -> Result<Self> {
        Self::with_tolerance(a, 1e-12)
    }

    /// Jacobi decomposition declaring convergence when the off-diagonal
    /// Frobenius norm drops below `rel_tol * ‖A‖_F`.
    pub fn with_tolerance(a: &Matrix, rel_tol: f64) -> Result<Self> {
        validate(a)?;
        let n = a.rows();

        // Work on the symmetrized copy so tiny fp asymmetries cannot bias rotations.
        let mut m = a.symmetrize()?;
        // Accumulate Qᵀ (rows are eigenvector candidates): the Jacobi rotation
        // then updates two contiguous *rows* of both matrices instead of two
        // strided columns, which is what keeps the sweep vectorizable.
        let mut qt = Matrix::identity(n);
        let target = (rel_tol * m.frobenius_norm()).max(1e-300);

        let mut sweeps = 0;
        loop {
            let off = off_diagonal_norm(&m);
            if off <= target {
                break;
            }
            if sweeps >= MAX_SWEEPS {
                return Err(LinalgError::EigenDidNotConverge {
                    sweeps,
                    off_diagonal_norm: off,
                });
            }
            sweeps += 1;
            for p in 0..n - 1 {
                for r in (p + 1)..n {
                    let apr = m.get(p, r);
                    if apr.abs() <= f64::MIN_POSITIVE {
                        continue;
                    }
                    let app = m.get(p, p);
                    let arr = m.get(r, r);
                    // Compute the Jacobi rotation (c, s) that zeroes m[p][r].
                    let theta = (arr - app) / (2.0 * apr);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;

                    // Two-sided update exploiting symmetry: rotate rows p and
                    // r (contiguous), patch the 2×2 pivot block analytically,
                    // then mirror the rows into columns p and r.
                    let app_new = app - t * apr;
                    let arr_new = arr + t * apr;
                    {
                        let (row_p, row_r) = two_rows_mut(&mut m, p, r);
                        for (vp, vr) in row_p.iter_mut().zip(row_r.iter_mut()) {
                            let mpk = *vp;
                            let mrk = *vr;
                            *vp = c * mpk - s * mrk;
                            *vr = s * mpk + c * mrk;
                        }
                        row_p[p] = app_new;
                        row_r[r] = arr_new;
                        row_p[r] = 0.0;
                        row_r[p] = 0.0;
                    }
                    for k in 0..n {
                        if k != p && k != r {
                            let mpk = m.get(p, k);
                            let mrk = m.get(r, k);
                            m.set(k, p, mpk);
                            m.set(k, r, mrk);
                        }
                    }
                    // Accumulate the rotation into Qᵀ (rows p and r).
                    let (qt_p, qt_r) = two_rows_mut(&mut qt, p, r);
                    for (vp, vr) in qt_p.iter_mut().zip(qt_r.iter_mut()) {
                        let qpk = *vp;
                        let qrk = *vr;
                        *vp = c * qpk - s * qrk;
                        *vr = s * qpk + c * qrk;
                    }
                }
            }
        }

        let eigenvalues: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
        Ok(finish_sorted(eigenvalues, qt))
    }

    /// Dimension of the decomposed matrix.
    pub fn dim(&self) -> usize {
        self.eigenvalues.len()
    }

    /// Rebuilds `Q Λ Qᵀ` (useful for round-trip tests and for constructing
    /// covariance matrices from a prescribed spectrum).
    pub fn recompose(&self) -> Matrix {
        recompose(&self.eigenvalues, &self.eigenvectors)
    }

    /// Sum of all eigenvalues (equals the trace of the original matrix).
    pub fn total_variance(&self) -> f64 {
        self.eigenvalues.iter().sum()
    }

    /// Fraction of total variance captured by the leading `p` eigenvalues.
    pub fn explained_variance_ratio(&self, p: usize) -> f64 {
        let total = self.total_variance();
        if total <= 0.0 {
            return 0.0;
        }
        self.eigenvalues.iter().take(p).sum::<f64>() / total
    }

    /// Index `p` (1-based count) at which the largest *gap* between consecutive
    /// eigenvalues occurs; the paper's experiments use this "dominant
    /// eigenvalue" rule to pick how many principal components to keep.
    pub fn largest_gap_split(&self) -> usize {
        if self.eigenvalues.len() <= 1 {
            return self.eigenvalues.len();
        }
        let mut best_idx = 1;
        let mut best_gap = f64::NEG_INFINITY;
        for i in 0..self.eigenvalues.len() - 1 {
            let gap = self.eigenvalues[i] - self.eigenvalues[i + 1];
            if gap > best_gap {
                best_gap = gap;
                best_idx = i + 1;
            }
        }
        best_idx
    }
}

/// Cyclic Jacobi eigendecomposition — the pinned reference solver.
///
/// Free-function spelling of [`SymmetricEigen::jacobi`], mirroring how
/// `matmul_naive` anchors the blocked `matmul`: benches and property tests
/// call this to cross-check the Householder + QL production path.
pub fn eigen_jacobi(a: &Matrix) -> Result<SymmetricEigen> {
    SymmetricEigen::jacobi(a)
}

/// Shared input validation for every eigensolver entry point (Jacobi,
/// Householder + QL, and the eigenvalues-only path): square, non-empty,
/// symmetric (to a scaled tolerance).
pub(crate) fn validate(a: &Matrix) -> Result<()> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    if a.rows() == 0 {
        return Err(LinalgError::Empty {
            op: "symmetric eigen",
        });
    }
    let sym_tol = 1e-8 * a.max_abs().max(1.0);
    if !a.is_symmetric(sym_tol) {
        return Err(LinalgError::NotSymmetric {
            max_asymmetry: a.max_asymmetry(),
        });
    }
    Ok(())
}

/// Shared finisher for both solver paths: sorts eigenpairs descending,
/// applies the sign convention (largest-magnitude component of each
/// eigenvector positive; first such component on exact ties), and transposes
/// the row-stored candidates into the columns-are-eigenvectors convention.
fn finish_sorted(eigenvalues: Vec<f64>, qt: Matrix) -> SymmetricEigen {
    let n = eigenvalues.len();
    let mut pairs: Vec<(f64, usize)> = eigenvalues.into_iter().zip(0..n).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let eigenvalues: Vec<f64> = pairs.iter().map(|&(v, _)| v).collect();
    let mut sorted_rows = Matrix::zeros(n, n);
    for (dst, &(_, src)) in pairs.iter().enumerate() {
        let row = sorted_rows.row_mut(dst);
        row.copy_from_slice(qt.row(src));
        let mut lead = 0;
        for (j, &v) in row.iter().enumerate() {
            if v.abs() > row[lead].abs() {
                lead = j;
            }
        }
        if row[lead] < 0.0 {
            for v in row.iter_mut() {
                *v = -*v;
            }
        }
    }
    let eigenvectors = sorted_rows.transpose();
    SymmetricEigen {
        eigenvalues,
        eigenvectors,
    }
}

/// Rebuilds a symmetric matrix `Q Λ Qᵀ` from a spectrum and an orthonormal basis.
///
/// `Q Λ` is formed by scaling the columns of `Q` directly (no diagonal-matrix
/// product), and the final factor is applied through the fused
/// [`Matrix::matmul_transpose_b`] kernel, so no transpose is materialized.
pub fn recompose(eigenvalues: &[f64], eigenvectors: &Matrix) -> Matrix {
    assert_eq!(
        eigenvalues.len(),
        eigenvectors.cols(),
        "shape mismatch in recompose"
    );
    let mut q_scaled = eigenvectors.clone();
    for i in 0..q_scaled.rows() {
        for (v, &l) in q_scaled.row_mut(i).iter_mut().zip(eigenvalues.iter()) {
            *v *= l;
        }
    }
    q_scaled
        .matmul_transpose_b(eigenvectors)
        .expect("shape mismatch in recompose")
}

/// Mutable views of rows `p` and `r` (`p < r`) of a square matrix.
fn two_rows_mut(m: &mut Matrix, p: usize, r: usize) -> (&mut [f64], &mut [f64]) {
    debug_assert!(p < r);
    let n = m.cols();
    let (head, tail) = m.as_mut_slice().split_at_mut(r * n);
    (&mut head[p * n..p * n + n], &mut tail[..n])
}

fn off_diagonal_norm(m: &Matrix) -> f64 {
    let mut sum = 0.0;
    for (i, row) in m.row_iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if i != j {
                sum += v * v;
            }
        }
    }
    sum.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::qr::orthonormality_defect;

    fn sym3() -> Matrix {
        Matrix::from_rows(&[
            &[4.0, 1.0, 0.5][..],
            &[1.0, 3.0, -0.7][..],
            &[0.5, -0.7, 2.0][..],
        ])
        .unwrap()
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_sorted_diagonal() {
        let d = Matrix::from_diag(&[1.0, 5.0, 3.0]);
        let eig = SymmetricEigen::new(&d).unwrap();
        assert_eq!(eig.eigenvalues, vec![5.0, 3.0, 1.0]);
        assert!(orthonormality_defect(&eig.eigenvectors) < 1e-12);
    }

    #[test]
    fn known_2x2_eigenvalues() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0][..], &[1.0, 2.0][..]]).unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!((eig.eigenvalues[0] - 3.0).abs() < 1e-10);
        assert!((eig.eigenvalues[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn recompose_roundtrip() {
        let a = sym3();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!(eig.recompose().approx_eq(&a, 1e-9));
    }

    #[test]
    fn eigenvectors_satisfy_definition() {
        let a = sym3();
        let eig = SymmetricEigen::new(&a).unwrap();
        for k in 0..3 {
            let v = eig.eigenvectors.column(k);
            let av = a.matvec(&v).unwrap();
            let lv = crate::vector::scale(&v, eig.eigenvalues[k]);
            for (x, y) in av.iter().zip(lv.iter()) {
                assert!((x - y).abs() < 1e-8, "A v != lambda v for k={k}");
            }
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = sym3();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!((eig.total_variance() - a.trace()).abs() < 1e-9);
    }

    #[test]
    fn explained_variance_ratio_monotone() {
        let a = Matrix::from_diag(&[10.0, 5.0, 1.0]);
        let eig = SymmetricEigen::new(&a).unwrap();
        let r1 = eig.explained_variance_ratio(1);
        let r2 = eig.explained_variance_ratio(2);
        let r3 = eig.explained_variance_ratio(3);
        assert!(r1 < r2 && r2 < r3);
        assert!((r3 - 1.0).abs() < 1e-12);
        assert!((r1 - 10.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn largest_gap_split_finds_dominant_block() {
        let d = Matrix::from_diag(&[400.0, 400.0, 399.0, 5.0, 4.0, 3.0]);
        let eig = SymmetricEigen::new(&d).unwrap();
        assert_eq!(eig.largest_gap_split(), 3);

        let single = Matrix::from_diag(&[2.0]);
        assert_eq!(SymmetricEigen::new(&single).unwrap().largest_gap_split(), 1);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(SymmetricEigen::new(&Matrix::zeros(2, 3)).is_err());
        let asym = Matrix::from_rows(&[&[1.0, 2.0][..], &[0.0, 1.0][..]]).unwrap();
        assert!(matches!(
            SymmetricEigen::new(&asym),
            Err(LinalgError::NotSymmetric { .. })
        ));
        assert!(matches!(
            SymmetricEigen::householder_ql(&asym),
            Err(LinalgError::NotSymmetric { .. })
        ));
        assert!(matches!(
            eigen_jacobi(&asym),
            Err(LinalgError::NotSymmetric { .. })
        ));
    }

    #[test]
    fn handles_negative_eigenvalues() {
        // [[0,2],[2,0]] has eigenvalues +2 and -2.
        let a = Matrix::from_rows(&[&[0.0, 2.0][..], &[2.0, 0.0][..]]).unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!((eig.eigenvalues[0] - 2.0).abs() < 1e-10);
        assert!((eig.eigenvalues[1] + 2.0).abs() < 1e-10);
    }

    #[test]
    fn moderately_large_matrix_converges() {
        // Deterministic 40x40 symmetric matrix; exercises the QL path.
        let n = 40;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let v = ((i * 7 + j * 13) % 17) as f64 / 17.0;
                a.set(i, j, v);
            }
        }
        let a = a.symmetrize().unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!(eig.recompose().approx_eq(&a, 1e-7));
        assert!(orthonormality_defect(&eig.eigenvectors) < 1e-9);
        // Sorted descending.
        for w in eig.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn ql_and_jacobi_agree_across_the_dispatch_threshold() {
        for n in [2usize, 5, 11, 12, 13, 24, 40] {
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a.set(i, j, ((i * 5 + j * 11 + 3) % 13) as f64 - 6.0);
                }
            }
            let a = a.symmetrize().unwrap();
            let scale = a.frobenius_norm().max(1.0);
            let ql = SymmetricEigen::householder_ql(&a).unwrap();
            let jac = eigen_jacobi(&a).unwrap();
            for (l_ql, l_j) in ql.eigenvalues.iter().zip(jac.eigenvalues.iter()) {
                assert!((l_ql - l_j).abs() <= 1e-9 * scale, "n={n}: {l_ql} vs {l_j}");
            }
        }
    }

    #[test]
    fn sign_convention_is_applied_on_both_paths() {
        let a = sym3();
        for eig in [
            SymmetricEigen::householder_ql(&a).unwrap(),
            eigen_jacobi(&a).unwrap(),
        ] {
            for k in 0..eig.dim() {
                let v = eig.eigenvectors.column(k);
                let mut lead = 0;
                for (i, x) in v.iter().enumerate() {
                    if x.abs() > v[lead].abs() {
                        lead = i;
                    }
                }
                assert!(v[lead] > 0.0, "column {k} leading component not positive");
            }
        }
    }
}
