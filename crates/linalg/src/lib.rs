//! # randrecon-linalg
//!
//! Dense linear-algebra substrate for the `randrecon` workspace.
//!
//! The SIGMOD 2005 paper this workspace reproduces ("Deriving Private
//! Information from Randomized Data", Huang, Du & Chen) leans on a small but
//! specific set of matrix computations: covariance algebra, symmetric
//! eigendecomposition (for PCA-based reconstruction and spectral filtering),
//! Cholesky factorization (for multivariate-normal sampling), linear solves and
//! inverses (for the Bayes-estimate reconstruction), and Gram–Schmidt
//! orthonormalization (for the synthetic workload generator of Section 7.1).
//!
//! Rather than pulling in `ndarray`/`nalgebra`, this crate implements exactly
//! those pieces from scratch so that the numerical behaviour of the attack and
//! defense code is fully auditable and has no hidden dependencies.
//!
//! ## Overview
//!
//! * [`Matrix`] — dense, row-major, `f64` matrix with the usual arithmetic.
//! * [`vector`] — free functions over `&[f64]` slices (dot products, norms, …).
//! * [`decomposition::Cholesky`] — SPD factorization, solve, inverse, log-det.
//! * [`decomposition::Lu`] — LU with partial pivoting, solve, inverse, det.
//! * [`decomposition::Qr`] — Householder QR.
//! * [`decomposition::SymmetricEigen`] — cyclic Jacobi eigensolver for
//!   symmetric matrices, eigenpairs sorted by descending eigenvalue.
//! * [`gram_schmidt`] — modified Gram–Schmidt orthonormalization, used to build
//!   random orthogonal eigenvector bases exactly as the paper's experiment
//!   methodology prescribes.
//!
//! ## Example
//!
//! ```
//! use randrecon_linalg::{Matrix, decomposition::SymmetricEigen};
//!
//! // A tiny covariance matrix with one dominant direction.
//! let c = Matrix::from_rows(&[
//!     &[4.0, 1.9][..],
//!     &[1.9, 1.0][..],
//! ]).unwrap();
//! let eig = SymmetricEigen::new(&c).unwrap();
//! assert!(eig.eigenvalues[0] >= eig.eigenvalues[1]);
//! // Reconstruct C = Q Λ Qᵀ.
//! let rebuilt = eig.recompose();
//! assert!(c.approx_eq(&rebuilt, 1e-10));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod decomposition;
pub mod error;
pub mod gram_schmidt;
pub mod matrix;
pub mod vector;

pub use error::{LinalgError, Result};
pub use matrix::Matrix;
