//! # randrecon-linalg
//!
//! Dense linear-algebra substrate for the `randrecon` workspace.
//!
//! The SIGMOD 2005 paper this workspace reproduces ("Deriving Private
//! Information from Randomized Data", Huang, Du & Chen) leans on a small but
//! specific set of matrix computations: covariance algebra, symmetric
//! eigendecomposition (for PCA-based reconstruction and spectral filtering),
//! Cholesky factorization (for multivariate-normal sampling), linear solves and
//! inverses (for the Bayes-estimate reconstruction), and Gram–Schmidt
//! orthonormalization (for the synthetic workload generator of Section 7.1).
//!
//! Rather than pulling in `ndarray`/`nalgebra`, this crate implements exactly
//! those pieces from scratch so that the numerical behaviour of the attack and
//! defense code is fully auditable and has no hidden dependencies.
//!
//! ## Overview
//!
//! * [`Matrix`] — dense, row-major, `f64` matrix with the usual arithmetic.
//! * [`vector`] — free functions over `&[f64]` slices (dot products, norms, …).
//! * [`decomposition::Cholesky`] — SPD factorization, solve, inverse, log-det.
//! * [`decomposition::Lu`] — LU with partial pivoting, solve, inverse, det.
//! * [`decomposition::Qr`] — Householder QR.
//! * [`decomposition::SymmetricEigen`] — symmetric eigensolver, eigenpairs
//!   sorted by descending eigenvalue: Householder tridiagonalization +
//!   implicit-shift QL by default, with the cyclic Jacobi solver retained as
//!   the pinned reference ([`decomposition::eigen_jacobi`]) and small-m
//!   fallback.
//! * [`gram_schmidt`] — modified Gram–Schmidt orthonormalization, used to build
//!   random orthogonal eigenvector bases exactly as the paper's experiment
//!   methodology prescribes.
//!
//! ## Kernel design
//!
//! The hot operations run on slice kernels (in the private `kernels` module)
//! rather than per-element `get`/`set`:
//!
//! * **Blocked, packed matmul with a register microkernel.**
//!   [`Matrix::matmul`] packs the right operand once into panel-major layout
//!   (`KC = 64` × `NC = 256` panels: a 128 KiB panel streams through L2
//!   while each 2 KiB packed row stays in L1) and sweeps `k`-stripes.
//!   Inside each panel a **4×8 register microkernel** (`MR = 4` output rows
//!   × `NR = 8` output columns) loads its block of `C` into locals once per
//!   stripe, accumulates all `kc` rank-1 contributions while the block
//!   lives in registers, then stores — cutting `C` traffic from one
//!   load+store per `k` iteration (the old per-row `axpy` sweep, preserved
//!   in `randrecon-bench` as `matmul_blocked_axpy_seed`) to one per stripe,
//!   and giving the compiler a straight-line 32-multiply-add body it
//!   vectorizes at the machine's native width (`.cargo/config.toml` sets
//!   `target-cpu=native`; LLVM still performs no FMA contraction or
//!   reassociation, so results are flag-independent). Row/column tails
//!   fall back to the `axpy` sweep. Products below ~32 K multiply-adds
//!   keep the plain i-k-j loop — packing would cost more than it saves.
//!   Per-element accumulation order over `k` is identical in every path,
//!   so the result equals the naive loop ([`Matrix::matmul_naive`], kept
//!   public as the reference) element-for-element (`==`; the microkernel
//!   skips the naive loop's zero-skip, which for finite inputs can only
//!   flip the sign of an exact zero). Measured single-thread at 512×512:
//!   ~2.4× over the axpy-sweep blocked kernel (see `BENCH_3.json`).
//! * **Parallelism.** Products at or above ~4 M multiply-adds split the
//!   output row-wise across the **shared** workspace pool
//!   (`randrecon_parallel`, the same pool the experiment sweeps use; rayon is
//!   not available in the offline build environment, so the pool provides the
//!   rayon-equivalent bridge). Each output row is owned by exactly one
//!   worker, so results do not depend on thread count.
//! * **Transpose-free projections.** [`Matrix::matmul_transpose_b`] computes
//!   `A·Bᵀ` as row-by-row dot products — the natural kernel for the
//!   `(Y Q̂) Q̂ᵀ` projections of PCA-DR / spectral filtering — without ever
//!   materializing `Bᵀ`.
//! * **Tridiagonal eigensolver pipeline.** [`decomposition::SymmetricEigen`]
//!   runs the classic one-shot dense symmetric pipeline
//!   ([`decomposition::tridiagonal`]): Householder reduction to tridiagonal
//!   form on full symmetric storage (the rank-2 trailing-block update works
//!   on whole contiguous row segments and preserves symmetry bit-exactly),
//!   then implicit-shift QL with Wilkinson shifts and EISPACK-style
//!   global-scale deflation. The orthogonal factor is accumulated directly
//!   as `Qᵀ` by right-multiplying reflectors in reverse order, so both the
//!   back-transform and the trailing-block update are row-parallel over the
//!   shared pool, and every QL rotation touches two *adjacent contiguous
//!   rows* rather than strided column pairs. The QL chase additionally
//!   applies its rotations in **waves**: up to 32 consecutive rotations are
//!   buffered and replayed over `Qᵀ` in 128-column panels, so the ~33-row
//!   rotation band makes one cache-resident pass per panel instead of 32
//!   full-width row sweeps — same rotations, same order per element, so the
//!   result is bit-identical to the scalar two-row kernel (pinned as a
//!   `#[cfg(test)]` reference and cross-checked against Jacobi by the
//!   property tests). `O(n³)` with a small constant
//!   versus Jacobi's `O(n³ · sweeps)` — the swap that makes m = 256–512
//!   attack audits tractable. Cyclic Jacobi survives as
//!   [`decomposition::eigen_jacobi`], the pinned reference the property
//!   tests compare against (the same role `matmul_naive` plays for
//!   `matmul`), and handles dimensions below the dispatch threshold where
//!   reflector setup outweighs the sweeps.
//! * **Solve, don't invert.** [`decomposition::Cholesky::solve_matrix`]
//!   applies forward/back substitution to whole right-hand-side rows with
//!   contiguous `axpy`s. Every reconstruction path in the workspace is
//!   expressed through solves against a single factorization (e.g. BE-DR
//!   factors `Σ_x + Σ_r` exactly once); `inverse()` exists for callers that
//!   genuinely need the matrix, but nothing on the attack pipeline uses it.
//! * **Chunk sweeps compose with the kernels.** The streaming attack engine
//!   (`randrecon-core::streaming`) feeds records through these kernels one
//!   chunk at a time: pass 1 accumulates `Σ̂` with the same contiguous
//!   rank-update rows, pass 2 multiplies each chunk against the cached
//!   `m × m` solve products. Because every kernel's per-output-row
//!   accumulation order is independent of the other rows, a chunked sweep
//!   produces the same rows as one big product — the matmul dispatch
//!   (naive below ~32 K multiply-adds, blocked above) never changes a
//!   value, only the speed — which is what makes the streaming and
//!   in-memory attacks numerically interchangeable. The sweep is also
//!   *pipelined*: both passes flow through the bounded N-slot ring
//!   (`randrecon-parallel::pipeline_ring`, which generalized PR 4's
//!   two-slot pipeline) — a producer thread reads ahead while waves of
//!   chunks are transformed on the shared pool and the consumer drains
//!   results strictly in production order — the kernels themselves are
//!   untouched, and the output stays byte-identical to the sequential
//!   sweep at every slot count and worker count.
//! * **One contraction funnel.** Every kernel accumulates through a single
//!   `fmadd(a, b, acc)` helper. By default it is a separately rounded
//!   multiply-then-add, so results are flag-independent and bit-exact
//!   against the naive references; the opt-in `fma` cargo feature swaps in
//!   `f64::mul_add`, which `target-cpu=native` lowers to one hardware FMA
//!   per element (higher precision, different bits — the statistical
//!   goldens are re-baselined separately for that profile).
//!
//! ## Example
//!
//! ```
//! use randrecon_linalg::{Matrix, decomposition::SymmetricEigen};
//!
//! // A tiny covariance matrix with one dominant direction.
//! let c = Matrix::from_rows(&[
//!     &[4.0, 1.9][..],
//!     &[1.9, 1.0][..],
//! ]).unwrap();
//! let eig = SymmetricEigen::new(&c).unwrap();
//! assert!(eig.eigenvalues[0] >= eig.eigenvalues[1]);
//! // Reconstruct C = Q Λ Qᵀ.
//! let rebuilt = eig.recompose();
//! assert!(c.approx_eq(&rebuilt, 1e-10));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod decomposition;
pub mod error;
pub mod gram_schmidt;
mod kernels;
pub mod matrix;
pub mod vector;

pub use error::{LinalgError, Result};
pub use matrix::Matrix;
