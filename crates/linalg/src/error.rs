//! Error types shared across the linear-algebra crate.

use std::fmt;

/// Convenience alias used throughout `randrecon-linalg`.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Errors raised by matrix construction and decomposition routines.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes (e.g. a 3×2 added to a 2×3).
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand as (rows, cols).
        left: (usize, usize),
        /// Shape of the right/second operand as (rows, cols).
        right: (usize, usize),
    },
    /// An operation that requires a square matrix received a rectangular one.
    NotSquare {
        /// Shape that was provided.
        shape: (usize, usize),
    },
    /// A matrix expected to be symmetric was not (beyond tolerance).
    NotSymmetric {
        /// Maximum observed asymmetry |a_ij - a_ji|.
        max_asymmetry: f64,
    },
    /// Cholesky factorization failed because the matrix is not positive definite.
    NotPositiveDefinite {
        /// Index of the pivot that became non-positive.
        pivot: usize,
        /// Value of the offending pivot.
        value: f64,
    },
    /// A solve or inverse hit a (numerically) singular matrix.
    Singular {
        /// Index of the pivot that vanished.
        pivot: usize,
    },
    /// The Jacobi eigensolver did not converge within the sweep budget.
    EigenDidNotConverge {
        /// Number of sweeps performed before giving up.
        sweeps: usize,
        /// Remaining off-diagonal Frobenius norm.
        off_diagonal_norm: f64,
    },
    /// A constructor received data whose length does not match the shape.
    InvalidData {
        /// Description of what was wrong.
        reason: String,
    },
    /// An empty matrix (zero rows or zero columns) was passed where it is not allowed.
    Empty {
        /// The operation that rejected the empty input.
        op: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, left, right } => write!(
                f,
                "dimension mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
            LinalgError::NotSymmetric { max_asymmetry } => {
                write!(f, "matrix is not symmetric (max |a_ij - a_ji| = {max_asymmetry:e})")
            }
            LinalgError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite: pivot {pivot} has value {value:e}"
            ),
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            LinalgError::EigenDidNotConverge {
                sweeps,
                off_diagonal_norm,
            } => write!(
                f,
                "Jacobi eigensolver did not converge after {sweeps} sweeps (off-diagonal norm {off_diagonal_norm:e})"
            ),
            LinalgError::InvalidData { reason } => write!(f, "invalid data: {reason}"),
            LinalgError::Empty { op } => write!(f, "empty matrix not allowed in {op}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let err = LinalgError::DimensionMismatch {
            op: "matmul",
            left: (2, 3),
            right: (4, 5),
        };
        let msg = err.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("2x3"));
        assert!(msg.contains("4x5"));
    }

    #[test]
    fn display_not_positive_definite() {
        let err = LinalgError::NotPositiveDefinite {
            pivot: 3,
            value: -0.5,
        };
        assert!(err.to_string().contains("pivot 3"));
    }

    #[test]
    fn display_singular_and_eigen() {
        assert!(LinalgError::Singular { pivot: 1 }
            .to_string()
            .contains("singular"));
        let e = LinalgError::EigenDidNotConverge {
            sweeps: 10,
            off_diagonal_norm: 1.0,
        };
        assert!(e.to_string().contains("10 sweeps"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&LinalgError::Empty { op: "test" });
    }
}
