//! Free functions over `&[f64]` slices.
//!
//! The reconstruction schemes mostly manipulate whole matrices, but a few
//! pieces (per-record Bayes estimates, posterior expectations, error metrics)
//! work a vector at a time; these helpers keep that code readable.

use crate::error::{LinalgError, Result};

/// Dot product of two equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(LinalgError::DimensionMismatch {
            op: "dot",
            left: (a.len(), 1),
            right: (b.len(), 1),
        });
    }
    Ok(a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum())
}

/// Euclidean (L2) norm.
pub fn norm(a: &[f64]) -> f64 {
    a.iter().map(|&x| x * x).sum::<f64>().sqrt()
}

/// L1 norm (sum of absolute values).
pub fn norm_l1(a: &[f64]) -> f64 {
    a.iter().map(|&x| x.abs()).sum()
}

/// L∞ norm (largest absolute value).
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |acc, &x| acc.max(x.abs()))
}

/// Element-wise sum `a + b`.
pub fn add(a: &[f64], b: &[f64]) -> Result<Vec<f64>> {
    zip_with(a, b, "vector add", |x, y| x + y)
}

/// Element-wise difference `a - b`.
pub fn sub(a: &[f64], b: &[f64]) -> Result<Vec<f64>> {
    zip_with(a, b, "vector sub", |x, y| x - y)
}

/// Scales every element by `s`.
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|&x| x * s).collect()
}

/// In-place `y += alpha * x` (the classic axpy).
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) -> Result<()> {
    if x.len() != y.len() {
        return Err(LinalgError::DimensionMismatch {
            op: "axpy",
            left: (x.len(), 1),
            right: (y.len(), 1),
        });
    }
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
    Ok(())
}

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Normalizes `a` to unit L2 norm. Returns an error if the norm is (near) zero.
pub fn normalize(a: &[f64]) -> Result<Vec<f64>> {
    let n = norm(a);
    if n <= f64::EPSILON {
        return Err(LinalgError::InvalidData {
            reason: "cannot normalize a (near-)zero vector".to_string(),
        });
    }
    Ok(scale(a, 1.0 / n))
}

/// Squared Euclidean distance between two equal-length slices.
pub fn squared_distance(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(LinalgError::DimensionMismatch {
            op: "squared_distance",
            left: (a.len(), 1),
            right: (b.len(), 1),
        });
    }
    Ok(a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum())
}

/// Outer product `a bᵀ` as a row-major matrix buffer of shape `a.len() × b.len()`.
pub fn outer(a: &[f64], b: &[f64]) -> crate::Matrix {
    crate::Matrix::from_fn(a.len(), b.len(), |i, j| a[i] * b[j])
}

fn zip_with<F: Fn(f64, f64) -> f64>(
    a: &[f64],
    b: &[f64],
    op: &'static str,
    f: F,
) -> Result<Vec<f64>> {
    if a.len() != b.len() {
        return Err(LinalgError::DimensionMismatch {
            op,
            left: (a.len(), 1),
            right: (b.len(), 1),
        });
    }
    Ok(a.iter().zip(b.iter()).map(|(&x, &y)| f(x, y)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]).unwrap(), 32.0);
        assert!(dot(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn norms() {
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_l1(&[-3.0, 4.0]), 7.0);
        assert_eq!(norm_inf(&[-3.0, 4.0, -5.0]), 5.0);
        assert_eq!(norm(&[]), 0.0);
    }

    #[test]
    fn add_sub_scale_axpy() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]).unwrap(), vec![4.0, 6.0]);
        assert_eq!(sub(&[1.0, 2.0], &[3.0, 4.0]).unwrap(), vec![-2.0, -2.0]);
        assert_eq!(scale(&[1.0, 2.0], 3.0), vec![3.0, 6.0]);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y).unwrap();
        assert_eq!(y, vec![3.0, 5.0]);
        assert!(axpy(1.0, &[1.0], &mut y).is_err());
        assert!(add(&[1.0], &[1.0, 2.0]).is_err());
        assert!(sub(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn normalize_unit_norm() {
        let v = normalize(&[3.0, 4.0]).unwrap();
        assert!((norm(&v) - 1.0).abs() < 1e-12);
        assert!(normalize(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn squared_distance_basic() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]).unwrap(), 25.0);
        assert!(squared_distance(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn outer_product() {
        let m = outer(&[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 10.0);
    }
}
