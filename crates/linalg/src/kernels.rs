//! Low-level slice kernels behind [`crate::Matrix`]'s hot operations.
//!
//! Design notes (see the crate docs for the full rationale):
//!
//! * **Blocking**: `matmul_blocked` is a GEBP-style kernel. The right operand
//!   is packed once into panel-major layout (`KC × NC` panels, `KC = 64` rows
//!   by `NC = 256` columns ⇒ a 128 KiB panel that lives in L2, with each
//!   packed panel row of 2 KiB streaming through L1). Workers then sweep
//!   `k`-stripes so every `C` row accumulates its `k` contributions in
//!   ascending order — which makes the blocked result bit-identical to the
//!   naive i-k-j loop and independent of thread count.
//! * **Register microkernel**: inside each panel, output rows are processed
//!   `MR = 4` at a time and columns `NR = 8` at a time. The 4×8 accumulator
//!   block is loaded into locals once per (`k`-stripe, column block), swept
//!   over the whole `kc` extent while it stays in registers, then stored —
//!   so each `C` element is read/written once per stripe instead of once per
//!   `k` iteration (the former `axpy` sweep re-read the `C` row from L1 on
//!   every rank-1 update). Row tails (< 4) and column tails (< 8) fall back
//!   to the `axpy` sweep. Per-element accumulation order over `k` is the
//!   same in every path, and the exact-zero products the naive loop's
//!   zero-skip would drop cannot change any finite value, so results stay
//!   numerically identical (`==` per element) to the naive loop.
//! * **Parallelism**: row-chunks of the output are dispatched onto the shared
//!   [`randrecon_parallel`] pool once a product exceeds
//!   [`PARALLEL_MIN_FLOPS`] multiply-adds; below [`BLOCKED_MIN_FLOPS`] the
//!   caller should use the plain triple loop (packing costs more than it
//!   saves).
//! * **No per-element bounds checks**: all inner loops run over subslices
//!   obtained once per row/panel, so the optimizer sees contiguous,
//!   bounds-check-free iteration it can vectorize.

/// Below this many multiply-adds, `Matrix::matmul` uses the naive loop.
pub(crate) const BLOCKED_MIN_FLOPS: usize = 1 << 15;

/// At or above this many multiply-adds, kernels fan out across the pool
/// (shared workspace-wide threshold).
pub(crate) const PARALLEL_MIN_FLOPS: usize = randrecon_parallel::PARALLEL_MIN_FLOPS;

/// Rows of the right operand per packed panel (`k`-blocking factor).
const KC: usize = 64;

/// Columns per packed panel (`n`-blocking factor).
const NC: usize = 256;

/// Output rows per register-microkernel call.
const MR: usize = 4;

/// Output columns per register-microkernel call (NC is a multiple of NR, so
/// only the final panel of a non-multiple-of-8 matrix has a column tail).
const NR: usize = 8;

/// The one multiply-accumulate the hot kernels funnel through. Default
/// build: a separately rounded multiply and add, so every kernel stays
/// bit-identical to the naive reference loops. With the opt-in `fma`
/// feature: a fused `mul_add`, which skips the intermediate rounding — one
/// ulp tighter per step and, with `target-cpu=native` (see
/// `.cargo/config.toml`), a single hardware FMA instruction. Outputs then
/// differ from the default path in the last bits, which is why the `fma`
/// goldens are baselined separately.
#[inline(always)]
pub(crate) fn fmadd(a: f64, b: f64, acc: f64) -> f64 {
    if cfg!(feature = "fma") {
        a.mul_add(b, acc)
    } else {
        acc + a * b
    }
}

/// Dot product with four independent accumulators so the reduction
/// vectorizes; used by `matmul_transpose_b`, Cholesky and the solvers.
#[inline]
pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; 4];
    let mut a_it = a.chunks_exact(4);
    let mut b_it = b.chunks_exact(4);
    for (ca, cb) in (&mut a_it).zip(&mut b_it) {
        acc[0] = fmadd(ca[0], cb[0], acc[0]);
        acc[1] = fmadd(ca[1], cb[1], acc[1]);
        acc[2] = fmadd(ca[2], cb[2], acc[2]);
        acc[3] = fmadd(ca[3], cb[3], acc[3]);
    }
    let mut tail = 0.0;
    for (&x, &y) in a_it.remainder().iter().zip(b_it.remainder()) {
        tail = fmadd(x, y, tail);
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// `y += alpha * x` over equal-length slices; the compiler vectorizes this.
#[inline]
pub(crate) fn axpy(y: &mut [f64], alpha: f64, x: &[f64]) {
    debug_assert_eq!(y.len(), x.len());
    for (o, &v) in y.iter_mut().zip(x.iter()) {
        *o = fmadd(alpha, v, *o);
    }
}

/// Packs `b` (`k × n`, row-major) into panel-major layout: `k`-stripes of
/// `KC` rows, each stripe holding consecutive `KC × NC` panels. Panel
/// `(kb, jb)` starts at `kb * n + kc_cur * jb`, and its rows are contiguous
/// `nc_cur`-length runs.
fn pack_b(b: &[f64], k: usize, n: usize) -> Vec<f64> {
    let mut packed = vec![0.0; k * n];
    for kb in (0..k).step_by(KC) {
        let kc = KC.min(k - kb);
        let stripe = &mut packed[kb * n..kb * n + kc * n];
        for jb in (0..n).step_by(NC) {
            let nc = NC.min(n - jb);
            let panel = &mut stripe[kc * jb..kc * jb + kc * nc];
            for kk in 0..kc {
                let src = &b[(kb + kk) * n + jb..(kb + kk) * n + jb + nc];
                panel[kk * nc..(kk + 1) * nc].copy_from_slice(src);
            }
        }
    }
    packed
}

/// The `axpy`-sweep fallback for output-row tails: accumulates one `C` row
/// segment against a packed panel, `k` ascending, with the naive loop's
/// zero-skip.
#[inline]
fn panel_row_axpy(a_seg: &[f64], panel: &[f64], c_seg: &mut [f64], nc: usize) {
    for (kk, &aik) in a_seg.iter().enumerate() {
        // Zero-skip mirrors the naive loop exactly (it has the same skip),
        // so blocked and naive stay bit-identical; like the naive loop it
        // assumes finite inputs.
        if aik != 0.0 {
            axpy(c_seg, aik, &panel[kk * nc..kk * nc + nc]);
        }
    }
}

/// 4×8 register microkernel: accumulates the `MR × NR` block of `C` at
/// column `j0` of the panel across the full `kc` extent.
///
/// The block lives in `acc` (registers) for the whole `kk` loop, so `C`
/// traffic drops from one load+store per `k` iteration to one per stripe.
/// Each element still receives its `a_ik · b_kj` contributions one at a
/// time in ascending `k` order, so the result is numerically identical
/// (`==` per element) to the `axpy` sweep and the naive loop. The naive
/// loop's zero-skip is *not* replicated here — a straight-line inner loop
/// is what lets the 32 multiply-adds vectorize — and for the finite inputs
/// every kernel assumes, adding an exact-zero product can only flip the
/// sign of an exact zero, never change a value.
#[inline]
fn microkernel_4x8(
    a_rows: [&[f64]; MR],
    panel: &[f64],
    nc: usize,
    j0: usize,
    acc: &mut [[f64; NR]; MR],
) {
    let [a0, a1, a2, a3] = a_rows;
    let kc = a0.len();
    debug_assert!(a1.len() == kc && a2.len() == kc && a3.len() == kc);
    for (kk, (((&a0k, &a1k), &a2k), &a3k)) in a0
        .iter()
        .zip(a1.iter())
        .zip(a2.iter())
        .zip(a3.iter())
        .enumerate()
    {
        let b: &[f64; NR] = panel[kk * nc + j0..kk * nc + j0 + NR]
            .try_into()
            .expect("panel row block is exactly NR wide");
        let av = [a0k, a1k, a2k, a3k];
        for (row_acc, &ark) in acc.iter_mut().zip(av.iter()) {
            for (o, &bv) in row_acc.iter_mut().zip(b.iter()) {
                *o = fmadd(ark, bv, *o);
            }
        }
    }
}

/// Cache-blocked, transpose-packed `C = A · B` over row-major slices.
///
/// `a` is `m × k`, `b` is `k × n`, `c` is `m × n` and must be zeroed.
pub(crate) fn matmul_blocked(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let packed = pack_b(b, k, n);

    let row_block = |row0: usize, c_chunk: &mut [f64]| {
        let rows = c_chunk.len() / n;
        for kb in (0..k).step_by(KC) {
            let kc = KC.min(k - kb);
            let stripe = &packed[kb * n..kb * n + kc * n];
            let mut i = 0;
            // Full 4-row blocks ride the register microkernel.
            while i + MR <= rows {
                let a_rows: [&[f64]; MR] = std::array::from_fn(|r| {
                    let base = (row0 + i + r) * k + kb;
                    &a[base..base + kc]
                });
                for jb in (0..n).step_by(NC) {
                    let nc = NC.min(n - jb);
                    let panel = &stripe[kc * jb..kc * jb + kc * nc];
                    let mut j = 0;
                    while j + NR <= nc {
                        let mut acc = [[0.0f64; NR]; MR];
                        for (r, row_acc) in acc.iter_mut().enumerate() {
                            let base = (i + r) * n + jb + j;
                            row_acc.copy_from_slice(&c_chunk[base..base + NR]);
                        }
                        microkernel_4x8(a_rows, panel, nc, j, &mut acc);
                        for (r, row_acc) in acc.iter().enumerate() {
                            let base = (i + r) * n + jb + j;
                            c_chunk[base..base + NR].copy_from_slice(row_acc);
                        }
                        j += NR;
                    }
                    // Column tail (< NR): per-row axpy sweep, same k order.
                    if j < nc {
                        for r in 0..MR {
                            let c_seg = &mut c_chunk[(i + r) * n + jb + j..(i + r) * n + jb + nc];
                            for (kk, &aik) in a_rows[r].iter().enumerate() {
                                if aik != 0.0 {
                                    axpy(c_seg, aik, &panel[kk * nc + j..kk * nc + nc]);
                                }
                            }
                        }
                    }
                }
                i += MR;
            }
            // Row tail (< MR): the original axpy sweep.
            for i in i..rows {
                let a_seg = &a[(row0 + i) * k + kb..(row0 + i) * k + kb + kc];
                for jb in (0..n).step_by(NC) {
                    let nc = NC.min(n - jb);
                    let panel = &stripe[kc * jb..kc * jb + kc * nc];
                    let c_seg = &mut c_chunk[i * n + jb..i * n + jb + nc];
                    panel_row_axpy(a_seg, panel, c_seg, nc);
                }
            }
        }
    };

    let pieces = randrecon_parallel::max_threads();
    if m * k * n >= PARALLEL_MIN_FLOPS && pieces > 1 {
        randrecon_parallel::parallel_row_chunks_mut(c, n, 8, pieces, row_block);
    } else {
        row_block(0, c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_sequential() {
        let a: Vec<f64> = (0..131).map(|i| (i as f64) * 0.25 - 3.0).collect();
        let b: Vec<f64> = (0..131).map(|i| 1.5 - (i as f64) * 0.125).collect();
        let expected: f64 = a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum();
        assert!((dot(&a, &b) - expected).abs() < 1e-9 * expected.abs().max(1.0));
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(&mut y, 2.0, &x);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn blocked_matches_naive_on_odd_shapes() {
        // Shapes straddling the block and register-tile sizes: remainders in
        // k and n, row counts hitting every microkernel row-tail (0..MR), and
        // column counts hitting every column-tail (0..NR).
        for &(m, k, n) in &[
            (3usize, 70usize, 300usize),
            (17, 65, 257),
            (40, 128, 256),
            (4, 64, 8),
            (5, 64, 9),
            (6, 67, 11),
            (7, 130, 13),
            (8, 64, 15),
            (9, 33, 259),
            (1, 64, 261),
            (2, 200, 37),
        ] {
            let a: Vec<f64> = (0..m * k)
                .map(|i| ((i * 31 % 97) as f64) / 9.0 - 5.0)
                .collect();
            let b: Vec<f64> = (0..k * n)
                .map(|i| ((i * 17 % 89) as f64) / 7.0 - 6.0)
                .collect();
            let mut c = vec![0.0; m * n];
            matmul_blocked(&a, &b, &mut c, m, k, n);
            // Naive i-k-j with the same k-ascending accumulation order,
            // through the same `fmadd` step so the pin holds in both the
            // bit-exact default profile and the contracted `fma` one.
            let mut expected = vec![0.0; m * n];
            for i in 0..m {
                for kk in 0..k {
                    let aik = a[i * k + kk];
                    for j in 0..n {
                        expected[i * n + j] = fmadd(aik, b[kk * n + j], expected[i * n + j]);
                    }
                }
            }
            for (got, want) in c.iter().zip(expected.iter()) {
                assert_eq!(got, want, "blocked kernel must be bit-identical");
            }
        }
    }

    #[test]
    fn microkernel_zero_skip_matches_naive_on_sparse_input() {
        // Zeros scattered through A exercise the microkernel's zero-skip on
        // every row of the register block.
        let (m, k, n) = (12usize, 70usize, 40usize);
        let a: Vec<f64> = (0..m * k)
            .map(|i| {
                if i % 3 == 0 {
                    0.0
                } else {
                    ((i * 31 % 97) as f64) / 9.0 - 5.0
                }
            })
            .collect();
        let b: Vec<f64> = (0..k * n)
            .map(|i| ((i * 17 % 89) as f64) / 7.0 - 6.0)
            .collect();
        let mut c = vec![0.0; m * n];
        matmul_blocked(&a, &b, &mut c, m, k, n);
        let mut expected = vec![0.0; m * n];
        for i in 0..m {
            for kk in 0..k {
                let aik = a[i * k + kk];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..n {
                    expected[i * n + j] = fmadd(aik, b[kk * n + j], expected[i * n + j]);
                }
            }
        }
        for (got, want) in c.iter().zip(expected.iter()) {
            assert_eq!(got, want, "zero-skip path must stay bit-identical");
        }
    }
}
