//! Modified Gram–Schmidt orthonormalization.
//!
//! Section 7.1 of the paper builds its synthetic workloads by (1) choosing an
//! eigenvalue spectrum, (2) generating a random orthogonal matrix `Q` with the
//! Gram–Schmidt process, and (3) forming the covariance `C = Q Λ Qᵀ`. This
//! module provides exactly that Gram–Schmidt step (in the numerically
//! preferable *modified* formulation).

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::vector;

/// Orthonormalizes the columns of `a` with modified Gram–Schmidt.
///
/// Returns a matrix with the same shape whose columns are orthonormal and span
/// the same space (assuming the input columns are linearly independent).
/// Returns an error if a column becomes (numerically) linearly dependent.
pub fn orthonormalize_columns(a: &Matrix) -> Result<Matrix> {
    let (rows, cols) = a.shape();
    if rows == 0 || cols == 0 {
        return Err(LinalgError::Empty {
            op: "gram-schmidt orthonormalization",
        });
    }
    if cols > rows {
        return Err(LinalgError::InvalidData {
            reason: format!("cannot orthonormalize {cols} columns in {rows}-dimensional space"),
        });
    }
    let mut columns: Vec<Vec<f64>> = (0..cols).map(|j| a.column(j)).collect();
    for j in 0..cols {
        // Subtract projections onto all previously orthonormalized columns.
        for k in 0..j {
            let proj = vector::dot(&columns[k], &columns[j])?;
            let qk = columns[k].clone();
            vector::axpy(-proj, &qk, &mut columns[j])?;
        }
        let norm = vector::norm(&columns[j]);
        if norm <= 1e-10 {
            return Err(LinalgError::InvalidData {
                reason: format!("column {j} is linearly dependent on earlier columns"),
            });
        }
        for v in &mut columns[j] {
            *v /= norm;
        }
    }
    Matrix::from_columns(&columns)
}

/// Measures the worst-case deviation of `QᵀQ` from the identity.
///
/// Re-exported here (as well as in the QR module) because the synthetic data
/// generator uses it to validate the bases it builds.
pub fn orthonormality_defect(q: &Matrix) -> f64 {
    crate::decomposition::orthonormality_defect(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orthonormalizes_independent_columns() {
        let a = Matrix::from_rows(&[
            &[1.0, 1.0, 0.0][..],
            &[1.0, 0.0, 1.0][..],
            &[0.0, 1.0, 1.0][..],
        ])
        .unwrap();
        let q = orthonormalize_columns(&a).unwrap();
        assert!(orthonormality_defect(&q) < 1e-12);
    }

    #[test]
    fn preserves_first_direction() {
        let a = Matrix::from_rows(&[&[2.0, 1.0][..], &[0.0, 1.0][..]]).unwrap();
        let q = orthonormalize_columns(&a).unwrap();
        // First column should just be the normalized first input column.
        assert!((q.get(0, 0) - 1.0).abs() < 1e-12);
        assert!(q.get(1, 0).abs() < 1e-12);
    }

    #[test]
    fn rejects_dependent_columns() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[2.0, 4.0][..]]).unwrap();
        assert!(orthonormalize_columns(&a).is_err());
    }

    #[test]
    fn rejects_wide_and_empty() {
        assert!(orthonormalize_columns(&Matrix::zeros(2, 3)).is_err());
        assert!(orthonormalize_columns(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn tall_matrix_orthonormal_basis() {
        let a = Matrix::from_rows(&[
            &[1.0, 1.0][..],
            &[1.0, 0.0][..],
            &[0.0, 2.0][..],
            &[1.0, -1.0][..],
        ])
        .unwrap();
        let q = orthonormalize_columns(&a).unwrap();
        assert_eq!(q.shape(), (4, 2));
        assert!(orthonormality_defect(&q) < 1e-12);
    }
}
