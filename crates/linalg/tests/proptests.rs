//! Property-based tests for the linear-algebra substrate.
//!
//! These exercise the algebraic invariants the reconstruction attacks rely on:
//! transpose/involution, associativity-ish identities, factorization
//! round-trips, spectral properties, and orthonormality of Gram–Schmidt bases.

use proptest::prelude::*;
use randrecon_linalg::decomposition::{orthonormality_defect, Cholesky, Lu, SymmetricEigen};
use randrecon_linalg::gram_schmidt::orthonormalize_columns;
use randrecon_linalg::Matrix;

/// Strategy: a small matrix with entries in [-10, 10].
fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_flat(rows, cols, data).unwrap())
}

/// Strategy: a symmetric positive-definite matrix built as A Aᵀ + εI.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    small_matrix(n, n).prop_map(move |a| {
        let aat = a.matmul(&a.transpose()).unwrap();
        let eye = Matrix::identity(n).scale(0.5);
        aat.add(&eye).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(m in small_matrix(4, 3)) {
        prop_assert!(m.transpose().transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn transpose_of_product_reverses((a, b) in (small_matrix(3, 4), small_matrix(4, 2))) {
        let left = a.matmul(&b).unwrap().transpose();
        let right = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn addition_commutes((a, b) in (small_matrix(3, 3), small_matrix(3, 3))) {
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert!(ab.approx_eq(&ba, 1e-12));
    }

    #[test]
    fn scale_distributes_over_add((a, b) in (small_matrix(3, 3), small_matrix(3, 3))) {
        let s = 2.5;
        let left = a.add(&b).unwrap().scale(s);
        let right = a.scale(s).add(&b.scale(s)).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn trace_is_linear((a, b) in (small_matrix(4, 4), small_matrix(4, 4))) {
        let sum_trace = a.add(&b).unwrap().trace();
        prop_assert!((sum_trace - (a.trace() + b.trace())).abs() < 1e-9);
    }

    #[test]
    fn cholesky_roundtrip(a in spd_matrix(4)) {
        let ch = Cholesky::new(&a).unwrap();
        let rebuilt = ch.l().matmul(&ch.l().transpose()).unwrap();
        prop_assert!(rebuilt.approx_eq(&a, 1e-7 * a.max_abs().max(1.0)));
    }

    #[test]
    fn cholesky_solve_is_correct(a in spd_matrix(4), b in proptest::collection::vec(-5.0f64..5.0, 4)) {
        let ch = Cholesky::new(&a).unwrap();
        let x = ch.solve_vec(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (got, want) in ax.iter().zip(b.iter()) {
            prop_assert!((got - want).abs() < 1e-6);
        }
    }

    #[test]
    fn lu_inverse_roundtrip(a in spd_matrix(4)) {
        // SPD matrices are invertible, so LU must succeed on them too.
        let inv = Lu::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        prop_assert!(prod.approx_eq(&Matrix::identity(4), 1e-6));
    }

    #[test]
    fn eigen_recomposes_and_sorts(a in spd_matrix(5)) {
        let eig = SymmetricEigen::new(&a).unwrap();
        prop_assert!(eig.recompose().approx_eq(&a, 1e-6 * a.max_abs().max(1.0)));
        for w in eig.eigenvalues.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
        // SPD => all eigenvalues positive.
        prop_assert!(eig.eigenvalues.iter().all(|&l| l > 0.0));
        // Trace preserved.
        prop_assert!((eig.total_variance() - a.trace()).abs() < 1e-6);
    }

    #[test]
    fn eigenvectors_are_orthonormal(a in spd_matrix(5)) {
        let eig = SymmetricEigen::new(&a).unwrap();
        prop_assert!(orthonormality_defect(&eig.eigenvectors) < 1e-8);
    }

    #[test]
    fn gram_schmidt_produces_orthonormal_columns(a in small_matrix(6, 4)) {
        // Random matrices are almost surely full rank; skip degenerate draws.
        if let Ok(q) = orthonormalize_columns(&a) {
            prop_assert!(orthonormality_defect(&q) < 1e-8);
            prop_assert_eq!(q.shape(), (6, 4));
        }
    }

    #[test]
    fn matvec_matches_matmul(a in small_matrix(4, 3), v in proptest::collection::vec(-5.0f64..5.0, 3)) {
        let as_matrix = Matrix::from_columns(std::slice::from_ref(&v)).unwrap();
        let prod = a.matmul(&as_matrix).unwrap();
        let direct = a.matvec(&v).unwrap();
        for (i, &d) in direct.iter().enumerate() {
            prop_assert!((prod.get(i, 0) - d).abs() < 1e-9);
        }
    }

    /// The blocked/parallel matmul agrees with the naive triple loop to 1e-10
    /// across random shapes — including shapes large enough to engage the
    /// packed kernel and its panel remainders.
    #[test]
    fn blocked_matmul_matches_naive(
        m in 1usize..48,
        k in 1usize..96,
        n in 1usize..320,
        seed in 0u64..1_000_000,
    ) {
        let a = pseudo_random_matrix(m, k, seed);
        let b = pseudo_random_matrix(k, n, seed ^ 0xABCD_EF01);
        let blocked = a.matmul(&b).unwrap();
        let naive = a.matmul_naive(&b).unwrap();
        prop_assert!(blocked.approx_eq(&naive, 1e-10), "shape {m}x{k}x{n}");
    }

    /// The register microkernel agrees with `matmul_naive` to the last bit
    /// (`==` per element) on shapes that are guaranteed to cross the
    /// blocked-kernel threshold. m, k and n are decomposed so every
    /// microkernel tail is exercised: the row count sweeps all residues mod
    /// the 4-row register block, the column count all residues mod the
    /// 8-column block, and k straddles the 64-row packing stripe.
    #[test]
    fn microkernel_matmul_is_exact_on_odd_shapes(
        row_blocks in 1usize..9,
        row_tail in 0usize..4,
        col_blocks in 32usize..38,
        col_tail in 0usize..8,
        k in 65usize..140,
        seed in 0u64..1_000_000,
    ) {
        let m = 4 * row_blocks + row_tail;
        let n = 8 * col_blocks + col_tail;
        // Smallest case is 4 × 65 × 256 ≈ 67 K multiply-adds, comfortably
        // above the 32 K blocked-dispatch threshold.
        let a = pseudo_random_matrix(m, k, seed);
        let b = pseudo_random_matrix(k, n, seed ^ 0x5EED_BEEF);
        let blocked = a.matmul(&b).unwrap();
        let naive = a.matmul_naive(&b).unwrap();
        // Default build: exact (`==` per element). Under the opt-in `fma`
        // feature the microkernel's multiply-adds are contracted while the
        // naive loop's are not, so the pin relaxes to the contraction's
        // worst-case drift: one skipped rounding (½ ulp of the product) per
        // accumulation step, k ≤ 140 steps on O(1) values ⇒ ≲ 1e-13.
        let tol = if cfg!(feature = "fma") { 1e-12 } else { 0.0 };
        prop_assert!(blocked.approx_eq(&naive, tol), "shape {m}x{k}x{n}");
    }

    /// The fused A·Bᵀ kernel agrees with materializing the transpose.
    #[test]
    fn matmul_transpose_b_matches_naive(
        m in 1usize..32,
        k in 1usize..64,
        n in 1usize..64,
        seed in 0u64..1_000_000,
    ) {
        let a = pseudo_random_matrix(m, k, seed);
        let b = pseudo_random_matrix(n, k, seed ^ 0x1234_5678);
        let fused = a.matmul_transpose_b(&b).unwrap();
        let explicit = a.matmul_naive(&b.transpose()).unwrap();
        prop_assert!(fused.approx_eq(&explicit, 1e-10), "shape {m}x{k}x{n}");
    }

    /// `Cholesky::solve_matrix` agrees with the naive column-by-column solve
    /// to 1e-10 across random SPD systems and right-hand-side widths.
    #[test]
    fn cholesky_solve_matrix_matches_columnwise(
        n in 1usize..24,
        rhs in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        let base = pseudo_random_matrix(n, n, seed);
        let mut spd = base.matmul_transpose_b(&base).unwrap();
        for d in 0..n {
            spd[(d, d)] += 0.5 * n as f64;
        }
        let b = pseudo_random_matrix(n, rhs, seed ^ 0x9E37_79B9);
        let ch = Cholesky::new(&spd).unwrap();
        let fast = ch.solve_matrix(&b).unwrap();
        // Naive route: one vector solve per column.
        let mut columnwise = Matrix::zeros(n, rhs);
        for j in 0..rhs {
            let x = ch.solve_vec(&b.column(j)).unwrap();
            columnwise.set_column(j, &x);
        }
        let scale = columnwise.max_abs().max(1.0);
        prop_assert!(fast.approx_eq(&columnwise, 1e-10 * scale));
        // And the solution actually solves the system.
        let residual = spd.matmul(&fast).unwrap();
        prop_assert!(residual.approx_eq(&b, 1e-7 * b.max_abs().max(1.0)));
    }
}

/// Deterministic pseudo-random matrix for shapes too big to ship through a
/// `proptest::collection::vec` strategy efficiently.
fn pseudo_random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed ^ 0x5851_F42D_4C95_7F2D;
    Matrix::from_fn(rows, cols, |_, _| {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64) * 20.0 - 10.0
    })
}
