//! Property-based tests for the linear-algebra substrate.
//!
//! These exercise the algebraic invariants the reconstruction attacks rely on:
//! transpose/involution, associativity-ish identities, factorization
//! round-trips, spectral properties, and orthonormality of Gram–Schmidt bases.

use proptest::prelude::*;
use randrecon_linalg::decomposition::{orthonormality_defect, Cholesky, Lu, SymmetricEigen};
use randrecon_linalg::gram_schmidt::orthonormalize_columns;
use randrecon_linalg::Matrix;

/// Strategy: a small matrix with entries in [-10, 10].
fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_flat(rows, cols, data).unwrap())
}

/// Strategy: a symmetric positive-definite matrix built as A Aᵀ + εI.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    small_matrix(n, n).prop_map(move |a| {
        let aat = a.matmul(&a.transpose()).unwrap();
        let eye = Matrix::identity(n).scale(0.5);
        aat.add(&eye).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(m in small_matrix(4, 3)) {
        prop_assert!(m.transpose().transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn transpose_of_product_reverses((a, b) in (small_matrix(3, 4), small_matrix(4, 2))) {
        let left = a.matmul(&b).unwrap().transpose();
        let right = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn addition_commutes((a, b) in (small_matrix(3, 3), small_matrix(3, 3))) {
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert!(ab.approx_eq(&ba, 1e-12));
    }

    #[test]
    fn scale_distributes_over_add((a, b) in (small_matrix(3, 3), small_matrix(3, 3))) {
        let s = 2.5;
        let left = a.add(&b).unwrap().scale(s);
        let right = a.scale(s).add(&b.scale(s)).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn trace_is_linear((a, b) in (small_matrix(4, 4), small_matrix(4, 4))) {
        let sum_trace = a.add(&b).unwrap().trace();
        prop_assert!((sum_trace - (a.trace() + b.trace())).abs() < 1e-9);
    }

    #[test]
    fn cholesky_roundtrip(a in spd_matrix(4)) {
        let ch = Cholesky::new(&a).unwrap();
        let rebuilt = ch.l().matmul(&ch.l().transpose()).unwrap();
        prop_assert!(rebuilt.approx_eq(&a, 1e-7 * a.max_abs().max(1.0)));
    }

    #[test]
    fn cholesky_solve_is_correct(a in spd_matrix(4), b in proptest::collection::vec(-5.0f64..5.0, 4)) {
        let ch = Cholesky::new(&a).unwrap();
        let x = ch.solve_vec(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (got, want) in ax.iter().zip(b.iter()) {
            prop_assert!((got - want).abs() < 1e-6);
        }
    }

    #[test]
    fn lu_inverse_roundtrip(a in spd_matrix(4)) {
        // SPD matrices are invertible, so LU must succeed on them too.
        let inv = Lu::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        prop_assert!(prod.approx_eq(&Matrix::identity(4), 1e-6));
    }

    #[test]
    fn eigen_recomposes_and_sorts(a in spd_matrix(5)) {
        let eig = SymmetricEigen::new(&a).unwrap();
        prop_assert!(eig.recompose().approx_eq(&a, 1e-6 * a.max_abs().max(1.0)));
        for w in eig.eigenvalues.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
        // SPD => all eigenvalues positive.
        prop_assert!(eig.eigenvalues.iter().all(|&l| l > 0.0));
        // Trace preserved.
        prop_assert!((eig.total_variance() - a.trace()).abs() < 1e-6);
    }

    #[test]
    fn eigenvectors_are_orthonormal(a in spd_matrix(5)) {
        let eig = SymmetricEigen::new(&a).unwrap();
        prop_assert!(orthonormality_defect(&eig.eigenvectors) < 1e-8);
    }

    #[test]
    fn gram_schmidt_produces_orthonormal_columns(a in small_matrix(6, 4)) {
        // Random matrices are almost surely full rank; skip degenerate draws.
        if let Ok(q) = orthonormalize_columns(&a) {
            prop_assert!(orthonormality_defect(&q) < 1e-8);
            prop_assert_eq!(q.shape(), (6, 4));
        }
    }

    #[test]
    fn matvec_matches_matmul(a in small_matrix(4, 3), v in proptest::collection::vec(-5.0f64..5.0, 3)) {
        let as_matrix = Matrix::from_columns(&[v.clone()]).unwrap();
        let prod = a.matmul(&as_matrix).unwrap();
        let direct = a.matvec(&v).unwrap();
        for i in 0..4 {
            prop_assert!((prod.get(i, 0) - direct[i]).abs() < 1e-9);
        }
    }
}
