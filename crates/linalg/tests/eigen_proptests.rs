//! Property tests pinning every spectral path of the symmetric eigensolver.
//!
//! The Householder + implicit-shift QL pipeline replaced cyclic Jacobi on all
//! spectral consumers (PCA-DR, spectral filtering, covariance clipping,
//! bandwidth selection, theory curves), so this suite is the contract that
//! makes the swap safe:
//!
//! * `A·v = λ·v` residuals at most `1e-9 · ‖A‖` on random SPD, indefinite,
//!   and rank-deficient inputs;
//! * orthonormality defect of the eigenvector basis at most `1e-10`;
//! * eigenvalues agree with the pinned Jacobi reference ([`eigen_jacobi`])
//!   to `1e-9` (relative to the matrix scale);
//! * clustered spectra — eigenvalues equal to within `1e-12` — do not lose
//!   eigenvector orthogonality;
//! * deterministic large-m cases up to 512 (the 256/512 Jacobi cross-checks
//!   are `#[ignore]`d and run by the release `--ignored` CI job).
//!
//! Since the QL chase applies its Givens rotations to `Qᵀ` in wave-front
//! batches (buffered rotations replayed over cache-resident column panels),
//! every Jacobi cross-check here also pins the wave kernel: the batched
//! application is bit-identical to the scalar two-row kernel (asserted
//! directly by the unit test in `decomposition::tridiagonal`), so any drift
//! the waves introduced would surface against the Jacobi reference too.

use proptest::prelude::*;
use randrecon_linalg::decomposition::{
    eigen_jacobi, orthonormality_defect, recompose, SymmetricEigen,
};
use randrecon_linalg::gram_schmidt::orthonormalize_columns;
use randrecon_linalg::Matrix;

/// Asserts the full eigensolver contract for one decomposition of `a`.
fn assert_spectral_contract(a: &Matrix, eig: &SymmetricEigen, label: &str) {
    let n = a.rows();
    let scale = a.frobenius_norm().max(1.0);
    // Descending order.
    for w in eig.eigenvalues.windows(2) {
        assert!(w[0] >= w[1], "{label}: eigenvalues not sorted descending");
    }
    // Orthonormal basis.
    let defect = orthonormality_defect(&eig.eigenvectors);
    assert!(defect <= 1e-10, "{label}: orthonormality defect {defect}");
    // A v = λ v for every eigenpair.
    for k in 0..n {
        let v = eig.eigenvectors.column(k);
        let av = a.matvec(&v).unwrap();
        let mut residual_sq = 0.0;
        for (x, &vi) in av.iter().zip(v.iter()) {
            let r = x - eig.eigenvalues[k] * vi;
            residual_sq += r * r;
        }
        let residual = residual_sq.sqrt();
        assert!(
            residual <= 1e-9 * scale,
            "{label}: residual {residual} for eigenpair {k} (scale {scale})"
        );
    }
    // Trace is preserved.
    let trace_err = (eig.total_variance() - a.trace()).abs();
    assert!(
        trace_err <= 1e-9 * scale,
        "{label}: trace drift {trace_err}"
    );
}

/// Asserts that the QL path matches the pinned Jacobi reference eigenvalue by
/// eigenvalue.
fn assert_matches_jacobi(a: &Matrix, eig: &SymmetricEigen, label: &str) {
    let scale = a.frobenius_norm().max(1.0);
    let jac = eigen_jacobi(a).unwrap();
    for (k, (l_ql, l_j)) in eig
        .eigenvalues
        .iter()
        .zip(jac.eigenvalues.iter())
        .enumerate()
    {
        assert!(
            (l_ql - l_j).abs() <= 1e-9 * scale,
            "{label}: eigenvalue {k} differs from Jacobi: {l_ql} vs {l_j}"
        );
    }
}

/// Strategy: a random symmetric (generally indefinite) matrix of size `n`.
fn symmetric_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, n * n)
        .prop_map(move |data| Matrix::from_flat(n, n, data).unwrap().symmetrize().unwrap())
}

/// Strategy: a symmetric positive-definite matrix built as `A Aᵀ + εI`.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, n * n).prop_map(move |data| {
        let a = Matrix::from_flat(n, n, data).unwrap();
        let aat = a.matmul_transpose_b(&a).unwrap();
        aat.add(&Matrix::identity(n).scale(0.5)).unwrap()
    })
}

/// Strategy: a rank-deficient PSD matrix `B Bᵀ` with `B` of shape `n × k`,
/// `k < n` (at least `n − k` exactly repeated zero eigenvalues).
fn rank_deficient_matrix(n: usize, k: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-5.0f64..5.0, n * k).prop_map(move |data| {
        let b = Matrix::from_flat(n, k, data).unwrap();
        b.matmul_transpose_b(&b).unwrap()
    })
}

/// Builds a symmetric matrix with a prescribed spectrum from random raw data:
/// orthonormalize the raw square matrix into a basis `Q`, then recompose
/// `Q Λ Qᵀ`. Returns `None` when the random draw was too degenerate to
/// orthonormalize (essentially never at these sizes).
fn with_spectrum(raw: Vec<f64>, spectrum: &[f64]) -> Option<Matrix> {
    let n = spectrum.len();
    let candidate = Matrix::from_flat(n, n, raw).unwrap();
    let q = orthonormalize_columns(&candidate).ok()?;
    Some(recompose(spectrum, &q))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn spd_matrices_satisfy_contract(a in spd_matrix(16)) {
        let eig = SymmetricEigen::householder_ql(&a).unwrap();
        assert_spectral_contract(&a, &eig, "spd-16");
        assert_matches_jacobi(&a, &eig, "spd-16");
        // All eigenvalues of an SPD matrix are positive.
        prop_assert!(eig.eigenvalues.iter().all(|&l| l > 0.0));
    }

    #[test]
    fn symmetric_indefinite_matrices_satisfy_contract(a in symmetric_matrix(20)) {
        let eig = SymmetricEigen::householder_ql(&a).unwrap();
        assert_spectral_contract(&a, &eig, "indefinite-20");
        assert_matches_jacobi(&a, &eig, "indefinite-20");
    }

    #[test]
    fn small_matrices_agree_with_dispatch(a in symmetric_matrix(7)) {
        // Below the dispatch threshold `new` routes to Jacobi; the explicit QL
        // path must still satisfy the same contract and agree.
        let via_new = SymmetricEigen::new(&a).unwrap();
        let via_ql = SymmetricEigen::householder_ql(&a).unwrap();
        assert_spectral_contract(&a, &via_new, "dispatch-7-new");
        assert_spectral_contract(&a, &via_ql, "dispatch-7-ql");
        let scale = a.frobenius_norm().max(1.0);
        for (x, y) in via_new.eigenvalues.iter().zip(via_ql.eigenvalues.iter()) {
            prop_assert!((x - y).abs() <= 1e-9 * scale);
        }
    }

    #[test]
    fn rank_deficient_matrices_satisfy_contract(a in rank_deficient_matrix(18, 5)) {
        let eig = SymmetricEigen::householder_ql(&a).unwrap();
        assert_spectral_contract(&a, &eig, "rank-deficient-18x5");
        assert_matches_jacobi(&a, &eig, "rank-deficient-18x5");
        // At least n − k zero eigenvalues (up to numerical noise).
        let scale = a.frobenius_norm().max(1.0);
        let near_zero = eig
            .eigenvalues
            .iter()
            .filter(|&&l| l.abs() <= 1e-10 * scale)
            .count();
        prop_assert!(near_zero >= 13, "only {near_zero} near-zero eigenvalues");
    }

    #[test]
    fn clustered_eigenvalues_keep_orthogonality(raw in proptest::collection::vec(-1.0f64..1.0, 16 * 16)) {
        // Three clusters whose members differ by at most 1e-12 — the
        // degenerate-subspace case where a sloppy solver loses orthogonality.
        let mut spectrum = vec![100.0; 5];
        spectrum[1] += 1e-12;
        spectrum[2] -= 1e-12;
        spectrum.extend_from_slice(&[1.0, 1.0 + 1e-12, 1.0, 1.0 - 1e-12]);
        spectrum.extend(std::iter::repeat_n(1e-4, 16 - spectrum.len()));
        if let Some(a) = with_spectrum(raw, &spectrum) {
            let eig = SymmetricEigen::householder_ql(&a).unwrap();
            assert_spectral_contract(&a, &eig, "clustered-16");
            // The recovered spectrum matches the prescribed one.
            let mut want = spectrum.clone();
            want.sort_by(|a, b| b.partial_cmp(a).unwrap());
            for (got, want) in eig.eigenvalues.iter().zip(want.iter()) {
                prop_assert!((got - want).abs() <= 1e-9 * 100.0);
            }
        }
    }

    #[test]
    fn identical_eigenvalues_yield_orthonormal_basis(raw in proptest::collection::vec(-1.0f64..1.0, 12 * 12)) {
        // A scaled identity in disguise: every eigenvalue exactly equal.
        if let Some(a) = with_spectrum(raw, &[7.5; 12]) {
            let eig = SymmetricEigen::householder_ql(&a).unwrap();
            assert_spectral_contract(&a, &eig, "flat-12");
        }
    }
}

/// Deterministic pseudo-random entries (SplitMix64) so the large-m cases are
/// reproducible without proptest.
fn splitmix_entries(len: usize, mut state: u64) -> Vec<f64> {
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

/// A deterministic covariance-like matrix at dimension `m`: a paper-shaped
/// spectrum (a few principal components at 400, a bulk at 4) in a random
/// orthonormal basis.
fn covariance_workload(m: usize, seed: u64) -> Matrix {
    let mut spectrum = vec![400.0; m / 10 + 1];
    spectrum.extend(std::iter::repeat_n(4.0, m - spectrum.len()));
    with_spectrum(splitmix_entries(m * m, seed), &spectrum).expect("orthonormalization succeeds")
}

#[test]
fn m64_contract_and_jacobi_agreement() {
    let a = covariance_workload(64, 1);
    let eig = SymmetricEigen::new(&a).unwrap();
    assert_spectral_contract(&a, &eig, "m64");
    assert_matches_jacobi(&a, &eig, "m64");
}

#[test]
fn m128_contract_and_jacobi_agreement() {
    let a = covariance_workload(128, 2);
    let eig = SymmetricEigen::new(&a).unwrap();
    assert_spectral_contract(&a, &eig, "m128");
    assert_matches_jacobi(&a, &eig, "m128");
}

#[test]
fn m256_contract() {
    let a = covariance_workload(256, 3);
    let eig = SymmetricEigen::new(&a).unwrap();
    assert_spectral_contract(&a, &eig, "m256");
}

// The Jacobi cross-checks at m ∈ {256, 512} run O(m³ · sweeps) reference
// decompositions — minutes in debug builds, seconds in release — so they ride
// in the release `cargo test --release -- --ignored` CI job.

#[test]
#[ignore = "slow: Jacobi reference at m=256; run with --release -- --ignored"]
fn m256_jacobi_agreement_slow() {
    let a = covariance_workload(256, 3);
    let eig = SymmetricEigen::new(&a).unwrap();
    assert_matches_jacobi(&a, &eig, "m256-slow");
}

#[test]
#[ignore = "slow: m=512 spectral contract + Jacobi reference; run with --release -- --ignored"]
fn m512_contract_and_jacobi_agreement_slow() {
    let a = covariance_workload(512, 4);
    let eig = SymmetricEigen::new(&a).unwrap();
    assert_spectral_contract(&a, &eig, "m512");
    assert_matches_jacobi(&a, &eig, "m512");
}
