//! Property-based tests for the randomization schemes.

use proptest::prelude::*;
use randrecon_data::synthetic::{EigenSpectrum, SyntheticDataset};
use randrecon_data::DataTable;
use randrecon_linalg::Matrix;
use randrecon_noise::additive::AdditiveRandomizer;
use randrecon_noise::correlated::{interpolated_spectrum, SimilarityLevel};
use randrecon_noise::randomized_response::RandomizedResponse;
use randrecon_noise::NoiseModel;
use randrecon_stats::rng::seeded_rng;
use randrecon_stats::summary;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Disguising never changes the shape or schema, and subtracting the
    /// original recovers exactly the noise that was reported.
    #[test]
    fn disguise_is_additive(
        n in 2usize..60,
        m in 1usize..8,
        sigma in 0.5f64..20.0,
        seed in 0u64..10_000,
    ) {
        let mut rng = seeded_rng(seed);
        let table = DataTable::from_matrix(Matrix::from_fn(n, m, |_, _| {
            randrecon_stats::rng::standard_normal(&mut rng) * 10.0
        })).unwrap();
        let randomizer = AdditiveRandomizer::gaussian(sigma).unwrap();
        let (disguised, noise) = randomizer.disguise_with_noise(&table, &mut rng).unwrap();
        prop_assert_eq!(disguised.values().shape(), (n, m));
        prop_assert_eq!(disguised.schema(), table.schema());
        let recovered = disguised.values().sub(table.values()).unwrap();
        prop_assert!(recovered.approx_eq(&noise, 1e-12));
    }

    /// The empirical variance of generated i.i.d. noise matches the model's
    /// declared variance for both Gaussian and uniform noise.
    #[test]
    fn noise_variance_matches_model(sigma in 0.5f64..15.0, uniform in proptest::bool::ANY, seed in 0u64..10_000) {
        let randomizer = if uniform {
            AdditiveRandomizer::uniform(sigma).unwrap()
        } else {
            AdditiveRandomizer::gaussian(sigma).unwrap()
        };
        let noise = randomizer.sample_noise(6_000, 2, &mut seeded_rng(seed)).unwrap();
        let var = summary::variance(&noise.column(0));
        let declared = randomizer.model().iid_variance().unwrap();
        prop_assert!((var - declared).abs() / declared < 0.2,
            "variance {var} vs declared {declared}");
        // Zero mean.
        prop_assert!(summary::mean(&noise.column(1)).abs() < 0.3 * sigma);
    }

    /// Interpolated noise spectra always preserve the requested total variance
    /// and stay strictly positive, for any similarity level.
    #[test]
    fn interpolated_spectrum_total_is_invariant(
        alpha in -1.0f64..1.0,
        total in 1.0f64..500.0,
        m in 2usize..20,
        seed in 0u64..1_000,
    ) {
        let spectrum = EigenSpectrum::principal_plus_small((m / 2).max(1), 100.0, m, 1.0).unwrap();
        let _ = seed;
        let level = SimilarityLevel::new(alpha).unwrap();
        let noise_spec = interpolated_spectrum(spectrum.values(), level, total).unwrap();
        prop_assert_eq!(noise_spec.len(), m);
        prop_assert!(noise_spec.iter().all(|&l| l > 0.0));
        let sum: f64 = noise_spec.iter().sum();
        prop_assert!((sum - total).abs() < 1e-9 * total);
    }

    /// The noise covariance reported by the model always matches the noise the
    /// randomizer actually adds (Theorem 5.1 / 8.2 both rely on this).
    #[test]
    fn model_covariance_is_truthful(seed in 0u64..3_000, ratio in 0.05f64..0.5) {
        let spectrum = EigenSpectrum::principal_plus_small(2, 80.0, 4, 2.0).unwrap();
        let ds = SyntheticDataset::generate(&spectrum, 6_000, seed).unwrap();
        let randomizer = AdditiveRandomizer::correlated(ds.covariance.scale(ratio)).unwrap();
        let noise = randomizer.sample_noise(6_000, 4, &mut seeded_rng(seed + 9)).unwrap();
        let empirical = summary::covariance_matrix(&noise);
        let declared = randomizer.model().covariance(4).unwrap();
        let rel = empirical.sub(&declared).unwrap().frobenius_norm() / declared.frobenius_norm();
        prop_assert!(rel < 0.25, "relative covariance error {rel}");
    }

    /// Randomized response: the proportion estimator inverts the expected
    /// observation for every truth probability and true proportion.
    #[test]
    fn randomized_response_estimator_inverts(p in 0.51f64..0.99, pi in 0.0f64..1.0) {
        let rr = RandomizedResponse::new(p).unwrap();
        let observed = p * pi + (1.0 - p) * (1.0 - pi);
        let est = rr.estimate_proportion(observed).unwrap();
        prop_assert!((est - pi).abs() < 1e-9);
    }

    /// The noise model constructors reject invalid parameters for every input.
    #[test]
    fn invalid_sigmas_always_rejected(sigma in -100.0f64..0.0) {
        prop_assert!(NoiseModel::independent_gaussian(sigma).is_err());
        prop_assert!(NoiseModel::independent_uniform(sigma).is_err());
        prop_assert!(AdditiveRandomizer::gaussian(sigma).is_err());
        prop_assert!(AdditiveRandomizer::uniform(sigma).is_err());
    }
}
