//! Construction of correlated-noise covariances (Section 8 / Experiment 4).
//!
//! The improved randomization scheme draws noise whose correlation structure
//! resembles the original data. Experiment 4 controls *how much* it resembles
//! the data by fixing the noise eigenvectors to the data's eigenvectors and
//! sweeping the noise eigenvalues between three regimes:
//!
//! * **similar** — noise eigenvalues proportional to the data's eigenvalues, so
//!   noise concentrates on the same principal components as the data
//!   (leftmost points of Figure 4, best privacy);
//! * **independent-equivalent** — flat noise spectrum, which with any
//!   orthonormal basis is exactly `σ² I`, i.e. the original i.i.d. scheme
//!   (the vertical line in Figure 4);
//! * **anti-similar** — noise eigenvalues proportional to the *reversed* data
//!   spectrum, concentrating the noise on the non-principal components
//!   (rightmost points of Figure 4, worst privacy).
//!
//! [`interpolated_spectrum`] produces noise spectra along that sweep while
//! holding the total noise variance (hence the per-record noise "budget")
//! constant.

use crate::error::{NoiseError, Result};
use randrecon_linalg::decomposition::recompose;
use randrecon_linalg::Matrix;

/// Where along the similar ↔ anti-similar axis a noise spectrum sits.
///
/// `alpha` ranges over `[-1, 1]`:
/// `1` = proportional to the data spectrum (most similar),
/// `0` = flat (equivalent to independent noise),
/// `-1` = proportional to the reversed data spectrum (most dissimilar).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimilarityLevel(f64);

impl SimilarityLevel {
    /// Creates a similarity level, validating `-1 ≤ alpha ≤ 1`.
    pub fn new(alpha: f64) -> Result<Self> {
        if !((-1.0..=1.0).contains(&alpha) && alpha.is_finite()) {
            return Err(NoiseError::InvalidParameter {
                reason: format!("similarity level must be in [-1, 1], got {alpha}"),
            });
        }
        Ok(SimilarityLevel(alpha))
    }

    /// Fully similar noise (proportional to the data spectrum).
    pub fn similar() -> Self {
        SimilarityLevel(1.0)
    }

    /// Flat spectrum — the independent-noise baseline.
    pub fn independent() -> Self {
        SimilarityLevel(0.0)
    }

    /// Fully anti-similar noise (proportional to the reversed data spectrum).
    pub fn anti_similar() -> Self {
        SimilarityLevel(-1.0)
    }

    /// The raw alpha value.
    pub fn alpha(&self) -> f64 {
        self.0
    }
}

/// Builds a noise eigenvalue spectrum with the given total variance whose shape
/// interpolates between the data spectrum (`alpha = 1`), a flat spectrum
/// (`alpha = 0`) and the reversed data spectrum (`alpha = -1`).
pub fn interpolated_spectrum(
    data_eigenvalues: &[f64],
    level: SimilarityLevel,
    total_noise_variance: f64,
) -> Result<Vec<f64>> {
    if data_eigenvalues.is_empty() {
        return Err(NoiseError::InvalidParameter {
            reason: "data eigenvalue spectrum is empty".to_string(),
        });
    }
    if data_eigenvalues
        .iter()
        .any(|&l| !(l > 0.0 && l.is_finite()))
    {
        return Err(NoiseError::InvalidParameter {
            reason: "data eigenvalues must be positive and finite".to_string(),
        });
    }
    if !(total_noise_variance > 0.0 && total_noise_variance.is_finite()) {
        return Err(NoiseError::InvalidParameter {
            reason: format!("total noise variance must be positive, got {total_noise_variance}"),
        });
    }
    let m = data_eigenvalues.len();
    let data_total: f64 = data_eigenvalues.iter().sum();
    let alpha = level.alpha();
    let weight = alpha.abs();

    // Shaped component: data spectrum or reversed data spectrum, normalized to unit sum.
    let shaped: Vec<f64> = if alpha >= 0.0 {
        data_eigenvalues.iter().map(|&l| l / data_total).collect()
    } else {
        data_eigenvalues
            .iter()
            .rev()
            .map(|&l| l / data_total)
            .collect()
    };
    let flat = 1.0 / m as f64;

    let spectrum: Vec<f64> = shaped
        .iter()
        .map(|&s| total_noise_variance * (weight * s + (1.0 - weight) * flat))
        .collect();
    Ok(spectrum)
}

/// Builds the noise covariance `Σ_r = Q Λ_r Qᵀ` from the data's eigenvectors
/// and a noise spectrum (e.g. from [`interpolated_spectrum`]).
pub fn noise_covariance(eigenvectors: &Matrix, noise_spectrum: &[f64]) -> Result<Matrix> {
    if eigenvectors.rows() != noise_spectrum.len() || !eigenvectors.is_square() {
        return Err(NoiseError::DimensionMismatch {
            reason: format!(
                "eigenvector matrix is {}x{} but the noise spectrum has {} entries",
                eigenvectors.rows(),
                eigenvectors.cols(),
                noise_spectrum.len()
            ),
        });
    }
    if noise_spectrum.iter().any(|&l| !(l > 0.0 && l.is_finite())) {
        return Err(NoiseError::InvalidParameter {
            reason: "noise spectrum entries must be positive and finite".to_string(),
        });
    }
    Ok(recompose(noise_spectrum, eigenvectors))
}

/// The simplest "similar" noise: a scaled copy of the data covariance,
/// `Σ_r = ratio · Σ_x`. With `ratio = σ²·m / trace(Σ_x)` the total noise power
/// matches an independent scheme with standard deviation σ.
pub fn scaled_data_covariance(data_covariance: &Matrix, ratio: f64) -> Result<Matrix> {
    if !(ratio > 0.0 && ratio.is_finite()) {
        return Err(NoiseError::InvalidParameter {
            reason: format!("scale ratio must be positive, got {ratio}"),
        });
    }
    if !data_covariance.is_square() {
        return Err(NoiseError::DimensionMismatch {
            reason: "data covariance must be square".to_string(),
        });
    }
    Ok(data_covariance.scale(ratio))
}

#[cfg(test)]
mod tests {
    use super::*;
    use randrecon_data::synthetic::{random_orthogonal, EigenSpectrum};
    use randrecon_stats::rng::seeded_rng;

    #[test]
    fn similarity_level_validation() {
        assert!(SimilarityLevel::new(1.5).is_err());
        assert!(SimilarityLevel::new(f64::NAN).is_err());
        assert_eq!(SimilarityLevel::similar().alpha(), 1.0);
        assert_eq!(SimilarityLevel::independent().alpha(), 0.0);
        assert_eq!(SimilarityLevel::anti_similar().alpha(), -1.0);
    }

    #[test]
    fn interpolated_spectrum_preserves_total_variance() {
        let data = vec![400.0, 400.0, 10.0, 10.0, 10.0];
        for &alpha in &[-1.0, -0.5, 0.0, 0.5, 1.0] {
            let level = SimilarityLevel::new(alpha).unwrap();
            let spec = interpolated_spectrum(&data, level, 50.0).unwrap();
            let total: f64 = spec.iter().sum();
            assert!((total - 50.0).abs() < 1e-9, "alpha = {alpha}");
            assert!(spec.iter().all(|&l| l > 0.0));
        }
    }

    #[test]
    fn alpha_one_is_proportional_and_alpha_zero_is_flat() {
        let data = vec![90.0, 9.0, 1.0];
        let similar = interpolated_spectrum(&data, SimilarityLevel::similar(), 10.0).unwrap();
        assert!((similar[0] - 9.0).abs() < 1e-9);
        assert!((similar[2] - 0.1).abs() < 1e-9);

        let flat = interpolated_spectrum(&data, SimilarityLevel::independent(), 9.0).unwrap();
        for &v in &flat {
            assert!((v - 3.0).abs() < 1e-9);
        }

        let anti = interpolated_spectrum(&data, SimilarityLevel::anti_similar(), 10.0).unwrap();
        assert!((anti[0] - 0.1).abs() < 1e-9);
        assert!((anti[2] - 9.0).abs() < 1e-9);
    }

    #[test]
    fn interpolated_spectrum_validation() {
        assert!(interpolated_spectrum(&[], SimilarityLevel::similar(), 1.0).is_err());
        assert!(interpolated_spectrum(&[1.0, -1.0], SimilarityLevel::similar(), 1.0).is_err());
        assert!(interpolated_spectrum(&[1.0], SimilarityLevel::similar(), 0.0).is_err());
    }

    #[test]
    fn noise_covariance_has_requested_trace_and_symmetry() {
        let spectrum = EigenSpectrum::principal_plus_small(2, 100.0, 6, 1.0).unwrap();
        let mut rng = seeded_rng(4);
        let q = random_orthogonal(6, &mut rng).unwrap();
        let noise_spec =
            interpolated_spectrum(spectrum.values(), SimilarityLevel::new(0.7).unwrap(), 60.0)
                .unwrap();
        let cov = noise_covariance(&q, &noise_spec).unwrap();
        assert!(cov.is_symmetric(1e-9));
        assert!((cov.trace() - 60.0).abs() < 1e-8);
        // Dimension mismatch rejected.
        assert!(noise_covariance(&q, &[1.0, 2.0]).is_err());
        assert!(noise_covariance(&q, &[0.0; 6]).is_err());
    }

    #[test]
    fn scaled_data_covariance_scales() {
        let cov = Matrix::from_rows(&[&[4.0, 1.0][..], &[1.0, 2.0][..]]).unwrap();
        let scaled = scaled_data_covariance(&cov, 0.5).unwrap();
        assert_eq!(scaled.get(0, 0), 2.0);
        assert_eq!(scaled.get(0, 1), 0.5);
        assert!(scaled_data_covariance(&cov, 0.0).is_err());
        assert!(scaled_data_covariance(&Matrix::zeros(2, 3), 1.0).is_err());
    }
}
