//! Warner's randomized-response scheme for binary attributes.
//!
//! The paper's related-work section contrasts the additive random-perturbation
//! scheme it attacks with the randomized-response family used for categorical
//! data (Warner 1965; MASK; privacy-preserving decision trees). This module
//! implements the classic binary variant so the workspace can also demonstrate
//! the categorical side of the randomization approach: each 0/1 value is
//! reported truthfully with probability `p` and flipped with probability
//! `1 − p`, and aggregate proportions are recovered with the unbiased
//! estimator `π̂ = (λ̂ + p − 1) / (2p − 1)`.

use crate::error::{NoiseError, Result};
use rand::Rng;
use randrecon_data::DataTable;
use randrecon_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// Binary randomized response with truth-telling probability `p ≠ 0.5`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomizedResponse {
    /// Probability of reporting the true value.
    truth_probability: f64,
}

impl RandomizedResponse {
    /// Creates a scheme with the given truth-telling probability.
    ///
    /// `p` must lie in `(0, 1)` and differ from `0.5` (at exactly `0.5` the
    /// output carries no information and the proportion estimator is undefined).
    pub fn new(truth_probability: f64) -> Result<Self> {
        if !(truth_probability > 0.0 && truth_probability < 1.0) {
            return Err(NoiseError::InvalidParameter {
                reason: format!(
                    "truth probability must be strictly between 0 and 1, got {truth_probability}"
                ),
            });
        }
        if (truth_probability - 0.5).abs() < 1e-9 {
            return Err(NoiseError::InvalidParameter {
                reason: "truth probability of exactly 0.5 destroys all information".to_string(),
            });
        }
        Ok(RandomizedResponse { truth_probability })
    }

    /// The truth-telling probability `p`.
    pub fn truth_probability(&self) -> f64 {
        self.truth_probability
    }

    /// Randomizes a single binary value (anything > 0.5 is treated as 1).
    pub fn randomize_value<R: Rng + ?Sized>(&self, value: f64, rng: &mut R) -> f64 {
        let bit = if value > 0.5 { 1.0 } else { 0.0 };
        if rng.gen::<f64>() < self.truth_probability {
            bit
        } else {
            1.0 - bit
        }
    }

    /// Randomizes every value of a binary table.
    pub fn disguise<R: Rng + ?Sized>(&self, table: &DataTable, rng: &mut R) -> Result<DataTable> {
        let (n, m) = table.values().shape();
        let mut out = Matrix::zeros(n, m);
        for i in 0..n {
            for j in 0..m {
                out.set(i, j, self.randomize_value(table.values().get(i, j), rng));
            }
        }
        Ok(table.with_values(out)?)
    }

    /// Unbiased estimate of the true proportion of 1s given the observed
    /// proportion of 1s in the randomized data.
    ///
    /// The estimate is clamped to `[0, 1]`.
    pub fn estimate_proportion(&self, observed_proportion: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&observed_proportion) {
            return Err(NoiseError::InvalidParameter {
                reason: format!("observed proportion must be in [0, 1], got {observed_proportion}"),
            });
        }
        let p = self.truth_probability;
        let raw = (observed_proportion + p - 1.0) / (2.0 * p - 1.0);
        Ok(raw.clamp(0.0, 1.0))
    }

    /// Per-response probability that an adversary's best guess (majority
    /// decoding) recovers the true value: `max(p, 1 − p)`.
    pub fn disclosure_probability(&self) -> f64 {
        self.truth_probability.max(1.0 - self.truth_probability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use randrecon_stats::rng::seeded_rng;

    #[test]
    fn construction_validation() {
        assert!(RandomizedResponse::new(0.0).is_err());
        assert!(RandomizedResponse::new(1.0).is_err());
        assert!(RandomizedResponse::new(0.5).is_err());
        assert!(RandomizedResponse::new(0.8).is_ok());
    }

    #[test]
    fn proportion_estimator_is_unbiased() {
        let rr = RandomizedResponse::new(0.8).unwrap();
        let true_pi = 0.3;
        // Expected observed proportion: p*pi + (1-p)*(1-pi).
        let observed = 0.8 * true_pi + 0.2 * (1.0 - true_pi);
        let est = rr.estimate_proportion(observed).unwrap();
        assert!((est - true_pi).abs() < 1e-12);
        assert!(rr.estimate_proportion(1.5).is_err());
        // Clamping.
        assert_eq!(rr.estimate_proportion(0.0).unwrap(), 0.0);
    }

    #[test]
    fn end_to_end_proportion_recovery() {
        let rr = RandomizedResponse::new(0.75).unwrap();
        let mut rng = seeded_rng(21);
        let n = 20_000;
        let true_pi = 0.4;
        let column: Vec<f64> = (0..n)
            .map(|i| {
                if (i as f64 / n as f64) < true_pi {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        let table = DataTable::from_named_columns(&[("smoker", column)]).unwrap();
        let disguised = rr.disguise(&table, &mut rng).unwrap();
        let observed = disguised.column(0).iter().sum::<f64>() / n as f64;
        let est = rr.estimate_proportion(observed).unwrap();
        assert!((est - true_pi).abs() < 0.02, "estimate {est}");
        // Individual records are heavily perturbed: roughly 25% flipped.
        let flips = disguised
            .column(0)
            .iter()
            .zip(table.column(0).iter())
            .filter(|(a, b)| (*a - *b).abs() > 0.5)
            .count();
        let flip_rate = flips as f64 / n as f64;
        assert!((flip_rate - 0.25).abs() < 0.02, "flip rate {flip_rate}");
    }

    #[test]
    fn disclosure_probability_symmetry() {
        assert_eq!(
            RandomizedResponse::new(0.9)
                .unwrap()
                .disclosure_probability(),
            0.9
        );
        assert_eq!(
            RandomizedResponse::new(0.1)
                .unwrap()
                .disclosure_probability(),
            0.9
        );
        assert_eq!(
            RandomizedResponse::new(0.9).unwrap().truth_probability(),
            0.9
        );
    }

    #[test]
    fn randomize_value_thresholds_input() {
        let rr = RandomizedResponse::new(0.99).unwrap();
        let mut rng = seeded_rng(3);
        // With p = 0.99 nearly every response is truthful; 0.7 is treated as 1.
        let mut ones = 0;
        for _ in 0..100 {
            if rr.randomize_value(0.7, &mut rng) > 0.5 {
                ones += 1;
            }
        }
        assert!(ones > 90);
    }
}
