//! The public noise model an adversary is assumed to know.
//!
//! In the randomization approach to privacy-preserving data mining, the noise
//! distribution is published so that miners can reconstruct *aggregate*
//! statistics (Agrawal–Srikant). The attacks therefore treat the noise model
//! as known. [`NoiseModel`] captures the three cases this workspace supports.

use crate::error::{NoiseError, Result};
use randrecon_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// Public description of the additive noise used to disguise a data set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NoiseModel {
    /// Independent zero-mean Gaussian noise with the same standard deviation on
    /// every attribute (the classic random-perturbation setting).
    IndependentGaussian {
        /// Standard deviation σ of the noise.
        sigma: f64,
    },
    /// Independent zero-mean uniform noise with the same standard deviation on
    /// every attribute (half-width σ·√3).
    IndependentUniform {
        /// Standard deviation σ of the noise.
        sigma: f64,
    },
    /// Zero-mean multivariate Gaussian noise with an arbitrary covariance —
    /// the improved randomization scheme of Section 8.
    Correlated {
        /// Covariance matrix Σ_r of the noise vector.
        covariance: Matrix,
    },
}

impl NoiseModel {
    /// Creates an independent Gaussian noise model, validating σ > 0.
    pub fn independent_gaussian(sigma: f64) -> Result<Self> {
        validate_sigma(sigma)?;
        Ok(NoiseModel::IndependentGaussian { sigma })
    }

    /// Creates an independent uniform noise model, validating σ > 0.
    pub fn independent_uniform(sigma: f64) -> Result<Self> {
        validate_sigma(sigma)?;
        Ok(NoiseModel::IndependentUniform { sigma })
    }

    /// Creates a correlated Gaussian noise model, validating the covariance is
    /// square and symmetric.
    pub fn correlated(covariance: Matrix) -> Result<Self> {
        if !covariance.is_square() {
            return Err(NoiseError::InvalidParameter {
                reason: format!(
                    "noise covariance must be square, got {}x{}",
                    covariance.rows(),
                    covariance.cols()
                ),
            });
        }
        let tol = 1e-8 * covariance.max_abs().max(1.0);
        if !covariance.is_symmetric(tol) {
            return Err(NoiseError::InvalidParameter {
                reason: "noise covariance must be symmetric".to_string(),
            });
        }
        Ok(NoiseModel::Correlated { covariance })
    }

    /// True if the noise is independent across attributes.
    pub fn is_independent(&self) -> bool {
        !matches!(self, NoiseModel::Correlated { .. })
    }

    /// Per-attribute noise variance when the noise is i.i.d. across attributes
    /// (`None` for the correlated model, whose variance varies per attribute).
    pub fn iid_variance(&self) -> Option<f64> {
        match self {
            NoiseModel::IndependentGaussian { sigma }
            | NoiseModel::IndependentUniform { sigma } => Some(sigma * sigma),
            NoiseModel::Correlated { .. } => None,
        }
    }

    /// The noise covariance matrix for an `m`-attribute data set.
    ///
    /// For independent models this is `σ² I`; for the correlated model it is
    /// the stored Σ_r (whose dimension must equal `m`).
    pub fn covariance(&self, m: usize) -> Result<Matrix> {
        match self {
            NoiseModel::IndependentGaussian { sigma }
            | NoiseModel::IndependentUniform { sigma } => {
                Ok(Matrix::identity(m).scale(sigma * sigma))
            }
            NoiseModel::Correlated { covariance } => {
                if covariance.rows() != m {
                    return Err(NoiseError::DimensionMismatch {
                        reason: format!(
                            "noise covariance is {}x{} but the data has {m} attributes",
                            covariance.rows(),
                            covariance.cols()
                        ),
                    });
                }
                Ok(covariance.clone())
            }
        }
    }

    /// Marginal noise variance of attribute `j` in an `m`-attribute data set.
    pub fn marginal_variance(&self, j: usize, m: usize) -> Result<f64> {
        match self {
            NoiseModel::IndependentGaussian { sigma }
            | NoiseModel::IndependentUniform { sigma } => {
                if j >= m {
                    return Err(NoiseError::DimensionMismatch {
                        reason: format!("attribute index {j} out of bounds for m = {m}"),
                    });
                }
                Ok(sigma * sigma)
            }
            NoiseModel::Correlated { covariance } => {
                if j >= covariance.rows() || covariance.rows() != m {
                    return Err(NoiseError::DimensionMismatch {
                        reason: format!(
                            "attribute index {j} out of bounds for a {}x{} noise covariance (m = {m})",
                            covariance.rows(),
                            covariance.cols()
                        ),
                    });
                }
                Ok(covariance.get(j, j))
            }
        }
    }
}

fn validate_sigma(sigma: f64) -> Result<()> {
    if !(sigma > 0.0 && sigma.is_finite()) {
        return Err(NoiseError::InvalidParameter {
            reason: format!("noise standard deviation must be positive and finite, got {sigma}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(NoiseModel::independent_gaussian(0.0).is_err());
        assert!(NoiseModel::independent_gaussian(-1.0).is_err());
        assert!(NoiseModel::independent_uniform(f64::NAN).is_err());
        assert!(NoiseModel::independent_gaussian(2.0).is_ok());
        assert!(NoiseModel::correlated(Matrix::zeros(2, 3)).is_err());
        let asym = Matrix::from_rows(&[&[1.0, 0.5][..], &[0.0, 1.0][..]]).unwrap();
        assert!(NoiseModel::correlated(asym).is_err());
        assert!(NoiseModel::correlated(Matrix::identity(3)).is_ok());
    }

    #[test]
    fn iid_variance_and_independence() {
        let g = NoiseModel::independent_gaussian(3.0).unwrap();
        assert_eq!(g.iid_variance(), Some(9.0));
        assert!(g.is_independent());
        let u = NoiseModel::independent_uniform(2.0).unwrap();
        assert_eq!(u.iid_variance(), Some(4.0));
        let c = NoiseModel::correlated(Matrix::identity(2)).unwrap();
        assert_eq!(c.iid_variance(), None);
        assert!(!c.is_independent());
    }

    #[test]
    fn covariance_shapes() {
        let g = NoiseModel::independent_gaussian(2.0).unwrap();
        let cov = g.covariance(3).unwrap();
        assert_eq!(cov.shape(), (3, 3));
        assert_eq!(cov.get(0, 0), 4.0);
        assert_eq!(cov.get(0, 1), 0.0);

        let sr = Matrix::from_rows(&[&[2.0, 0.5][..], &[0.5, 1.0][..]]).unwrap();
        let c = NoiseModel::correlated(sr.clone()).unwrap();
        assert_eq!(c.covariance(2).unwrap(), sr);
        assert!(c.covariance(3).is_err());
    }

    #[test]
    fn marginal_variances() {
        let g = NoiseModel::independent_uniform(2.0).unwrap();
        assert_eq!(g.marginal_variance(1, 4).unwrap(), 4.0);
        assert!(g.marginal_variance(4, 4).is_err());

        let sr = Matrix::from_rows(&[&[2.0, 0.5][..], &[0.5, 1.0][..]]).unwrap();
        let c = NoiseModel::correlated(sr).unwrap();
        assert_eq!(c.marginal_variance(1, 2).unwrap(), 1.0);
        assert!(c.marginal_variance(0, 3).is_err());
    }
}
