//! Additive randomization: `Y = X + R`.
//!
//! This is the scheme whose privacy the paper studies. The original variant
//! adds independent zero-mean noise to every value (Agrawal–Srikant); the
//! improved variant of Section 8.1 draws the noise vector for each record from
//! a multivariate normal whose correlation structure resembles the original
//! data, which defeats the correlation-exploiting attacks.

use crate::error::{NoiseError, Result};
use crate::model::NoiseModel;
use rand::Rng;
use randrecon_data::chunks::RecordChunkSource;
use randrecon_data::{DataError, DataTable};
use randrecon_linalg::Matrix;
use randrecon_stats::distributions::{ContinuousDistribution, Normal, Uniform};
use randrecon_stats::mvn::MultivariateNormal;
use randrecon_stats::rng::{child_seed, seeded_rng};

/// A randomizer that disguises a table by adding noise drawn from a
/// [`NoiseModel`].
#[derive(Debug, Clone)]
pub struct AdditiveRandomizer {
    model: NoiseModel,
}

impl AdditiveRandomizer {
    /// Independent zero-mean Gaussian noise with standard deviation `sigma`.
    pub fn gaussian(sigma: f64) -> Result<Self> {
        Ok(AdditiveRandomizer {
            model: NoiseModel::independent_gaussian(sigma)?,
        })
    }

    /// Independent zero-mean uniform noise with standard deviation `sigma`.
    pub fn uniform(sigma: f64) -> Result<Self> {
        Ok(AdditiveRandomizer {
            model: NoiseModel::independent_uniform(sigma)?,
        })
    }

    /// Correlated Gaussian noise with covariance `covariance` — the improved
    /// randomization scheme of Section 8.1.
    pub fn correlated(covariance: Matrix) -> Result<Self> {
        Ok(AdditiveRandomizer {
            model: NoiseModel::correlated(covariance)?,
        })
    }

    /// Builds a randomizer directly from a [`NoiseModel`].
    pub fn from_model(model: NoiseModel) -> Self {
        AdditiveRandomizer { model }
    }

    /// The public noise model (what an adversary is assumed to know).
    pub fn model(&self) -> &NoiseModel {
        &self.model
    }

    /// Generates the noise matrix `R` (same shape as the data) without adding it.
    pub fn sample_noise<R: Rng + ?Sized>(&self, n: usize, m: usize, rng: &mut R) -> Result<Matrix> {
        match &self.model {
            NoiseModel::IndependentGaussian { sigma } => {
                let dist = Normal::new(0.0, *sigma).map_err(NoiseError::Stats)?;
                Ok(Matrix::from_fn(n, m, |_, _| dist.sample(rng)))
            }
            NoiseModel::IndependentUniform { sigma } => {
                let dist = Uniform::centered_with_std(*sigma).map_err(NoiseError::Stats)?;
                Ok(Matrix::from_fn(n, m, |_, _| dist.sample(rng)))
            }
            NoiseModel::Correlated { covariance } => {
                if covariance.rows() != m {
                    return Err(NoiseError::DimensionMismatch {
                        reason: format!(
                            "noise covariance is {}x{} but the data has {m} attributes",
                            covariance.rows(),
                            covariance.cols()
                        ),
                    });
                }
                let mvn = MultivariateNormal::zero_mean(covariance.clone())?;
                Ok(mvn.sample_matrix(n, rng))
            }
        }
    }

    /// Disguises a table: returns `Y = X + R` with fresh noise.
    pub fn disguise<R: Rng + ?Sized>(&self, table: &DataTable, rng: &mut R) -> Result<DataTable> {
        let (n, m) = table.values().shape();
        let noise = self.sample_noise(n, m, rng)?;
        let disguised = table.values().add(&noise)?;
        Ok(table.with_values(disguised)?)
    }

    /// Disguises a table and also returns the exact noise matrix that was
    /// added. Experiments use this to verify theoretical error decompositions
    /// (e.g. Theorem 5.2).
    pub fn disguise_with_noise<R: Rng + ?Sized>(
        &self,
        table: &DataTable,
        rng: &mut R,
    ) -> Result<(DataTable, Matrix)> {
        let (n, m) = table.values().shape();
        let noise = self.sample_noise(n, m, rng)?;
        let disguised = table.values().add(&noise)?;
        Ok((table.with_values(disguised)?, noise))
    }
}

/// Chunk-wise disguising adapter: wraps any [`RecordChunkSource`] of
/// *original* records and yields the same chunks with fresh additive noise —
/// `Y = X + R` one chunk at a time, so the full noise matrix is never
/// materialized.
///
/// Chunk `i`'s noise is drawn from a child-seeded RNG
/// ([`child_seed`]`(base_seed, i)`), which keeps the stream **restartable**:
/// after [`reset`](RecordChunkSource::reset) the adapter replays the
/// identical disguised chunks, exactly what the two-pass streaming attack
/// engine requires (pass 1 estimates Σ̂ and μ̂ from the same disguised values
/// pass 2 reconstructs from).
#[derive(Debug, Clone)]
pub struct DisguisedChunkSource<S> {
    inner: S,
    randomizer: AdditiveRandomizer,
    base_seed: u64,
    chunk_index: u64,
}

impl<S: RecordChunkSource> DisguisedChunkSource<S> {
    /// Wraps a source of original records.
    pub fn new(inner: S, randomizer: AdditiveRandomizer, base_seed: u64) -> Self {
        DisguisedChunkSource {
            inner,
            randomizer,
            base_seed,
            chunk_index: 0,
        }
    }

    /// The public noise model of the wrapped randomizer.
    pub fn model(&self) -> &NoiseModel {
        self.randomizer.model()
    }

    /// The wrapped source of original records.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps back into the original-record source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: RecordChunkSource> RecordChunkSource for DisguisedChunkSource<S> {
    fn n_attributes(&self) -> usize {
        self.inner.n_attributes()
    }

    fn n_records_hint(&self) -> Option<usize> {
        self.inner.n_records_hint()
    }

    fn reset(&mut self) -> randrecon_data::Result<()> {
        self.inner.reset()?;
        self.chunk_index = 0;
        Ok(())
    }

    fn next_chunk(&mut self) -> randrecon_data::Result<Option<Matrix>> {
        let chunk = match self.inner.next_chunk()? {
            Some(c) => c,
            None => return Ok(None),
        };
        let mut rng = seeded_rng(child_seed(self.base_seed, self.chunk_index));
        self.chunk_index += 1;
        let noise = self
            .randomizer
            .sample_noise(chunk.rows(), chunk.cols(), &mut rng)
            .map_err(|e| DataError::Stream {
                reason: format!("noise sampling failed: {e}"),
            })?;
        Ok(Some(chunk.add(&noise)?))
    }

    fn skip_chunks(&mut self, n_chunks: usize) -> randrecon_data::Result<()> {
        // Noise chunk `i` is child-seeded by `i` alone, so skipping keeps
        // the disguise of every later chunk bit-identical to a full sweep.
        self.inner.skip_chunks(n_chunks)?;
        self.chunk_index += n_chunks as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use randrecon_data::chunks::{materialize, TableChunkSource};
    use randrecon_data::synthetic::{EigenSpectrum, SyntheticDataset};
    use randrecon_stats::summary;

    fn dataset(n: usize, seed: u64) -> SyntheticDataset {
        let spectrum = EigenSpectrum::principal_plus_small(2, 50.0, 5, 2.0).unwrap();
        SyntheticDataset::generate(&spectrum, n, seed).unwrap()
    }

    #[test]
    fn gaussian_noise_has_requested_variance() {
        let r = AdditiveRandomizer::gaussian(3.0).unwrap();
        let noise = r.sample_noise(20_000, 2, &mut seeded_rng(1)).unwrap();
        let var0 = summary::variance(&noise.column(0));
        let var1 = summary::variance(&noise.column(1));
        assert!((var0 - 9.0).abs() < 0.4, "var0 = {var0}");
        assert!((var1 - 9.0).abs() < 0.4, "var1 = {var1}");
        let mean0 = summary::mean(&noise.column(0));
        assert!(mean0.abs() < 0.1);
    }

    #[test]
    fn uniform_noise_bounded_and_has_requested_variance() {
        let r = AdditiveRandomizer::uniform(2.0).unwrap();
        let noise = r.sample_noise(20_000, 1, &mut seeded_rng(2)).unwrap();
        let col = noise.column(0);
        let half_width = 2.0 * 3.0_f64.sqrt();
        assert!(col.iter().all(|&v| v.abs() <= half_width));
        let var = summary::variance(&col);
        assert!((var - 4.0).abs() < 0.2, "var = {var}");
    }

    #[test]
    fn disguise_preserves_shape_and_changes_values() {
        let ds = dataset(100, 7);
        let r = AdditiveRandomizer::gaussian(2.0).unwrap();
        let disguised = r.disguise(&ds.table, &mut seeded_rng(3)).unwrap();
        assert_eq!(disguised.n_records(), 100);
        assert_eq!(disguised.n_attributes(), 5);
        assert!(!disguised.approx_eq(&ds.table, 1e-9));
        assert_eq!(disguised.schema(), ds.table.schema());
    }

    #[test]
    fn disguise_with_noise_is_consistent() {
        let ds = dataset(50, 9);
        let r = AdditiveRandomizer::gaussian(1.5).unwrap();
        let (disguised, noise) = r
            .disguise_with_noise(&ds.table, &mut seeded_rng(4))
            .unwrap();
        let reconstructed_noise = disguised.values().sub(ds.table.values()).unwrap();
        assert!(reconstructed_noise.approx_eq(&noise, 1e-12));
    }

    #[test]
    fn disguised_covariance_gains_sigma_squared_on_diagonal() {
        // Theorem 5.1: Cov(Y) ≈ Cov(X) + σ² I.
        let ds = dataset(20_000, 11);
        let sigma = 4.0;
        let r = AdditiveRandomizer::gaussian(sigma).unwrap();
        let disguised = r.disguise(&ds.table, &mut seeded_rng(5)).unwrap();
        let cov_x = ds.table.covariance_matrix();
        let cov_y = disguised.covariance_matrix();
        for i in 0..5 {
            let expected = cov_x.get(i, i) + sigma * sigma;
            assert!(
                (cov_y.get(i, i) - expected).abs() < 2.0,
                "diagonal {i}: got {}, expected {expected}",
                cov_y.get(i, i)
            );
            for j in 0..5 {
                if i != j {
                    assert!((cov_y.get(i, j) - cov_x.get(i, j)).abs() < 2.0);
                }
            }
        }
    }

    #[test]
    fn correlated_noise_matches_requested_covariance() {
        let ds = dataset(10_000, 13);
        let target_cov = ds.covariance.scale(0.25);
        let r = AdditiveRandomizer::correlated(target_cov.clone()).unwrap();
        let noise = r.sample_noise(10_000, 5, &mut seeded_rng(6)).unwrap();
        let est = summary::covariance_matrix(&noise);
        let rel = est.sub(&target_cov).unwrap().frobenius_norm() / target_cov.frobenius_norm();
        assert!(rel < 0.1, "relative error {rel}");
        // Wrong dimension rejected.
        assert!(r.sample_noise(10, 3, &mut seeded_rng(1)).is_err());
    }

    #[test]
    fn model_accessor_and_from_model() {
        let model = NoiseModel::independent_gaussian(2.0).unwrap();
        let r = AdditiveRandomizer::from_model(model.clone());
        assert_eq!(r.model(), &model);
    }

    #[test]
    fn disguised_chunk_source_replays_identically_after_reset() {
        let ds = dataset(120, 21);
        let randomizer = AdditiveRandomizer::gaussian(2.0).unwrap();
        let source = TableChunkSource::new(&ds.table, 32).unwrap();
        let mut disguised = DisguisedChunkSource::new(source, randomizer, 77);
        assert_eq!(disguised.n_attributes(), 5);
        assert_eq!(disguised.n_records_hint(), Some(120));
        assert_eq!(disguised.model().iid_variance(), Some(4.0));

        let sweep1 = materialize(&mut disguised).unwrap();
        let sweep2 = materialize(&mut disguised).unwrap();
        assert!(sweep1.approx_eq(&sweep2, 0.0));
        // Noise actually got added.
        assert!(!sweep1.values().approx_eq(ds.table.values(), 1e-9));
        // And it is zero-mean-ish: the disguised means track the originals.
        let orig_means = ds.table.mean_vector();
        for (got, want) in sweep1.mean_vector().iter().zip(orig_means.iter()) {
            assert!((got - want).abs() < 1.5, "means drifted: {got} vs {want}");
        }
        let inner = disguised.into_inner();
        assert_eq!(inner.n_records_hint(), Some(120));
    }

    #[test]
    fn disguised_chunk_noise_has_requested_variance() {
        // Big enough sample to pin the per-attribute noise variance.
        let ds = dataset(20_000, 23);
        let randomizer = AdditiveRandomizer::gaussian(3.0).unwrap();
        let source = TableChunkSource::new(&ds.table, 1024).unwrap();
        let mut disguised = DisguisedChunkSource::new(source, randomizer, 5);
        let swept = materialize(&mut disguised).unwrap();
        let noise = swept.values().sub(ds.table.values()).unwrap();
        for j in 0..5 {
            let var = summary::variance(&noise.column(j));
            assert!((var - 9.0).abs() < 0.5, "attribute {j}: var = {var}");
        }
    }
}
