//! Additive randomization: `Y = X + R`.
//!
//! This is the scheme whose privacy the paper studies. The original variant
//! adds independent zero-mean noise to every value (Agrawal–Srikant); the
//! improved variant of Section 8.1 draws the noise vector for each record from
//! a multivariate normal whose correlation structure resembles the original
//! data, which defeats the correlation-exploiting attacks.

use crate::error::{NoiseError, Result};
use crate::model::NoiseModel;
use rand::Rng;
use randrecon_data::DataTable;
use randrecon_linalg::Matrix;
use randrecon_stats::distributions::{ContinuousDistribution, Normal, Uniform};
use randrecon_stats::mvn::MultivariateNormal;

/// A randomizer that disguises a table by adding noise drawn from a
/// [`NoiseModel`].
#[derive(Debug, Clone)]
pub struct AdditiveRandomizer {
    model: NoiseModel,
}

impl AdditiveRandomizer {
    /// Independent zero-mean Gaussian noise with standard deviation `sigma`.
    pub fn gaussian(sigma: f64) -> Result<Self> {
        Ok(AdditiveRandomizer {
            model: NoiseModel::independent_gaussian(sigma)?,
        })
    }

    /// Independent zero-mean uniform noise with standard deviation `sigma`.
    pub fn uniform(sigma: f64) -> Result<Self> {
        Ok(AdditiveRandomizer {
            model: NoiseModel::independent_uniform(sigma)?,
        })
    }

    /// Correlated Gaussian noise with covariance `covariance` — the improved
    /// randomization scheme of Section 8.1.
    pub fn correlated(covariance: Matrix) -> Result<Self> {
        Ok(AdditiveRandomizer {
            model: NoiseModel::correlated(covariance)?,
        })
    }

    /// Builds a randomizer directly from a [`NoiseModel`].
    pub fn from_model(model: NoiseModel) -> Self {
        AdditiveRandomizer { model }
    }

    /// The public noise model (what an adversary is assumed to know).
    pub fn model(&self) -> &NoiseModel {
        &self.model
    }

    /// Generates the noise matrix `R` (same shape as the data) without adding it.
    pub fn sample_noise<R: Rng + ?Sized>(&self, n: usize, m: usize, rng: &mut R) -> Result<Matrix> {
        match &self.model {
            NoiseModel::IndependentGaussian { sigma } => {
                let dist = Normal::new(0.0, *sigma).map_err(NoiseError::Stats)?;
                Ok(Matrix::from_fn(n, m, |_, _| dist.sample(rng)))
            }
            NoiseModel::IndependentUniform { sigma } => {
                let dist = Uniform::centered_with_std(*sigma).map_err(NoiseError::Stats)?;
                Ok(Matrix::from_fn(n, m, |_, _| dist.sample(rng)))
            }
            NoiseModel::Correlated { covariance } => {
                if covariance.rows() != m {
                    return Err(NoiseError::DimensionMismatch {
                        reason: format!(
                            "noise covariance is {}x{} but the data has {m} attributes",
                            covariance.rows(),
                            covariance.cols()
                        ),
                    });
                }
                let mvn = MultivariateNormal::zero_mean(covariance.clone())?;
                Ok(mvn.sample_matrix(n, rng))
            }
        }
    }

    /// Disguises a table: returns `Y = X + R` with fresh noise.
    pub fn disguise<R: Rng + ?Sized>(&self, table: &DataTable, rng: &mut R) -> Result<DataTable> {
        let (n, m) = table.values().shape();
        let noise = self.sample_noise(n, m, rng)?;
        let disguised = table.values().add(&noise)?;
        Ok(table.with_values(disguised)?)
    }

    /// Disguises a table and also returns the exact noise matrix that was
    /// added. Experiments use this to verify theoretical error decompositions
    /// (e.g. Theorem 5.2).
    pub fn disguise_with_noise<R: Rng + ?Sized>(
        &self,
        table: &DataTable,
        rng: &mut R,
    ) -> Result<(DataTable, Matrix)> {
        let (n, m) = table.values().shape();
        let noise = self.sample_noise(n, m, rng)?;
        let disguised = table.values().add(&noise)?;
        Ok((table.with_values(disguised)?, noise))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use randrecon_data::synthetic::{EigenSpectrum, SyntheticDataset};
    use randrecon_stats::rng::seeded_rng;
    use randrecon_stats::summary;

    fn dataset(n: usize, seed: u64) -> SyntheticDataset {
        let spectrum = EigenSpectrum::principal_plus_small(2, 50.0, 5, 2.0).unwrap();
        SyntheticDataset::generate(&spectrum, n, seed).unwrap()
    }

    #[test]
    fn gaussian_noise_has_requested_variance() {
        let r = AdditiveRandomizer::gaussian(3.0).unwrap();
        let noise = r.sample_noise(20_000, 2, &mut seeded_rng(1)).unwrap();
        let var0 = summary::variance(&noise.column(0));
        let var1 = summary::variance(&noise.column(1));
        assert!((var0 - 9.0).abs() < 0.4, "var0 = {var0}");
        assert!((var1 - 9.0).abs() < 0.4, "var1 = {var1}");
        let mean0 = summary::mean(&noise.column(0));
        assert!(mean0.abs() < 0.1);
    }

    #[test]
    fn uniform_noise_bounded_and_has_requested_variance() {
        let r = AdditiveRandomizer::uniform(2.0).unwrap();
        let noise = r.sample_noise(20_000, 1, &mut seeded_rng(2)).unwrap();
        let col = noise.column(0);
        let half_width = 2.0 * 3.0_f64.sqrt();
        assert!(col.iter().all(|&v| v.abs() <= half_width));
        let var = summary::variance(&col);
        assert!((var - 4.0).abs() < 0.2, "var = {var}");
    }

    #[test]
    fn disguise_preserves_shape_and_changes_values() {
        let ds = dataset(100, 7);
        let r = AdditiveRandomizer::gaussian(2.0).unwrap();
        let disguised = r.disguise(&ds.table, &mut seeded_rng(3)).unwrap();
        assert_eq!(disguised.n_records(), 100);
        assert_eq!(disguised.n_attributes(), 5);
        assert!(!disguised.approx_eq(&ds.table, 1e-9));
        assert_eq!(disguised.schema(), ds.table.schema());
    }

    #[test]
    fn disguise_with_noise_is_consistent() {
        let ds = dataset(50, 9);
        let r = AdditiveRandomizer::gaussian(1.5).unwrap();
        let (disguised, noise) = r
            .disguise_with_noise(&ds.table, &mut seeded_rng(4))
            .unwrap();
        let reconstructed_noise = disguised.values().sub(ds.table.values()).unwrap();
        assert!(reconstructed_noise.approx_eq(&noise, 1e-12));
    }

    #[test]
    fn disguised_covariance_gains_sigma_squared_on_diagonal() {
        // Theorem 5.1: Cov(Y) ≈ Cov(X) + σ² I.
        let ds = dataset(20_000, 11);
        let sigma = 4.0;
        let r = AdditiveRandomizer::gaussian(sigma).unwrap();
        let disguised = r.disguise(&ds.table, &mut seeded_rng(5)).unwrap();
        let cov_x = ds.table.covariance_matrix();
        let cov_y = disguised.covariance_matrix();
        for i in 0..5 {
            let expected = cov_x.get(i, i) + sigma * sigma;
            assert!(
                (cov_y.get(i, i) - expected).abs() < 2.0,
                "diagonal {i}: got {}, expected {expected}",
                cov_y.get(i, i)
            );
            for j in 0..5 {
                if i != j {
                    assert!((cov_y.get(i, j) - cov_x.get(i, j)).abs() < 2.0);
                }
            }
        }
    }

    #[test]
    fn correlated_noise_matches_requested_covariance() {
        let ds = dataset(10_000, 13);
        let target_cov = ds.covariance.scale(0.25);
        let r = AdditiveRandomizer::correlated(target_cov.clone()).unwrap();
        let noise = r.sample_noise(10_000, 5, &mut seeded_rng(6)).unwrap();
        let est = summary::covariance_matrix(&noise);
        let rel = est.sub(&target_cov).unwrap().frobenius_norm() / target_cov.frobenius_norm();
        assert!(rel < 0.1, "relative error {rel}");
        // Wrong dimension rejected.
        assert!(r.sample_noise(10, 3, &mut seeded_rng(1)).is_err());
    }

    #[test]
    fn model_accessor_and_from_model() {
        let model = NoiseModel::independent_gaussian(2.0).unwrap();
        let r = AdditiveRandomizer::from_model(model.clone());
        assert_eq!(r.model(), &model);
    }
}
