//! # randrecon-noise
//!
//! The randomization (data-disguising) schemes that the reconstruction attacks
//! in `randrecon-core` target.
//!
//! * [`model::NoiseModel`] — the *public* description of the noise an adversary
//!   is assumed to know: independent Gaussian, independent uniform, or
//!   correlated Gaussian noise with a full covariance matrix.
//! * [`additive::AdditiveRandomizer`] — the classic Agrawal–Srikant scheme
//!   `Y = X + R` with i.i.d. zero-mean noise, plus the paper's improved scheme
//!   (Section 8.1) that draws `R` from a multivariate normal whose correlation
//!   structure mimics the original data.
//! * [`correlated`] — helpers for building the correlated-noise covariance
//!   from a data set's eigenbasis at a chosen similarity level, exactly as
//!   Experiment 4 does.
//! * [`randomized_response`] — Warner's randomized-response scheme for binary
//!   attributes (related-work extension; it is the categorical counterpart the
//!   paper cites for MASK and privacy-preserving decision trees).
//!
//! ## Example
//!
//! ```
//! use randrecon_data::synthetic::{EigenSpectrum, SyntheticDataset};
//! use randrecon_noise::additive::AdditiveRandomizer;
//! use randrecon_stats::rng::seeded_rng;
//!
//! let spectrum = EigenSpectrum::principal_plus_small(2, 100.0, 6, 1.0).unwrap();
//! let ds = SyntheticDataset::generate(&spectrum, 200, 1).unwrap();
//! let randomizer = AdditiveRandomizer::gaussian(4.0).unwrap();
//! let disguised = randomizer.disguise(&ds.table, &mut seeded_rng(2)).unwrap();
//! assert_eq!(disguised.n_records(), 200);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod additive;
pub mod correlated;
pub mod error;
pub mod model;
pub mod randomized_response;

pub use additive::AdditiveRandomizer;
pub use error::{NoiseError, Result};
pub use model::NoiseModel;
