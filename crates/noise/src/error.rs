//! Error type for the randomization crate.

use randrecon_data::DataError;
use randrecon_linalg::LinalgError;
use randrecon_stats::StatsError;
use std::fmt;

/// Convenience alias used throughout `randrecon-noise`.
pub type Result<T> = std::result::Result<T, NoiseError>;

/// Errors raised by randomization schemes.
#[derive(Debug)]
pub enum NoiseError {
    /// A noise parameter was invalid (non-positive variance, probability out of range, …).
    InvalidParameter {
        /// What was wrong.
        reason: String,
    },
    /// The noise model's dimensionality does not match the data set.
    DimensionMismatch {
        /// What was expected vs provided.
        reason: String,
    },
    /// Propagated error from the data layer.
    Data(DataError),
    /// Propagated error from the statistics layer.
    Stats(StatsError),
    /// Propagated error from the linear-algebra layer.
    Linalg(LinalgError),
}

impl fmt::Display for NoiseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoiseError::InvalidParameter { reason } => {
                write!(f, "invalid noise parameter: {reason}")
            }
            NoiseError::DimensionMismatch { reason } => write!(f, "dimension mismatch: {reason}"),
            NoiseError::Data(e) => write!(f, "data error: {e}"),
            NoiseError::Stats(e) => write!(f, "statistics error: {e}"),
            NoiseError::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for NoiseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NoiseError::Data(e) => Some(e),
            NoiseError::Stats(e) => Some(e),
            NoiseError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for NoiseError {
    fn from(e: DataError) -> Self {
        NoiseError::Data(e)
    }
}

impl From<StatsError> for NoiseError {
    fn from(e: StatsError) -> Self {
        NoiseError::Stats(e)
    }
}

impl From<LinalgError> for NoiseError {
    fn from(e: LinalgError) -> Self {
        NoiseError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = NoiseError::InvalidParameter {
            reason: "sigma <= 0".into(),
        };
        assert!(e.to_string().contains("sigma"));
        let e: NoiseError = StatsError::InsufficientData { got: 0, needed: 1 }.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: NoiseError = LinalgError::Singular { pivot: 1 }.into();
        assert!(e.to_string().contains("singular"));
        let e: NoiseError = DataError::UnknownAttribute { name: "x".into() }.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
