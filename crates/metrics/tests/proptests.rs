//! Property-based tests for the metric definitions.

use proptest::prelude::*;
use randrecon_data::DataTable;
use randrecon_linalg::Matrix;
use randrecon_metrics::accuracy::{mse, per_attribute_rmse, rmse};
use randrecon_metrics::dissimilarity::correlation_dissimilarity_matrices;
use randrecon_metrics::privacy::{disclosure_rate, privacy_gain};

fn table_pair(rows: usize, cols: usize) -> impl Strategy<Value = (DataTable, DataTable)> {
    (
        proptest::collection::vec(-100.0f64..100.0, rows * cols),
        proptest::collection::vec(-100.0f64..100.0, rows * cols),
    )
        .prop_map(move |(a, b)| {
            (
                DataTable::from_matrix(Matrix::from_flat(rows, cols, a).unwrap()).unwrap(),
                DataTable::from_matrix(Matrix::from_flat(rows, cols, b).unwrap()).unwrap(),
            )
        })
}

/// Builds a valid correlation matrix from a vector of off-diagonal entries in [-1, 1].
fn correlation_matrix_3(offdiag: [f64; 3]) -> Matrix {
    let mut m = Matrix::identity(3);
    m.set(0, 1, offdiag[0]);
    m.set(1, 0, offdiag[0]);
    m.set(0, 2, offdiag[1]);
    m.set(2, 0, offdiag[1]);
    m.set(1, 2, offdiag[2]);
    m.set(2, 1, offdiag[2]);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// RMSE is a metric-like quantity: zero iff identical inputs (for these
    /// generated pairs), symmetric, and equal to sqrt(MSE).
    #[test]
    fn rmse_basic_properties((a, b) in table_pair(6, 3)) {
        let forward = rmse(&a, &b).unwrap();
        let backward = rmse(&b, &a).unwrap();
        prop_assert!((forward - backward).abs() < 1e-12);
        prop_assert!(forward >= 0.0);
        prop_assert!((forward * forward - mse(&a, &b).unwrap()).abs() < 1e-9);
        prop_assert_eq!(rmse(&a, &a).unwrap(), 0.0);
    }

    /// The overall MSE equals the mean of the per-attribute squared RMSEs.
    #[test]
    fn per_attribute_rmse_aggregates((a, b) in table_pair(5, 4)) {
        let per = per_attribute_rmse(&a, &b).unwrap();
        let mean_of_squares: f64 = per.iter().map(|&v| v * v).sum::<f64>() / per.len() as f64;
        prop_assert!((mean_of_squares - mse(&a, &b).unwrap()).abs() < 1e-9);
    }

    /// Disclosure rate is monotone in the tolerance and bounded in [0, 1].
    #[test]
    fn disclosure_rate_monotone((a, b) in table_pair(6, 2), t1 in 0.0f64..50.0, t2 in 0.0f64..50.0) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let r_lo = disclosure_rate(&a, &b, lo).unwrap();
        let r_hi = disclosure_rate(&a, &b, hi).unwrap();
        prop_assert!((0.0..=1.0).contains(&r_lo));
        prop_assert!((0.0..=1.0).contains(&r_hi));
        prop_assert!(r_hi + 1e-12 >= r_lo);
        // Tolerance large enough to cover the value range discloses everything.
        prop_assert_eq!(disclosure_rate(&a, &b, 1_000.0).unwrap(), 1.0);
    }

    /// Correlation dissimilarity is symmetric, non-negative, zero on identical
    /// matrices, and bounded by 2 (correlations live in [-1, 1]).
    #[test]
    fn dissimilarity_properties(
        x in [-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0],
        r in [-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0],
    ) {
        let cx = correlation_matrix_3(x);
        let cr = correlation_matrix_3(r);
        let d_xy = correlation_dissimilarity_matrices(&cx, &cr).unwrap();
        let d_yx = correlation_dissimilarity_matrices(&cr, &cx).unwrap();
        prop_assert!((d_xy - d_yx).abs() < 1e-12);
        prop_assert!(d_xy >= 0.0);
        prop_assert!(d_xy <= 2.0 + 1e-12);
        prop_assert_eq!(correlation_dissimilarity_matrices(&cx, &cx).unwrap(), 0.0);
    }

    /// Privacy gain is antisymmetric around zero in the expected way: improving
    /// privacy gives a positive gain, weakening it gives a negative one.
    #[test]
    fn privacy_gain_signs(baseline in 0.1f64..50.0, factor in 0.1f64..5.0) {
        let defended = baseline * factor;
        let gain = privacy_gain(baseline, defended).unwrap();
        if factor > 1.0 {
            prop_assert!(gain > 0.0);
        } else if factor < 1.0 {
            prop_assert!(gain < 0.0);
        }
        prop_assert!((gain - (factor - 1.0)).abs() < 1e-9);
    }
}
