//! Record-level disclosure metrics.
//!
//! RMSE summarizes reconstruction accuracy in aggregate; these metrics answer
//! the sharper question a data owner asks: *for how many individual values did
//! the adversary get close to the truth?*

use crate::error::{MetricsError, Result};
use randrecon_data::DataTable;

/// Fraction of values reconstructed within `tolerance` of the original
/// (over every cell of the table).
pub fn disclosure_rate(
    original: &DataTable,
    reconstructed: &DataTable,
    tolerance: f64,
) -> Result<f64> {
    validate_pair(original, reconstructed)?;
    if !(tolerance >= 0.0 && tolerance.is_finite()) {
        return Err(MetricsError::InvalidParameter {
            reason: format!("tolerance must be non-negative and finite, got {tolerance}"),
        });
    }
    let a = original.values().as_slice();
    let b = reconstructed.values().as_slice();
    let within = a
        .iter()
        .zip(b.iter())
        .filter(|(&x, &y)| (x - y).abs() <= tolerance)
        .count();
    Ok(within as f64 / a.len() as f64)
}

/// Per-attribute disclosure rates at the given tolerance.
pub fn per_attribute_disclosure_rate(
    original: &DataTable,
    reconstructed: &DataTable,
    tolerance: f64,
) -> Result<Vec<f64>> {
    validate_pair(original, reconstructed)?;
    if !(tolerance >= 0.0 && tolerance.is_finite()) {
        return Err(MetricsError::InvalidParameter {
            reason: format!("tolerance must be non-negative and finite, got {tolerance}"),
        });
    }
    let (n, m) = original.values().shape();
    let mut out = Vec::with_capacity(m);
    for j in 0..m {
        let within = (0..n)
            .filter(|&i| {
                (original.values().get(i, j) - reconstructed.values().get(i, j)).abs() <= tolerance
            })
            .count();
        out.push(within as f64 / n as f64);
    }
    Ok(out)
}

/// Privacy gain of a defense, defined as the relative RMSE increase of an
/// attack against the defended scheme versus the baseline scheme:
/// `(rmse_defended − rmse_baseline) / rmse_baseline`.
///
/// Positive values mean the defense helped; the paper's Section 8 results are
/// exactly this comparison between correlated and independent noise.
pub fn privacy_gain(rmse_baseline: f64, rmse_defended: f64) -> Result<f64> {
    if rmse_baseline <= 0.0 || !rmse_baseline.is_finite() || !rmse_defended.is_finite() {
        return Err(MetricsError::InvalidParameter {
            reason: format!(
                "RMSE values must be finite with a positive baseline, got baseline {rmse_baseline}, defended {rmse_defended}"
            ),
        });
    }
    Ok((rmse_defended - rmse_baseline) / rmse_baseline)
}

fn validate_pair(original: &DataTable, reconstructed: &DataTable) -> Result<()> {
    if original.values().shape() != reconstructed.values().shape() {
        return Err(MetricsError::ShapeMismatch {
            left: original.values().shape(),
            right: reconstructed.values().shape(),
        });
    }
    if original.n_records() == 0 {
        return Err(MetricsError::EmptyInput {
            metric: "disclosure",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use randrecon_linalg::Matrix;

    fn table(values: Matrix) -> DataTable {
        DataTable::from_matrix(values).unwrap()
    }

    #[test]
    fn disclosure_counts_close_values() {
        let orig = table(Matrix::from_rows(&[&[1.0, 10.0][..], &[2.0, 20.0][..]]).unwrap());
        let recon = table(Matrix::from_rows(&[&[1.05, 15.0][..], &[2.2, 20.01][..]]).unwrap());
        let rate = disclosure_rate(&orig, &recon, 0.25).unwrap();
        assert!((rate - 0.75).abs() < 1e-12);
        let per = per_attribute_disclosure_rate(&orig, &recon, 0.25).unwrap();
        assert_eq!(per, vec![1.0, 0.5]);
    }

    #[test]
    fn exact_match_full_disclosure() {
        let orig = table(Matrix::zeros(3, 2));
        assert_eq!(disclosure_rate(&orig, &orig, 0.0).unwrap(), 1.0);
    }

    #[test]
    fn validation_errors() {
        let a = table(Matrix::zeros(2, 2));
        let b = table(Matrix::zeros(3, 2));
        assert!(disclosure_rate(&a, &b, 0.1).is_err());
        assert!(disclosure_rate(&a, &a, -1.0).is_err());
        assert!(per_attribute_disclosure_rate(&a, &a, f64::NAN).is_err());
    }

    #[test]
    fn privacy_gain_signs() {
        assert!((privacy_gain(2.0, 3.0).unwrap() - 0.5).abs() < 1e-12);
        assert!(privacy_gain(2.0, 1.0).unwrap() < 0.0);
        assert!(privacy_gain(0.0, 1.0).is_err());
        assert!(privacy_gain(1.0, f64::INFINITY).is_err());
    }
}
