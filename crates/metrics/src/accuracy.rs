//! Reconstruction-error metrics.
//!
//! The paper measures privacy as the root-mean-square error between the
//! original data `X` and a reconstruction `X*`: the larger the error, the more
//! privacy the randomization preserved against that attack. All figures report
//! RMSE over every value of the data set.

use crate::error::{MetricsError, Result};
use randrecon_data::DataTable;
use randrecon_linalg::Matrix;

/// Mean-square error between two matrices of identical shape, averaged over
/// every entry.
pub fn mse_matrices(original: &Matrix, reconstructed: &Matrix) -> Result<f64> {
    if original.shape() != reconstructed.shape() {
        return Err(MetricsError::ShapeMismatch {
            left: original.shape(),
            right: reconstructed.shape(),
        });
    }
    let (n, m) = original.shape();
    if n == 0 || m == 0 {
        return Err(MetricsError::EmptyInput { metric: "mse" });
    }
    let total: f64 = original
        .as_slice()
        .iter()
        .zip(reconstructed.as_slice().iter())
        .map(|(&a, &b)| (a - b) * (a - b))
        .sum();
    Ok(total / (n * m) as f64)
}

/// Mean-square error between an original table and its reconstruction.
pub fn mse(original: &DataTable, reconstructed: &DataTable) -> Result<f64> {
    mse_matrices(original.values(), reconstructed.values())
}

/// Root-mean-square error between an original table and its reconstruction —
/// the quantity plotted on the y-axis of every figure in the paper.
pub fn rmse(original: &DataTable, reconstructed: &DataTable) -> Result<f64> {
    Ok(mse(original, reconstructed)?.sqrt())
}

/// Root-mean-square error between two matrices.
pub fn rmse_matrices(original: &Matrix, reconstructed: &Matrix) -> Result<f64> {
    Ok(mse_matrices(original, reconstructed)?.sqrt())
}

/// RMSE computed separately for every attribute (column).
pub fn per_attribute_rmse(original: &DataTable, reconstructed: &DataTable) -> Result<Vec<f64>> {
    let a = original.values();
    let b = reconstructed.values();
    if a.shape() != b.shape() {
        return Err(MetricsError::ShapeMismatch {
            left: a.shape(),
            right: b.shape(),
        });
    }
    let (n, m) = a.shape();
    if n == 0 || m == 0 {
        return Err(MetricsError::EmptyInput {
            metric: "per_attribute_rmse",
        });
    }
    let mut out = Vec::with_capacity(m);
    for j in 0..m {
        let sum: f64 = (0..n)
            .map(|i| {
                let d = a.get(i, j) - b.get(i, j);
                d * d
            })
            .sum();
        out.push((sum / n as f64).sqrt());
    }
    Ok(out)
}

/// RMSE normalized by the standard deviation of the original data
/// (averaged over attributes). A value of 1 means the attack does no better
/// than guessing the mean; values well below 1 indicate disclosure.
pub fn normalized_rmse(original: &DataTable, reconstructed: &DataTable) -> Result<f64> {
    let raw = rmse(original, reconstructed)?;
    let variances = original.variance_vector();
    let mean_var = variances.iter().sum::<f64>() / variances.len() as f64;
    if mean_var <= 0.0 {
        return Err(MetricsError::InvalidParameter {
            reason: "original data has zero variance; normalized RMSE is undefined".to_string(),
        });
    }
    Ok(raw / mean_var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(values: Matrix) -> DataTable {
        DataTable::from_matrix(values).unwrap()
    }

    #[test]
    fn perfect_reconstruction_has_zero_error() {
        let t = table(Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]).unwrap());
        assert_eq!(mse(&t, &t).unwrap(), 0.0);
        assert_eq!(rmse(&t, &t).unwrap(), 0.0);
        assert_eq!(per_attribute_rmse(&t, &t).unwrap(), vec![0.0, 0.0]);
    }

    #[test]
    fn hand_computed_mse() {
        let a = table(Matrix::from_rows(&[&[0.0, 0.0][..], &[0.0, 0.0][..]]).unwrap());
        let b = table(Matrix::from_rows(&[&[1.0, 1.0][..], &[1.0, 3.0][..]]).unwrap());
        // Squared errors: 1, 1, 1, 9 -> mean 3.
        assert_eq!(mse(&a, &b).unwrap(), 3.0);
        assert!((rmse(&a, &b).unwrap() - 3.0_f64.sqrt()).abs() < 1e-12);
        let per = per_attribute_rmse(&a, &b).unwrap();
        assert!((per[0] - 1.0).abs() < 1e-12);
        assert!((per[1] - 5.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = table(Matrix::zeros(2, 2));
        let b = table(Matrix::zeros(3, 2));
        assert!(mse(&a, &b).is_err());
        assert!(per_attribute_rmse(&a, &b).is_err());
        assert!(rmse_matrices(&Matrix::zeros(1, 1), &Matrix::zeros(2, 1)).is_err());
    }

    #[test]
    fn normalized_rmse_scales_by_std() {
        let original = table(Matrix::from_rows(&[&[0.0][..], &[2.0][..], &[4.0][..]]).unwrap());
        // Reconstruction that always guesses the mean (2.0).
        let guess_mean = table(Matrix::from_rows(&[&[2.0][..], &[2.0][..], &[2.0][..]]).unwrap());
        let n = normalized_rmse(&original, &guess_mean).unwrap();
        // RMSE = sqrt(8/3); std = 2 -> ratio = sqrt(8/3)/2 ≈ 0.816 (population vs sample variance).
        assert!(n > 0.7 && n < 1.0, "n = {n}");
        // Zero-variance original rejected.
        let flat = table(Matrix::from_rows(&[&[1.0][..], &[1.0][..]]).unwrap());
        assert!(normalized_rmse(&flat, &flat).is_err());
    }
}
