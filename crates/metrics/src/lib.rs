//! # randrecon-metrics
//!
//! Privacy and accuracy metrics used by the evaluation.
//!
//! * [`accuracy`] — mean-square error and root-mean-square error between an
//!   original table and a reconstruction; this is the paper's privacy measure
//!   (the further the reconstruction is from the original, the more privacy is
//!   preserved).
//! * [`dissimilarity`] — the correlation-dissimilarity metric of
//!   Definition 8.1, used on the x-axis of Figure 4.
//! * [`privacy`] — record-level disclosure measures (fraction of values
//!   reconstructed within a tolerance, per-attribute disclosure risk).
//! * [`spectral`] — eigenvalue-spectrum recovery error and leading-subspace
//!   alignment, the metrics that audit the spectral core of the attacks
//!   (routed through the same `SymmetricEigen` pipeline the attacks use).
//! * [`utility`] — how well the disguised data preserves the aggregate
//!   statistics miners actually need (mean vector and covariance structure).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accuracy;
pub mod dissimilarity;
pub mod error;
pub mod privacy;
pub mod spectral;
pub mod utility;

pub use accuracy::{mse, per_attribute_rmse, rmse};
pub use dissimilarity::correlation_dissimilarity;
pub use error::{MetricsError, Result};
pub use spectral::{leading_subspace_alignment, spectrum_recovery_error};
