//! Spectrum-level audit metrics.
//!
//! The covariance attacks are spectral at their core, so the most direct way
//! to audit an estimated covariance — or an eigensolver swap — is to compare
//! spectra and leading eigenspaces rather than raw matrix entries. Both
//! metrics route through the Householder + implicit-shift QL pipeline the
//! attacks use: [`leading_subspace_alignment`] through the full
//! [`SymmetricEigen`] decomposition, [`spectrum_recovery_error`] through its
//! cheaper eigenvalues-only path — so they observe exactly what the attacks
//! observe.

use crate::error::{MetricsError, Result};
use randrecon_linalg::decomposition::SymmetricEigen;
use randrecon_linalg::Matrix;

/// Relative ℓ₂ distance between the (descending) eigenvalue spectra of two
/// symmetric matrices:
///
/// ```text
/// ‖λ(true) − λ(estimated)‖₂ / ‖λ(true)‖₂
/// ```
///
/// Because eigenvalues are compared position-wise after sorting, this is
/// invariant to the eigenbasis — it measures how faithfully the *energy
/// profile* of the covariance was recovered, which is what bandwidth
/// selection and the theory curves actually consume.
pub fn spectrum_recovery_error(true_cov: &Matrix, estimated_cov: &Matrix) -> Result<f64> {
    if true_cov.shape() != estimated_cov.shape() {
        return Err(MetricsError::ShapeMismatch {
            left: true_cov.shape(),
            right: estimated_cov.shape(),
        });
    }
    let spectrum_true = eigenvalues(true_cov)?;
    let spectrum_est = eigenvalues(estimated_cov)?;
    let norm_sq: f64 = spectrum_true.iter().map(|&l| l * l).sum();
    if norm_sq <= 0.0 {
        return Err(MetricsError::InvalidParameter {
            reason: "true covariance has a zero spectrum".to_string(),
        });
    }
    let diff_sq: f64 = spectrum_true
        .iter()
        .zip(spectrum_est.iter())
        .map(|(&a, &b)| (a - b) * (a - b))
        .sum();
    Ok((diff_sq / norm_sq).sqrt())
}

/// Alignment of the leading `p`-dimensional eigenspaces of two symmetric
/// matrices: the mean squared principal-angle cosine
///
/// ```text
/// ‖Q_pᵀ Q̂_p‖_F² / p   ∈ [0, 1]
/// ```
///
/// `1` means the estimated leading subspace coincides with the true one (the
/// PCA-DR projector is then exact); `p/m` is the expectation for a random
/// subspace. Individual eigenvector signs and rotations *within* a
/// degenerate cluster do not affect the value, so this is the right notion of
/// "the eigenvectors came out the same".
pub fn leading_subspace_alignment(
    true_cov: &Matrix,
    estimated_cov: &Matrix,
    p: usize,
) -> Result<f64> {
    if true_cov.shape() != estimated_cov.shape() {
        return Err(MetricsError::ShapeMismatch {
            left: true_cov.shape(),
            right: estimated_cov.shape(),
        });
    }
    let m = true_cov.rows();
    if p == 0 || p > m {
        return Err(MetricsError::InvalidParameter {
            reason: format!("need 1 <= p <= m, got p = {p}, m = {m}"),
        });
    }
    let q_true = decompose(true_cov)?.eigenvectors;
    let q_est = decompose(estimated_cov)?.eigenvectors;
    let qp = q_true.leading_columns(p).map_err(to_metrics_error)?;
    let qp_hat = q_est.leading_columns(p).map_err(to_metrics_error)?;
    let overlap = qp.transpose().matmul(&qp_hat).map_err(to_metrics_error)?;
    let fro_sq: f64 = overlap.as_slice().iter().map(|&v| v * v).sum();
    Ok(fro_sq / p as f64)
}

/// Descending eigenvalue spectrum of a symmetric matrix.
///
/// Uses the eigenvalues-only QL path (no eigenvector accumulation), which is
/// several times cheaper than the full decomposition — this is what keeps
/// [`spectrum_recovery_error`] affordable inside experiment sweeps.
pub fn eigenvalues(cov: &Matrix) -> Result<Vec<f64>> {
    randrecon_linalg::decomposition::symmetric_eigenvalues(cov).map_err(to_metrics_error)
}

fn decompose(cov: &Matrix) -> Result<SymmetricEigen> {
    SymmetricEigen::new(cov).map_err(to_metrics_error)
}

fn to_metrics_error(e: randrecon_linalg::LinalgError) -> MetricsError {
    MetricsError::InvalidParameter {
        reason: format!("spectral metric input rejected: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cov_pair() -> (Matrix, Matrix) {
        let a = Matrix::from_rows(&[
            &[9.0, 2.0, 0.0][..],
            &[2.0, 5.0, 1.0][..],
            &[0.0, 1.0, 2.0][..],
        ])
        .unwrap();
        let mut b = a.clone();
        b.set(0, 0, 9.4);
        b.set(2, 2, 1.8);
        (a, b)
    }

    #[test]
    fn identical_matrices_have_zero_error_and_full_alignment() {
        let (a, _) = cov_pair();
        assert!(spectrum_recovery_error(&a, &a).unwrap() < 1e-12);
        let align = leading_subspace_alignment(&a, &a, 2).unwrap();
        assert!((align - 1.0).abs() < 1e-10, "alignment = {align}");
    }

    #[test]
    fn perturbation_gives_small_error_and_high_alignment() {
        let (a, b) = cov_pair();
        let err = spectrum_recovery_error(&a, &b).unwrap();
        assert!(err > 0.0 && err < 0.1, "spectrum error = {err}");
        let align = leading_subspace_alignment(&a, &b, 1).unwrap();
        assert!(align > 0.99, "alignment = {align}");
    }

    #[test]
    fn orthogonal_subspaces_have_zero_alignment() {
        // Leading eigenvector of d1 is e1, of d2 is e2.
        let d1 = Matrix::from_diag(&[10.0, 1.0, 0.1]);
        let d2 = Matrix::from_diag(&[1.0, 10.0, 0.1]);
        let align = leading_subspace_alignment(&d1, &d2, 1).unwrap();
        assert!(align < 1e-12, "alignment = {align}");
    }

    #[test]
    fn rejects_bad_inputs() {
        let (a, _) = cov_pair();
        let small = Matrix::identity(2);
        assert!(matches!(
            spectrum_recovery_error(&a, &small),
            Err(MetricsError::ShapeMismatch { .. })
        ));
        assert!(leading_subspace_alignment(&a, &a, 0).is_err());
        assert!(leading_subspace_alignment(&a, &a, 4).is_err());
        let zero = Matrix::zeros(3, 3);
        assert!(spectrum_recovery_error(&zero, &a).is_err());
    }
}
