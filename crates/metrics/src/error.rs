//! Error type for the metrics crate.

use std::fmt;

/// Convenience alias used throughout `randrecon-metrics`.
pub type Result<T> = std::result::Result<T, MetricsError>;

/// Errors raised by metric computations.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricsError {
    /// The two inputs being compared have different shapes.
    ShapeMismatch {
        /// Shape of the first input.
        left: (usize, usize),
        /// Shape of the second input.
        right: (usize, usize),
    },
    /// An input was empty where data is required.
    EmptyInput {
        /// Which metric rejected the input.
        metric: &'static str,
    },
    /// A parameter was out of range (e.g. a negative tolerance).
    InvalidParameter {
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsError::ShapeMismatch { left, right } => write!(
                f,
                "shape mismatch: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            MetricsError::EmptyInput { metric } => write!(f, "empty input for metric {metric}"),
            MetricsError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
        }
    }
}

impl std::error::Error for MetricsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = MetricsError::ShapeMismatch {
            left: (2, 3),
            right: (3, 2),
        };
        assert!(e.to_string().contains("2x3"));
        assert!(MetricsError::EmptyInput { metric: "rmse" }
            .to_string()
            .contains("rmse"));
        assert!(MetricsError::InvalidParameter {
            reason: "neg".into()
        }
        .to_string()
        .contains("neg"));
    }
}
