//! Correlation dissimilarity (Definition 8.1 of the paper).
//!
//! Given the matrices of correlation coefficients `C_X` of the original data
//! and `C_R` of the random noise, the dissimilarity is the root-mean-square
//! difference over the off-diagonal entries:
//!
//! ```text
//! Dis(X, R) = sqrt( 1/(m² − m) · Σ_{i≠j} (C_X(i,j) − C_R(i,j))² )
//! ```
//!
//! The diagonal is excluded because correlation matrices always carry 1 there.
//! Experiment 4 sweeps this quantity on the x-axis: smaller dissimilarity
//! (noise correlations resemble the data) means better privacy.
//!
//! Note on the normalization: Definition 8.1 as printed in the paper places
//! the `1/(m² − m)` factor *outside* the square root, but with `m = 100`
//! attributes that formula cannot reach the 0.04–0.2 range shown on the
//! Figure 4 x-axis (it would be bounded by ~0.01). The RMS form used here —
//! the factor inside the root — reproduces the figure's scale, so we treat
//! the printed formula as a typo and document the choice in DESIGN.md.

use crate::error::{MetricsError, Result};
use randrecon_data::DataTable;
use randrecon_linalg::Matrix;
use randrecon_stats::summary::covariance_to_correlation;

/// Correlation dissimilarity between two correlation-coefficient matrices.
pub fn correlation_dissimilarity_matrices(cx: &Matrix, cr: &Matrix) -> Result<f64> {
    if cx.shape() != cr.shape() {
        return Err(MetricsError::ShapeMismatch {
            left: cx.shape(),
            right: cr.shape(),
        });
    }
    if !cx.is_square() {
        return Err(MetricsError::InvalidParameter {
            reason: format!(
                "correlation matrices must be square, got {}x{}",
                cx.rows(),
                cx.cols()
            ),
        });
    }
    let m = cx.rows();
    if m < 2 {
        return Err(MetricsError::InvalidParameter {
            reason: "correlation dissimilarity needs at least 2 attributes".to_string(),
        });
    }
    let mut sum = 0.0;
    for i in 0..m {
        for j in 0..m {
            if i == j {
                continue;
            }
            let d = cx.get(i, j) - cr.get(i, j);
            sum += d * d;
        }
    }
    Ok((sum / (m * m - m) as f64).sqrt())
}

/// Correlation dissimilarity between an original data table and a noise table,
/// computed from their sample correlation matrices.
pub fn correlation_dissimilarity(original: &DataTable, noise: &DataTable) -> Result<f64> {
    correlation_dissimilarity_matrices(&original.correlation_matrix(), &noise.correlation_matrix())
}

/// Correlation dissimilarity computed from *covariance* matrices (converted to
/// correlation form first). Convenient when the exact covariances are known
/// analytically, as they are for synthetic workloads.
pub fn correlation_dissimilarity_from_covariances(cov_x: &Matrix, cov_r: &Matrix) -> Result<f64> {
    correlation_dissimilarity_matrices(
        &covariance_to_correlation(cov_x),
        &covariance_to_correlation(cov_r),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_correlations_have_zero_dissimilarity() {
        let c = Matrix::from_rows(&[
            &[1.0, 0.7, 0.2][..],
            &[0.7, 1.0, -0.1][..],
            &[0.2, -0.1, 1.0][..],
        ])
        .unwrap();
        assert_eq!(correlation_dissimilarity_matrices(&c, &c).unwrap(), 0.0);
    }

    #[test]
    fn hand_computed_value() {
        // m = 2, off-diagonal difference of 0.5 in both symmetric positions:
        // the RMS of the off-diagonal differences is exactly 0.5.
        let cx = Matrix::from_rows(&[&[1.0, 0.9][..], &[0.9, 1.0][..]]).unwrap();
        let cr = Matrix::from_rows(&[&[1.0, 0.4][..], &[0.4, 1.0][..]]).unwrap();
        let d = correlation_dissimilarity_matrices(&cx, &cr).unwrap();
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn diagonal_is_ignored() {
        // Same off-diagonals, wildly different diagonals: dissimilarity still 0.
        let cx = Matrix::from_rows(&[&[1.0, 0.3][..], &[0.3, 1.0][..]]).unwrap();
        let cr = Matrix::from_rows(&[&[5.0, 0.3][..], &[0.3, -2.0][..]]).unwrap();
        assert_eq!(correlation_dissimilarity_matrices(&cx, &cr).unwrap(), 0.0);
    }

    #[test]
    fn validation() {
        let c2 = Matrix::identity(2);
        let c3 = Matrix::identity(3);
        assert!(correlation_dissimilarity_matrices(&c2, &c3).is_err());
        assert!(
            correlation_dissimilarity_matrices(&Matrix::identity(1), &Matrix::identity(1)).is_err()
        );
        let rect = Matrix::zeros(2, 3);
        assert!(correlation_dissimilarity_matrices(&rect, &rect).is_err());
    }

    #[test]
    fn from_tables_and_covariances_agree() {
        // Highly correlated data vs independent noise.
        let original = DataTable::from_named_columns(&[
            ("a", vec![1.0, 2.0, 3.0, 4.0]),
            ("b", vec![2.1, 3.9, 6.2, 7.8]),
        ])
        .unwrap();
        let noise = DataTable::from_named_columns(&[
            ("a", vec![0.3, -0.2, 0.1, -0.4]),
            ("b", vec![-0.1, 0.4, -0.3, 0.05]),
        ])
        .unwrap();
        let d_tables = correlation_dissimilarity(&original, &noise).unwrap();
        let d_cov = correlation_dissimilarity_from_covariances(
            &original.covariance_matrix(),
            &noise.covariance_matrix(),
        )
        .unwrap();
        assert!((d_tables - d_cov).abs() < 1e-12);
        assert!(d_tables > 0.0);
    }
}
