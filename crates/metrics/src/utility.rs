//! Data-mining utility metrics.
//!
//! Randomization is only worthwhile if the disguised data still supports the
//! aggregate computations miners need. Section 8.1 argues the improved
//! (correlated-noise) scheme keeps this utility because `Σ_y = Σ_x + Σ_r`
//! still lets the miner recover the original distribution. These metrics
//! quantify how faithfully the original aggregates can be recovered from a
//! disguised data set given the public noise model.

use crate::error::{MetricsError, Result};
use randrecon_linalg::Matrix;

/// Relative Frobenius-norm error between a true covariance matrix and an
/// estimate recovered from disguised data:
/// `‖Σ̂ − Σ‖_F / ‖Σ‖_F`.
pub fn covariance_recovery_error(true_cov: &Matrix, estimated_cov: &Matrix) -> Result<f64> {
    if true_cov.shape() != estimated_cov.shape() {
        return Err(MetricsError::ShapeMismatch {
            left: true_cov.shape(),
            right: estimated_cov.shape(),
        });
    }
    let denom = true_cov.frobenius_norm();
    if denom <= 0.0 {
        return Err(MetricsError::InvalidParameter {
            reason: "true covariance has zero norm".to_string(),
        });
    }
    let diff = true_cov
        .sub(estimated_cov)
        .map_err(|_| MetricsError::ShapeMismatch {
            left: true_cov.shape(),
            right: estimated_cov.shape(),
        })?;
    Ok(diff.frobenius_norm() / denom)
}

/// Maximum absolute error between the true mean vector and the mean vector
/// estimated from the disguised data.
pub fn mean_recovery_error(true_mean: &[f64], estimated_mean: &[f64]) -> Result<f64> {
    if true_mean.len() != estimated_mean.len() {
        return Err(MetricsError::ShapeMismatch {
            left: (true_mean.len(), 1),
            right: (estimated_mean.len(), 1),
        });
    }
    if true_mean.is_empty() {
        return Err(MetricsError::EmptyInput {
            metric: "mean_recovery_error",
        });
    }
    Ok(true_mean
        .iter()
        .zip(estimated_mean.iter())
        .map(|(&a, &b)| (a - b).abs())
        .fold(0.0, f64::max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covariance_recovery_perfect_and_scaled() {
        let cov = Matrix::from_rows(&[&[4.0, 1.0][..], &[1.0, 2.0][..]]).unwrap();
        assert_eq!(covariance_recovery_error(&cov, &cov).unwrap(), 0.0);
        let half = cov.scale(0.5);
        assert!((covariance_recovery_error(&cov, &half).unwrap() - 0.5).abs() < 1e-12);
        assert!(covariance_recovery_error(&cov, &Matrix::zeros(3, 3)).is_err());
        assert!(covariance_recovery_error(&Matrix::zeros(2, 2), &Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn mean_recovery_is_max_abs() {
        assert_eq!(mean_recovery_error(&[1.0, 2.0], &[1.5, 1.9]).unwrap(), 0.5);
        assert!(mean_recovery_error(&[1.0], &[1.0, 2.0]).is_err());
        assert!(mean_recovery_error(&[], &[]).is_err());
    }
}
