//! Property-based tests for the data layer: table invariants, CSV round-trips
//! and the synthetic workload generator.

use proptest::prelude::*;
use randrecon_data::csv::{from_csv_string, to_csv_string};
use randrecon_data::synthetic::{covariance_from_spectrum, random_orthogonal, EigenSpectrum};
use randrecon_data::DataTable;
use randrecon_linalg::decomposition::{orthonormality_defect, SymmetricEigen};
use randrecon_linalg::Matrix;
use randrecon_stats::rng::seeded_rng;

fn arbitrary_table(rows: usize, cols: usize) -> impl Strategy<Value = DataTable> {
    proptest::collection::vec(-1_000.0f64..1_000.0, rows * cols).prop_map(move |data| {
        DataTable::from_matrix(Matrix::from_flat(rows, cols, data).unwrap()).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Centering makes every column mean (numerically) zero and adding the
    /// means back restores the original table exactly.
    #[test]
    fn centering_roundtrip(table in arbitrary_table(7, 3)) {
        let (centered, means) = table.centered();
        for m in centered.mean_vector() {
            prop_assert!(m.abs() < 1e-9);
        }
        let restored = centered.with_means_added(&means).unwrap();
        prop_assert!(restored.approx_eq(&table, 1e-9));
    }

    /// The sample covariance matrix of any table is symmetric with
    /// non-negative diagonal entries.
    #[test]
    fn covariance_is_symmetric_psd_diagonal(table in arbitrary_table(9, 4)) {
        let cov = table.covariance_matrix();
        prop_assert!(cov.is_symmetric(1e-6));
        for j in 0..4 {
            prop_assert!(cov.get(j, j) >= -1e-9);
        }
    }

    /// CSV serialization round-trips every finite value.
    #[test]
    fn csv_roundtrip(table in arbitrary_table(6, 3)) {
        let text = to_csv_string(&table);
        let parsed = from_csv_string(&text).unwrap();
        prop_assert!(parsed.approx_eq(&table, 1e-9));
    }

    /// A covariance built from a prescribed spectrum has exactly that spectrum
    /// (up to fp error), whatever the random basis.
    #[test]
    fn spectrum_roundtrips_through_covariance(
        p in 1usize..4,
        m in 4usize..10,
        principal in 10.0f64..500.0,
        small in 0.5f64..5.0,
        seed in 0u64..10_000,
    ) {
        let p = p.min(m);
        let spectrum = EigenSpectrum::principal_plus_small(p, principal, m, small).unwrap();
        let mut rng = seeded_rng(seed);
        let q = random_orthogonal(m, &mut rng).unwrap();
        prop_assert!(orthonormality_defect(&q) < 1e-8);
        let cov = covariance_from_spectrum(&spectrum, &q).unwrap();
        prop_assert!((cov.trace() - spectrum.total_variance()).abs() < 1e-6 * spectrum.total_variance());
        let eig = SymmetricEigen::new(&cov).unwrap();
        let mut want = spectrum.values().to_vec();
        want.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for (got, want) in eig.eigenvalues.iter().zip(want.iter()) {
            prop_assert!((got - want).abs() < 1e-6 * want.max(1.0));
        }
    }

    /// `principal_filling_total` always hits the requested total variance and
    /// keeps the non-principal value fixed.
    #[test]
    fn filling_total_invariants(
        p in 1usize..6,
        extra in 0usize..10,
        small in 0.5f64..5.0,
        mean_variance in 50.0f64..300.0,
    ) {
        let m = p + extra;
        let total = mean_variance * m as f64;
        let spectrum = EigenSpectrum::principal_filling_total(p, m, small, total).unwrap();
        prop_assert_eq!(spectrum.len(), m);
        prop_assert!((spectrum.total_variance() - total).abs() < 1e-9 * total);
        if extra > 0 {
            prop_assert!((spectrum.values()[m - 1] - small).abs() < 1e-12);
            prop_assert!(spectrum.values()[0] > small);
        }
    }

    /// `head` never changes the records it keeps.
    #[test]
    fn head_is_a_prefix(table in arbitrary_table(8, 2), k in 0usize..12) {
        let head = table.head(k);
        prop_assert_eq!(head.n_records(), k.min(8));
        for i in 0..head.n_records() {
            prop_assert_eq!(head.record(i), table.record(i));
        }
    }
}
