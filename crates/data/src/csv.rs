//! Minimal CSV serialization for [`DataTable`]s.
//!
//! The examples persist generated and reconstructed data sets so they can be
//! inspected with external tooling; a hand-rolled writer/reader keeps the
//! workspace free of extra dependencies. Only the subset of CSV this crate
//! produces is supported: a header row of attribute names followed by rows of
//! decimal numbers, comma-separated, no quoting or escaping.

use crate::error::{DataError, Result};
use crate::schema::{Attribute, Schema};
use crate::table::DataTable;
use randrecon_linalg::Matrix;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Serializes a table to CSV text (header + one line per record).
pub fn to_csv_string(table: &DataTable) -> String {
    let mut out = String::new();
    out.push_str(&table.schema().names().join(","));
    out.push('\n');
    for record in table.records() {
        let row: Vec<String> = record.iter().map(|v| format!("{v}")).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Writes a table as CSV to any writer.
pub fn write_csv<W: Write>(table: &DataTable, writer: &mut W) -> Result<()> {
    writer.write_all(to_csv_string(table).as_bytes())?;
    Ok(())
}

/// Writes a table as CSV to a file path.
pub fn write_csv_file<P: AsRef<Path>>(table: &DataTable, path: P) -> Result<()> {
    let mut file = std::fs::File::create(path)?;
    write_csv(table, &mut file)
}

/// Parses a table from CSV text.
pub fn from_csv_string(text: &str) -> Result<DataTable> {
    read_csv(&mut text.as_bytes())
}

/// Reads a table from any reader producing CSV.
pub fn read_csv<R: Read>(reader: &mut R) -> Result<DataTable> {
    let buf = BufReader::new(reader);
    let mut lines = buf.lines();
    let header = match lines.next() {
        Some(h) => h?,
        None => {
            return Err(DataError::Parse {
                line: 1,
                reason: "empty input (missing header row)".to_string(),
            })
        }
    };
    let names: Vec<&str> = header.split(',').map(|s| s.trim()).collect();
    if names.iter().any(|n| n.is_empty()) {
        return Err(DataError::Parse {
            line: 1,
            reason: "header contains an empty attribute name".to_string(),
        });
    }
    let schema = Schema::new(names.iter().map(|&n| Attribute::sensitive(n)).collect())?;
    let m = schema.len();

    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (idx, line) in lines.enumerate() {
        let line = line?;
        let line_no = idx + 2;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(|s| s.trim()).collect();
        if fields.len() != m {
            return Err(DataError::Parse {
                line: line_no,
                reason: format!("expected {m} fields, found {}", fields.len()),
            });
        }
        let mut row = Vec::with_capacity(m);
        for f in fields {
            let v: f64 = f.parse().map_err(|_| DataError::Parse {
                line: line_no,
                reason: format!("'{f}' is not a number"),
            })?;
            row.push(v);
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(DataError::Parse {
            line: 2,
            reason: "no data rows".to_string(),
        });
    }
    let values = Matrix::from_row_vecs(rows)?;
    DataTable::new(schema, values)
}

/// Reads a table from a CSV file.
pub fn read_csv_file<P: AsRef<Path>>(path: P) -> Result<DataTable> {
    let mut file = std::fs::File::open(path)?;
    read_csv(&mut file)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataTable {
        DataTable::from_named_columns(&[("x", vec![1.0, 2.5, -3.0]), ("y", vec![0.5, 0.0, 10.0])])
            .unwrap()
    }

    #[test]
    fn roundtrip_through_string() {
        let t = sample();
        let text = to_csv_string(&t);
        assert!(text.starts_with("x,y\n"));
        let parsed = from_csv_string(&text).unwrap();
        assert!(parsed.approx_eq(&t, 1e-12));
    }

    #[test]
    fn roundtrip_through_file() {
        let t = sample();
        let dir = std::env::temp_dir();
        let path = dir.join("randrecon_csv_roundtrip_test.csv");
        write_csv_file(&t, &path).unwrap();
        let parsed = read_csv_file(&path).unwrap();
        assert!(parsed.approx_eq(&t, 1e-12));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_errors_are_located() {
        assert!(matches!(
            from_csv_string(""),
            Err(DataError::Parse { line: 1, .. })
        ));
        let bad_field = "a,b\n1.0,2.0\n1.0,not_a_number\n";
        match from_csv_string(bad_field) {
            Err(DataError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
        let wrong_arity = "a,b\n1.0\n";
        assert!(matches!(
            from_csv_string(wrong_arity),
            Err(DataError::Parse { line: 2, .. })
        ));
        assert!(from_csv_string("a,b\n").is_err());
        assert!(from_csv_string("a,,c\n1,2,3\n").is_err());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "a,b\n1,2\n\n3,4\n";
        let t = from_csv_string(text).unwrap();
        assert_eq!(t.n_records(), 2);
        assert_eq!(t.record(1), &[3.0, 4.0]);
    }

    #[test]
    fn duplicate_header_names_rejected() {
        assert!(from_csv_string("a,a\n1,2\n").is_err());
    }
}
