//! Minimal CSV serialization for [`DataTable`]s.
//!
//! The examples persist generated and reconstructed data sets so they can be
//! inspected with external tooling; a hand-rolled writer/reader keeps the
//! workspace free of extra dependencies. The writer emits the plain subset
//! (no quoting — it only ever writes numbers), while the reader understands
//! RFC-4180 quoting: fields wrapped in double quotes may contain commas,
//! doubled quotes, and line breaks. [`split_csv_fields`] and
//! [`parse_csv_text`] expose that field-level layer for non-numeric CSV
//! (the experiment report files), so every CSV consumer in the workspace
//! shares one grammar.
//!
//! Two access granularities share one parser:
//!
//! * [`read_csv`] / [`from_csv_string`] build the whole [`DataTable`] — fine
//!   for the paper-scale experiments.
//! * [`CsvChunkReader`] iterates the same format `chunk_rows` records at a
//!   time and implements [`RecordChunkSource`], so the streaming attack
//!   engine can sweep a file twice with bounded memory. [`CsvChunkWriter`]
//!   is the matching buffered sink: header once, then appended chunks.

use crate::chunks::RecordChunkSource;
use crate::error::{DataError, Result};
use crate::schema::{Attribute, Schema};
use crate::table::DataTable;
use randrecon_linalg::Matrix;
use std::io::{BufRead, BufReader, BufWriter, Lines, Read, Write};
use std::path::{Path, PathBuf};

/// Serializes a table to CSV text (header + one line per record).
pub fn to_csv_string(table: &DataTable) -> String {
    let mut out = String::new();
    out.push_str(&table.schema().names().join(","));
    out.push('\n');
    for record in table.records() {
        let row: Vec<String> = record.iter().map(|v| format!("{v}")).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Writes a table as CSV to any writer.
pub fn write_csv<W: Write>(table: &DataTable, writer: &mut W) -> Result<()> {
    writer.write_all(to_csv_string(table).as_bytes())?;
    Ok(())
}

/// Writes a table as CSV to a file path.
pub fn write_csv_file<P: AsRef<Path>>(table: &DataTable, path: P) -> Result<()> {
    let mut file = std::fs::File::create(&path).map_err(|source| DataError::IoAt {
        path: path.as_ref().to_path_buf(),
        source,
    })?;
    write_csv(table, &mut file)
}

/// Splits one CSV record into its fields, RFC-4180 style: a field wrapped
/// in double quotes may contain commas, line breaks, and doubled (`""`)
/// quotes; unquoted fields pass through verbatim. Structural violations —
/// an unterminated quote, a stray quote inside an unquoted field, or text
/// after a closing quote — return `Err(reason)`; callers attach the line
/// location they know and this layer does not.
pub fn split_csv_fields(record: &str) -> std::result::Result<Vec<String>, String> {
    #[derive(PartialEq)]
    enum State {
        FieldStart,
        Unquoted,
        Quoted,
        QuoteClosed,
    }
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut state = State::FieldStart;
    let mut chars = record.chars().peekable();
    while let Some(c) = chars.next() {
        match state {
            State::FieldStart => match c {
                '"' => state = State::Quoted,
                ',' => fields.push(std::mem::take(&mut field)),
                c => {
                    field.push(c);
                    state = State::Unquoted;
                }
            },
            State::Unquoted => match c {
                ',' => {
                    fields.push(std::mem::take(&mut field));
                    state = State::FieldStart;
                }
                '"' => return Err("quote inside unquoted field".to_string()),
                c => field.push(c),
            },
            State::Quoted => match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    field.push('"');
                }
                '"' => state = State::QuoteClosed,
                c => field.push(c),
            },
            State::QuoteClosed => match c {
                ',' => {
                    fields.push(std::mem::take(&mut field));
                    state = State::FieldStart;
                }
                other => return Err(format!("unexpected '{other}' after closing quote")),
            },
        }
    }
    if state == State::Quoted {
        return Err("unterminated quoted field".to_string());
    }
    fields.push(field);
    Ok(fields)
}

/// Parses a full CSV text into records of string fields, RFC-4180 style:
/// record boundaries are newlines *outside* quotes, so a quoted field may
/// span physical lines. Blank records are skipped (matching the numeric
/// reader); errors are located at the record's first physical line. This is
/// the field-level entry point the experiment report tests round-trip
/// through — the numeric [`read_csv`] path shares [`split_csv_fields`].
pub fn parse_csv_text(text: &str) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut start = 0usize;
    let mut line = 1usize;
    let mut inner_newlines = 0usize;
    let mut in_quotes = false;
    fn push_record(raw: &str, line: usize, records: &mut Vec<Vec<String>>) -> Result<()> {
        let raw = raw.strip_suffix('\r').unwrap_or(raw);
        if raw.is_empty() {
            return Ok(());
        }
        let fields = split_csv_fields(raw).map_err(|reason| DataError::Parse { line, reason })?;
        records.push(fields);
        Ok(())
    }
    for (i, b) in text.bytes().enumerate() {
        match b {
            b'"' => in_quotes = !in_quotes,
            b'\n' if !in_quotes => {
                push_record(&text[start..i], line, &mut records)?;
                start = i + 1;
                line += inner_newlines + 1;
                inner_newlines = 0;
            }
            b'\n' => inner_newlines += 1,
            _ => {}
        }
    }
    push_record(&text[start..], line, &mut records)?;
    Ok(records)
}

/// Parses a header line into a schema (every attribute marked sensitive).
fn parse_header(header: &str) -> Result<Schema> {
    let names: Vec<String> = if header.contains('"') {
        split_csv_fields(header).map_err(|reason| DataError::Parse { line: 1, reason })?
    } else {
        header.split(',').map(|s| s.trim().to_string()).collect()
    };
    if names.iter().any(|n| n.is_empty()) {
        return Err(DataError::Parse {
            line: 1,
            reason: "header contains an empty attribute name".to_string(),
        });
    }
    Schema::new(names.iter().map(Attribute::sensitive).collect())
}

/// Parses one record line into `m` numbers, appending them to `out`.
/// `line_no` is the 1-based physical line for error reporting; malformed
/// values are located by their 1-based column too. On any error the partial
/// row is rolled back, so `out` always holds whole rows.
fn parse_record(line: &str, m: usize, line_no: usize, out: &mut Vec<f64>) -> Result<()> {
    let start = out.len();
    let push = |col: usize, f: &str, out: &mut Vec<f64>| -> Result<()> {
        match f.parse::<f64>() {
            Ok(v) => {
                out.push(v);
                Ok(())
            }
            Err(_) => {
                out.truncate(start);
                Err(DataError::Parse {
                    line: line_no,
                    reason: format!("column {}: '{f}' is not a number", col + 1),
                })
            }
        }
    };
    if line.contains('"') {
        // Quoted (RFC-4180) row: split field-aware, then parse each field.
        let fields = split_csv_fields(line).map_err(|reason| DataError::Parse {
            line: line_no,
            reason,
        })?;
        if fields.len() != m {
            return Err(DataError::Parse {
                line: line_no,
                reason: format!("expected {m} fields, found {}", fields.len()),
            });
        }
        for (col, f) in fields.iter().enumerate() {
            push(col, f.trim(), out)?;
        }
        return Ok(());
    }
    let fields = line.split(',').count();
    if fields != m {
        return Err(DataError::Parse {
            line: line_no,
            reason: format!("expected {m} fields, found {fields}"),
        });
    }
    for (col, f) in line.split(',').enumerate() {
        push(col, f.trim(), out)?;
    }
    Ok(())
}

/// Parses a table from CSV text.
pub fn from_csv_string(text: &str) -> Result<DataTable> {
    read_csv(&mut text.as_bytes())
}

/// Reads a table from any reader producing CSV.
pub fn read_csv<R: Read>(reader: &mut R) -> Result<DataTable> {
    let buf = BufReader::new(reader);
    let mut lines = buf.lines();
    let header = match lines.next() {
        Some(h) => h?,
        None => {
            return Err(DataError::Parse {
                line: 1,
                reason: "empty input (missing header row)".to_string(),
            })
        }
    };
    let schema = parse_header(&header)?;
    let m = schema.len();

    let mut data: Vec<f64> = Vec::new();
    let mut n = 0usize;
    for (idx, line) in lines.enumerate() {
        let line = line?;
        let line_no = idx + 2;
        if line.trim().is_empty() {
            continue;
        }
        parse_record(&line, m, line_no, &mut data)?;
        n += 1;
    }
    if n == 0 {
        return Err(DataError::Parse {
            line: 2,
            reason: "no data rows".to_string(),
        });
    }
    let values = Matrix::from_flat(n, m, data)?;
    DataTable::new(schema, values)
}

/// Reads a table from a CSV file.
pub fn read_csv_file<P: AsRef<Path>>(path: P) -> Result<DataTable> {
    let mut file = std::fs::File::open(&path).map_err(|source| DataError::IoAt {
        path: path.as_ref().to_path_buf(),
        source,
    })?;
    read_csv(&mut file)
}

/// Chunked CSV reader: iterates a CSV file `chunk_rows` records at a time
/// through the same parser as [`read_csv`].
///
/// Implements [`RecordChunkSource`]; [`reset`](RecordChunkSource::reset)
/// reopens the file, so the two-pass streaming engine can sweep it twice.
/// Unlike [`read_csv`], a file with a header and zero data rows is not an
/// error here — the stream is simply empty (the attack engines reject
/// sources with fewer than two records themselves).
#[derive(Debug)]
pub struct CsvChunkReader {
    path: PathBuf,
    chunk_rows: usize,
    schema: Schema,
    lines: Lines<BufReader<std::fs::File>>,
    /// 1-based physical line number of the last line consumed (header = 1).
    line_no: usize,
}

impl CsvChunkReader {
    /// Opens a CSV file and parses its header.
    pub fn open<P: AsRef<Path>>(path: P, chunk_rows: usize) -> Result<Self> {
        if chunk_rows == 0 {
            return Err(DataError::Stream {
                reason: "chunk_rows must be at least 1".to_string(),
            });
        }
        let path = path.as_ref().to_path_buf();
        let (schema, lines) = Self::open_file(&path)?;
        Ok(CsvChunkReader {
            path,
            chunk_rows,
            schema,
            lines,
            line_no: 1,
        })
    }

    fn open_file(path: &Path) -> Result<(Schema, Lines<BufReader<std::fs::File>>)> {
        let file = std::fs::File::open(path).map_err(|source| DataError::IoAt {
            path: path.to_path_buf(),
            source,
        })?;
        let mut lines = BufReader::new(file).lines();
        let header = match lines.next() {
            Some(h) => h?,
            None => {
                return Err(DataError::Parse {
                    line: 1,
                    reason: "empty input (missing header row)".to_string(),
                })
            }
        };
        Ok((parse_header(&header)?, lines))
    }

    /// The schema parsed from the header row.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }
}

impl RecordChunkSource for CsvChunkReader {
    fn n_attributes(&self) -> usize {
        self.schema.len()
    }

    fn n_records_hint(&self) -> Option<usize> {
        None
    }

    fn reset(&mut self) -> Result<()> {
        let (schema, lines) = Self::open_file(&self.path)?;
        if schema != self.schema {
            return Err(DataError::Stream {
                reason: format!(
                    "file '{}' changed schema between sweeps",
                    self.path.display()
                ),
            });
        }
        self.lines = lines;
        self.line_no = 1;
        Ok(())
    }

    fn next_chunk(&mut self) -> Result<Option<Matrix>> {
        let m = self.schema.len();
        let mut data: Vec<f64> = Vec::with_capacity(self.chunk_rows * m);
        let mut rows = 0usize;
        while rows < self.chunk_rows {
            let line = match self.lines.next() {
                Some(l) => l?,
                None => break,
            };
            self.line_no += 1;
            if line.trim().is_empty() {
                continue;
            }
            parse_record(&line, m, self.line_no, &mut data)?;
            rows += 1;
        }
        if rows == 0 {
            return Ok(None);
        }
        Ok(Some(Matrix::from_flat(rows, m, data)?))
    }
}

/// Buffered chunk-wise CSV writer: header once at construction, then rows
/// appended chunk by chunk — the file sink of the streaming attack engine.
#[derive(Debug)]
pub struct CsvChunkWriter<W: Write> {
    writer: W,
    n_attributes: usize,
    rows_written: usize,
}

impl CsvChunkWriter<BufWriter<std::fs::File>> {
    /// Creates (truncating) a CSV file and writes the header row.
    pub fn create<P: AsRef<Path>>(path: P, schema: &Schema) -> Result<Self> {
        let file = std::fs::File::create(&path).map_err(|source| DataError::IoAt {
            path: path.as_ref().to_path_buf(),
            source,
        })?;
        CsvChunkWriter::new(BufWriter::new(file), schema)
    }
}

impl<W: Write> CsvChunkWriter<W> {
    /// Wraps any writer (callers supply their own buffering) and writes the
    /// header row immediately.
    pub fn new(mut writer: W, schema: &Schema) -> Result<Self> {
        writer.write_all(schema.names().join(",").as_bytes())?;
        writer.write_all(b"\n")?;
        Ok(CsvChunkWriter {
            writer,
            n_attributes: schema.len(),
            rows_written: 0,
        })
    }

    /// Appends one chunk of records (columns must match the schema width).
    pub fn write_chunk(&mut self, chunk: &Matrix) -> Result<()> {
        if chunk.cols() != self.n_attributes {
            return Err(DataError::SchemaMismatch {
                reason: format!(
                    "chunk has {} columns but the header has {} attributes",
                    chunk.cols(),
                    self.n_attributes
                ),
            });
        }
        let mut line = String::new();
        for row in chunk.row_iter() {
            line.clear();
            for (j, v) in row.iter().enumerate() {
                if j > 0 {
                    line.push(',');
                }
                line.push_str(&format!("{v}"));
            }
            line.push('\n');
            self.writer.write_all(line.as_bytes())?;
        }
        self.rows_written += chunk.rows();
        Ok(())
    }

    /// Total record rows written so far (excluding the header).
    pub fn rows_written(&self) -> usize {
        self.rows_written
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> Result<W> {
        self.writer.flush()?;
        Ok(self.writer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataTable {
        DataTable::from_named_columns(&[("x", vec![1.0, 2.5, -3.0]), ("y", vec![0.5, 0.0, 10.0])])
            .unwrap()
    }

    #[test]
    fn roundtrip_through_string() {
        let t = sample();
        let text = to_csv_string(&t);
        assert!(text.starts_with("x,y\n"));
        let parsed = from_csv_string(&text).unwrap();
        assert!(parsed.approx_eq(&t, 1e-12));
    }

    #[test]
    fn roundtrip_through_file() {
        let t = sample();
        let dir = std::env::temp_dir();
        let path = dir.join("randrecon_csv_roundtrip_test.csv");
        write_csv_file(&t, &path).unwrap();
        let parsed = read_csv_file(&path).unwrap();
        assert!(parsed.approx_eq(&t, 1e-12));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_errors_are_located() {
        assert!(matches!(
            from_csv_string(""),
            Err(DataError::Parse { line: 1, .. })
        ));
        let bad_field = "a,b\n1.0,2.0\n1.0,not_a_number\n";
        match from_csv_string(bad_field) {
            Err(DataError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
        let wrong_arity = "a,b\n1.0\n";
        assert!(matches!(
            from_csv_string(wrong_arity),
            Err(DataError::Parse { line: 2, .. })
        ));
        assert!(from_csv_string("a,b\n").is_err());
        assert!(from_csv_string("a,,c\n1,2,3\n").is_err());
    }

    #[test]
    fn split_csv_fields_rfc4180() {
        assert_eq!(split_csv_fields("a,b,c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(split_csv_fields("").unwrap(), vec![""]);
        assert_eq!(split_csv_fields("a,,c").unwrap(), vec!["a", "", "c"]);
        assert_eq!(
            split_csv_fields("\"a,b\",c").unwrap(),
            vec!["a,b".to_string(), "c".to_string()]
        );
        assert_eq!(
            split_csv_fields("\"he said \"\"hi\"\"\",2").unwrap(),
            vec!["he said \"hi\"".to_string(), "2".to_string()]
        );
        assert_eq!(
            split_csv_fields("\"line\nbreak\",x").unwrap(),
            vec!["line\nbreak".to_string(), "x".to_string()]
        );
        assert_eq!(split_csv_fields("\"\",\"\"").unwrap(), vec!["", ""]);
        assert!(split_csv_fields("\"open").is_err());
        assert!(split_csv_fields("ab\"cd").is_err());
        assert!(split_csv_fields("\"done\"trailing").is_err());
    }

    #[test]
    fn parse_csv_text_handles_quoted_newlines_and_locates_errors() {
        let text = "label,value\n\"a,b\",1\n\"multi\nline\",2\nplain,3\n";
        let records = parse_csv_text(text).unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(records[1], vec!["a,b", "1"]);
        assert_eq!(records[2], vec!["multi\nline", "2"]);
        assert_eq!(records[3], vec!["plain", "3"]);

        // CRLF line endings and a missing trailing newline both parse.
        let crlf = parse_csv_text("a,b\r\n1,2\r\n3,4").unwrap();
        assert_eq!(crlf, vec![vec!["a", "b"], vec!["1", "2"], vec!["3", "4"]]);

        // Errors are located at the record's first physical line, counting
        // the newlines embedded in earlier quoted fields.
        let bad = "h\n\"two\nlines\"\noops\"\n";
        match parse_csv_text(bad) {
            Err(DataError::Parse { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected located parse error, got {other:?}"),
        }
        // An unterminated quote surfaces as an error, not an infinite record.
        assert!(parse_csv_text("h\n\"never closed\n").is_err());
    }

    #[test]
    fn numeric_reader_accepts_quoted_fields() {
        // Quoted numbers and quoted header names parse through the same
        // field grammar as the report CSVs.
        let t = from_csv_string("\"a\",b\n\"1.5\",2\n3,\"4\"\n").unwrap();
        assert_eq!(t.schema().names(), vec!["a", "b"]);
        assert_eq!(t.record(0), &[1.5, 2.0]);
        assert_eq!(t.record(1), &[3.0, 4.0]);
        // Arity and value errors still located on the quoted path.
        assert!(matches!(
            from_csv_string("a,b\n\"1\"\n"),
            Err(DataError::Parse { line: 2, .. })
        ));
        assert!(matches!(
            from_csv_string("a,b\n\"x\",2\n"),
            Err(DataError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "a,b\n1,2\n\n3,4\n";
        let t = from_csv_string(text).unwrap();
        assert_eq!(t.n_records(), 2);
        assert_eq!(t.record(1), &[3.0, 4.0]);
    }

    #[test]
    fn duplicate_header_names_rejected() {
        assert!(from_csv_string("a,a\n1,2\n").is_err());
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("randrecon_csv_{name}_{}.csv", std::process::id()))
    }

    #[test]
    fn chunked_reader_matches_whole_file_parse() {
        // 11 records in chunks of 4 → sizes 4, 4, 3; same values as read_csv.
        let values = Matrix::from_fn(11, 3, |i, j| (i as f64) * 1.5 - (j as f64) * 0.25);
        let t = DataTable::from_matrix(values).unwrap();
        let path = temp_path("chunked_roundtrip");
        write_csv_file(&t, &path).unwrap();

        let mut reader = CsvChunkReader::open(&path, 4).unwrap();
        assert_eq!(reader.n_attributes(), 3);
        assert_eq!(reader.schema().names(), t.schema().names());
        assert_eq!(reader.n_records_hint(), None);
        let mut sizes = Vec::new();
        let mut rows: Vec<f64> = Vec::new();
        while let Some(chunk) = reader.next_chunk().unwrap() {
            sizes.push(chunk.rows());
            rows.extend_from_slice(chunk.as_slice());
        }
        assert_eq!(sizes, vec![4, 4, 3]);
        let streamed = Matrix::from_flat(11, 3, rows).unwrap();
        let whole = read_csv_file(&path).unwrap();
        assert!(streamed.approx_eq(whole.values(), 0.0));

        // Reset replays the identical sweep (the two-pass engine contract).
        reader.reset().unwrap();
        let first_again = reader.next_chunk().unwrap().unwrap();
        assert!(first_again.approx_eq(&whole.values().submatrix(0, 4, 0, 3).unwrap(), 0.0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunked_reader_reports_malformed_rows_with_line_numbers() {
        let path = temp_path("malformed");
        std::fs::write(&path, "a,b\n1,2\n3,4\n5,not_a_number\n7,8\n").unwrap();
        let mut reader = CsvChunkReader::open(&path, 2).unwrap();
        // First chunk (lines 2-3) parses fine.
        assert_eq!(reader.next_chunk().unwrap().unwrap().rows(), 2);
        // Second chunk hits the malformed value on physical line 4.
        match reader.next_chunk() {
            Err(DataError::Parse { line, reason }) => {
                assert_eq!(line, 4);
                assert!(reason.contains("not_a_number"));
            }
            other => panic!("expected a located parse error, got {other:?}"),
        }

        // Wrong arity is also located, and blank lines don't shift the count.
        std::fs::write(&path, "a,b\n1,2\n\n3\n").unwrap();
        let mut reader = CsvChunkReader::open(&path, 8).unwrap();
        match reader.next_chunk() {
            Err(DataError::Parse { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected a located parse error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunked_reader_reset_after_malformed_row_reopens_cleanly() {
        let path = temp_path("reset_after_malformed");
        std::fs::write(&path, "a,b\n1,2\n3,4\n5,oops\n7,8\n9,10\n").unwrap();
        let mut reader = CsvChunkReader::open(&path, 2).unwrap();
        assert_eq!(reader.next_chunk().unwrap().unwrap().rows(), 2);
        assert!(matches!(
            reader.next_chunk(),
            Err(DataError::Parse { line: 4, .. })
        ));

        // Reset rewinds the physical-line bookkeeping too: the replay parses
        // the same leading rows and relocates the same error at line 4.
        reader.reset().unwrap();
        let first = reader.next_chunk().unwrap().unwrap();
        assert_eq!(first.row(0), &[1.0, 2.0]);
        assert_eq!(first.row(1), &[3.0, 4.0]);
        assert!(matches!(
            reader.next_chunk(),
            Err(DataError::Parse { line: 4, .. })
        ));

        // Once the file is repaired (same schema), a reset sweep succeeds
        // end to end — the reader carries no poisoned state.
        std::fs::write(&path, "a,b\n1,2\n3,4\n5,6\n7,8\n9,10\n").unwrap();
        reader.reset().unwrap();
        let mut rows = 0;
        while let Some(chunk) = reader.next_chunk().unwrap() {
            rows += chunk.rows();
        }
        assert_eq!(rows, 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunked_reader_locates_row_and_column_across_chunk_boundaries() {
        // The malformed value sits in column 3 of physical line 6, behind a
        // blank line and two chunk boundaries (chunk_rows = 2): both
        // coordinates must survive the chunking.
        let path = temp_path("row_column_location");
        std::fs::write(&path, "a,b,c\n1,2,3\n\n4,5,6\n7,8,9\n10,11,bad\n").unwrap();
        let mut reader = CsvChunkReader::open(&path, 2).unwrap();
        assert_eq!(reader.next_chunk().unwrap().unwrap().rows(), 2);
        match reader.next_chunk() {
            Err(DataError::Parse { line, reason }) => {
                assert_eq!(line, 6);
                assert!(reason.contains("column 3"), "reason: {reason}");
                assert!(reason.contains("bad"), "reason: {reason}");
            }
            other => panic!("expected a located parse error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunked_reader_open_validation() {
        let path = temp_path("open_validation");
        std::fs::write(&path, "a,b\n1,2\n").unwrap();
        assert!(CsvChunkReader::open(&path, 0).is_err());
        assert!(CsvChunkReader::open(temp_path("does_not_exist"), 4).is_err());
        // Header-only file opens fine and yields an empty stream.
        std::fs::write(&path, "a,b\n").unwrap();
        let mut reader = CsvChunkReader::open(&path, 4).unwrap();
        assert!(reader.next_chunk().unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunk_writer_roundtrips_through_chunk_reader() {
        let t = sample();
        let path = temp_path("writer");
        let mut writer = CsvChunkWriter::create(&path, t.schema()).unwrap();
        // Write the three records as two chunks.
        writer
            .write_chunk(&t.values().submatrix(0, 2, 0, 2).unwrap())
            .unwrap();
        writer
            .write_chunk(&t.values().submatrix(2, 3, 0, 2).unwrap())
            .unwrap();
        assert_eq!(writer.rows_written(), 3);
        // Wrong width rejected before anything is written.
        assert!(writer.write_chunk(&Matrix::zeros(1, 3)).is_err());
        writer.finish().unwrap();

        let parsed = read_csv_file(&path).unwrap();
        assert!(parsed.approx_eq(&t, 1e-12));
        std::fs::remove_file(&path).ok();
    }
}
