//! Error type for the data crate.

use randrecon_linalg::LinalgError;
use randrecon_stats::StatsError;
use std::fmt;

/// Convenience alias used throughout `randrecon-data`.
pub type Result<T> = std::result::Result<T, DataError>;

/// Errors raised by table construction, CSV parsing, and workload generation.
#[derive(Debug)]
pub enum DataError {
    /// The schema and the data disagree (wrong number of columns, duplicate names, …).
    SchemaMismatch {
        /// What went wrong.
        reason: String,
    },
    /// A referenced attribute does not exist.
    UnknownAttribute {
        /// The attribute name that was requested.
        name: String,
    },
    /// CSV input could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// Workload specification was invalid (e.g. empty eigenvalue spectrum).
    InvalidWorkload {
        /// What went wrong.
        reason: String,
    },
    /// A chunked record source failed mid-stream (e.g. a wrapped generator or
    /// randomizer reported an error while producing a chunk).
    Stream {
        /// What went wrong.
        reason: String,
    },
    /// An I/O error from reading or writing CSV files.
    Io(std::io::Error),
    /// An I/O error located at the file path it hit — what the bare
    /// [`Io`](DataError::Io) variant becomes once a path is known, so a
    /// failed open in a 1000-cell sweep names the file instead of just
    /// "No such file or directory".
    IoAt {
        /// The file the operation targeted.
        path: std::path::PathBuf,
        /// The underlying I/O failure.
        source: std::io::Error,
    },
    /// Propagated linear-algebra failure.
    Linalg(LinalgError),
    /// Propagated statistics failure.
    Stats(StatsError),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::SchemaMismatch { reason } => write!(f, "schema mismatch: {reason}"),
            DataError::UnknownAttribute { name } => write!(f, "unknown attribute: {name}"),
            DataError::Parse { line, reason } => {
                write!(f, "CSV parse error at line {line}: {reason}")
            }
            DataError::InvalidWorkload { reason } => write!(f, "invalid workload: {reason}"),
            DataError::Stream { reason } => write!(f, "record stream error: {reason}"),
            DataError::Io(e) => write!(f, "I/O error: {e}"),
            DataError::IoAt { path, source } => {
                write!(f, "I/O error on {}: {source}", path.display())
            }
            DataError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            DataError::Stats(e) => write!(f, "statistics error: {e}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            DataError::IoAt { source, .. } => Some(source),
            DataError::Linalg(e) => Some(e),
            DataError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

impl From<LinalgError> for DataError {
    fn from(e: LinalgError) -> Self {
        DataError::Linalg(e)
    }
}

impl From<StatsError> for DataError {
    fn from(e: StatsError) -> Self {
        DataError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(DataError::SchemaMismatch { reason: "x".into() }
            .to_string()
            .contains("schema"));
        assert!(DataError::UnknownAttribute { name: "age".into() }
            .to_string()
            .contains("age"));
        assert!(DataError::Parse {
            line: 3,
            reason: "bad".into()
        }
        .to_string()
        .contains("line 3"));
        assert!(DataError::InvalidWorkload {
            reason: "empty".into()
        }
        .to_string()
        .contains("empty"));
    }

    #[test]
    fn conversions_preserve_source() {
        let e: DataError = LinalgError::Singular { pivot: 0 }.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: DataError = StatsError::InsufficientData { got: 0, needed: 1 }.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: DataError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
        let e = DataError::IoAt {
            path: std::path::PathBuf::from("/tmp/records.csv"),
            source: std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        };
        assert!(e.to_string().contains("records.csv"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
