//! Attribute schemas.
//!
//! A schema names each attribute and records whether it is *sensitive* —
//! i.e. whether the data owner intends it to be protected by randomization.
//! The attack code does not need this distinction (it reconstructs every
//! column it is given), but the examples and privacy reports use it to talk
//! about which attributes an adversary actually learned.

use crate::error::{DataError, Result};
use serde::{Deserialize, Serialize};

/// Description of a single attribute (column).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    /// Column name.
    pub name: String,
    /// Whether the attribute holds private information the owner wants disguised.
    pub sensitive: bool,
}

impl Attribute {
    /// Creates a sensitive attribute with the given name.
    pub fn sensitive(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            sensitive: true,
        }
    }

    /// Creates a non-sensitive (public) attribute with the given name.
    pub fn public(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            sensitive: false,
        }
    }
}

/// An ordered collection of attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Builds a schema from a list of attributes; names must be unique and non-empty.
    pub fn new(attributes: Vec<Attribute>) -> Result<Self> {
        if attributes.is_empty() {
            return Err(DataError::SchemaMismatch {
                reason: "schema must have at least one attribute".to_string(),
            });
        }
        for (i, a) in attributes.iter().enumerate() {
            if a.name.is_empty() {
                return Err(DataError::SchemaMismatch {
                    reason: format!("attribute {i} has an empty name"),
                });
            }
            if attributes[..i].iter().any(|b| b.name == a.name) {
                return Err(DataError::SchemaMismatch {
                    reason: format!("duplicate attribute name '{}'", a.name),
                });
            }
        }
        Ok(Schema { attributes })
    }

    /// A schema of `m` sensitive attributes named `a0, a1, …` — the shape used
    /// by all synthetic workloads.
    pub fn anonymous(m: usize) -> Result<Self> {
        Schema::new(
            (0..m)
                .map(|i| Attribute::sensitive(format!("a{i}")))
                .collect(),
        )
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// True if the schema has no attributes (never true for a constructed schema).
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// The attributes in order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Attribute names in order.
    pub fn names(&self) -> Vec<&str> {
        self.attributes.iter().map(|a| a.name.as_str()).collect()
    }

    /// Index of the attribute with the given name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.attributes
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| DataError::UnknownAttribute {
                name: name.to_string(),
            })
    }

    /// Indices of all sensitive attributes.
    pub fn sensitive_indices(&self) -> Vec<usize> {
        self.attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.sensitive)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_indexes() {
        let s = Schema::new(vec![
            Attribute::sensitive("income"),
            Attribute::public("zip"),
            Attribute::sensitive("diagnosis"),
        ])
        .unwrap();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.index_of("zip").unwrap(), 1);
        assert!(s.index_of("missing").is_err());
        assert_eq!(s.sensitive_indices(), vec![0, 2]);
        assert_eq!(s.names(), vec!["income", "zip", "diagnosis"]);
    }

    #[test]
    fn rejects_duplicates_and_empty() {
        assert!(Schema::new(vec![]).is_err());
        assert!(Schema::new(vec![Attribute::sensitive("")]).is_err());
        assert!(Schema::new(vec![Attribute::sensitive("x"), Attribute::public("x")]).is_err());
    }

    #[test]
    fn anonymous_schema() {
        let s = Schema::anonymous(4).unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.names(), vec!["a0", "a1", "a2", "a3"]);
        assert_eq!(s.sensitive_indices().len(), 4);
        assert!(Schema::anonymous(0).is_err());
    }
}
