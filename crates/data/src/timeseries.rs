//! Serially-dependent (time-series) workloads.
//!
//! Section 3 of the paper lists **sample dependency** as a second factor that
//! can defeat randomization: for time-series data the samples themselves are
//! correlated (not just the attributes), so signal-processing style denoising
//! can strip the disguising noise. This module provides the workload side of
//! that factor — a first-order autoregressive (AR(1)) generator whose serial
//! correlation strength is a single, controllable parameter — so the temporal
//! attack in `randrecon-core` has something realistic to run against.

use crate::error::{DataError, Result};
use crate::table::DataTable;
use rand::Rng;
use randrecon_linalg::Matrix;
use randrecon_stats::rng::{seeded_rng, standard_normal};
use serde::{Deserialize, Serialize};

/// Parameters of a stationary AR(1) process
/// `x_t = mean + phi · (x_{t-1} − mean) + ε_t`, `ε_t ~ N(0, innovation_std²)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ar1Spec {
    /// Autoregressive coefficient; `|phi| < 1` for stationarity. Values close
    /// to 1 mean strong serial correlation (smooth series).
    pub phi: f64,
    /// Standard deviation of the innovations.
    pub innovation_std: f64,
    /// Long-run mean of the process.
    pub mean: f64,
}

impl Ar1Spec {
    /// Creates a spec, validating stationarity and positivity.
    pub fn new(phi: f64, innovation_std: f64, mean: f64) -> Result<Self> {
        if !(phi.abs() < 1.0 && phi.is_finite()) {
            return Err(DataError::InvalidWorkload {
                reason: format!("AR(1) coefficient must satisfy |phi| < 1, got {phi}"),
            });
        }
        if innovation_std <= 0.0 || !innovation_std.is_finite() || !mean.is_finite() {
            return Err(DataError::InvalidWorkload {
                reason: "innovation standard deviation must be positive and the mean finite"
                    .to_string(),
            });
        }
        Ok(Ar1Spec {
            phi,
            innovation_std,
            mean,
        })
    }

    /// Stationary (marginal) variance of the process:
    /// `innovation_std² / (1 − phi²)`.
    pub fn stationary_variance(&self) -> f64 {
        self.innovation_std * self.innovation_std / (1.0 - self.phi * self.phi)
    }

    /// Autocovariance at lag `k`: `stationary_variance · phi^k`.
    pub fn autocovariance(&self, lag: usize) -> f64 {
        self.stationary_variance() * self.phi.powi(lag as i32)
    }

    /// Generates a series of length `n`, started from the stationary
    /// distribution so the whole series is stationary.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Result<Vec<f64>> {
        if n < 2 {
            return Err(DataError::InvalidWorkload {
                reason: format!("need at least 2 samples, got {n}"),
            });
        }
        let mut out = Vec::with_capacity(n);
        let mut state = self.mean + self.stationary_variance().sqrt() * standard_normal(rng);
        out.push(state);
        for _ in 1..n {
            state = self.mean
                + self.phi * (state - self.mean)
                + self.innovation_std * standard_normal(rng);
            out.push(state);
        }
        Ok(out)
    }

    /// Generates `series` independent AR(1) columns of length `n` as a
    /// [`DataTable`] (each column is one sensor/time series; rows are time
    /// steps), seeded deterministically.
    pub fn generate_table(&self, n: usize, series: usize, seed: u64) -> Result<DataTable> {
        if series == 0 {
            return Err(DataError::InvalidWorkload {
                reason: "need at least one series".to_string(),
            });
        }
        let mut rng = seeded_rng(seed);
        let mut columns = Vec::with_capacity(series);
        for _ in 0..series {
            columns.push(self.generate(n, &mut rng)?);
        }
        let values = Matrix::from_columns(&columns)?;
        DataTable::from_matrix(values)
    }

    /// The exact covariance matrix of a window of `w` consecutive samples
    /// (a Toeplitz matrix of autocovariances) — what the temporal attack's
    /// Bayes estimate needs as its prior.
    pub fn window_covariance(&self, w: usize) -> Result<Matrix> {
        if w == 0 {
            return Err(DataError::InvalidWorkload {
                reason: "window must have at least one sample".to_string(),
            });
        }
        Ok(Matrix::from_fn(w, w, |i, j| {
            self.autocovariance(i.abs_diff(j))
        }))
    }
}

/// Estimates the lag-1 autocorrelation of a series (used by the temporal
/// attack to recover the AR structure from the *disguised* series).
pub fn lag1_autocorrelation(series: &[f64]) -> f64 {
    if series.len() < 3 {
        return 0.0;
    }
    let mean: f64 = series.iter().sum::<f64>() / series.len() as f64;
    let mut num = 0.0;
    let mut den = 0.0;
    for t in 0..series.len() {
        let d = series[t] - mean;
        den += d * d;
        if t + 1 < series.len() {
            num += d * (series[t + 1] - mean);
        }
    }
    if den <= f64::EPSILON {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use randrecon_stats::summary;

    #[test]
    fn spec_validation() {
        assert!(Ar1Spec::new(1.0, 1.0, 0.0).is_err());
        assert!(Ar1Spec::new(-1.2, 1.0, 0.0).is_err());
        assert!(Ar1Spec::new(0.5, 0.0, 0.0).is_err());
        assert!(Ar1Spec::new(0.5, 1.0, f64::NAN).is_err());
        assert!(Ar1Spec::new(0.9, 2.0, 10.0).is_ok());
    }

    #[test]
    fn stationary_moments_match_theory() {
        let spec = Ar1Spec::new(0.8, 3.0, 5.0).unwrap();
        assert!((spec.stationary_variance() - 9.0 / 0.36).abs() < 1e-9);
        let series = spec.generate(60_000, &mut seeded_rng(1)).unwrap();
        let mean = summary::mean(&series);
        let var = summary::variance(&series);
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
        assert!((var - spec.stationary_variance()).abs() / spec.stationary_variance() < 0.1);
        // Lag-1 autocorrelation is phi.
        let rho = lag1_autocorrelation(&series);
        assert!((rho - 0.8).abs() < 0.05, "rho {rho}");
    }

    #[test]
    fn autocovariance_decays_geometrically() {
        let spec = Ar1Spec::new(0.5, 1.0, 0.0).unwrap();
        let v = spec.stationary_variance();
        assert!((spec.autocovariance(0) - v).abs() < 1e-12);
        assert!((spec.autocovariance(2) - v * 0.25).abs() < 1e-12);
        let cov = spec.window_covariance(4).unwrap();
        assert!(cov.is_symmetric(1e-12));
        assert!((cov.get(0, 3) - v * 0.125).abs() < 1e-12);
        assert!(spec.window_covariance(0).is_err());
    }

    #[test]
    fn table_generation_shapes_and_determinism() {
        let spec = Ar1Spec::new(0.9, 1.0, 0.0).unwrap();
        let a = spec.generate_table(200, 3, 7).unwrap();
        let b = spec.generate_table(200, 3, 7).unwrap();
        assert_eq!(a.values().shape(), (200, 3));
        assert!(a.approx_eq(&b, 0.0));
        assert!(spec.generate_table(200, 0, 7).is_err());
        assert!(spec.generate(1, &mut seeded_rng(1)).is_err());
    }

    #[test]
    fn lag1_autocorrelation_edge_cases() {
        assert_eq!(lag1_autocorrelation(&[1.0, 2.0]), 0.0);
        assert_eq!(lag1_autocorrelation(&[3.0, 3.0, 3.0, 3.0]), 0.0);
        // A strictly increasing ramp is highly autocorrelated.
        let ramp: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!(lag1_autocorrelation(&ramp) > 0.9);
    }
}
