//! Synthetic workload generation (Section 7.1 of the paper).
//!
//! The paper evaluates the reconstruction attacks on synthetic data whose
//! correlation structure is controlled precisely. The generation procedure is:
//!
//! 1. specify a diagonal matrix `Λ` of eigenvalues (the spectrum);
//! 2. generate a random orthogonal matrix `Q` with Gram–Schmidt
//!    orthonormalization of a random Gaussian matrix — its columns become the
//!    eigenvectors;
//! 3. form the covariance matrix `C = Q Λ Qᵀ`;
//! 4. sample `n` records from the multivariate normal `N(0, C)` (the Matlab
//!    `mvnrnd` step);
//! 5. later, add random noise to obtain the disguised data set (that step
//!    lives in `randrecon-noise`).
//!
//! This module implements steps 1–4 and exposes the intermediate pieces (the
//! eigenbasis and the exact covariance) because the correlated-noise defense
//! of Section 8 reuses the *data's* eigenvectors with a different spectrum.

use crate::error::{DataError, Result};
use crate::table::DataTable;
use rand::Rng;
use randrecon_linalg::decomposition::recompose;
use randrecon_linalg::gram_schmidt::orthonormalize_columns;
use randrecon_linalg::Matrix;
use randrecon_stats::mvn::MultivariateNormal;
use randrecon_stats::rng::{seeded_rng, standard_normal_fill};
use serde::{Deserialize, Serialize};

/// An eigenvalue spectrum for a synthetic covariance matrix.
///
/// The number of "large" eigenvalues controls how many principal components
/// the data has, and therefore how correlated (redundant) the attributes are.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EigenSpectrum {
    eigenvalues: Vec<f64>,
}

impl EigenSpectrum {
    /// Creates a spectrum from explicit eigenvalues (all must be positive and finite).
    pub fn new(eigenvalues: Vec<f64>) -> Result<Self> {
        if eigenvalues.is_empty() {
            return Err(DataError::InvalidWorkload {
                reason: "eigenvalue spectrum must be non-empty".to_string(),
            });
        }
        if eigenvalues.iter().any(|&l| !(l > 0.0 && l.is_finite())) {
            return Err(DataError::InvalidWorkload {
                reason: "all eigenvalues must be positive and finite".to_string(),
            });
        }
        Ok(EigenSpectrum { eigenvalues })
    }

    /// The paper's canonical workload: the first `p` eigenvalues equal
    /// `principal`, the remaining `m - p` equal `small` (with `small ≪ principal`).
    pub fn principal_plus_small(p: usize, principal: f64, m: usize, small: f64) -> Result<Self> {
        if p == 0 || p > m {
            return Err(DataError::InvalidWorkload {
                reason: format!("need 1 <= p <= m, got p = {p}, m = {m}"),
            });
        }
        let mut eigenvalues = vec![principal; p];
        eigenvalues.extend(std::iter::repeat_n(small, m - p));
        EigenSpectrum::new(eigenvalues)
    }

    /// The workload used by Experiments 1 and 2: `m - p` non-principal
    /// eigenvalues stay fixed at `small`, and the `p` principal eigenvalues
    /// are set so the *total* variance equals `total_variance` (hence the
    /// average per-attribute variance, and with it the UDR baseline, stays
    /// constant across a sweep over `m` or `p` — Equation 12 of the paper).
    pub fn principal_filling_total(
        p: usize,
        m: usize,
        small: f64,
        total_variance: f64,
    ) -> Result<Self> {
        if p == 0 || p > m {
            return Err(DataError::InvalidWorkload {
                reason: format!("need 1 <= p <= m, got p = {p}, m = {m}"),
            });
        }
        if small <= 0.0
            || !small.is_finite()
            || total_variance <= 0.0
            || !total_variance.is_finite()
        {
            return Err(DataError::InvalidWorkload {
                reason: "small eigenvalue and total variance must be positive and finite"
                    .to_string(),
            });
        }
        let remaining = total_variance - small * (m - p) as f64;
        let principal = remaining / p as f64;
        if principal <= small {
            return Err(DataError::InvalidWorkload {
                reason: format!(
                    "total variance {total_variance} is too small to give the {p} principal eigenvalues more weight than the non-principal value {small}"
                ),
            });
        }
        let mut eigenvalues = vec![principal; p];
        eigenvalues.extend(std::iter::repeat_n(small, m - p));
        EigenSpectrum::new(eigenvalues)
    }

    /// Rescales the spectrum so that its sum (the total variance, i.e. the
    /// covariance trace) equals `target`.
    ///
    /// Experiments 1 and 2 keep the total variance constant while changing the
    /// number of attributes / principal components so that the UDR baseline
    /// stays flat (Equation (12) of the paper: Σλᵢ = Σ aᵢᵢ).
    pub fn with_total_variance(&self, target: f64) -> Result<Self> {
        if !(target > 0.0 && target.is_finite()) {
            return Err(DataError::InvalidWorkload {
                reason: format!("target total variance must be positive, got {target}"),
            });
        }
        let current = self.total_variance();
        let scale = target / current;
        EigenSpectrum::new(self.eigenvalues.iter().map(|&l| l * scale).collect())
    }

    /// Number of eigenvalues (the number of attributes `m`).
    pub fn len(&self) -> usize {
        self.eigenvalues.len()
    }

    /// True when the spectrum is empty (never the case for a constructed spectrum).
    pub fn is_empty(&self) -> bool {
        self.eigenvalues.is_empty()
    }

    /// The eigenvalues.
    pub fn values(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Sum of the eigenvalues = trace of the covariance = total variance.
    pub fn total_variance(&self) -> f64 {
        self.eigenvalues.iter().sum()
    }

    /// Average per-attribute variance (total variance / m).
    pub fn mean_variance(&self) -> f64 {
        self.total_variance() / self.len() as f64
    }
}

/// Generates a random `m × m` orthogonal matrix by Gram–Schmidt
/// orthonormalization of an i.i.d. Gaussian matrix.
pub fn random_orthogonal<R: Rng + ?Sized>(m: usize, rng: &mut R) -> Result<Matrix> {
    if m == 0 {
        return Err(DataError::InvalidWorkload {
            reason: "cannot build a 0-dimensional orthogonal matrix".to_string(),
        });
    }
    // A Gaussian matrix is almost surely full rank; retry a few times to be safe.
    for _ in 0..8 {
        let mut candidate = Matrix::zeros(m, m);
        standard_normal_fill(candidate.as_mut_slice(), rng);
        if let Ok(q) = orthonormalize_columns(&candidate) {
            return Ok(q);
        }
    }
    Err(DataError::InvalidWorkload {
        reason: "failed to generate a random orthogonal basis (degenerate draws)".to_string(),
    })
}

/// Builds a covariance matrix `C = Q Λ Qᵀ` from a spectrum and an orthonormal basis.
pub fn covariance_from_spectrum(spectrum: &EigenSpectrum, eigenvectors: &Matrix) -> Result<Matrix> {
    if eigenvectors.rows() != spectrum.len() || eigenvectors.cols() != spectrum.len() {
        return Err(DataError::InvalidWorkload {
            reason: format!(
                "eigenvector matrix is {}x{} but the spectrum has {} eigenvalues",
                eigenvectors.rows(),
                eigenvectors.cols(),
                spectrum.len()
            ),
        });
    }
    Ok(recompose(spectrum.values(), eigenvectors))
}

/// A generated synthetic data set together with the ground-truth structure it
/// was generated from.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The generated records (`n × m`).
    pub table: DataTable,
    /// The exact covariance matrix used for generation.
    pub covariance: Matrix,
    /// The orthonormal eigenvector basis `Q` (columns are eigenvectors).
    pub eigenvectors: Matrix,
    /// The eigenvalue spectrum `Λ`.
    pub eigenvalues: Vec<f64>,
}

impl SyntheticDataset {
    /// Generates `n` zero-mean records from the given spectrum using the seed.
    pub fn generate(spectrum: &EigenSpectrum, n: usize, seed: u64) -> Result<Self> {
        Self::generate_with_mean(spectrum, &vec![0.0; spectrum.len()], n, seed)
    }

    /// Generates `n` records with the given mean vector.
    pub fn generate_with_mean(
        spectrum: &EigenSpectrum,
        mean: &[f64],
        n: usize,
        seed: u64,
    ) -> Result<Self> {
        if n < 2 {
            return Err(DataError::InvalidWorkload {
                reason: format!("need at least 2 records, got {n}"),
            });
        }
        if mean.len() != spectrum.len() {
            return Err(DataError::InvalidWorkload {
                reason: format!(
                    "mean vector has length {} but the spectrum has {} attributes",
                    mean.len(),
                    spectrum.len()
                ),
            });
        }
        let mut rng = seeded_rng(seed);
        let q = random_orthogonal(spectrum.len(), &mut rng)?;
        let covariance = covariance_from_spectrum(spectrum, &q)?;
        let mvn = MultivariateNormal::new(mean.to_vec(), covariance.clone())?;
        let values = mvn.sample_matrix(n, &mut rng);
        let table = DataTable::from_matrix(values)?;
        Ok(SyntheticDataset {
            table,
            covariance,
            eigenvectors: q,
            eigenvalues: spectrum.values().to_vec(),
        })
    }

    /// Number of attributes.
    pub fn n_attributes(&self) -> usize {
        self.table.n_attributes()
    }

    /// Number of records.
    pub fn n_records(&self) -> usize {
        self.table.n_records()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use randrecon_linalg::decomposition::{orthonormality_defect, SymmetricEigen};

    #[test]
    fn spectrum_construction_and_validation() {
        assert!(EigenSpectrum::new(vec![]).is_err());
        assert!(EigenSpectrum::new(vec![1.0, -1.0]).is_err());
        assert!(EigenSpectrum::new(vec![1.0, f64::NAN]).is_err());
        let s = EigenSpectrum::principal_plus_small(2, 400.0, 5, 4.0).unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(s.values(), &[400.0, 400.0, 4.0, 4.0, 4.0]);
        assert_eq!(s.total_variance(), 812.0);
        assert!((s.mean_variance() - 162.4).abs() < 1e-12);
        assert!(!s.is_empty());
        assert!(EigenSpectrum::principal_plus_small(0, 1.0, 5, 1.0).is_err());
        assert!(EigenSpectrum::principal_plus_small(6, 1.0, 5, 1.0).is_err());
    }

    #[test]
    fn principal_filling_total_keeps_small_fixed() {
        let s = EigenSpectrum::principal_filling_total(5, 100, 4.0, 100.0 * 100.0).unwrap();
        assert_eq!(s.len(), 100);
        assert!((s.total_variance() - 10_000.0).abs() < 1e-9);
        assert_eq!(s.values()[99], 4.0);
        // principal = (10000 - 95*4)/5 = 1924.
        assert!((s.values()[0] - 1_924.0).abs() < 1e-9);

        // p = m: flat spectrum at the mean variance.
        let flat = EigenSpectrum::principal_filling_total(10, 10, 4.0, 1_000.0).unwrap();
        assert!(flat.values().iter().all(|&l| (l - 100.0).abs() < 1e-9));

        assert!(EigenSpectrum::principal_filling_total(0, 5, 4.0, 100.0).is_err());
        assert!(EigenSpectrum::principal_filling_total(6, 5, 4.0, 100.0).is_err());
        assert!(EigenSpectrum::principal_filling_total(1, 100, 4.0, 300.0).is_err());
        assert!(EigenSpectrum::principal_filling_total(1, 2, 0.0, 10.0).is_err());
    }

    #[test]
    fn rescaling_total_variance() {
        let s = EigenSpectrum::principal_plus_small(2, 10.0, 4, 1.0).unwrap();
        let scaled = s.with_total_variance(44.0).unwrap();
        assert!((scaled.total_variance() - 44.0).abs() < 1e-9);
        // Relative structure preserved.
        assert!((scaled.values()[0] / scaled.values()[3] - 10.0).abs() < 1e-9);
        assert!(s.with_total_variance(0.0).is_err());
    }

    #[test]
    fn random_orthogonal_is_orthogonal() {
        let mut rng = seeded_rng(9);
        let q = random_orthogonal(12, &mut rng).unwrap();
        assert!(orthonormality_defect(&q) < 1e-10);
        assert!(random_orthogonal(0, &mut rng).is_err());
    }

    #[test]
    fn covariance_has_requested_spectrum() {
        let spectrum = EigenSpectrum::principal_plus_small(3, 100.0, 8, 2.0).unwrap();
        let mut rng = seeded_rng(13);
        let q = random_orthogonal(8, &mut rng).unwrap();
        let cov = covariance_from_spectrum(&spectrum, &q).unwrap();
        assert!(cov.is_symmetric(1e-9));
        assert!((cov.trace() - spectrum.total_variance()).abs() < 1e-8);
        let eig = SymmetricEigen::new(&cov).unwrap();
        // Eigenvalues should match the requested spectrum (sorted descending).
        let mut requested = spectrum.values().to_vec();
        requested.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for (got, want) in eig.eigenvalues.iter().zip(requested.iter()) {
            assert!((got - want).abs() < 1e-6, "got {got}, want {want}");
        }
        // Dimension mismatch rejected.
        let small_q = Matrix::identity(3);
        assert!(covariance_from_spectrum(&spectrum, &small_q).is_err());
    }

    #[test]
    fn generated_dataset_matches_covariance_statistically() {
        let spectrum = EigenSpectrum::principal_plus_small(2, 50.0, 6, 1.0).unwrap();
        let ds = SyntheticDataset::generate(&spectrum, 4_000, 7).unwrap();
        assert_eq!(ds.n_attributes(), 6);
        assert_eq!(ds.n_records(), 4_000);
        let sample_cov = ds.table.covariance_matrix();
        // Frobenius-relative error of the sample covariance should be modest.
        let diff = sample_cov.sub(&ds.covariance).unwrap().frobenius_norm();
        let rel = diff / ds.covariance.frobenius_norm();
        assert!(rel < 0.15, "relative covariance error {rel}");
        // Trace of the sample covariance close to the spectrum total.
        assert!(
            (sample_cov.trace() - spectrum.total_variance()).abs() / spectrum.total_variance()
                < 0.15
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spectrum = EigenSpectrum::principal_plus_small(2, 10.0, 4, 1.0).unwrap();
        let a = SyntheticDataset::generate(&spectrum, 50, 123).unwrap();
        let b = SyntheticDataset::generate(&spectrum, 50, 123).unwrap();
        let c = SyntheticDataset::generate(&spectrum, 50, 124).unwrap();
        assert!(a.table.approx_eq(&b.table, 0.0));
        assert!(!a.table.approx_eq(&c.table, 1e-9));
    }

    #[test]
    fn generate_with_mean_and_validation() {
        let spectrum = EigenSpectrum::principal_plus_small(1, 5.0, 3, 1.0).unwrap();
        let ds =
            SyntheticDataset::generate_with_mean(&spectrum, &[10.0, -5.0, 0.0], 2_000, 3).unwrap();
        let means = ds.table.mean_vector();
        assert!((means[0] - 10.0).abs() < 0.3);
        assert!((means[1] + 5.0).abs() < 0.3);
        assert!(SyntheticDataset::generate_with_mean(&spectrum, &[0.0], 100, 1).is_err());
        assert!(SyntheticDataset::generate(&spectrum, 1, 1).is_err());
    }
}
