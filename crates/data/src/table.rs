//! Column-oriented data table.
//!
//! A [`DataTable`] pairs a [`Schema`] with an `n × m` matrix of values
//! (records are rows, attributes are columns). It is the common currency of
//! the whole workspace: the randomization schemes take an original table and
//! produce a disguised one, the reconstruction attacks take the disguised
//! table and produce an estimate, and the metrics compare tables.

use crate::error::{DataError, Result};
use crate::schema::Schema;
use randrecon_linalg::Matrix;
use randrecon_stats::summary;
use serde::{Deserialize, Serialize};

/// A named table of `f64` records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataTable {
    schema: Schema,
    values: Matrix,
}

impl DataTable {
    /// Creates a table from a schema and a value matrix whose column count
    /// matches the schema.
    pub fn new(schema: Schema, values: Matrix) -> Result<Self> {
        if schema.len() != values.cols() {
            return Err(DataError::SchemaMismatch {
                reason: format!(
                    "schema has {} attributes but the matrix has {} columns",
                    schema.len(),
                    values.cols()
                ),
            });
        }
        Ok(DataTable { schema, values })
    }

    /// Creates a table with an anonymous schema (`a0, a1, …`) from a value matrix.
    pub fn from_matrix(values: Matrix) -> Result<Self> {
        let schema = Schema::anonymous(values.cols())?;
        DataTable::new(schema, values)
    }

    /// Creates a table from named columns.
    pub fn from_named_columns(columns: &[(&str, Vec<f64>)]) -> Result<Self> {
        let schema = Schema::new(
            columns
                .iter()
                .map(|(name, _)| crate::schema::Attribute::sensitive(*name))
                .collect(),
        )?;
        let cols: Vec<Vec<f64>> = columns.iter().map(|(_, c)| c.clone()).collect();
        let values = Matrix::from_columns(&cols)?;
        DataTable::new(schema, values)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The underlying value matrix (records are rows).
    pub fn values(&self) -> &Matrix {
        &self.values
    }

    /// Consumes the table, returning the underlying matrix.
    pub fn into_values(self) -> Matrix {
        self.values
    }

    /// Number of records (rows).
    pub fn n_records(&self) -> usize {
        self.values.rows()
    }

    /// Number of attributes (columns).
    pub fn n_attributes(&self) -> usize {
        self.values.cols()
    }

    /// Record `i` as a slice.
    pub fn record(&self, i: usize) -> &[f64] {
        self.values.row(i)
    }

    /// Iterator over records.
    pub fn records(&self) -> impl Iterator<Item = &[f64]> {
        self.values.row_iter()
    }

    /// Column by index.
    pub fn column(&self, j: usize) -> Vec<f64> {
        self.values.column(j)
    }

    /// Column by attribute name.
    pub fn column_by_name(&self, name: &str) -> Result<Vec<f64>> {
        let idx = self.schema.index_of(name)?;
        Ok(self.values.column(idx))
    }

    /// Per-attribute means.
    pub fn mean_vector(&self) -> Vec<f64> {
        summary::mean_vector(&self.values)
    }

    /// Per-attribute sample variances.
    pub fn variance_vector(&self) -> Vec<f64> {
        summary::variance_vector(&self.values)
    }

    /// Sample covariance matrix of the attributes.
    pub fn covariance_matrix(&self) -> Matrix {
        summary::covariance_matrix(&self.values)
    }

    /// Sample correlation-coefficient matrix of the attributes.
    pub fn correlation_matrix(&self) -> Matrix {
        summary::correlation_matrix(&self.values)
    }

    /// Returns a new table with every column centered to zero mean, plus the
    /// mean vector that was removed. This is the adjustment PCA requires
    /// (Section 5.1.1 of the paper).
    pub fn centered(&self) -> (DataTable, Vec<f64>) {
        let (centered, means) = self.values.center_columns();
        (
            DataTable {
                schema: self.schema.clone(),
                values: centered,
            },
            means,
        )
    }

    /// Returns a new table with the given mean vector added back to every record.
    pub fn with_means_added(&self, means: &[f64]) -> Result<DataTable> {
        if means.len() != self.n_attributes() {
            return Err(DataError::SchemaMismatch {
                reason: format!(
                    "mean vector has length {} but the table has {} attributes",
                    means.len(),
                    self.n_attributes()
                ),
            });
        }
        let mut values = self.values.clone();
        values
            .add_row_broadcast(means)
            .expect("length checked above");
        Ok(DataTable {
            schema: self.schema.clone(),
            values,
        })
    }

    /// Builds a new table with the same schema but different values.
    ///
    /// This is how attacks return reconstructions: same shape and names,
    /// different numbers.
    pub fn with_values(&self, values: Matrix) -> Result<DataTable> {
        DataTable::new(self.schema.clone(), values)
    }

    /// Returns a table restricted to the first `n` records (or all of them if
    /// `n` exceeds the record count).
    pub fn head(&self, n: usize) -> DataTable {
        let n = n.min(self.n_records());
        let values = self
            .values
            .submatrix(0, n, 0, self.n_attributes())
            .expect("head range is always valid");
        DataTable {
            schema: self.schema.clone(),
            values,
        }
    }

    /// True if the tables have the same shape and every value differs by at
    /// most `tol`.
    pub fn approx_eq(&self, other: &DataTable, tol: f64) -> bool {
        self.schema == other.schema && self.values.approx_eq(&other.values, tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn sample() -> DataTable {
        DataTable::from_named_columns(&[
            ("age", vec![30.0, 40.0, 50.0, 60.0]),
            ("income", vec![30_000.0, 42_000.0, 51_000.0, 65_000.0]),
        ])
        .unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let t = sample();
        assert_eq!(t.n_records(), 4);
        assert_eq!(t.n_attributes(), 2);
        assert_eq!(t.record(1), &[40.0, 42_000.0]);
        assert_eq!(t.records().count(), 4);
        assert_eq!(t.column(0), vec![30.0, 40.0, 50.0, 60.0]);
        assert_eq!(t.column_by_name("income").unwrap()[3], 65_000.0);
        assert!(t.column_by_name("missing").is_err());
    }

    #[test]
    fn schema_size_must_match_matrix() {
        let schema = Schema::new(vec![Attribute::sensitive("only_one")]).unwrap();
        let values = Matrix::zeros(3, 2);
        assert!(DataTable::new(schema, values).is_err());
    }

    #[test]
    fn from_matrix_gets_anonymous_names() {
        let t = DataTable::from_matrix(Matrix::zeros(2, 3)).unwrap();
        assert_eq!(t.schema().names(), vec!["a0", "a1", "a2"]);
    }

    #[test]
    fn statistics_pass_through() {
        let t = sample();
        let means = t.mean_vector();
        assert_eq!(means[0], 45.0);
        let cov = t.covariance_matrix();
        assert!(
            cov.get(0, 1) > 0.0,
            "age and income are positively correlated"
        );
        let corr = t.correlation_matrix();
        assert!(corr.get(0, 1) > 0.99);
        assert!(t.variance_vector()[0] > 0.0);
    }

    #[test]
    fn centering_roundtrip() {
        let t = sample();
        let (centered, means) = t.centered();
        for m in centered.mean_vector() {
            assert!(m.abs() < 1e-9);
        }
        let restored = centered.with_means_added(&means).unwrap();
        assert!(restored.approx_eq(&t, 1e-9));
        assert!(centered.with_means_added(&[1.0]).is_err());
    }

    #[test]
    fn with_values_keeps_schema() {
        let t = sample();
        let other = t.with_values(Matrix::zeros(4, 2)).unwrap();
        assert_eq!(other.schema(), t.schema());
        assert!(t.with_values(Matrix::zeros(4, 3)).is_err());
    }

    #[test]
    fn head_truncates() {
        let t = sample();
        assert_eq!(t.head(2).n_records(), 2);
        assert_eq!(t.head(100).n_records(), 4);
        assert_eq!(t.head(2).record(1), t.record(1));
    }

    #[test]
    fn into_values_returns_matrix() {
        let t = sample();
        let m = t.clone().into_values();
        assert_eq!(m.shape(), (4, 2));
        assert_eq!(m, *t.values());
    }
}
