//! # randrecon-data
//!
//! Data representation and workload generation for the `randrecon` workspace.
//!
//! * [`table::DataTable`] — a named, column-oriented table of `f64` records;
//!   every randomization scheme and reconstruction attack consumes and
//!   produces these.
//! * [`schema::Schema`] — attribute names and sensitivity flags.
//! * [`synthetic`] — the synthetic workload generator of Section 7.1 of the
//!   SIGMOD 2005 paper: specify an eigenvalue spectrum, build a random
//!   orthogonal eigenbasis with Gram–Schmidt, form `C = Q Λ Qᵀ`, and sample a
//!   multivariate normal data set from it.
//! * [`csv`] — minimal CSV reading/writing so examples can persist data sets
//!   without extra dependencies, including a chunked reader/writer pair for
//!   streaming workloads.
//! * [`chunks`] — the [`chunks::RecordChunkSource`] abstraction behind the
//!   bounded-memory streaming attack engine, with in-memory and synthetic
//!   chunk sources.
//!
//! ## Example
//!
//! ```
//! use randrecon_data::synthetic::{EigenSpectrum, SyntheticDataset};
//!
//! // 10 attributes, 3 dominant directions — a highly correlated data set.
//! let spectrum = EigenSpectrum::principal_plus_small(3, 400.0, 10, 1.0).unwrap();
//! let dataset = SyntheticDataset::generate(&spectrum, 500, 42).unwrap();
//! assert_eq!(dataset.table.n_attributes(), 10);
//! assert_eq!(dataset.table.n_records(), 500);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chunks;
pub mod csv;
pub mod error;
pub mod schema;
pub mod synthetic;
pub mod table;
pub mod timeseries;

pub use chunks::RecordChunkSource;
pub use error::{DataError, Result};
pub use schema::Schema;
pub use table::DataTable;
