//! Chunked record sources — bounded-memory access to large record sets.
//!
//! The streaming attack engine in `randrecon-core` never materializes an
//! `n × m` record matrix: it sweeps a [`RecordChunkSource`] twice (pass 1
//! accumulates means and covariance, pass 2 reconstructs chunk by chunk), so
//! its peak memory is `O(chunk · m + m²)` regardless of `n`. This module
//! defines the source abstraction and the two in-crate implementations:
//!
//! * [`TableChunkSource`] — chunked views over an in-memory [`DataTable`]
//!   (the adapter the streaming-vs-in-memory equivalence tests use, because
//!   both paths then consume the *same* records);
//! * [`SyntheticChunkSource`] — the Section 7.1 workload generator emitting
//!   records chunk by chunk, so a 500 k-record benchmark never allocates
//!   more than one chunk of rows.
//!
//! The chunked CSV reader ([`crate::csv::CsvChunkReader`]) and the
//! chunk-wise disguising adapter (`randrecon-noise`) implement the same
//! trait.

use crate::error::{DataError, Result};
use crate::synthetic::{covariance_from_spectrum, random_orthogonal, EigenSpectrum};
use crate::table::DataTable;
use randrecon_linalg::Matrix;
use randrecon_stats::mvn::{MultivariateNormal, MvnChunkSampler};
use randrecon_stats::rng::seeded_rng;

/// A restartable source of record chunks.
///
/// Implementations hand out the records of one logical `n × m` data set as a
/// sequence of `rows × m` matrices (every chunk has the full attribute width;
/// only the row count varies, and only the final chunk may be short).
///
/// # Contract
///
/// * [`reset`](RecordChunkSource::reset) rewinds to the beginning, and the
///   subsequent sweep must produce the **identical** chunk sequence — same
///   boundaries, same values. The two-pass streaming engine estimates
///   statistics on the first sweep and reconstructs on the second, so a
///   source that resamples on reset would silently corrupt the attack.
/// * `next_chunk` returns `Ok(None)` exactly once the source is exhausted;
///   calling it again keeps returning `Ok(None)` until the next `reset`.
pub trait RecordChunkSource {
    /// Number of attributes (columns) of every chunk.
    fn n_attributes(&self) -> usize;

    /// Total record count if it is known up front (`None` for sources that
    /// only discover their length by sweeping, e.g. CSV files).
    fn n_records_hint(&self) -> Option<usize>;

    /// Rewinds to the first chunk. The next sweep must replay the identical
    /// chunk sequence (see the trait-level contract).
    fn reset(&mut self) -> Result<()>;

    /// Returns the next chunk, or `None` when the source is exhausted.
    fn next_chunk(&mut self) -> Result<Option<Matrix>>;

    /// Skips the next `n_chunks` chunks without yielding them.
    ///
    /// Equivalent to calling [`next_chunk`](RecordChunkSource::next_chunk)
    /// `n_chunks` times and discarding the results — the provided default
    /// does exactly that, so the subsequent chunk sequence is identical
    /// either way. Sources whose chunks are independently (child-)seeded
    /// override this with a cursor jump, which is what makes distributed
    /// pass-1 segment assignment cheap: a shard worker can start
    /// accumulating at chunk `k` without generating the prefix.
    fn skip_chunks(&mut self, n_chunks: usize) -> Result<()> {
        for _ in 0..n_chunks {
            if self.next_chunk()?.is_none() {
                break;
            }
        }
        Ok(())
    }
}

/// Chunked views over an in-memory table (or bare record matrix).
///
/// Each chunk is a copy of `chunk_rows` consecutive rows, so the streaming
/// engine exercises exactly the same code path it would against a disk or
/// generator source while consuming records that also exist in memory —
/// which is what the equivalence tests compare against.
#[derive(Debug, Clone)]
pub struct TableChunkSource<'a> {
    values: &'a Matrix,
    chunk_rows: usize,
    cursor: usize,
}

impl<'a> TableChunkSource<'a> {
    /// Chunked source over a table's records.
    pub fn new(table: &'a DataTable, chunk_rows: usize) -> Result<Self> {
        Self::from_matrix(table.values(), chunk_rows)
    }

    /// Chunked source over a bare record matrix (rows are records).
    pub fn from_matrix(values: &'a Matrix, chunk_rows: usize) -> Result<Self> {
        if chunk_rows == 0 {
            return Err(DataError::Stream {
                reason: "chunk_rows must be at least 1".to_string(),
            });
        }
        Ok(TableChunkSource {
            values,
            chunk_rows,
            cursor: 0,
        })
    }
}

impl RecordChunkSource for TableChunkSource<'_> {
    fn n_attributes(&self) -> usize {
        self.values.cols()
    }

    fn n_records_hint(&self) -> Option<usize> {
        Some(self.values.rows())
    }

    fn reset(&mut self) -> Result<()> {
        self.cursor = 0;
        Ok(())
    }

    fn next_chunk(&mut self) -> Result<Option<Matrix>> {
        let n = self.values.rows();
        if self.cursor >= n {
            return Ok(None);
        }
        let end = (self.cursor + self.chunk_rows).min(n);
        let chunk = self
            .values
            .submatrix(self.cursor, end, 0, self.values.cols())?;
        self.cursor = end;
        Ok(Some(chunk))
    }

    fn skip_chunks(&mut self, n_chunks: usize) -> Result<()> {
        self.cursor = self
            .cursor
            .saturating_add(n_chunks.saturating_mul(self.chunk_rows))
            .min(self.values.rows());
        Ok(())
    }
}

/// The Section 7.1 synthetic workload as a chunked source.
///
/// Builds the same ground-truth structure as
/// [`crate::synthetic::SyntheticDataset`] — a random orthogonal eigenbasis
/// `Q`, the covariance `C = Q Λ Qᵀ` — but samples the multivariate-normal
/// records lazily through a restartable [`MvnChunkSampler`], so generating a
/// 500 k-record workload allocates one chunk at a time instead of the full
/// table. The record *stream* differs from `SyntheticDataset::generate` for
/// the same seed (chunks are sampled from child-seeded RNGs so resets
/// replay exactly); the distribution is identical.
#[derive(Debug, Clone)]
pub struct SyntheticChunkSource {
    sampler: MvnChunkSampler,
    covariance: Matrix,
    eigenvectors: Matrix,
    eigenvalues: Vec<f64>,
}

impl SyntheticChunkSource {
    /// Creates a chunked zero-mean synthetic workload from an eigenvalue
    /// spectrum (the paper's generation procedure, steps 1–4).
    pub fn generate(
        spectrum: &EigenSpectrum,
        n: usize,
        chunk_rows: usize,
        seed: u64,
    ) -> Result<Self> {
        if n < 2 {
            return Err(DataError::InvalidWorkload {
                reason: format!("need at least 2 records, got {n}"),
            });
        }
        let mut rng = seeded_rng(seed);
        let q = random_orthogonal(spectrum.len(), &mut rng)?;
        let covariance = covariance_from_spectrum(spectrum, &q)?;
        let mvn = MultivariateNormal::zero_mean(covariance.clone())?;
        let sampler = MvnChunkSampler::new(mvn, n, chunk_rows, seed)?;
        Ok(SyntheticChunkSource {
            sampler,
            covariance,
            eigenvectors: q,
            eigenvalues: spectrum.values().to_vec(),
        })
    }

    /// The exact covariance the records are drawn from.
    pub fn covariance(&self) -> &Matrix {
        &self.covariance
    }

    /// The orthonormal eigenvector basis `Q` (columns are eigenvectors).
    pub fn eigenvectors(&self) -> &Matrix {
        &self.eigenvectors
    }

    /// The eigenvalue spectrum `Λ`.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }
}

impl RecordChunkSource for SyntheticChunkSource {
    fn n_attributes(&self) -> usize {
        self.sampler.dim()
    }

    fn n_records_hint(&self) -> Option<usize> {
        Some(self.sampler.n_records())
    }

    fn reset(&mut self) -> Result<()> {
        self.sampler.reset();
        Ok(())
    }

    fn next_chunk(&mut self) -> Result<Option<Matrix>> {
        Ok(self.sampler.next_chunk())
    }

    fn skip_chunks(&mut self, n_chunks: usize) -> Result<()> {
        self.sampler.skip_chunks(n_chunks);
        Ok(())
    }
}

/// Drains a source into a single in-memory table (anonymous schema).
///
/// Convenience for tests and small workloads; it defeats the purpose of
/// streaming for large `n`, and says so in the name.
pub fn materialize<S: RecordChunkSource + ?Sized>(source: &mut S) -> Result<DataTable> {
    source.reset()?;
    let m = source.n_attributes();
    let mut rows: Vec<f64> = Vec::new();
    let mut n = 0usize;
    while let Some(chunk) = source.next_chunk()? {
        if chunk.cols() != m {
            return Err(DataError::Stream {
                reason: format!("chunk has {} columns, source promised {m}", chunk.cols()),
            });
        }
        n += chunk.rows();
        rows.extend_from_slice(chunk.as_slice());
    }
    DataTable::from_matrix(Matrix::from_flat(n, m, rows)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> DataTable {
        let values = Matrix::from_fn(13, 3, |i, j| (i * 3 + j) as f64);
        DataTable::from_matrix(values).unwrap()
    }

    #[test]
    fn table_source_covers_rows_in_order() {
        let t = table();
        let mut src = TableChunkSource::new(&t, 5).unwrap();
        assert_eq!(src.n_attributes(), 3);
        assert_eq!(src.n_records_hint(), Some(13));
        let mut seen = 0;
        let mut sizes = Vec::new();
        while let Some(chunk) = src.next_chunk().unwrap() {
            for r in 0..chunk.rows() {
                assert_eq!(chunk.row(r), t.record(seen + r));
            }
            seen += chunk.rows();
            sizes.push(chunk.rows());
        }
        assert_eq!(seen, 13);
        assert_eq!(sizes, vec![5, 5, 3]);
        // Exhausted stays exhausted until reset.
        assert!(src.next_chunk().unwrap().is_none());
        src.reset().unwrap();
        assert_eq!(src.next_chunk().unwrap().unwrap().rows(), 5);
    }

    #[test]
    fn table_source_rejects_zero_chunk() {
        let t = table();
        assert!(TableChunkSource::new(&t, 0).is_err());
    }

    #[test]
    fn synthetic_source_replays_identically_after_reset() {
        let spectrum = EigenSpectrum::principal_plus_small(2, 50.0, 5, 1.0).unwrap();
        let mut src = SyntheticChunkSource::generate(&spectrum, 250, 64, 11).unwrap();
        assert_eq!(src.n_attributes(), 5);
        assert_eq!(src.n_records_hint(), Some(250));
        assert_eq!(src.eigenvalues().len(), 5);
        assert_eq!(src.eigenvectors().shape(), (5, 5));
        let first = materialize(&mut src).unwrap();
        let second = materialize(&mut src).unwrap();
        assert_eq!(first.n_records(), 250);
        assert!(first.approx_eq(&second, 0.0));
    }

    #[test]
    fn synthetic_source_matches_requested_covariance() {
        let spectrum = EigenSpectrum::principal_plus_small(2, 50.0, 6, 1.0).unwrap();
        let mut src = SyntheticChunkSource::generate(&spectrum, 8_000, 512, 3).unwrap();
        let expected = src.covariance().clone();
        let all = materialize(&mut src).unwrap();
        let sample_cov = all.covariance_matrix();
        let rel = sample_cov.sub(&expected).unwrap().frobenius_norm() / expected.frobenius_norm();
        assert!(rel < 0.15, "relative covariance error {rel}");
    }

    #[test]
    fn synthetic_source_validates_input() {
        let spectrum = EigenSpectrum::principal_plus_small(1, 5.0, 3, 1.0).unwrap();
        assert!(SyntheticChunkSource::generate(&spectrum, 1, 10, 1).is_err());
        assert!(SyntheticChunkSource::generate(&spectrum, 10, 0, 1).is_err());
    }
}
