//! Benchmark support crate.
//!
//! Besides hosting the `benches/` harnesses, this crate preserves the **seed
//! implementations** of the numeric hot path (the unblocked matmul is kept in
//! `randrecon-linalg` as `matmul_naive`; the strided covariance, the
//! get/set Jacobi eigensolver, and the three-inverse BE-DR live here), so the
//! micro benchmarks can report current-vs-seed speedups from one binary and
//! the perf trajectory in `BENCH_1.json` stays reproducible.

use randrecon_core::covariance::default_eigenvalue_floor;
use randrecon_data::DataTable;
use randrecon_linalg::decomposition::Cholesky;
use randrecon_linalg::Matrix;
use randrecon_noise::NoiseModel;

/// Seed-path sample covariance: centered clone plus per-pair strided column
/// dot products (the original `summary::covariance_matrix`).
pub fn covariance_matrix_seed(data: &Matrix) -> Matrix {
    let (n, m) = data.shape();
    let mut cov = Matrix::zeros(m, m);
    if n < 2 {
        return cov;
    }
    let (centered, _) = data.center_columns();
    for i in 0..m {
        for j in i..m {
            let mut sum = 0.0;
            for r in 0..n {
                sum += centered.get(r, i) * centered.get(r, j);
            }
            let v = sum / (n - 1) as f64;
            cov.set(i, j, v);
            cov.set(j, i, v);
        }
    }
    cov
}

/// Pre-blocking rank-update covariance: the PR-1…PR-9 single-pass sweep —
/// one centered scratch row per record, one full pass over the upper
/// comoment triangle per record (contiguous row `axpy`s, k-ascending) —
/// **without** the PR-10 `ROW_BLOCK` panel blocking, which streams each
/// triangle row through cache once per eight records instead of once per
/// record. Preserved so the wide-table (m ∈ {128, 256}) cache-residency
/// speedup is measured inside one binary. Numerically identical to the
/// production kernel (same per-cell addition order), so the ratio is pure
/// memory traffic.
pub fn covariance_matrix_rowsweep_seed(data: &Matrix) -> Matrix {
    let (n, m) = data.shape();
    let mut cov = Matrix::zeros(m, m);
    if n < 2 {
        return cov;
    }
    let means = data.column_means();
    let mut acc = vec![0.0; m * m];
    let mut scratch = vec![0.0; m];
    for r in 0..n {
        let row = data.row(r);
        for ((s, &x), &mu) in scratch.iter_mut().zip(row).zip(&means) {
            *s = x - mu;
        }
        for i in 0..m {
            let v = scratch[i];
            for (o, &w) in acc[i * m + i..(i + 1) * m].iter_mut().zip(&scratch[i..]) {
                *o += v * w;
            }
        }
    }
    let norm = 1.0 / (n - 1) as f64;
    for i in 0..m {
        for j in i..m {
            let v = acc[i * m + j] * norm;
            cov.set(i, j, v);
            cov.set(j, i, v);
        }
    }
    cov
}

/// Seed-path blocked matmul: the PR-1/PR-2 cache-blocked, transpose-packed
/// kernel **without** the PR-3 register microkernel — panel-major packing of
/// `B` (`KC = 64 × NC = 256`, the production kernel's geometry) and a
/// per-output-row `axpy` sweep that re-reads the `C` row on every rank-1
/// update. Preserved here so the microkernel speedup is measured inside one
/// binary (the `matmul_naive` pattern). Single-threaded, matching the
/// 1-core bench container where the production kernel also runs
/// single-threaded.
pub fn matmul_blocked_axpy_seed(a: &Matrix, b: &Matrix) -> Matrix {
    const KC: usize = 64;
    const NC: usize = 256;
    assert_eq!(a.cols(), b.rows(), "matmul shape mismatch");
    let (m, k) = a.shape();
    let n = b.cols();
    let a = a.as_slice();
    let b = b.as_slice();

    // Pack B into panel-major layout (identical to the production pack).
    let mut packed = vec![0.0; k * n];
    for kb in (0..k).step_by(KC) {
        let kc = KC.min(k - kb);
        let stripe = &mut packed[kb * n..kb * n + kc * n];
        for jb in (0..n).step_by(NC) {
            let nc = NC.min(n - jb);
            let panel = &mut stripe[kc * jb..kc * jb + kc * nc];
            for kk in 0..kc {
                let src = &b[(kb + kk) * n + jb..(kb + kk) * n + jb + nc];
                panel[kk * nc..(kk + 1) * nc].copy_from_slice(src);
            }
        }
    }

    let mut c = vec![0.0; m * n];
    for kb in (0..k).step_by(KC) {
        let kc = KC.min(k - kb);
        let stripe = &packed[kb * n..kb * n + kc * n];
        for i in 0..m {
            let a_seg = &a[i * k + kb..i * k + kb + kc];
            for jb in (0..n).step_by(NC) {
                let nc = NC.min(n - jb);
                let panel = &stripe[kc * jb..kc * jb + kc * nc];
                let c_seg = &mut c[i * n + jb..i * n + jb + nc];
                for (kk, &aik) in a_seg.iter().enumerate() {
                    if aik != 0.0 {
                        let x = &panel[kk * nc..kk * nc + nc];
                        for (o, &v) in c_seg.iter_mut().zip(x.iter()) {
                            *o += aik * v;
                        }
                    }
                }
            }
        }
    }
    Matrix::from_flat(m, n, c).expect("shape is consistent by construction")
}

/// Seed-path cyclic Jacobi eigendecomposition with per-element `get`/`set`
/// column rotations (the original `SymmetricEigen` inner loop). Returns
/// `(eigenvalues_desc, eigenvectors)`.
pub fn symmetric_eigen_seed(a: &Matrix) -> (Vec<f64>, Matrix) {
    let n = a.rows();
    let mut m = a.symmetrize().expect("seed eigen expects a square matrix");
    let mut q = Matrix::identity(n);
    let target = (1e-12 * m.frobenius_norm()).max(1e-300);
    for _sweep in 0..100 {
        let mut off = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let v = m.get(i, j);
                    off += v * v;
                }
            }
        }
        if off.sqrt() <= target {
            break;
        }
        for p in 0..n - 1 {
            for r in (p + 1)..n {
                let apr = m.get(p, r);
                if apr.abs() <= f64::MIN_POSITIVE {
                    continue;
                }
                let app = m.get(p, p);
                let arr = m.get(r, r);
                let theta = (arr - app) / (2.0 * apr);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkr = m.get(k, r);
                    m.set(k, p, c * mkp - s * mkr);
                    m.set(k, r, s * mkp + c * mkr);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mrk = m.get(r, k);
                    m.set(p, k, c * mpk - s * mrk);
                    m.set(r, k, s * mpk + c * mrk);
                }
                for k in 0..n {
                    let qkp = q.get(k, p);
                    let qkr = q.get(k, r);
                    q.set(k, p, c * qkp - s * qkr);
                    q.set(k, r, s * qkp + c * qkr);
                }
            }
        }
    }
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m.get(i, i), i)).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let eigenvalues: Vec<f64> = pairs.iter().map(|&(v, _)| v).collect();
    let order: Vec<usize> = pairs.iter().map(|&(_, i)| i).collect();
    let eigenvectors = q.select_columns(&order).expect("indices in range");
    (eigenvalues, eigenvectors)
}

/// Seed-path eigenvalue clipping (seed Jacobi + `Q Λ Qᵀ` through a diagonal
/// matrix product and an explicit transpose).
pub fn clip_eigenvalues_seed(matrix: &Matrix, floor: f64) -> Matrix {
    let (eigenvalues, eigenvectors) = symmetric_eigen_seed(matrix);
    let clipped: Vec<f64> = eigenvalues
        .iter()
        .map(|&l| if l < floor { floor } else { l })
        .collect();
    let lambda = Matrix::from_diag(&clipped);
    let ql = eigenvectors.matmul_naive(&lambda).expect("shapes agree");
    ql.matmul_naive(&eigenvectors.transpose())
        .expect("shapes agree")
}

/// Seed-path Cholesky inverse: `A⁻¹` recovered column by column against the
/// identity (the original `Cholesky::inverse` shape of work).
pub fn cholesky_inverse_seed(a: &Matrix) -> Matrix {
    let ch = Cholesky::new(a).expect("seed inverse expects SPD input");
    let n = a.rows();
    let identity = Matrix::identity(n);
    let mut out = Matrix::zeros(n, n);
    for j in 0..n {
        let col = identity.column(j);
        let x = ch.solve_vec(&col).expect("solve succeeds for SPD input");
        out.set_column(j, &x);
    }
    out
}

/// Seed-path multivariate-normal sampling transform: per-element **scalar**
/// Box–Muller draws (one normal per uniform pair, discarding the sine
/// branch) followed by the same batched `Z Lᵀ` product the current path
/// uses — so the bench isolates exactly the sampling change (batched
/// Box–Muller with fused `sin_cos`) that PR 2 landed.
pub fn mvn_sample_matrix_seed<R: rand::Rng + ?Sized>(
    chol_l: &Matrix,
    n: usize,
    rng: &mut R,
) -> Matrix {
    let dim = chol_l.rows();
    let mut z = Matrix::zeros(n, dim);
    for v in z.as_mut_slice().iter_mut() {
        *v = randrecon_stats::rng::standard_normal(rng);
    }
    z.matmul_transpose_b(chol_l)
        .expect("mvn seed sample shapes always agree")
}

/// Seed-path column-by-column matrix solve (the original `Cholesky::solve`).
pub fn cholesky_solve_seed(ch: &Cholesky, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(ch.dim(), b.cols());
    for j in 0..b.cols() {
        let col = b.column(j);
        let x = ch.solve_vec(&col).expect("solve succeeds for SPD input");
        out.set_column(j, &x);
    }
    out
}

/// Seed-path BE-DR: strided covariance, seed Jacobi regularization, three
/// explicit Cholesky inverses, naive matmuls and a per-element broadcast —
/// the exact chain of work the seed's `BeDr::reconstruct_with_report` did.
#[allow(clippy::needless_range_loop)] // faithful copy of the seed's index loops
pub fn be_dr_seed(disguised: &DataTable, noise: &NoiseModel) -> DataTable {
    let m = disguised.n_attributes();
    let floor = default_eigenvalue_floor(disguised);

    let sigma_y = covariance_matrix_seed(disguised.values());
    let sigma_r = noise.covariance(m).expect("noise covariance");
    let raw = sigma_y
        .sub(&sigma_r)
        .expect("shapes agree")
        .symmetrize()
        .expect("square");
    let sigma_x = clip_eigenvalues_seed(&raw, floor);
    let mu_x = disguised.mean_vector();

    let sigma_x_inv = cholesky_inverse_seed(&sigma_x);
    let sigma_r_inv = cholesky_inverse_seed(&sigma_r.symmetrize().expect("square"));
    let precision_sum = sigma_x_inv
        .add(&sigma_r_inv)
        .expect("shapes agree")
        .symmetrize()
        .expect("square");
    let a = cholesky_inverse_seed(&precision_sum);

    let prior_pull = a
        .matmul_naive(&sigma_x_inv)
        .expect("shapes agree")
        .matvec(&mu_x)
        .expect("shapes agree");
    let data_pull = a.matmul_naive(&sigma_r_inv).expect("shapes agree");

    let mut reconstructed = disguised
        .values()
        .matmul_naive(&data_pull.transpose())
        .expect("shapes agree");
    for i in 0..reconstructed.rows() {
        for j in 0..m {
            reconstructed.set(i, j, reconstructed.get(i, j) + prior_pull[j]);
        }
    }
    disguised
        .with_values(reconstructed)
        .expect("shape preserved")
}

#[cfg(test)]
mod tests {
    use super::*;
    use randrecon_core::be_dr::BeDr;
    use randrecon_core::Reconstructor;
    use randrecon_data::synthetic::{EigenSpectrum, SyntheticDataset};
    use randrecon_noise::additive::AdditiveRandomizer;
    use randrecon_stats::rng::seeded_rng;

    #[test]
    fn seed_reference_agrees_with_optimized_pipeline() {
        let spectrum = EigenSpectrum::principal_plus_small(3, 120.0, 12, 2.0).unwrap();
        let ds = SyntheticDataset::generate(&spectrum, 400, 77).unwrap();
        let randomizer = AdditiveRandomizer::gaussian(6.0).unwrap();
        let disguised = randomizer.disguise(&ds.table, &mut seeded_rng(78)).unwrap();
        let model = randomizer.model();

        let seed = be_dr_seed(&disguised, model);
        let optimized = BeDr::default().reconstruct(&disguised, model).unwrap();
        // Same estimator, different factorization route: agreement far below
        // any statistically meaningful scale.
        assert!(seed.values().approx_eq(optimized.values(), 1e-6));
    }

    #[test]
    fn seed_covariance_agrees_with_single_pass() {
        let spectrum = EigenSpectrum::principal_plus_small(2, 50.0, 8, 1.0).unwrap();
        let ds = SyntheticDataset::generate(&spectrum, 300, 9).unwrap();
        let seed = covariance_matrix_seed(ds.table.values());
        let fast = ds.table.covariance_matrix();
        assert!(seed.approx_eq(&fast, 1e-9));
    }

    #[test]
    fn rowsweep_covariance_is_bit_identical_to_the_blocked_kernel() {
        // Below the 2048-row chunking threshold both kernels run one
        // uninterrupted sweep with identical per-cell addition order, so
        // the PR-10 panel blocking must not move a single bit.
        let spectrum = EigenSpectrum::principal_plus_small(2, 50.0, 9, 1.0).unwrap();
        let ds = SyntheticDataset::generate(&spectrum, 1_000, 10).unwrap();
        let seed = covariance_matrix_rowsweep_seed(ds.table.values());
        let blocked = ds.table.covariance_matrix();
        assert!(seed.approx_eq(&blocked, 0.0));
    }

    #[test]
    fn seed_blocked_matmul_agrees_with_microkernel_path() {
        // Odd shape, above the blocked threshold: the seed axpy kernel and
        // the production microkernel kernel must agree exactly.
        let a = Matrix::from_fn(37, 130, |i, j| ((i * 13 + j * 7) % 23) as f64 - 11.0);
        let b = Matrix::from_fn(130, 301, |i, j| ((i * 5 + j * 11) % 19) as f64 - 9.0);
        let seed = matmul_blocked_axpy_seed(&a, &b);
        let production = a.matmul(&b).unwrap();
        assert!(seed.approx_eq(&production, 0.0));
    }
}
