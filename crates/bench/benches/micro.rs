//! Micro benchmarks for the substrates the attacks are built on.
//!
//! Two groups:
//!
//! * `substrates` — eigendecomposition, Cholesky, covariance and
//!   multivariate-normal sampling at the paper's evaluation sizes
//!   (m = 50 and m = 100 attributes, n = 1000 records).
//! * `kernels_v1` — the PR-1 perf-trajectory group: matmul,
//!   cholesky-solve and BE-DR end-to-end throughput at
//!   n ∈ {500, 5 000, 50 000} records × 64 attributes, with `*_seed`
//!   entries running the preserved seed implementations
//!   (`randrecon_bench::*_seed`, `Matrix::matmul_naive`) so speedups are
//!   measured inside one binary. `scripts/bench_to_json.sh` dumped this
//!   group to `BENCH_1.json`.
//! * `kernels_v2` — the PR-2 perf-trajectory group: the Householder +
//!   implicit-shift QL eigensolver against the pinned Jacobi reference at
//!   m ∈ {64, 128, 256}, and batched Box–Muller MVN sampling against the
//!   scalar seed transform at 50 000 records. `eigen/256` vs
//!   `eigen_jacobi/256` is the tracked ≥5× PR-2 acceptance ratio.
//! * `kernels_v3` — the PR-3 microkernel group: the 4×8 register-blocked
//!   `Matrix::matmul` against the preserved PR-1 axpy-sweep blocked kernel
//!   (`randrecon_bench::matmul_blocked_axpy_seed`) at 256² and 512²;
//!   `matmul_micro/512` vs `matmul_blocked_seed/512` is the tracked ≥1.5×
//!   acceptance ratio.
//! * `streaming` — the bounded-memory group. PR 3: in-memory BE-DR vs the
//!   two-pass streaming engine over the same 50 k × 64 disguised table
//!   (`be_dr_in_memory/50000` vs `be_dr_streaming/50000`, the tracked
//!   ≥0.8× throughput ratio), plus the 500 k × 64 flagship where
//!   generation, disguising and both attack passes all stream chunk by
//!   chunk with no `n × m` allocation. PR 4: the remaining streaming
//!   schemes through the unified driver (`ndr_streaming` / `udr_streaming`
//!   / `sf_streaming` / `pca_dr_streaming` at 50 k × 64, per-scheme
//!   throughput), and `be_dr_streaming_seq/50000` — the forced-sequential
//!   pass 2 against the default double-buffered pipeline, the tracked
//!   ≥0.95× PR-4 acceptance ratio.
//! * `pipeline_ring` — the PR-10 group: pass 2 through the N-slot ring
//!   (depths 4 and 8) against the forced-sequential loop and the pinned
//!   two-slot depth at 50 k × 64 and 500 k × 64
//!   (`be_dr_ring4/50000` vs `be_dr_sequential/50000` is the tracked
//!   ≥0.95× acceptance ratio), plus the `ROW_BLOCK`-panel covariance
//!   rank-update against the preserved per-row sweep at n = 1000,
//!   m ∈ {128, 256} (`sample_covariance_n1000/256` vs
//!   `sample_covariance_rowsweep_n1000/256`, acceptance ≥1.3×).
//! * `scenario` — the PR-5 scenario-runner group: `run_scenarios` over an
//!   8-cell grid of *distinct* workloads against a hand-rolled loop over
//!   the same specs (`runner/8` vs `handrolled/8`); the runner's scheduling
//!   overhead (grouping, pool dispatch, result scattering) must stay ≤ 5%.
//! * `journal` — the PR-6 crash-resumability group: the same 8-workload
//!   grid through `run_scenarios_resumable` (every outcome framed,
//!   checksummed and appended to a fresh journal file) against the plain
//!   runner (`journaled/8` vs `plain/8`); the journaling overhead must
//!   stay ≤ 5%. `scripts/bench_to_json.sh` dumps everything to
//!   `BENCH_6.json` (`BENCH_5.json` and earlier stay the frozen
//!   PR-records).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use randrecon_bench::{
    be_dr_seed, cholesky_solve_seed, covariance_matrix_rowsweep_seed, covariance_matrix_seed,
    matmul_blocked_axpy_seed, mvn_sample_matrix_seed,
};
use randrecon_core::be_dr::BeDr;
use randrecon_core::streaming::{
    ChunkReconstructor, DiscardSink, StreamingBeDr, StreamingDriver, StreamingNdr, StreamingPcaDr,
    StreamingSf, StreamingUdr, TableSink,
};
use randrecon_core::Reconstructor;
use randrecon_data::chunks::{SyntheticChunkSource, TableChunkSource};
use randrecon_data::synthetic::{EigenSpectrum, SyntheticDataset};
use randrecon_data::DataTable;
use randrecon_linalg::decomposition::{eigen_jacobi, Cholesky, SymmetricEigen};
use randrecon_linalg::Matrix;
use randrecon_noise::additive::{AdditiveRandomizer, DisguisedChunkSource};
use randrecon_stats::mvn::MultivariateNormal;
use randrecon_stats::rng::seeded_rng;
use randrecon_stats::summary::covariance_matrix;
use std::hint::black_box;

fn workload(m: usize) -> SyntheticDataset {
    let spectrum = EigenSpectrum::principal_plus_small(m / 10 + 1, 400.0, m, 4.0).unwrap();
    SyntheticDataset::generate(&spectrum, 1_000, m as u64).unwrap()
}

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group.sample_size(10);
    for &m in &[50usize, 100] {
        let ds = workload(m);
        let cov = ds.covariance.clone();

        group.bench_with_input(BenchmarkId::new("eigen", m), &m, |b, _| {
            b.iter(|| black_box(SymmetricEigen::new(&cov).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("cholesky_inverse", m), &m, |b, _| {
            b.iter(|| black_box(Cholesky::new(&cov).unwrap().inverse().unwrap()))
        });
        group.bench_with_input(
            BenchmarkId::new("sample_covariance_n1000", m),
            &m,
            |b, _| b.iter(|| black_box(covariance_matrix(ds.table.values()))),
        );
        group.bench_with_input(
            BenchmarkId::new("mvn_sample_1000_records", m),
            &m,
            |b, _| {
                let mvn = MultivariateNormal::zero_mean(cov.clone()).unwrap();
                b.iter(|| black_box(mvn.sample_matrix(1_000, &mut seeded_rng(7))))
            },
        );
        group.bench_with_input(BenchmarkId::new("matmul_projection", m), &m, |b, _| {
            // The Y·Q̂Q̂ᵀ projection that dominates PCA-DR / SF.
            let q = &ds.eigenvectors;
            b.iter(|| {
                let proj = ds
                    .table
                    .values()
                    .matmul(q)
                    .unwrap()
                    .matmul_transpose_b(q)
                    .unwrap();
                black_box(proj)
            })
        });
    }
    group.finish();
}

/// The PR-1 perf-trajectory sizes: n records × 64 attributes.
const KERNEL_ROWS: [usize; 3] = [500, 5_000, 50_000];
const KERNEL_ATTRS: usize = 64;

fn kernel_workload(n: usize) -> (DataTable, AdditiveRandomizer) {
    let spectrum = EigenSpectrum::principal_plus_small(6, 400.0, KERNEL_ATTRS, 4.0).unwrap();
    let ds = SyntheticDataset::generate(&spectrum, n, n as u64).unwrap();
    let randomizer = AdditiveRandomizer::gaussian(10.0).unwrap();
    let disguised = randomizer
        .disguise(&ds.table, &mut seeded_rng(n as u64 + 1))
        .unwrap();
    (disguised, randomizer)
}

fn bench_kernels_v1(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels_v1");
    group.sample_size(10);

    for &n in &KERNEL_ROWS {
        let (disguised, randomizer) = kernel_workload(n);
        let model = randomizer.model();
        let y = disguised.values().clone();
        let square = covariance_matrix(&y); // 64×64 SPD multiplier / RHS

        // (n×64)·(64×64): the reconstruction-projection shape.
        group.bench_with_input(BenchmarkId::new("matmul", n), &n, |b, _| {
            b.iter(|| black_box(y.matmul(&square).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("matmul_seed", n), &n, |b, _| {
            b.iter(|| black_box(y.matmul_naive(&square).unwrap()))
        });

        // A X = B with a 64×64 SPD system and an n-column right-hand side.
        let chol = Cholesky::new(&square).unwrap();
        let rhs = y.transpose(); // 64×n
        group.bench_with_input(BenchmarkId::new("cholesky_solve", n), &n, |b, _| {
            b.iter(|| black_box(chol.solve_matrix(&rhs).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("cholesky_solve_seed", n), &n, |b, _| {
            b.iter(|| black_box(cholesky_solve_seed(&chol, &rhs)))
        });

        // Single-pass covariance vs the seed's strided per-pair version.
        group.bench_with_input(BenchmarkId::new("covariance", n), &n, |b, _| {
            b.iter(|| black_box(covariance_matrix(&y)))
        });
        group.bench_with_input(BenchmarkId::new("covariance_seed", n), &n, |b, _| {
            b.iter(|| black_box(covariance_matrix_seed(&y)))
        });

        // BE-DR end to end: the acceptance benchmark of PR 1.
        group.bench_with_input(BenchmarkId::new("be_dr", n), &n, |b, _| {
            b.iter(|| black_box(BeDr::default().reconstruct(&disguised, model).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("be_dr_seed", n), &n, |b, _| {
            b.iter(|| black_box(be_dr_seed(&disguised, model)))
        });
    }
    group.finish();
}

/// The PR-2 perf-trajectory group: the eigensolver swap and the batched
/// sampler, new path vs preserved seed path inside one binary.
fn bench_kernels_v2(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels_v2");
    group.sample_size(10);

    // Eigendecomposition at the attribute counts the tridiagonal pipeline
    // unlocks. Both paths consume the identical covariance matrix.
    for &m in &[64usize, 128, 256] {
        let ds = workload(m);
        let cov = ds.covariance.clone();
        group.bench_with_input(BenchmarkId::new("eigen", m), &m, |b, _| {
            b.iter(|| black_box(SymmetricEigen::householder_ql(&cov).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("eigen_jacobi", m), &m, |b, _| {
            b.iter(|| black_box(eigen_jacobi(&cov).unwrap()))
        });
    }

    // MVN sampling at the 50k-row bench-setup size (ROADMAP open item):
    // batched Box–Muller vs the scalar seed transform, same Cholesky factor.
    let ds = workload(KERNEL_ATTRS);
    let mvn = MultivariateNormal::zero_mean(ds.covariance.clone()).unwrap();
    let chol_l = Cholesky::new(&ds.covariance).unwrap().l().clone();
    group.bench_with_input(
        BenchmarkId::new("mvn_sample_matrix", 50_000usize),
        &50_000usize,
        |b, _| b.iter(|| black_box(mvn.sample_matrix(50_000, &mut seeded_rng(11)))),
    );
    group.bench_with_input(
        BenchmarkId::new("mvn_sample_matrix_seed", 50_000usize),
        &50_000usize,
        |b, _| b.iter(|| black_box(mvn_sample_matrix_seed(&chol_l, 50_000, &mut seeded_rng(11)))),
    );
    group.finish();
}

/// The PR-3 microkernel group: register-blocked matmul vs the preserved
/// axpy-sweep blocked kernel, same operands, one binary.
fn bench_kernels_v3(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels_v3");
    group.sample_size(10);
    for &n in &[256usize, 512] {
        let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 7) % 97) as f64 / 9.0 - 5.0);
        let b = Matrix::from_fn(n, n, |i, j| ((i * 5 + j * 11) % 89) as f64 / 7.0 - 6.0);
        group.bench_with_input(BenchmarkId::new("matmul_micro", n), &n, |bch, _| {
            bch.iter(|| black_box(a.matmul(&b).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("matmul_blocked_seed", n), &n, |bch, _| {
            bch.iter(|| black_box(matmul_blocked_axpy_seed(&a, &b)))
        });
    }
    group.finish();
}

/// The PR-3 streaming group: bounded-memory two-pass BE-DR against the
/// in-memory pipeline at 50 k × 64 (same disguised records via a chunked
/// view), plus the 500 k × 64 fully-streamed flagship.
fn bench_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming");
    group.sample_size(10);

    // 50 k × 64: identical records through both pipelines. The streaming
    // run includes its pass-1 accumulation *and* materializes the result
    // through a TableSink, so the comparison is end-to-end fair.
    let n = 50_000usize;
    let (disguised, randomizer) = kernel_workload(n);
    let model = randomizer.model();
    group.bench_with_input(BenchmarkId::new("be_dr_in_memory", n), &n, |b, _| {
        b.iter(|| black_box(BeDr::default().reconstruct(&disguised, model).unwrap()))
    });
    group.bench_with_input(BenchmarkId::new("be_dr_streaming", n), &n, |b, _| {
        b.iter(|| {
            let mut source = TableChunkSource::new(&disguised, 4_096).unwrap();
            let mut sink = TableSink::new(KERNEL_ATTRS);
            StreamingBeDr::default()
                .run(&mut source, model, &mut sink)
                .unwrap();
            black_box(sink.into_matrix().unwrap())
        })
    });
    // The forced-sequential pass 2: the double-buffered default above must
    // hold ≥0.95× of this throughput even on a 1-core box (the overlap is
    // pure win on multicore, and the two-slot channel is nearly free).
    group.bench_with_input(BenchmarkId::new("be_dr_streaming_seq", n), &n, |b, _| {
        b.iter(|| {
            let mut source = TableChunkSource::new(&disguised, 4_096).unwrap();
            let mut sink = TableSink::new(KERNEL_ATTRS);
            StreamingDriver::sequential()
                .run(&StreamingBeDr::default(), &mut source, model, &mut sink)
                .unwrap();
            black_box(sink.into_matrix().unwrap())
        })
    });
    // Per-scheme streaming throughput through the unified driver, same
    // 50 k × 64 records and TableSink materialization as `be_dr_streaming`.
    let driver = StreamingDriver::default();
    let schemes: [(&str, Box<dyn ChunkReconstructor>); 4] = [
        ("ndr_streaming", Box::new(StreamingNdr)),
        ("udr_streaming", Box::new(StreamingUdr)),
        ("sf_streaming", Box::new(StreamingSf::default())),
        ("pca_dr_streaming", Box::new(StreamingPcaDr::largest_gap())),
    ];
    for (name, attack) in &schemes {
        group.bench_with_input(BenchmarkId::new(*name, n), &n, |b, _| {
            b.iter(|| {
                let mut source = TableChunkSource::new(&disguised, 4_096).unwrap();
                let mut sink = TableSink::new(KERNEL_ATTRS);
                driver
                    .run(attack.as_ref(), &mut source, model, &mut sink)
                    .unwrap();
                black_box(sink.into_matrix().unwrap())
            })
        });
    }

    // 500 k × 64: generation, disguising and both passes stream chunk by
    // chunk — peak memory is a few 8192-row buffers plus m × m state. Two
    // samples keep the ~6 s end-to-end runs affordable on the 1-core
    // container.
    group.sample_size(2);
    let n = 500_000usize;
    let spectrum = EigenSpectrum::principal_plus_small(6, 400.0, KERNEL_ATTRS, 4.0).unwrap();
    group.bench_with_input(BenchmarkId::new("be_dr_streaming", n), &n, |b, _| {
        b.iter(|| {
            let original = SyntheticChunkSource::generate(&spectrum, n, 8_192, n as u64).unwrap();
            let mut source = DisguisedChunkSource::new(
                original,
                AdditiveRandomizer::gaussian(10.0).unwrap(),
                n as u64 + 1,
            );
            let noise = source.model().clone();
            let mut sink = DiscardSink::default();
            let report = StreamingBeDr::default()
                .run(&mut source, &noise, &mut sink)
                .unwrap();
            black_box(report.n_records)
        })
    });
    group.finish();
}

/// The PR-10 ring group: pass 2 through the N-slot ring against the forced
/// sequential loop and the ring pinned to the old two-slot depth, on the
/// 50 k × 64 materialized workload and the 500 k × 64 fully-streamed
/// flagship; `be_dr_ring4/50000` vs `be_dr_sequential/50000` is the
/// tracked ≥0.95× acceptance ratio (the N-slot generalization of the PR-4
/// double-buffer floor). The group also carries the wide-table covariance
/// numbers: the `ROW_BLOCK`-panel rank-update against the preserved
/// per-row sweep (`randrecon_bench::covariance_matrix_rowsweep_seed`) at
/// n = 1000, m ∈ {128, 256}; `sample_covariance_n1000/256` vs
/// `sample_covariance_rowsweep_n1000/256` is the tracked ≥1.3× acceptance
/// ratio.
fn bench_pipeline_ring(c: &mut Criterion) {
    use randrecon_core::streaming::PipelineMode;

    let mut group = c.benchmark_group("pipeline_ring");
    group.sample_size(10);

    // 50 k × 64, end to end through a TableSink, one mode per entry.
    let n = 50_000usize;
    let (disguised, randomizer) = kernel_workload(n);
    let model = randomizer.model();
    let modes: [(&str, PipelineMode); 4] = [
        ("be_dr_sequential", PipelineMode::Sequential),
        ("be_dr_two_slot", PipelineMode::two_slot()),
        ("be_dr_ring4", PipelineMode::Pipelined { slots: 4 }),
        ("be_dr_ring8", PipelineMode::Pipelined { slots: 8 }),
    ];
    for (name, mode) in modes {
        group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
            b.iter(|| {
                let mut source = TableChunkSource::new(&disguised, 4_096).unwrap();
                let mut sink = TableSink::new(KERNEL_ATTRS);
                StreamingDriver { pipeline: mode }
                    .run(&StreamingBeDr::default(), &mut source, model, &mut sink)
                    .unwrap();
                black_box(sink.into_matrix().unwrap())
            })
        });
    }

    // Wide-table covariance: the blocked rank-update vs the preserved
    // per-row sweep, identical input, identical output bits.
    for &m in &[128usize, 256] {
        let ds = workload(m);
        let y = ds.table.values();
        group.bench_with_input(
            BenchmarkId::new("sample_covariance_n1000", m),
            &m,
            |b, _| b.iter(|| black_box(covariance_matrix(y))),
        );
        group.bench_with_input(
            BenchmarkId::new("sample_covariance_rowsweep_n1000", m),
            &m,
            |b, _| b.iter(|| black_box(covariance_matrix_rowsweep_seed(y))),
        );
    }

    // 500 k × 64 fully streamed (generation + disguise + both passes),
    // three samples per mode: enough for the harness's median to shed one
    // interference burst while keeping the ~6 s runs affordable on 1 core.
    group.sample_size(3);
    let n = 500_000usize;
    let spectrum = EigenSpectrum::principal_plus_small(6, 400.0, KERNEL_ATTRS, 4.0).unwrap();
    let modes: [(&str, PipelineMode); 3] = [
        ("be_dr_sequential", PipelineMode::Sequential),
        ("be_dr_two_slot", PipelineMode::two_slot()),
        ("be_dr_ring4", PipelineMode::Pipelined { slots: 4 }),
    ];
    for (name, mode) in modes {
        group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
            b.iter(|| {
                let original =
                    SyntheticChunkSource::generate(&spectrum, n, 8_192, n as u64).unwrap();
                let mut source = DisguisedChunkSource::new(
                    original,
                    AdditiveRandomizer::gaussian(10.0).unwrap(),
                    n as u64 + 1,
                );
                let noise = source.model().clone();
                let mut sink = DiscardSink::default();
                let report = StreamingDriver { pipeline: mode }
                    .run(&StreamingBeDr::default(), &mut source, &noise, &mut sink)
                    .unwrap();
                black_box(report.n_records)
            })
        });
    }
    group.finish();
}

/// The PR-5 scenario group: the declarative runner against a hand-rolled
/// loop over the same specs. The grid's axis sweeps the *seed*, so every
/// scenario is its own workload group and the runner gets no
/// moment/workload-sharing advantage — the comparison isolates pure
/// scheduling overhead (grouping, pool dispatch, result scattering), which
/// must stay ≤ 5% (`runner/8` vs `handrolled/8` in `BENCH_5.json`).
fn bench_scenario_runner(c: &mut Criterion) {
    use randrecon_experiments::scenario::{GridAxis, GridAxisValue, Override, ScenarioGrid};

    let mut group = c.benchmark_group("scenario");
    group.sample_size(10);

    let grid = ScenarioGrid {
        base: randrecon_experiments::ScenarioSpec::synthetic_quick("bench", 2_000, 16, 2),
        axes: vec![GridAxis {
            name: "seed".to_string(),
            values: (0..8u64)
                .map(|i| GridAxisValue {
                    label: i.to_string(),
                    x: None,
                    overrides: vec![Override::Seed(0xBEC5 + i)],
                })
                .collect(),
        }],
    };
    let specs = grid.expand_validated().unwrap();
    assert_eq!(specs.len(), 8);

    group.bench_with_input(
        BenchmarkId::new("runner", specs.len()),
        &specs,
        |b, specs| b.iter(|| black_box(randrecon_experiments::run_scenarios(specs).unwrap())),
    );
    group.bench_with_input(
        BenchmarkId::new("handrolled", specs.len()),
        &specs,
        |b, specs| {
            b.iter(|| {
                let results: Vec<_> = specs.iter().map(|s| s.run().unwrap()).collect();
                black_box(results)
            })
        },
    );
    group.finish();
}

/// The same 8-workload grid as `bench_scenario_runner`, executed with and
/// without the result journal. The journaled path additionally frames,
/// checksums and appends every outcome to a fresh file, so
/// `journaled/8` vs `plain/8` is the tracked ≤5% journaling-overhead
/// acceptance ratio.
fn bench_journal(c: &mut Criterion) {
    use randrecon_experiments::scenario::{
        GridAxis, GridAxisValue, Override, RetryPolicy, ScenarioGrid,
    };

    let mut group = c.benchmark_group("journal");
    group.sample_size(10);

    let grid = ScenarioGrid {
        base: randrecon_experiments::ScenarioSpec::synthetic_quick("bench", 2_000, 16, 2),
        axes: vec![GridAxis {
            name: "seed".to_string(),
            values: (0..8u64)
                .map(|i| GridAxisValue {
                    label: i.to_string(),
                    x: None,
                    overrides: vec![Override::Seed(0xBEC5 + i)],
                })
                .collect(),
        }],
    };
    let specs = grid.expand_validated().unwrap();
    assert_eq!(specs.len(), 8);
    let path = std::env::temp_dir().join(format!(
        "randrecon-bench-journal-{}.bin",
        std::process::id()
    ));

    group.bench_with_input(
        BenchmarkId::new("plain", specs.len()),
        &specs,
        |b, specs| {
            b.iter(|| {
                black_box(
                    randrecon_experiments::run_scenarios_failsoft(specs, RetryPolicy::default())
                        .unwrap(),
                )
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("journaled", specs.len()),
        &specs,
        |b, specs| {
            b.iter(|| {
                let _ = std::fs::remove_file(&path);
                black_box(
                    randrecon_experiments::run_scenarios_resumable(
                        specs,
                        &path,
                        RetryPolicy::default(),
                    )
                    .unwrap(),
                )
            })
        },
    );
    let _ = std::fs::remove_file(&path);
    group.finish();
}

/// The same 8-workload grid, executed single-process versus sharded
/// **in-process** across 2 shards (per-shard journals, shard-stamped
/// headers, read-only recovery, index merge — everything the coordinator
/// does except spawning processes). `sharded/8` vs `plain/8` is the
/// tracked ≤10% coordination-overhead acceptance ratio for PR 7; process
/// spawn cost is excluded deliberately, since it is platform noise, not
/// protocol overhead.
fn bench_shard(c: &mut Criterion) {
    use randrecon_experiments::scenario::{
        GridAxis, GridAxisValue, Override, RetryPolicy, ScenarioGrid,
    };

    let mut group = c.benchmark_group("shard");
    group.sample_size(10);

    let grid = ScenarioGrid {
        base: randrecon_experiments::ScenarioSpec::synthetic_quick("bench", 2_000, 16, 2),
        axes: vec![GridAxis {
            name: "seed".to_string(),
            values: (0..8u64)
                .map(|i| GridAxisValue {
                    label: i.to_string(),
                    x: None,
                    overrides: vec![Override::Seed(0xBEC5 + i)],
                })
                .collect(),
        }],
    };
    let specs = grid.expand_validated().unwrap();
    assert_eq!(specs.len(), 8);
    let plan =
        randrecon_experiments::plan_shards(&specs, 2, randrecon_experiments::SplitPolicy::Never)
            .unwrap();
    assert_eq!(plan.n_shards(), 2);
    let dir = std::env::temp_dir().join(format!("randrecon-bench-shard-{}", std::process::id()));

    group.bench_with_input(
        BenchmarkId::new("plain", specs.len()),
        &specs,
        |b, specs| {
            b.iter(|| {
                black_box(
                    randrecon_experiments::run_scenarios_failsoft(specs, RetryPolicy::default())
                        .unwrap(),
                )
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("sharded", specs.len()),
        &specs,
        |b, specs| {
            b.iter(|| {
                // Fresh shard journals each iteration: resuming would skip
                // all the work and measure nothing.
                let _ = std::fs::remove_dir_all(&dir);
                black_box(
                    randrecon_experiments::run_sharded_in_process(
                        specs,
                        &plan,
                        &dir,
                        RetryPolicy::default(),
                    )
                    .unwrap(),
                )
            })
        },
    );
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

/// The same 8-workload grid through the sharded in-process path, bare
/// versus **supervised**: per-shard heartbeat sidecars (throttled to one
/// write per `HEARTBEAT_INTERVAL`) plus a (generous, never-firing) cell
/// deadline arming the cooperative cancel checks in every trial loop.
/// `supervised/8` vs `sharded/8` is the tracked ≤5% supervision-overhead
/// acceptance ratio for PR 8 — liveness reporting and deadline plumbing
/// must be nearly free when nothing goes wrong.
fn bench_supervise(c: &mut Criterion) {
    use randrecon_experiments::scenario::{
        GridAxis, GridAxisValue, Override, RetryPolicy, ScenarioGrid,
    };
    use randrecon_experiments::shard::{
        reduce_shard_journals, run_shard_worker_with, shard_heartbeat_path, shard_journal_path,
        WorkerOptions,
    };

    let mut group = c.benchmark_group("supervise");
    group.sample_size(10);

    let grid = ScenarioGrid {
        base: randrecon_experiments::ScenarioSpec::synthetic_quick("bench", 2_000, 16, 2),
        axes: vec![GridAxis {
            name: "seed".to_string(),
            values: (0..8u64)
                .map(|i| GridAxisValue {
                    label: i.to_string(),
                    x: None,
                    overrides: vec![Override::Seed(0xBEC5 + i)],
                })
                .collect(),
        }],
    };
    let specs = grid.expand_validated().unwrap();
    assert_eq!(specs.len(), 8);
    let plan =
        randrecon_experiments::plan_shards(&specs, 2, randrecon_experiments::SplitPolicy::Never)
            .unwrap();
    assert_eq!(plan.n_shards(), 2);
    let dir =
        std::env::temp_dir().join(format!("randrecon-bench-supervise-{}", std::process::id()));

    group.bench_with_input(
        BenchmarkId::new("sharded", specs.len()),
        &specs,
        |b, specs| {
            b.iter(|| {
                let _ = std::fs::remove_dir_all(&dir);
                black_box(
                    randrecon_experiments::run_sharded_in_process(
                        specs,
                        &plan,
                        &dir,
                        RetryPolicy::default(),
                    )
                    .unwrap(),
                )
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("supervised", specs.len()),
        &specs,
        |b, specs| {
            let policy =
                RetryPolicy::default().with_cell_timeout(std::time::Duration::from_secs(600));
            b.iter(|| {
                let _ = std::fs::remove_dir_all(&dir);
                std::fs::create_dir_all(&dir).unwrap();
                let mut journals = Vec::with_capacity(plan.n_shards());
                for (i, slice) in plan.slices.iter().enumerate() {
                    let path = shard_journal_path(&dir, i);
                    let options = WorkerOptions {
                        heartbeat: Some(shard_heartbeat_path(&path)),
                        ..WorkerOptions::default()
                    };
                    run_shard_worker_with(specs, slice, &[], &path, policy, options).unwrap();
                    journals.push(path);
                }
                black_box(reduce_shard_journals(specs, &plan, &journals, policy).unwrap())
            })
        },
    );
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

/// The 8-workload grid rebuilt on the **streaming** engine through the
/// sharded in-process path, plain whole-group split (`SplitPolicy::Never`)
/// versus the distributed pass-1 moment merge (`SplitPolicy::Always`):
/// every group's fixed-width moment segments are dealt across both shards,
/// journaled as v5 moment frames, and reduced coordinator-side before
/// pass 2. `merged/8` vs `never/8` is the tracked ≤10% moment-merge
/// coordination-overhead acceptance ratio for PR 9 — the extra journal
/// frames, recovery, and cross-shard merge must be nearly free against the
/// reconstruction work itself.
fn bench_moment_merge(c: &mut Criterion) {
    use randrecon_experiments::scenario::{
        EngineSpec, GridAxis, GridAxisValue, Override, RetryPolicy, ScenarioGrid,
    };
    use randrecon_experiments::SplitPolicy;

    let mut group = c.benchmark_group("moment_merge");
    group.sample_size(10);

    let mut base = randrecon_experiments::ScenarioSpec::synthetic_quick("bench", 2_000, 16, 2);
    base.engine = EngineSpec::Streaming { chunk_rows: 256 };
    let grid = ScenarioGrid {
        base,
        axes: vec![GridAxis {
            name: "seed".to_string(),
            values: (0..8u64)
                .map(|i| GridAxisValue {
                    label: i.to_string(),
                    x: None,
                    overrides: vec![Override::Seed(0xBEC5 + i)],
                })
                .collect(),
        }],
    };
    let specs = grid.expand_validated().unwrap();
    assert_eq!(specs.len(), 8);
    let dir = std::env::temp_dir().join(format!("randrecon-bench-moments-{}", std::process::id()));

    for (policy, label) in [
        (SplitPolicy::Never, "never"),
        (SplitPolicy::Always, "merged"),
    ] {
        let plan = randrecon_experiments::plan_shards(&specs, 2, policy).unwrap();
        group.bench_with_input(BenchmarkId::new(label, specs.len()), &specs, |b, specs| {
            b.iter(|| {
                // Fresh shard journals each iteration: resuming would skip
                // all the work and measure nothing.
                let _ = std::fs::remove_dir_all(&dir);
                black_box(
                    randrecon_experiments::run_sharded_in_process(
                        specs,
                        &plan,
                        &dir,
                        RetryPolicy::default(),
                    )
                    .unwrap(),
                )
            })
        });
    }
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

criterion_group!(
    benches,
    bench_substrates,
    bench_kernels_v1,
    bench_kernels_v2,
    bench_kernels_v3,
    bench_streaming,
    bench_pipeline_ring,
    bench_scenario_runner,
    bench_journal,
    bench_shard,
    bench_supervise,
    bench_moment_merge
);
criterion_main!(benches);
