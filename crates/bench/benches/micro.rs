//! Micro benchmarks for the substrates the attacks are built on: symmetric
//! eigendecomposition, Cholesky inversion, covariance estimation and
//! multivariate-normal sampling, at the matrix sizes the paper's evaluation
//! uses (m = 50 and m = 100 attributes, n = 1000 records).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use randrecon_data::synthetic::{EigenSpectrum, SyntheticDataset};
use randrecon_linalg::decomposition::{Cholesky, SymmetricEigen};
use randrecon_stats::mvn::MultivariateNormal;
use randrecon_stats::rng::seeded_rng;
use randrecon_stats::summary::covariance_matrix;
use std::hint::black_box;

fn workload(m: usize) -> SyntheticDataset {
    let spectrum = EigenSpectrum::principal_plus_small(m / 10 + 1, 400.0, m, 4.0).unwrap();
    SyntheticDataset::generate(&spectrum, 1_000, m as u64).unwrap()
}

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group.sample_size(10);
    for &m in &[50usize, 100] {
        let ds = workload(m);
        let cov = ds.covariance.clone();

        group.bench_with_input(BenchmarkId::new("jacobi_eigen", m), &m, |b, _| {
            b.iter(|| black_box(SymmetricEigen::new(&cov).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("cholesky_inverse", m), &m, |b, _| {
            b.iter(|| black_box(Cholesky::new(&cov).unwrap().inverse().unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("sample_covariance_n1000", m), &m, |b, _| {
            b.iter(|| black_box(covariance_matrix(ds.table.values())))
        });
        group.bench_with_input(BenchmarkId::new("mvn_sample_1000_records", m), &m, |b, _| {
            let mvn = MultivariateNormal::zero_mean(cov.clone()).unwrap();
            b.iter(|| black_box(mvn.sample_matrix(1_000, &mut seeded_rng(7))))
        });
        group.bench_with_input(BenchmarkId::new("matmul_projection", m), &m, |b, _| {
            // The Y·Q̂Q̂ᵀ projection that dominates PCA-DR / SF.
            let q = &ds.eigenvectors;
            b.iter(|| {
                let proj = ds.table.values().matmul(q).unwrap().matmul(&q.transpose()).unwrap();
                black_box(proj)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
