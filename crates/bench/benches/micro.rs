//! Micro benchmarks for the substrates the attacks are built on.
//!
//! Two groups:
//!
//! * `substrates` — eigendecomposition, Cholesky, covariance and
//!   multivariate-normal sampling at the paper's evaluation sizes
//!   (m = 50 and m = 100 attributes, n = 1000 records).
//! * `kernels_v1` — the PR-1 perf-trajectory group: matmul,
//!   cholesky-solve and BE-DR end-to-end throughput at
//!   n ∈ {500, 5 000, 50 000} records × 64 attributes, with `*_seed`
//!   entries running the preserved seed implementations
//!   (`randrecon_bench::*_seed`, `Matrix::matmul_naive`) so speedups are
//!   measured inside one binary. `scripts/bench_to_json.sh` dumped this
//!   group to `BENCH_1.json`.
//! * `kernels_v2` — the PR-2 perf-trajectory group: the Householder +
//!   implicit-shift QL eigensolver against the pinned Jacobi reference at
//!   m ∈ {64, 128, 256}, and batched Box–Muller MVN sampling against the
//!   scalar seed transform at 50 000 records. `scripts/bench_to_json.sh`
//!   dumps everything to `BENCH_2.json`; `eigen/256` vs `eigen_jacobi/256`
//!   is the tracked ≥5× acceptance ratio.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use randrecon_bench::{
    be_dr_seed, cholesky_solve_seed, covariance_matrix_seed, mvn_sample_matrix_seed,
};
use randrecon_core::be_dr::BeDr;
use randrecon_core::Reconstructor;
use randrecon_data::synthetic::{EigenSpectrum, SyntheticDataset};
use randrecon_data::DataTable;
use randrecon_linalg::decomposition::{eigen_jacobi, Cholesky, SymmetricEigen};
use randrecon_noise::additive::AdditiveRandomizer;
use randrecon_stats::mvn::MultivariateNormal;
use randrecon_stats::rng::seeded_rng;
use randrecon_stats::summary::covariance_matrix;
use std::hint::black_box;

fn workload(m: usize) -> SyntheticDataset {
    let spectrum = EigenSpectrum::principal_plus_small(m / 10 + 1, 400.0, m, 4.0).unwrap();
    SyntheticDataset::generate(&spectrum, 1_000, m as u64).unwrap()
}

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group.sample_size(10);
    for &m in &[50usize, 100] {
        let ds = workload(m);
        let cov = ds.covariance.clone();

        group.bench_with_input(BenchmarkId::new("eigen", m), &m, |b, _| {
            b.iter(|| black_box(SymmetricEigen::new(&cov).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("cholesky_inverse", m), &m, |b, _| {
            b.iter(|| black_box(Cholesky::new(&cov).unwrap().inverse().unwrap()))
        });
        group.bench_with_input(
            BenchmarkId::new("sample_covariance_n1000", m),
            &m,
            |b, _| b.iter(|| black_box(covariance_matrix(ds.table.values()))),
        );
        group.bench_with_input(
            BenchmarkId::new("mvn_sample_1000_records", m),
            &m,
            |b, _| {
                let mvn = MultivariateNormal::zero_mean(cov.clone()).unwrap();
                b.iter(|| black_box(mvn.sample_matrix(1_000, &mut seeded_rng(7))))
            },
        );
        group.bench_with_input(BenchmarkId::new("matmul_projection", m), &m, |b, _| {
            // The Y·Q̂Q̂ᵀ projection that dominates PCA-DR / SF.
            let q = &ds.eigenvectors;
            b.iter(|| {
                let proj = ds
                    .table
                    .values()
                    .matmul(q)
                    .unwrap()
                    .matmul_transpose_b(q)
                    .unwrap();
                black_box(proj)
            })
        });
    }
    group.finish();
}

/// The PR-1 perf-trajectory sizes: n records × 64 attributes.
const KERNEL_ROWS: [usize; 3] = [500, 5_000, 50_000];
const KERNEL_ATTRS: usize = 64;

fn kernel_workload(n: usize) -> (DataTable, AdditiveRandomizer) {
    let spectrum = EigenSpectrum::principal_plus_small(6, 400.0, KERNEL_ATTRS, 4.0).unwrap();
    let ds = SyntheticDataset::generate(&spectrum, n, n as u64).unwrap();
    let randomizer = AdditiveRandomizer::gaussian(10.0).unwrap();
    let disguised = randomizer
        .disguise(&ds.table, &mut seeded_rng(n as u64 + 1))
        .unwrap();
    (disguised, randomizer)
}

fn bench_kernels_v1(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels_v1");
    group.sample_size(10);

    for &n in &KERNEL_ROWS {
        let (disguised, randomizer) = kernel_workload(n);
        let model = randomizer.model();
        let y = disguised.values().clone();
        let square = covariance_matrix(&y); // 64×64 SPD multiplier / RHS

        // (n×64)·(64×64): the reconstruction-projection shape.
        group.bench_with_input(BenchmarkId::new("matmul", n), &n, |b, _| {
            b.iter(|| black_box(y.matmul(&square).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("matmul_seed", n), &n, |b, _| {
            b.iter(|| black_box(y.matmul_naive(&square).unwrap()))
        });

        // A X = B with a 64×64 SPD system and an n-column right-hand side.
        let chol = Cholesky::new(&square).unwrap();
        let rhs = y.transpose(); // 64×n
        group.bench_with_input(BenchmarkId::new("cholesky_solve", n), &n, |b, _| {
            b.iter(|| black_box(chol.solve_matrix(&rhs).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("cholesky_solve_seed", n), &n, |b, _| {
            b.iter(|| black_box(cholesky_solve_seed(&chol, &rhs)))
        });

        // Single-pass covariance vs the seed's strided per-pair version.
        group.bench_with_input(BenchmarkId::new("covariance", n), &n, |b, _| {
            b.iter(|| black_box(covariance_matrix(&y)))
        });
        group.bench_with_input(BenchmarkId::new("covariance_seed", n), &n, |b, _| {
            b.iter(|| black_box(covariance_matrix_seed(&y)))
        });

        // BE-DR end to end: the acceptance benchmark of PR 1.
        group.bench_with_input(BenchmarkId::new("be_dr", n), &n, |b, _| {
            b.iter(|| black_box(BeDr::default().reconstruct(&disguised, model).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("be_dr_seed", n), &n, |b, _| {
            b.iter(|| black_box(be_dr_seed(&disguised, model)))
        });
    }
    group.finish();
}

/// The PR-2 perf-trajectory group: the eigensolver swap and the batched
/// sampler, new path vs preserved seed path inside one binary.
fn bench_kernels_v2(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels_v2");
    group.sample_size(10);

    // Eigendecomposition at the attribute counts the tridiagonal pipeline
    // unlocks. Both paths consume the identical covariance matrix.
    for &m in &[64usize, 128, 256] {
        let ds = workload(m);
        let cov = ds.covariance.clone();
        group.bench_with_input(BenchmarkId::new("eigen", m), &m, |b, _| {
            b.iter(|| black_box(SymmetricEigen::householder_ql(&cov).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("eigen_jacobi", m), &m, |b, _| {
            b.iter(|| black_box(eigen_jacobi(&cov).unwrap()))
        });
    }

    // MVN sampling at the 50k-row bench-setup size (ROADMAP open item):
    // batched Box–Muller vs the scalar seed transform, same Cholesky factor.
    let ds = workload(KERNEL_ATTRS);
    let mvn = MultivariateNormal::zero_mean(ds.covariance.clone()).unwrap();
    let chol_l = Cholesky::new(&ds.covariance).unwrap().l().clone();
    group.bench_with_input(
        BenchmarkId::new("mvn_sample_matrix", 50_000usize),
        &50_000usize,
        |b, _| b.iter(|| black_box(mvn.sample_matrix(50_000, &mut seeded_rng(11)))),
    );
    group.bench_with_input(
        BenchmarkId::new("mvn_sample_matrix_seed", 50_000usize),
        &50_000usize,
        |b, _| b.iter(|| black_box(mvn_sample_matrix_seed(&chol_l, 50_000, &mut seeded_rng(11)))),
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_substrates,
    bench_kernels_v1,
    bench_kernels_v2
);
criterion_main!(benches);
