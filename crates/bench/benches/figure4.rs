//! Benchmark harness for Figure 4 (correlated-noise defense).
//!
//! Regenerates a reduced Figure 4 series and measures the cost of disguising
//! with correlated noise plus the cost of the improved BE-DR attack against
//! it, at three similarity levels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use randrecon_core::{be_dr::BeDr, pca_dr::PcaDr, Reconstructor};
use randrecon_data::synthetic::{EigenSpectrum, SyntheticDataset};
use randrecon_experiments::exp4::Experiment4;
use randrecon_noise::additive::AdditiveRandomizer;
use randrecon_noise::correlated::{interpolated_spectrum, noise_covariance, SimilarityLevel};
use randrecon_stats::rng::seeded_rng;
use std::hint::black_box;

fn regenerate_series() {
    let mut config = Experiment4::quick();
    config.attributes = 40;
    config.principal_components = 20;
    config.records = 500;
    config.similarity_levels = vec![1.0, 0.5, 0.0, -0.5, -1.0];
    match config.run() {
        Ok(series) => println!("\n{}", series.to_table()),
        Err(e) => eprintln!("figure 4 series regeneration failed: {e}"),
    }
}

fn bench_defense(c: &mut Criterion) {
    regenerate_series();

    let spectrum = EigenSpectrum::principal_plus_small(50, 400.0, 100, 4.0).unwrap();
    let ds = SyntheticDataset::generate(&spectrum, 1_000, 9).unwrap();
    let total_noise_variance = 25.0 * 100.0;

    let mut group = c.benchmark_group("figure4_correlated_noise_defense");
    group.sample_size(10);
    for &alpha in &[1.0f64, 0.0, -1.0] {
        let level = SimilarityLevel::new(alpha).unwrap();
        let spec = interpolated_spectrum(&ds.eigenvalues, level, total_noise_variance).unwrap();
        let sigma_r = noise_covariance(&ds.eigenvectors, &spec).unwrap();
        let randomizer = AdditiveRandomizer::correlated(sigma_r).unwrap();
        let disguised = randomizer.disguise(&ds.table, &mut seeded_rng(10)).unwrap();
        let model = randomizer.model().clone();

        group.bench_with_input(
            BenchmarkId::new("disguise_correlated", format!("alpha_{alpha}")),
            &alpha,
            |b, _| {
                b.iter(|| black_box(randomizer.disguise(&ds.table, &mut seeded_rng(11)).unwrap()))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("BE-DR_improved", format!("alpha_{alpha}")),
            &alpha,
            |b, _| b.iter(|| black_box(BeDr::default().reconstruct(&disguised, &model).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("PCA-DR", format!("alpha_{alpha}")),
            &alpha,
            |b, _| {
                b.iter(|| {
                    black_box(
                        PcaDr::largest_gap()
                            .reconstruct(&disguised, &model)
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_defense);
criterion_main!(benches);
