//! Benchmark harness for Figure 1 (increasing the number of attributes).
//!
//! Running this bench does two things:
//! 1. regenerates the Figure 1 series (printed to stdout, written to
//!    `results/` by the experiment harness it reuses) at a reduced size, and
//! 2. measures the per-attack cost of a single Figure-1 workload point at
//!    paper scale (m = 100 attributes, p = 5 principal components), one
//!    Criterion benchmark per reconstruction scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use randrecon_core::{
    be_dr::BeDr, ndr::Ndr, pca_dr::PcaDr, spectral::SpectralFiltering, udr::Udr, Reconstructor,
};
use randrecon_data::synthetic::{EigenSpectrum, SyntheticDataset};
use randrecon_experiments::exp1::Experiment1;
use randrecon_noise::additive::AdditiveRandomizer;
use randrecon_stats::rng::seeded_rng;
use std::hint::black_box;

fn regenerate_series() {
    let mut config = Experiment1::quick();
    config.attribute_counts = vec![5, 20, 50, 100];
    config.records = 500;
    match config.run() {
        Ok(series) => println!("\n{}", series.to_table()),
        Err(e) => eprintln!("figure 1 series regeneration failed: {e}"),
    }
}

fn bench_schemes(c: &mut Criterion) {
    regenerate_series();

    // One paper-scale workload point: m = 100, p = 5, n = 1000, sigma = 5.
    let spectrum = EigenSpectrum::principal_plus_small(5, 400.0, 100, 4.0)
        .unwrap()
        .with_total_variance(100.0 * 100.0)
        .unwrap();
    let ds = SyntheticDataset::generate(&spectrum, 1_000, 1).unwrap();
    let randomizer = AdditiveRandomizer::gaussian(5.0).unwrap();
    let disguised = randomizer.disguise(&ds.table, &mut seeded_rng(2)).unwrap();
    let model = randomizer.model();

    let mut group = c.benchmark_group("figure1_attack_cost_m100_p5");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("NDR"), |b| {
        b.iter(|| black_box(Ndr.reconstruct(&disguised, model).unwrap()))
    });
    group.bench_function(BenchmarkId::from_parameter("UDR"), |b| {
        b.iter(|| black_box(Udr::default().reconstruct(&disguised, model).unwrap()))
    });
    group.bench_function(BenchmarkId::from_parameter("SF"), |b| {
        b.iter(|| {
            black_box(
                SpectralFiltering::default()
                    .reconstruct(&disguised, model)
                    .unwrap(),
            )
        })
    });
    group.bench_function(BenchmarkId::from_parameter("PCA-DR"), |b| {
        b.iter(|| black_box(PcaDr::largest_gap().reconstruct(&disguised, model).unwrap()))
    });
    group.bench_function(BenchmarkId::from_parameter("BE-DR"), |b| {
        b.iter(|| black_box(BeDr::default().reconstruct(&disguised, model).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
