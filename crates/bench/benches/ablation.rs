//! Ablation benchmark: cost and accuracy impact of the PCA-DR component
//! selection rule and of the two UDR prior-estimation strategies.
//!
//! The accuracy side of the ablation is printed once (via the experiment
//! harness); Criterion then measures the runtime cost of each variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use randrecon_core::{pca_dr::PcaDr, udr::Udr, ComponentSelection, Reconstructor};
use randrecon_data::synthetic::{EigenSpectrum, SyntheticDataset};
use randrecon_experiments::ablation::{AblationWorkload, SelectionAblation};
use randrecon_noise::additive::AdditiveRandomizer;
use randrecon_stats::reconstruction::ReconstructionConfig;
use randrecon_stats::rng::seeded_rng;
use std::hint::black_box;

fn print_accuracy_ablation() {
    let ablation = SelectionAblation {
        workload: AblationWorkload::default(),
    };
    match ablation.run() {
        Ok(table) => println!("\n{}", table.to_table()),
        Err(e) => eprintln!("selection ablation failed: {e}"),
    }
}

fn bench_variants(c: &mut Criterion) {
    print_accuracy_ablation();

    let spectrum = EigenSpectrum::principal_plus_small(5, 400.0, 50, 4.0).unwrap();
    let ds = SyntheticDataset::generate(&spectrum, 1_000, 21).unwrap();
    let randomizer = AdditiveRandomizer::gaussian(10.0).unwrap();
    let disguised = randomizer.disguise(&ds.table, &mut seeded_rng(22)).unwrap();
    let model = randomizer.model().clone();

    let mut group = c.benchmark_group("ablation_variants");
    group.sample_size(10);

    let selections = [
        ("largest_gap", ComponentSelection::LargestGap),
        ("fixed_5", ComponentSelection::FixedCount(5)),
        ("variance_0.95", ComponentSelection::VarianceFraction(0.95)),
    ];
    for (label, selection) in selections {
        group.bench_with_input(BenchmarkId::new("pca_selection", label), &label, |b, _| {
            let attack = PcaDr { selection };
            b.iter(|| black_box(attack.reconstruct(&disguised, &model).unwrap()))
        });
    }

    group.bench_function(BenchmarkId::new("udr_prior", "gaussian_moments"), |b| {
        b.iter(|| {
            black_box(
                Udr::gaussian_prior()
                    .reconstruct(&disguised, &model)
                    .unwrap(),
            )
        })
    });
    group.bench_function(BenchmarkId::new("udr_prior", "agrawal_srikant"), |b| {
        let attack = Udr::agrawal_srikant_prior(ReconstructionConfig {
            bins: 60,
            max_iterations: 30,
            tolerance: 1e-4,
        });
        b.iter(|| black_box(attack.reconstruct(&disguised, &model).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
