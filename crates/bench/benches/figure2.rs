//! Benchmark harness for Figure 2 (increasing the number of principal
//! components).
//!
//! Regenerates a reduced Figure 2 series and measures how the cost of the two
//! correlation-exploiting attacks scales with the number of principal
//! components at m = 100 attributes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use randrecon_core::{be_dr::BeDr, pca_dr::PcaDr, Reconstructor};
use randrecon_data::synthetic::{EigenSpectrum, SyntheticDataset};
use randrecon_experiments::exp2::Experiment2;
use randrecon_noise::additive::AdditiveRandomizer;
use randrecon_stats::rng::seeded_rng;
use std::hint::black_box;

fn regenerate_series() {
    let mut config = Experiment2::quick();
    config.attributes = 60;
    config.principal_component_counts = vec![2, 10, 30, 60];
    config.records = 500;
    match config.run() {
        Ok(series) => println!("\n{}", series.to_table()),
        Err(e) => eprintln!("figure 2 series regeneration failed: {e}"),
    }
}

fn bench_principal_component_scaling(c: &mut Criterion) {
    regenerate_series();

    let mut group = c.benchmark_group("figure2_attack_cost_vs_p");
    group.sample_size(10);
    for &p in &[5usize, 25, 50, 100] {
        let spectrum = EigenSpectrum::principal_plus_small(p, 400.0, 100, 4.0)
            .unwrap()
            .with_total_variance(100.0 * 100.0)
            .unwrap();
        let ds = SyntheticDataset::generate(&spectrum, 1_000, p as u64).unwrap();
        let randomizer = AdditiveRandomizer::gaussian(5.0).unwrap();
        let disguised = randomizer.disguise(&ds.table, &mut seeded_rng(3)).unwrap();
        let model = randomizer.model().clone();

        group.bench_with_input(BenchmarkId::new("PCA-DR", p), &p, |b, _| {
            b.iter(|| {
                black_box(
                    PcaDr::largest_gap()
                        .reconstruct(&disguised, &model)
                        .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("BE-DR", p), &p, |b, _| {
            b.iter(|| black_box(BeDr::default().reconstruct(&disguised, &model).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_principal_component_scaling);
criterion_main!(benches);
