//! Benchmark harness for Figure 3 (increasing the non-principal eigenvalues).
//!
//! Regenerates a reduced Figure 3 series and measures attack cost as the
//! spectrum flattens (which changes how many components the largest-gap rule
//! keeps, and therefore the PCA-DR projection cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use randrecon_core::{be_dr::BeDr, pca_dr::PcaDr, spectral::SpectralFiltering, Reconstructor};
use randrecon_data::synthetic::{EigenSpectrum, SyntheticDataset};
use randrecon_experiments::exp3::Experiment3;
use randrecon_noise::additive::AdditiveRandomizer;
use randrecon_stats::rng::seeded_rng;
use std::hint::black_box;

fn regenerate_series() {
    let mut config = Experiment3::quick();
    config.attributes = 60;
    config.principal_components = 12;
    config.non_principal_eigenvalues = vec![1.0, 10.0, 25.0, 50.0];
    config.records = 500;
    match config.run() {
        Ok(series) => println!("\n{}", series.to_table()),
        Err(e) => eprintln!("figure 3 series regeneration failed: {e}"),
    }
}

fn bench_non_principal_eigenvalues(c: &mut Criterion) {
    regenerate_series();

    let mut group = c.benchmark_group("figure3_attack_cost_vs_nonprincipal_eigenvalue");
    group.sample_size(10);
    for &small in &[1.0f64, 25.0, 50.0] {
        let spectrum = EigenSpectrum::principal_plus_small(20, 400.0, 100, small).unwrap();
        let ds = SyntheticDataset::generate(&spectrum, 1_000, small as u64).unwrap();
        let randomizer = AdditiveRandomizer::gaussian(5.0).unwrap();
        let disguised = randomizer.disguise(&ds.table, &mut seeded_rng(4)).unwrap();
        let model = randomizer.model().clone();

        group.bench_with_input(BenchmarkId::new("PCA-DR", small as u64), &small, |b, _| {
            b.iter(|| {
                black_box(
                    PcaDr::largest_gap()
                        .reconstruct(&disguised, &model)
                        .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("SF", small as u64), &small, |b, _| {
            b.iter(|| {
                black_box(
                    SpectralFiltering::default()
                        .reconstruct(&disguised, &model)
                        .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("BE-DR", small as u64), &small, |b, _| {
            b.iter(|| black_box(BeDr::default().reconstruct(&disguised, &model).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_non_principal_eigenvalues);
criterion_main!(benches);
