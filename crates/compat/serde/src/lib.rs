//! Offline stub of the `serde` facade.
//!
//! The build environment for this workspace has no crates.io access, so this
//! crate provides exactly the surface the workspace uses: the `Serialize` /
//! `Deserialize` marker traits and the matching no-op derive macros. Nothing
//! in the workspace performs actual serialization through serde yet (reports
//! are written with hand-rolled formatters); when a networked build swaps in
//! the real serde, the derives on workspace types become functional without
//! any source change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
