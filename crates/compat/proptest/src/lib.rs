//! Offline stub of `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! `proptest::collection::vec`, `proptest::bool::ANY`, [`ProptestConfig`],
//! and the [`proptest!`] macro. Sampling is deterministic (seeded from the
//! test name) and there is no shrinking — a failing case panics with the
//! case index so it can be replayed by rerunning the test.

use std::ops::Range;

/// Deterministic generator used to drive strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for the given seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5851_F42D_4C95_7F2D,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// FNV-1a hash of a test name, used as the base seed so every property test
/// has its own reproducible stream.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

/// A source of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced value through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                assert!(span > 0, "empty integer range strategy");
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u64, usize, u32, i64, i32);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Either a fixed length or a half-open range of lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a `Vec` strategy with the given element strategy and size.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span > 1 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random boolean.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Runner configuration; only `cases` is honoured by this stub.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 48 }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::bool as prop_bool;
    pub use crate::{
        collection, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }` runs
/// `cases` times with values drawn from the strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let base = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::new(base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest {} failed at case {}/{} (deterministic; rerun reproduces it)",
                        stringify!($name), case, config.cases
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let x = (1.5f64..2.5).generate(&mut rng);
            assert!((1.5..2.5).contains(&x));
            let n = (3usize..7).generate(&mut rng);
            assert!((3..7).contains(&n));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = crate::TestRng::new(2);
        let s = collection::vec(0.0f64..1.0, 5usize);
        assert_eq!(s.generate(&mut rng).len(), 5);
        let s = collection::vec(0.0f64..1.0, 2usize..6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::TestRng::new(3);
        let s = (0.0f64..1.0).prop_map(|x| x + 10.0);
        let v = crate::Strategy::generate(&s, &mut rng);
        assert!((10.0..11.0).contains(&v));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_smoke(x in 0.0f64..1.0, (a, b) in (0u64..10, 0u64..10)) {
            prop_assert!(x >= 0.0);
            prop_assert!(a < 10 && b < 10);
        }

        #[test]
        fn macro_bool(flag in crate::bool::ANY, mut n in 0usize..4) {
            n += 1;
            prop_assert!(n >= 1);
            let _ = flag;
        }
    }
}
