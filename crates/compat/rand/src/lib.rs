//! Offline stub of the `rand` crate.
//!
//! Provides the exact surface this workspace uses — `Rng::gen`,
//! `SeedableRng::seed_from_u64`, and `rngs::StdRng` — backed by a
//! deterministic xoshiro256++ generator seeded through SplitMix64. The
//! stream differs from upstream `rand`'s `StdRng` (which is a ChaCha
//! cipher), but every consumer in this workspace only relies on the
//! generator being deterministic, well-distributed, and seedable, not on
//! byte-for-byte compatibility with any particular upstream version.

/// A source of uniformly distributed random values.
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from the standard distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_from(self)
    }
}

// `R: Rng + ?Sized` call sites invoke `rng.gen::<f64>()` through a `&mut R`
// reference; this blanket impl makes that work exactly as upstream rand does.
impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from a generator's "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn works_through_unsized_reference() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(draw(&mut rng).is_finite());
    }
}
