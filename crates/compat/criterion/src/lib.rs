//! Offline stub of `criterion`.
//!
//! Implements the API surface the workspace's benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`, `criterion_main!`, `black_box`) on top of a plain
//! wall-clock harness: each benchmark is warmed up, then timed over
//! `sample_size` samples whose iteration counts are sized so a sample takes
//! a measurable slice of time; the reported figure is the median across
//! samples, so interference bursts on shared hosts cannot poison a
//! measurement. Results print to stdout and, when the
//! `CRITERION_JSON` environment variable names a file, are also appended to
//! it as a JSON array — that is what `scripts/bench_to_json.sh` uses to
//! produce `BENCH_1.json`.

pub use std::hint::black_box;

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Identifier for one benchmark inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// One timed measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name.
    pub group: String,
    /// Benchmark id within the group.
    pub bench: String,
    /// Nanoseconds per iteration — the median across samples (robust to
    /// interference bursts on shared hosts; equals the mean on quiet runs).
    pub mean_ns: f64,
    /// Total iterations measured.
    pub iterations: u64,
    /// Number of samples taken.
    pub samples: usize,
}

/// Top-level harness handle passed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
    filter: Option<String>,
}

impl Criterion {
    /// Builds a harness honouring the CLI filter, mirroring real criterion:
    /// `cargo bench --bench micro -- <substring>` runs only the benchmarks
    /// whose `group/bench` label contains the substring (flag-style
    /// arguments are ignored, as the real harness accepts e.g. `--bench`).
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.is_empty());
        Criterion {
            results: Vec::new(),
            filter,
        }
    }
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Registers a group-less benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        run_bench(self, "", &id.id, 20, f);
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Writes results as a JSON array to the `CRITERION_JSON` path, if set.
    pub fn flush_json(&self) {
        let Ok(path) = std::env::var("CRITERION_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "  {{\"group\": \"{}\", \"bench\": \"{}\", \"mean_ns\": {:.1}, \"iterations\": {}, \"samples\": {}}}",
                r.group, r.bench, r.mean_ns, r.iterations, r.samples
            ));
        }
        out.push_str("\n]\n");
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(out.as_bytes())) {
            Ok(()) => eprintln!("criterion: wrote {} results to {path}", self.results.len()),
            Err(e) => eprintln!("criterion: failed to write {path}: {e}"),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let (name, samples) = (self.name.clone(), self.sample_size);
        run_bench(self.criterion, &name, &id.id, samples, f);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; results are already recorded).
    pub fn finish(&mut self) {}
}

/// Timing handle handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    mean_ns: f64,
    iterations: u64,
}

impl Bencher {
    /// Measures `f`, called in batches across `samples` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: time single calls until we know roughly how
        // long one iteration takes (bounded so very slow benches stay cheap).
        let calib_start = Instant::now();
        black_box(f());
        let mut per_iter = calib_start.elapsed().max(Duration::from_nanos(1));
        if per_iter < Duration::from_millis(1) {
            let n =
                (Duration::from_millis(2).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;
            let start = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            per_iter = (start.elapsed() / n as u32).max(Duration::from_nanos(1));
        }

        // Budget ~2s total (or sample_size iterations for slow benches).
        let budget = Duration::from_secs(2);
        let total_iters = ((budget.as_nanos() / per_iter.as_nanos()).clamp(1, u128::MAX) as u64)
            .max(self.samples as u64);
        let iters_per_sample = (total_iters / self.samples as u64).max(1);

        // Per-sample means, summarized by their MEDIAN rather than the
        // pooled mean: on shared hosts a single interference burst (noisy
        // neighbor, steal time) can multiply one sample's wall clock
        // several-fold, and a pooled mean would report that artifact as
        // the benchmark's cost. The median ignores any minority of
        // poisoned samples while agreeing with the mean on quiet runs.
        let mut sample_means: Vec<f64> = Vec::with_capacity(self.samples);
        let mut iterations = 0u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            sample_means.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
            iterations += iters_per_sample;
        }
        sample_means.sort_by(|a, b| a.total_cmp(b));
        let mid = sample_means.len() / 2;
        self.mean_ns = if sample_means.len() % 2 == 1 {
            sample_means[mid]
        } else {
            (sample_means[mid - 1] + sample_means[mid]) / 2.0
        };
        self.iterations = iterations;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    criterion: &mut Criterion,
    group: &str,
    bench: &str,
    samples: usize,
    mut f: F,
) {
    let label = if group.is_empty() {
        bench.to_string()
    } else {
        format!("{group}/{bench}")
    };
    if let Some(filter) = &criterion.filter {
        if !label.contains(filter.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        samples,
        mean_ns: 0.0,
        iterations: 0,
    };
    f(&mut bencher);
    println!(
        "bench {label}: {} per iter ({} iterations, {} samples)",
        format_ns(bencher.mean_ns),
        bencher.iterations,
        samples
    );
    criterion.results.push(BenchResult {
        group: group.to_string(),
        bench: bench.to_string(),
        mean_ns: bencher.mean_ns,
        iterations: bencher.iterations,
        samples,
    });
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.flush_json();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function(BenchmarkId::from_parameter("noop"), |b| {
                b.iter(|| black_box(1 + 1))
            });
            g.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| {
                b.iter(|| black_box(x * x))
            });
            g.finish();
        }
        assert_eq!(c.results().len(), 2);
        assert!(c.results()[0].mean_ns > 0.0);
        assert_eq!(c.results()[1].bench, "sq/4");
    }
}
