//! No-op `Serialize` / `Deserialize` derives for the offline serde stub.
//!
//! The derives intentionally expand to nothing: no workspace code takes
//! `T: Serialize` bounds or calls serialization methods, so an empty
//! expansion keeps `#[derive(Serialize, Deserialize)]` annotations compiling
//! without syn/quote (which are unavailable offline).

use proc_macro::TokenStream;

/// Expands to nothing; keeps `#[derive(Serialize)]` valid.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; keeps `#[derive(Deserialize)]` valid.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
