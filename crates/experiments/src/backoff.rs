//! Deterministic exponential restart backoff with seed-derived jitter.
//!
//! Both supervision layers restart failed work — the shard coordinator
//! respawns dead or hung workers ([`crate::shard::run_sharded`]), and the
//! fail-soft runner retries transient cell failures in process
//! ([`crate::scenario::RetryPolicy`]). Immediate respawn turns a persistent
//! fault (full disk, wedged file system) into a hot crash loop; classical
//! randomized backoff fixes that but breaks this repository's bit-for-bit
//! reproducibility contract. [`BackoffPolicy`] threads the needle: delays
//! grow exponentially up to a cap, each delay is jittered into
//! `[raw/2, raw]`, and the jitter is a **pure function of
//! `(fingerprint, stream, attempt)`** — the same SplitMix64 stream-splitting
//! every experiment seed uses — so tests can pin the entire schedule in
//! advance. A total delay budget bounds how long a doomed shard can hold a
//! sweep hostage: once the cumulative schedule exceeds the budget, the
//! policy reports exhaustion and the caller gives up instead of sleeping.
//!
//! The conventional streams: the shard coordinator uses
//! `(grid fingerprint, shard index, attempt)`; the in-process retry path
//! uses `(single-spec fingerprint, 0, attempt)`.

use randrecon_stats::rng::child_seed;
use std::time::Duration;

/// A deterministic exponential-backoff schedule with jitter and a total
/// delay budget. See the [module docs](self) for the determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay scale of the first retry (attempt 1 waits `[base/2, base]`).
    pub base: Duration,
    /// Upper bound on any single delay (pre-jitter).
    pub cap: Duration,
    /// Upper bound on the **cumulative** delay across all attempts of one
    /// stream; once the schedule's running total exceeds it,
    /// [`delay`](BackoffPolicy::delay) reports exhaustion (`None`).
    pub budget: Duration,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base: Duration::from_millis(25),
            cap: Duration::from_secs(1),
            budget: Duration::from_secs(5),
        }
    }
}

impl BackoffPolicy {
    /// A policy whose every delay is zero and whose budget never exhausts —
    /// the immediate-respawn behaviour earlier revisions had, kept for
    /// tests and benches that must not sleep.
    pub fn none() -> Self {
        BackoffPolicy {
            base: Duration::ZERO,
            cap: Duration::ZERO,
            budget: Duration::MAX,
        }
    }

    /// The pre-jitter delay scale of `attempt`: `base · 2^(attempt−1)`,
    /// saturating at [`cap`](BackoffPolicy::cap). Attempt 0 (the first try)
    /// has no delay.
    fn raw(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let doublings = attempt.saturating_sub(1).min(30);
        self.base.saturating_mul(1u32 << doublings).min(self.cap)
    }

    /// The delay to sleep before `attempt` (attempt 0 = the first try, so
    /// delays start at attempt 1), jittered deterministically into
    /// `[raw/2, raw]` by `(fingerprint, stream, attempt)`, or `None` once
    /// the cumulative schedule through `attempt` exceeds the budget.
    ///
    /// Pure: equal arguments always produce the equal delay, on any host.
    pub fn delay(&self, fingerprint: u64, stream: u64, attempt: u32) -> Option<Duration> {
        if attempt == 0 {
            return Some(Duration::ZERO);
        }
        let mut cumulative = Duration::ZERO;
        let mut chosen = Duration::ZERO;
        for a in 1..=attempt {
            let raw = self.raw(a);
            // 53 high bits of the split stream → an exact f64 in [0, 1).
            let mix = child_seed(child_seed(fingerprint, stream), a as u64);
            let unit = (mix >> 11) as f64 / (1u64 << 53) as f64;
            let nanos = raw.as_nanos() as f64;
            chosen = Duration::from_nanos((nanos / 2.0 + unit * (nanos / 2.0)) as u64);
            cumulative = cumulative.saturating_add(chosen);
        }
        if cumulative > self.budget {
            None
        } else {
            Some(chosen)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempt_zero_is_free_and_delays_are_deterministic() {
        let policy = BackoffPolicy::default();
        assert_eq!(policy.delay(7, 0, 0), Some(Duration::ZERO));
        let a = policy.delay(7, 2, 3).unwrap();
        let b = policy.delay(7, 2, 3).unwrap();
        assert_eq!(a, b);
        // Different streams and fingerprints jitter differently.
        assert_ne!(policy.delay(7, 2, 3), policy.delay(7, 3, 3));
        assert_ne!(policy.delay(7, 2, 3), policy.delay(8, 2, 3));
    }

    #[test]
    fn delays_grow_within_jitter_bounds_and_respect_cap() {
        let policy = BackoffPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(35),
            budget: Duration::from_secs(60),
        };
        for attempt in 1..=8 {
            let raw = policy.raw(attempt);
            let d = policy.delay(99, 1, attempt).unwrap();
            assert!(
                d >= raw / 2 && d <= raw,
                "attempt {attempt}: {d:?} vs raw {raw:?}"
            );
            assert!(raw <= Duration::from_millis(35));
        }
        // Exponential up to the cap: raw doubles 10 → 20 → capped 35.
        assert_eq!(policy.raw(1), Duration::from_millis(10));
        assert_eq!(policy.raw(2), Duration::from_millis(20));
        assert_eq!(policy.raw(3), Duration::from_millis(35));
        assert_eq!(policy.raw(9), Duration::from_millis(35));
    }

    #[test]
    fn budget_exhaustion_reports_none() {
        let policy = BackoffPolicy {
            base: Duration::from_millis(40),
            cap: Duration::from_millis(40),
            budget: Duration::from_millis(50),
        };
        // Attempt 1 sleeps ≥ 20 ms; by attempt 3 the cumulative schedule
        // (≥ 60 ms) must exceed the 50 ms budget.
        assert!(policy.delay(1, 0, 1).is_some());
        assert!(policy.delay(1, 0, 3).is_none());
    }

    #[test]
    fn none_policy_never_sleeps_or_exhausts() {
        let policy = BackoffPolicy::none();
        for attempt in 0..64 {
            assert_eq!(policy.delay(5, 5, attempt), Some(Duration::ZERO));
        }
    }
}
