//! # randrecon-experiments
//!
//! The experiment harness that regenerates every figure in the evaluation
//! section of *"Deriving Private Information from Randomized Data"*
//! (SIGMOD 2005), plus ablations over the design choices the paper leaves
//! implicit.
//!
//! | Module | Paper figure | Sweep |
//! |---|---|---|
//! | [`exp1`] | Figure 1 | number of attributes `m` (fixed `p = 5` principal components) |
//! | [`exp2`] | Figure 2 | number of principal components `p` (fixed `m = 100`) |
//! | [`exp3`] | Figure 3 | eigenvalues of the non-principal components |
//! | [`exp4`] | Figure 4 | correlation dissimilarity between noise and data |
//! | [`ablation`] | — | PC-selection rule, noise level, sample size, noise shape |
//! | [`streaming`] | — | bounded-memory streaming attacks at 50 k–500 k records |
//!
//! Each experiment produces an [`config::ExperimentSeries`] that can be
//! rendered as a console table (the same rows the paper plots) or written to
//! CSV. The `figure1` … `figure4`, `ablation` and `all_figures` binaries are
//! thin wrappers around these modules; the Criterion benches in
//! `randrecon-bench` reuse the same configurations.
//!
//! ## Example
//!
//! ```
//! use randrecon_experiments::exp1::Experiment1;
//!
//! // A scaled-down version of Figure 1 (full size lives in the binaries).
//! let series = Experiment1::quick().run().unwrap();
//! assert!(!series.points.is_empty());
//! println!("{}", series.to_table());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablation;
pub mod config;
pub mod error;
pub mod exp1;
pub mod exp2;
pub mod exp3;
pub mod exp4;
pub mod report;
pub mod runner;
pub mod streaming;
pub mod workload;

pub use config::{ExperimentSeries, SchemeKind, SeriesPoint};
pub use error::{ExperimentError, Result};
