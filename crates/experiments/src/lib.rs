//! # randrecon-experiments
//!
//! The experiment harness that regenerates every figure in the evaluation
//! section of *"Deriving Private Information from Randomized Data"*
//! (SIGMOD 2005), plus ablations and streaming sweeps over the design
//! choices the paper leaves implicit.
//!
//! ## The scenario engine
//!
//! Since PR 5 the harness is built around one **declarative scenario
//! engine** ([`scenario`]): a [`scenario::ScenarioSpec`] describes one cell
//! of the evaluation space — {data source × noise model × attack × engine ×
//! metrics × seed × scale} — and a [`scenario::ScenarioGrid`] expands a base
//! spec crossed with sweep axes into many cells. [`scenario::run_scenarios`]
//! executes any spec list over the shared `randrecon-parallel` pool with
//! deterministic spec-derived seeding (bit-identical results for any thread
//! count), groups scenarios that share a workload so data generation and
//! streaming pass-1 moments are computed once per group, and funnels the
//! results into one report layer ([`report`]: console tables, CSV, JSON).
//!
//! Every historical hand-written driver is now a thin *named grid* over
//! that engine — adding a scenario means writing a spec entry, not a new
//! driver file:
//!
//! | Module | Paper figure | Grid |
//! |---|---|---|
//! | [`exp1`] | Figure 1 | attributes `m` × schemes (fixed `p = 5`) |
//! | [`exp2`] | Figure 2 | principal components `p` × schemes (fixed `m = 100`) |
//! | [`exp3`] | Figure 3 | non-principal eigenvalue × schemes |
//! | [`exp4`] | Figure 4 | noise similarity (correlated defense) × schemes |
//! | [`ablation`] | — | PC-selection rule, noise level, sample size, noise shape |
//! | [`streaming`] | — | five schemes × streaming engine at 50 k–500 k records |
//!
//! Attack dispatch lives one layer down in `randrecon-core`
//! ([`randrecon_core::engine`]): any scheme runs on either the in-memory or
//! the bounded-memory streaming engine from one call site, which is what
//! lets a single grid sweep `{scheme × noise × engine}` (the `scenarios`
//! binary's default sweep covers 5 × 3 × 2 = 30 cells in one runner
//! invocation).
//!
//! The `figure1` … `figure4`, `ablation`, `streaming`, `all_figures` and
//! `scenarios` binaries are thin wrappers around these modules; the
//! Criterion benches in `randrecon-bench` reuse the same configurations.
//!
//! ## Crash resumability and fail-soft execution
//!
//! Long sweeps survive crashes and bad cells (PR 6):
//!
//! * [`scenario::run_scenarios_failsoft`] contains per-scenario errors
//!   *and panics* — each cell reports a [`scenario::ScenarioOutcome`]
//!   (`Completed` or `Failed`), the rest of the sweep runs regardless, and
//!   an optional [`scenario::RetryPolicy`] re-attempts transient
//!   (I/O-class) failures;
//! * [`journal::run_scenarios_resumable`] additionally appends every
//!   outcome to an append-only, checksummed [`journal::ResultJournal`] the
//!   moment it lands, so a killed sweep resumes where it died — recovering
//!   torn trailing records and rejecting journals from a different grid —
//!   with final results bit-identical to an uninterrupted run;
//! * [`fault`] is the deterministic fault-injection harness (planted
//!   scenario faults, faulty chunk sources/sinks, byte-budgeted writers,
//!   seeded crash offsets) that the kill-and-resume test suite drives.
//!
//! ## Sharding
//!
//! [`shard`] scales the same sweep across **worker processes** (PR 7):
//! [`shard::plan_shards`] splits a grid into balance-aware per-shard
//! [`shard::ShardSlice`]s (LPT over group costs) that never cut through a
//! workload group, [`shard::run_sharded`] spawns one worker per shard —
//! each journaling to its own shard-stamped [`journal`] file and restarted
//! (journal-resumed) if it dies — and [`shard::reduce_shard_journals`]
//! folds every journal back into one outcome list bit-identical to a
//! single-process run. Under [`shard::SplitPolicy::Auto`]/`Always`,
//! pass 1 of a splittable streaming workload group becomes a
//! **distributed reduction** (PR 9): its fixed-width self-anchored moment
//! segments are dealt across shards as [`shard::MomentTask`]s, each worker
//! journals its partials as v5 moment frames, and the coordinator merges
//! them bit-exactly before finishing the group's pass 2 itself. The
//! `scenarios` binary exposes this as `--shards N [--moment-merge]`
//! (coordinator) and `--shard-range`/`--moment-task` (worker), and
//! [`report::outcomes_hash`] is the fingerprint both sides print so CI can
//! compare them.
//!
//! ## Supervision
//!
//! Execution is **supervised** (PR 8): workers write heartbeat sidecars
//! next to their shard journals and the coordinator's watchdog
//! ([`shard::ShardedRunConfig::worker_timeout`]) kills and restarts a
//! worker whose heartbeat stalls — so hung workers, not just dead ones,
//! recover; restarts and in-process retries are paced by the
//! deterministic, seed-derived [`backoff::BackoffPolicy`] schedule;
//! [`scenario::RetryPolicy::cell_timeout`] arms a cooperative per-cell
//! deadline that classifies runaway cells as `timed-out` (never retried);
//! and a cell that completes only through numerical repair (e.g. BE-DR's
//! eigenvalue-clipped SPD fallback) surfaces as
//! [`scenario::ScenarioOutcome::Degraded`] — real metrics, journaled and
//! merged like completions, rendered distinctly in every report.
//!
//! ## Example
//!
//! ```
//! use randrecon_experiments::exp1::Experiment1;
//!
//! // A scaled-down version of Figure 1 (full size lives in the binaries).
//! // `Experiment1` is a named grid: `.grid()` exposes the underlying
//! // `ScenarioGrid`, `.run()` executes it and regroups the results.
//! let series = Experiment1::quick().run().unwrap();
//! assert!(!series.points.is_empty());
//! println!("{}", series.to_table());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablation;
pub mod backoff;
pub mod config;
pub mod error;
pub mod exp1;
pub mod exp2;
pub mod exp3;
pub mod exp4;
pub mod fault;
pub mod journal;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod shard;
pub mod streaming;
pub mod workload;

pub use backoff::BackoffPolicy;
pub use config::{ExperimentSeries, SchemeKind, SeriesPoint};
pub use error::{ExperimentError, Result};
pub use journal::{run_scenarios_resumable, ResultJournal, ResumableRun};
pub use scenario::{
    run_scenarios, run_scenarios_failsoft, GridAxis, RetryPolicy, ScenarioGrid, ScenarioOutcome,
    ScenarioResult, ScenarioSpec,
};
pub use shard::{
    merge_shard_journals, plan_shards, reduce_shard_journals, run_shard_worker,
    run_shard_worker_with, run_sharded, run_sharded_in_process, MomentTask, ShardPlan, ShardRange,
    ShardSlice, ShardedRun, ShardedRunConfig, SplitPolicy,
};
