//! Sharded multi-process scenario execution: split a grid into contiguous
//! shards, run each shard in its own worker process against its own
//! journal, and merge the journals into one outcome list **bit-identical**
//! to a single-process [`run_scenarios`](crate::scenario::run_scenarios)
//! run.
//!
//! ## Why sharding composes cleanly here
//!
//! Every scenario's result is a pure function of its spec (all randomness
//! is spec-derived), and workload groups — scenarios sharing {data, noise,
//! engine, seeds} — are independent of each other. So the only constraint
//! a shard split must respect is *group integrity*: a workload group must
//! not straddle a shard boundary, or its members would regenerate the
//! shared workload in two processes (still correct, but wasted work and a
//! broken economy contract). [`plan_shards`] therefore only cuts the grid
//! at positions no group spans, placing cuts as close to the balanced
//! ideal as those positions allow — possibly yielding fewer shards than
//! asked for, never an invalid split.
//!
//! ## The worker ↔ coordinator protocol
//!
//! * The coordinator ([`run_sharded`]) expands the grid once, plans the
//!   shards, and spawns one `std::process::Command` worker per shard
//!   (typically the same binary re-exec'd with `--shard-range a..b`, the
//!   pattern the re-exec determinism suites established).
//! * Each worker ([`run_shard_worker`]) runs its slice through the same
//!   fail-soft machinery as a single-process sweep, journaling every
//!   outcome to a **shard journal** — a [`ResultJournal`] whose
//!   shard-stamped header carries the full-grid fingerprint *plus* the
//!   worker's global
//!   index range (see the [journal module docs](crate::journal)). Record
//!   indices are global grid indices, so merging needs no renumbering.
//! * A worker that dies is re-spawned up to
//!   [`ShardedRunConfig::max_restarts`] times; on restart it resumes from
//!   its journal, recomputing only the cells that never landed.
//! * After all workers finish (or exhaust their restarts), the coordinator
//!   recovers every shard journal read-only
//!   ([`ResultJournal::recover_shard`]) and merges by global index
//!   ([`merge_shard_journals`]). The coordinator is itself fail-soft: a
//!   shard that never completed surfaces its unrecovered cells as
//!   [`ScenarioOutcome::Failed`] entries, not a dead sweep.
//!
//! Wall-clock `seconds` aside, the merged outcome list is bit-identical to
//! a single-process run — pinned by the re-exec suite in
//! `tests/shard_tests.rs` and by CI comparing the `outcome hash:` lines of
//! a sharded and an unsharded `scenarios` invocation.
//!
//! ## The heartbeat protocol and the watchdog
//!
//! A worker that *dies* is caught by its exit status; a worker that
//! *wedges* — an infinite loop, a deadlock, an I/O stall — would hang a
//! blocking `wait()` forever. Supervised runs therefore add a liveness
//! side-channel:
//!
//! * Each worker writes a **heartbeat sidecar** next to its shard journal
//!   ([`shard_heartbeat_path`]: same path, `heartbeat` extension). The file
//!   holds one frame, `"<records> <cell>\n"` — the journal's monotonic
//!   record count plus the global index of the cell just journaled —
//!   rewritten at worker startup and then on journal appends, throttled to
//!   at most one write per [`HEARTBEAT_INTERVAL`] (liveness needs no finer
//!   granularity against a seconds-scale timeout, and per-append writes
//!   would tax fast cells with small-write filesystem latency). Writes are
//!   best-effort: a failed heartbeat never kills a healthy worker (the
//!   watchdog will kill it later, which is the conservative failure mode).
//! * The coordinator never blocks on a child. It polls `try_wait` on every
//!   running worker, and — when [`ShardedRunConfig::worker_timeout`] is set
//!   — re-reads each worker's heartbeat file. A worker whose heartbeat
//!   content has not changed within the timeout is killed and counted in
//!   [`ShardStatus::watchdog_kills`]; the kill burns an attempt and the
//!   normal restart path resumes the shard from its journal.
//! * Restarts are paced by a deterministic
//!   [`BackoffPolicy`](crate::backoff::BackoffPolicy): the delay before
//!   attempt `a` of shard `i` is a pure function of
//!   `(grid fingerprint, i, a)`, so the whole restart schedule of any sweep
//!   is derivable in advance. A shard whose cumulative backoff exceeds the
//!   policy budget stops restarting ([`ShardStatus::backoff_exhausted`])
//!   and its unjournaled cells surface as `Failed` outcomes in the merge.

use crate::backoff::BackoffPolicy;
use crate::error::{ExperimentError, Result};
use crate::journal::{grid_fingerprint, CrashPoint, ResultJournal, ResumableRun};
use crate::scenario::{
    execute_specs_failsoft, workload_groups, RetryPolicy, ScenarioFailure, ScenarioOutcome,
    ScenarioSpec,
};
use std::fmt;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Mutex;
use std::time::{Duration, Instant};

fn config_err(reason: impl Into<String>) -> ExperimentError {
    ExperimentError::InvalidConfig {
        reason: reason.into(),
    }
}

// ---------------------------------------------------------------------------
// Shard ranges and planning
// ---------------------------------------------------------------------------

/// A non-empty half-open range `[start, end)` of global grid indices — one
/// shard's slice of an expanded spec list. Displays (and parses) as
/// `start..end`, the format the `scenarios` binary's `--shard-range` flag
/// uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// First global cell index (inclusive).
    pub start: usize,
    /// One past the last global cell index (exclusive).
    pub end: usize,
}

impl ShardRange {
    /// Builds a range, rejecting empty or inverted bounds.
    pub fn new(start: usize, end: usize) -> Result<ShardRange> {
        if start >= end {
            return Err(config_err(format!(
                "shard range {start}..{end} is empty or inverted"
            )));
        }
        Ok(ShardRange { start, end })
    }

    /// Number of cells in the range (always ≥ 1).
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Ranges are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether global index `i` falls inside the range.
    pub fn contains(&self, i: usize) -> bool {
        self.start <= i && i < self.end
    }

    /// Parses the `start..end` rendering (the `--shard-range` flag).
    pub fn parse(s: &str) -> Option<ShardRange> {
        let (start, end) = s.split_once("..")?;
        ShardRange::new(start.trim().parse().ok()?, end.trim().parse().ok()?).ok()
    }
}

impl fmt::Display for ShardRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Splits `specs` into up to `n_shards` contiguous, workload-group-aware
/// ranges tiling `0..specs.len()`.
///
/// A cut position is *valid* if no workload group has members on both
/// sides of it; each of the `n_shards - 1` ideal balanced cut points is
/// moved to the nearest valid position (searching outward, nearer-lower
/// first). When no valid position remains between two cuts the shard count
/// degrades gracefully — a grid that is one giant group yields one shard —
/// so the result always tiles the grid exactly and never splits a group.
pub fn plan_shards(specs: &[ScenarioSpec], n_shards: usize) -> Result<Vec<ShardRange>> {
    if specs.is_empty() {
        return Err(config_err("cannot shard an empty scenario grid"));
    }
    if n_shards == 0 {
        return Err(config_err("shard count must be at least 1"));
    }
    let len = specs.len();
    let mut cut_ok = vec![true; len + 1];
    for group in workload_groups(specs) {
        let lo = *group.iter().min().expect("groups are non-empty");
        let hi = *group.iter().max().expect("groups are non-empty");
        for slot in cut_ok.iter_mut().take(hi + 1).skip(lo + 1) {
            *slot = false;
        }
    }
    let mut cuts: Vec<usize> = vec![0];
    for k in 1..n_shards {
        let ideal = (len * k + n_shards / 2) / n_shards;
        let last = *cuts.last().expect("cuts start with 0");
        let valid = |c: usize| c > last && c < len && cut_ok[c];
        let mut chosen = None;
        for d in 0..len {
            let below = ideal.checked_sub(d).filter(|&c| valid(c));
            let above = Some(ideal + d).filter(|&c| valid(c));
            if let Some(c) = below.or(above) {
                chosen = Some(c);
                break;
            }
            if ideal.saturating_sub(d) <= last && ideal + d >= len {
                break;
            }
        }
        if let Some(c) = chosen {
            cuts.push(c);
        }
    }
    cuts.push(len);
    Ok(cuts
        .windows(2)
        .map(|w| ShardRange {
            start: w[0],
            end: w[1],
        })
        .collect())
}

/// Checks that `plan` tiles `0..specs.len()` exactly — contiguous,
/// in-order, no gaps or overlaps.
fn validate_plan(specs: &[ScenarioSpec], plan: &[ShardRange]) -> Result<()> {
    if plan.is_empty() {
        return Err(config_err("shard plan is empty"));
    }
    let mut expected = 0usize;
    for range in plan {
        if range.start != expected || range.start >= range.end {
            return Err(config_err(format!(
                "shard plan does not tile the grid: expected a shard starting at {expected}, \
                 found {range}"
            )));
        }
        expected = range.end;
    }
    if expected != specs.len() {
        return Err(config_err(format!(
            "shard plan covers {expected} cells but the grid has {}",
            specs.len()
        )));
    }
    Ok(())
}

/// The conventional shard-journal path inside a shard directory.
pub fn shard_journal_path(dir: &Path, shard_index: usize) -> PathBuf {
    dir.join(format!("shard-{shard_index}.journal"))
}

/// The heartbeat sidecar conventionally paired with a shard journal: the
/// same path with a `heartbeat` extension (`shard-0.journal` →
/// `shard-0.heartbeat`). Both sides of the protocol derive it from the
/// journal path, so no extra flag travels between coordinator and worker.
pub fn shard_heartbeat_path(journal: &Path) -> PathBuf {
    journal.with_extension("heartbeat")
}

/// The coordinator's view of a worker's heartbeat: the sidecar's current
/// content, `None` when it does not exist (yet).
fn read_heartbeat(journal: &Path) -> Option<String> {
    std::fs::read_to_string(shard_heartbeat_path(journal)).ok()
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Supervision and fault-injection knobs for a shard worker, beyond the
/// retry policy: the crash point, the heartbeat sidecar, and the
/// deterministic hang used to exercise the coordinator's watchdog.
#[derive(Debug, Default)]
pub struct WorkerOptions {
    /// Deterministic abort point installed on the shard journal — how the
    /// coordinator's kill-and-restart path is exercised.
    pub crash: Option<CrashPoint>,
    /// Heartbeat sidecar to write (conventionally
    /// [`shard_heartbeat_path`] of the journal). Rewritten best-effort at
    /// startup and then on journaled cells, throttled to at most one write
    /// per [`HEARTBEAT_INTERVAL`] — a liveness signal for a seconds-scale
    /// watchdog needs no finer granularity, and per-append writes would tax
    /// sweeps whose cells land faster than the filesystem's small-write
    /// latency. `None` disables heartbeats (the worker is then only
    /// supervisable by exit status).
    pub heartbeat: Option<PathBuf>,
    /// Testing support: once the journal holds this many records, the
    /// worker wedges — it sleeps forever **while holding the journal lock**,
    /// so no further cell can land and no heartbeat advances. Exactly this
    /// many records reach the journal; only an external kill (the watchdog)
    /// ends the process.
    pub hang_after_records: Option<u64>,
}

/// The worker half of a sharded sweep: runs `specs[range]` with the same
/// fail-soft + journal-resume semantics as
/// [`run_scenarios_resumable`](crate::journal::run_scenarios_resumable),
/// but against a **shard journal** keyed to the full grid plus `range`,
/// journaling outcomes under their *global* indices. `crash` installs a
/// deterministic [`CrashPoint`] — how the coordinator's kill-and-restart
/// path is exercised. Returns one outcome per cell of `range`, in range
/// order. Supervised runs use [`run_shard_worker_with`] for heartbeats and
/// hang injection.
pub fn run_shard_worker(
    specs: &[ScenarioSpec],
    range: ShardRange,
    journal_path: impl Into<PathBuf>,
    policy: RetryPolicy,
    crash: Option<CrashPoint>,
) -> Result<ResumableRun> {
    run_shard_worker_with(
        specs,
        range,
        journal_path,
        policy,
        WorkerOptions {
            crash,
            ..WorkerOptions::default()
        },
    )
}

/// [`run_shard_worker`] with full [`WorkerOptions`]: heartbeat emission and
/// the deterministic hang injection, in addition to the crash point.
pub fn run_shard_worker_with(
    specs: &[ScenarioSpec],
    range: ShardRange,
    journal_path: impl Into<PathBuf>,
    policy: RetryPolicy,
    options: WorkerOptions,
) -> Result<ResumableRun> {
    let (mut journal, recovered) = ResultJournal::open_or_create_shard(journal_path, specs, range)?;
    journal.set_crash_point(options.crash);

    // Best-effort heartbeat frame: monotonic record count + the global cell
    // index that advanced it. A write failure is deliberately swallowed —
    // the watchdog killing a silent-but-healthy worker is the conservative
    // outcome, and the restart resumes from the journal anyway. Writes are
    // throttled: the watchdog only watches for *content change* on a
    // seconds-scale timeout, so one write per HEARTBEAT_INTERVAL carries
    // the full liveness signal, while writing on every append would charge
    // fast cells the filesystem's small-write latency per cell.
    let last_beat: Mutex<Option<Instant>> = Mutex::new(None);
    let beat = |records: u64, cell: usize| {
        if let Some(path) = &options.heartbeat {
            let mut last = last_beat.lock().unwrap_or_else(|e| e.into_inner());
            let now = Instant::now();
            if let Some(prev) = *last {
                if now.duration_since(prev) < HEARTBEAT_INTERVAL {
                    return;
                }
            }
            *last = Some(now);
            let _ = std::fs::write(path, format!("{records} {cell}\n"));
        }
    };
    beat(journal.records_written(), range.start);

    let mut slots: Vec<Option<ScenarioOutcome>> = vec![None; range.len()];
    for (global, outcome) in recovered {
        // Duplicate indices cannot arise from this runner, but a journal is
        // just a file: last record wins, matching append order.
        slots[global - range.start] = Some(outcome);
    }
    let resumed = slots.iter().filter(|s| s.is_some()).count();

    let pending: Vec<usize> = (range.start..range.end)
        .filter(|&i| slots[i - range.start].is_none())
        .collect();
    let pending_specs: Vec<ScenarioSpec> = pending.iter().map(|&i| specs[i].clone()).collect();
    let executed = pending_specs.len();

    let journal = Mutex::new(journal);
    let fresh = execute_specs_failsoft(&pending_specs, policy, |sub_index, outcome| {
        let mut journal = journal.lock().unwrap_or_else(|e| e.into_inner());
        journal.append(pending[sub_index], outcome)?;
        beat(journal.records_written(), pending[sub_index]);
        if let Some(k) = options.hang_after_records {
            if journal.records_written() >= k {
                // Wedge with the journal lock held: every other executor
                // thread blocks on the next append, the heartbeat freezes,
                // and only the watchdog's kill ends the process.
                loop {
                    std::thread::sleep(Duration::from_secs(3600));
                }
            }
        }
        Ok(())
    })?;
    for (sub_index, outcome) in fresh.into_iter().enumerate() {
        slots[pending[sub_index] - range.start] = Some(outcome);
    }

    Ok(ResumableRun {
        outcomes: slots
            .into_iter()
            .map(|s| s.expect("every shard cell has an outcome"))
            .collect(),
        resumed,
        executed,
    })
}

// ---------------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------------

/// Merges shard journals into one full-grid outcome list by global cell
/// index (read-only recovery; last record wins within each journal). The
/// `(range, journal path)` pairs must tile the grid. Cells no journal
/// holds — a worker that exhausted its restarts mid-shard — surface as
/// [`ScenarioOutcome::Failed`] entries; the second return value counts
/// them.
pub fn merge_shard_journals(
    specs: &[ScenarioSpec],
    shards: &[(ShardRange, PathBuf)],
) -> Result<(Vec<ScenarioOutcome>, usize)> {
    let plan: Vec<ShardRange> = shards.iter().map(|(range, _)| *range).collect();
    validate_plan(specs, &plan)?;
    let mut slots: Vec<Option<ScenarioOutcome>> = vec![None; specs.len()];
    for (range, path) in shards {
        for (global, outcome) in ResultJournal::recover_shard(path, specs, *range)? {
            slots[global] = Some(outcome);
        }
    }
    let mut missing = 0usize;
    let outcomes = slots
        .into_iter()
        .zip(specs)
        .map(|(slot, spec)| {
            slot.unwrap_or_else(|| {
                missing += 1;
                ScenarioOutcome::Failed(ScenarioFailure {
                    label: spec.label.clone(),
                    attack: spec.attack.label(),
                    engine: spec.engine.label(),
                    error: "cell not recovered from any shard journal (worker exhausted \
                            restarts before journaling it)"
                        .to_string(),
                    transient: false,
                    timed_out: false,
                    attempts: 0,
                })
            })
        })
        .collect();
    Ok((outcomes, missing))
}

/// How the coordinator treats worker processes.
#[derive(Debug, Clone, Copy)]
pub struct ShardedRunConfig {
    /// Restarts granted to each shard beyond its first attempt. A restarted
    /// worker resumes from its journal, so each restart recomputes only the
    /// cells that never landed.
    pub max_restarts: u32,
    /// Heartbeat-stall watchdog: a worker whose heartbeat sidecar has not
    /// changed within this window is killed (burning an attempt) and
    /// restarted from its journal. `None` disables the watchdog — workers
    /// are then supervised by exit status alone, the pre-supervision
    /// behaviour.
    pub worker_timeout: Option<Duration>,
    /// Deterministic backoff paced before every restart; the delay ahead of
    /// attempt `a` of shard `i` is a pure function of
    /// `(grid fingerprint, i, a)`. Budget exhaustion stops restarting the
    /// shard. [`BackoffPolicy::none`] restores immediate respawn.
    pub backoff: BackoffPolicy,
}

impl Default for ShardedRunConfig {
    fn default() -> Self {
        ShardedRunConfig {
            max_restarts: 2,
            worker_timeout: None,
            backoff: BackoffPolicy::default(),
        }
    }
}

/// One spawn request handed to the coordinator's command factory.
#[derive(Debug)]
pub struct ShardSpawn<'a> {
    /// Shard number (index into the plan).
    pub index: usize,
    /// The global cell range this worker owns.
    pub range: ShardRange,
    /// The shard journal the worker must write.
    pub journal: &'a Path,
    /// 0 on the first spawn, incremented on each restart — lets test
    /// harnesses inject a kill on the first attempt only.
    pub attempt: u32,
}

/// Per-shard postmortem from [`run_sharded`].
#[derive(Debug)]
pub struct ShardStatus {
    /// The global cell range the shard owned.
    pub range: ShardRange,
    /// Its journal path.
    pub journal: PathBuf,
    /// Worker processes spawned (1 = no restarts).
    pub attempts: u32,
    /// Whether some attempt exited successfully.
    pub completed: bool,
    /// Workers of this shard killed by the heartbeat watchdog.
    pub watchdog_kills: u32,
    /// Whether the restart backoff budget ran out before the shard
    /// completed (the shard stops restarting; unjournaled cells surface as
    /// `Failed` in the merge).
    pub backoff_exhausted: bool,
}

/// What a sharded sweep produced.
#[derive(Debug)]
pub struct ShardedRun {
    /// One outcome per grid cell, in grid order — merged from the shard
    /// journals.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Per-shard attempt counts and completion flags, in plan order.
    pub shards: Vec<ShardStatus>,
    /// Cells reported `Failed` because no journal held them.
    pub unrecovered: usize,
}

/// How often the coordinator polls `try_wait` and heartbeat files.
const WATCHDOG_POLL: Duration = Duration::from_millis(10);

/// Minimum spacing between a worker's heartbeat writes. The watchdog only
/// watches for content *change* against a [`ShardedRunConfig::worker_timeout`]
/// measured in seconds, so this granularity loses nothing — while writing on
/// every journal append would charge sweeps whose cells complete faster than
/// the filesystem's small-write latency (~hundreds of µs on overlay
/// filesystems) per cell. Worker timeouts must be comfortably larger than
/// this interval (they are validated positive and are seconds-scale in
/// practice).
pub const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(100);

/// A worker process under supervision: its shard, its child handle, and the
/// last heartbeat frame observed with when it changed.
struct RunningWorker {
    shard: usize,
    child: std::process::Child,
    last_beat: Option<String>,
    last_change: Instant,
}

/// The coordinator: spawns one worker process per shard (commands built by
/// `command_for`, typically re-execing the current binary with
/// `--shard-range`), restarts failed workers up to
/// [`ShardedRunConfig::max_restarts`] times — each restart resumes from the
/// shard journal — then merges every journal into a full-grid outcome
/// list. Fail-soft: a shard that exhausts its restarts surfaces its
/// unjournaled cells as `Failed` outcomes rather than killing the sweep.
///
/// Supervision (see the [module docs](self)): the coordinator polls
/// `try_wait` instead of blocking, kills workers whose heartbeat stalls
/// past [`ShardedRunConfig::worker_timeout`], and paces every restart with
/// the deterministic [`ShardedRunConfig::backoff`] schedule.
///
/// Workers within a round run concurrently; `stdout`/`stderr` are
/// inherited from the coordinator. Watchdog kills are reported on the
/// coordinator's stderr.
pub fn run_sharded<F>(
    specs: &[ScenarioSpec],
    plan: &[ShardRange],
    shard_dir: &Path,
    config: &ShardedRunConfig,
    mut command_for: F,
) -> Result<ShardedRun>
where
    F: FnMut(&ShardSpawn<'_>) -> Command,
{
    validate_plan(specs, plan)?;
    std::fs::create_dir_all(shard_dir).map_err(|e| ExperimentError::IoAt {
        path: shard_dir.to_path_buf(),
        source: e,
    })?;
    let fingerprint = grid_fingerprint(specs);
    let mut shards: Vec<ShardStatus> = plan
        .iter()
        .enumerate()
        .map(|(i, &range)| ShardStatus {
            range,
            journal: shard_journal_path(shard_dir, i),
            attempts: 0,
            completed: false,
            watchdog_kills: 0,
            backoff_exhausted: false,
        })
        .collect();

    loop {
        let pending: Vec<usize> = shards
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                !s.completed && !s.backoff_exhausted && s.attempts <= config.max_restarts
            })
            .map(|(i, _)| i)
            .collect();
        if pending.is_empty() {
            break;
        }
        let mut children: Vec<RunningWorker> = Vec::with_capacity(pending.len());
        for &i in &pending {
            let attempt = shards[i].attempts;
            // Deterministic restart pacing: attempt 0 is free; every
            // restart sleeps its seed-derived slot, and budget exhaustion
            // permanently retires the shard instead of hot-looping it.
            match config.backoff.delay(fingerprint, i as u64, attempt) {
                Some(delay) => {
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
                None => {
                    shards[i].backoff_exhausted = true;
                    continue;
                }
            }
            let spawn = ShardSpawn {
                index: i,
                range: shards[i].range,
                journal: &shards[i].journal,
                attempt,
            };
            let mut command = command_for(&spawn);
            shards[i].attempts += 1;
            // A spawn failure burns the attempt, like a worker that died
            // instantly — the restart loop (and ultimately the fail-soft
            // merge) absorbs it.
            if let Ok(child) = command.spawn() {
                children.push(RunningWorker {
                    shard: i,
                    child,
                    // Whatever frame a previous attempt left behind is the
                    // baseline; spawning counts as liveness.
                    last_beat: read_heartbeat(&shards[i].journal),
                    last_change: Instant::now(),
                });
            }
        }
        // Poll every running worker: reap exits via `try_wait` (never a
        // blocking `wait`) and kill any worker whose heartbeat stalls.
        while !children.is_empty() {
            let mut index = 0;
            while index < children.len() {
                let worker = &mut children[index];
                match worker.child.try_wait() {
                    Ok(Some(status)) => {
                        if status.success() {
                            shards[worker.shard].completed = true;
                        }
                        children.swap_remove(index);
                        continue;
                    }
                    Ok(None) => {
                        if let Some(timeout) = config.worker_timeout {
                            let beat = read_heartbeat(&shards[worker.shard].journal);
                            if beat.is_some() && beat != worker.last_beat {
                                worker.last_beat = beat;
                                worker.last_change = Instant::now();
                            } else if worker.last_change.elapsed() > timeout {
                                eprintln!(
                                    "watchdog: shard {} heartbeat stalled past {:.1}s; \
                                     killing worker (attempt {})",
                                    worker.shard,
                                    timeout.as_secs_f64(),
                                    shards[worker.shard].attempts - 1,
                                );
                                let _ = worker.child.kill();
                                let _ = worker.child.wait();
                                shards[worker.shard].watchdog_kills += 1;
                                children.swap_remove(index);
                                continue;
                            }
                        }
                    }
                    // The child is unreachable (already reaped elsewhere or
                    // an OS-level error): treat as a dead attempt.
                    Err(_) => {
                        children.swap_remove(index);
                        continue;
                    }
                }
                index += 1;
            }
            if !children.is_empty() {
                std::thread::sleep(WATCHDOG_POLL);
            }
        }
    }

    let pairs: Vec<(ShardRange, PathBuf)> = shards
        .iter()
        .map(|s| (s.range, s.journal.clone()))
        .collect();
    let (outcomes, unrecovered) = merge_shard_journals(specs, &pairs)?;
    Ok(ShardedRun {
        outcomes,
        shards,
        unrecovered,
    })
}

/// Runs a sharded sweep without spawning processes: each shard executes
/// [`run_shard_worker`] in this process (sequentially), then the journals
/// are merged exactly as [`run_sharded`] would. This is the bench/test
/// harness for measuring pure coordination overhead — plan, per-shard
/// journals, recovery, merge — without process spawn cost; existing shard
/// journals in `shard_dir` are resumed, so benches must clear the
/// directory between iterations.
pub fn run_sharded_in_process(
    specs: &[ScenarioSpec],
    plan: &[ShardRange],
    shard_dir: &Path,
    policy: RetryPolicy,
) -> Result<Vec<ScenarioOutcome>> {
    validate_plan(specs, plan)?;
    std::fs::create_dir_all(shard_dir).map_err(|e| ExperimentError::IoAt {
        path: shard_dir.to_path_buf(),
        source: e,
    })?;
    let mut pairs = Vec::with_capacity(plan.len());
    for (i, &range) in plan.iter().enumerate() {
        let path = shard_journal_path(shard_dir, i);
        run_shard_worker(specs, range, &path, policy, None)?;
        pairs.push((range, path));
    }
    merge_shard_journals(specs, &pairs).map(|(outcomes, _)| outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultMode;
    use crate::scenario::AttackSpec;

    /// `n` independent single-cell workloads (distinct seeds → no sharing).
    fn independent(n: usize) -> Vec<ScenarioSpec> {
        (0..n)
            .map(|i| {
                let mut spec = ScenarioSpec::synthetic_quick(&format!("cell{i}"), 64, 4, 2);
                spec.seed = 0x5AD_0000 + i as u64;
                spec
            })
            .collect()
    }

    /// Two workload groups of three: cells 0–2 share one workload, 3–5
    /// another (the attack axis varies within each group).
    fn grouped() -> Vec<ScenarioSpec> {
        use crate::SchemeKind;
        let mut specs = Vec::new();
        for seed in [1u64, 2u64] {
            for scheme in [SchemeKind::Udr, SchemeKind::PcaDr, SchemeKind::BeDr] {
                let mut spec = ScenarioSpec::synthetic_quick("group", 64, 4, 2);
                spec.seed = seed;
                spec.attack = AttackSpec::Scheme(scheme);
                specs.push(spec);
            }
        }
        specs
    }

    #[test]
    fn shard_range_display_parse_roundtrip() {
        let range = ShardRange::new(3, 11).unwrap();
        assert_eq!(range.to_string(), "3..11");
        assert_eq!(ShardRange::parse("3..11"), Some(range));
        assert_eq!(ShardRange::parse(" 3 .. 11 "), Some(range));
        assert!(ShardRange::parse("11..3").is_none());
        assert!(ShardRange::parse("5..5").is_none());
        assert!(ShardRange::parse("nope").is_none());
        assert!(ShardRange::new(4, 4).is_err());
        assert_eq!(range.len(), 8);
        assert!(range.contains(3) && range.contains(10));
        assert!(!range.contains(11) && !range.contains(2));
    }

    #[test]
    fn plan_tiles_grid_and_balances_independent_cells() {
        let specs = independent(10);
        let plan = plan_shards(&specs, 3).unwrap();
        assert_eq!(plan.len(), 3);
        assert_eq!(plan[0].start, 0);
        assert_eq!(plan.last().unwrap().end, 10);
        for pair in plan.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        let sizes: Vec<usize> = plan.iter().map(|r| r.len()).collect();
        assert!(sizes.iter().all(|&s| (3..=4).contains(&s)), "{sizes:?}");
        // One shard = the whole grid; shards > cells clamp to cell count.
        assert_eq!(plan_shards(&specs, 1).unwrap().len(), 1);
        assert_eq!(plan_shards(&specs, 100).unwrap().len(), 10);
        assert!(plan_shards(&[], 2).is_err());
        assert!(plan_shards(&specs, 0).is_err());
    }

    #[test]
    fn plan_never_splits_a_workload_group() {
        let specs = grouped();
        let groups = workload_groups(&specs);
        assert_eq!(groups.len(), 2, "fixture should form two groups");
        // Any shard count: every group stays within one shard.
        for n in 1..=6 {
            let plan = plan_shards(&specs, n).unwrap();
            for group in &groups {
                let holder: Vec<usize> = plan
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| group.iter().any(|&i| r.contains(i)))
                    .map(|(s, _)| s)
                    .collect();
                assert_eq!(holder.len(), 1, "group {group:?} split across {holder:?}");
            }
        }
        // The only valid cut is at 3, so at most two shards exist.
        assert_eq!(plan_shards(&specs, 6).unwrap().len(), 2);
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("randrecon-shard-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn in_process_sharded_run_matches_single_process() {
        use crate::report::outcomes_hash;
        let mut specs = independent(5);
        let mut failing = ScenarioSpec::synthetic_quick("shard-fault", 64, 4, 2);
        failing.attack = AttackSpec::InjectedFault {
            mode: FaultMode::Error,
        };
        specs.push(failing);
        let reference =
            crate::scenario::run_scenarios_failsoft(&specs, RetryPolicy::default()).unwrap();
        let dir = temp_dir("inproc");
        let plan = plan_shards(&specs, 3).unwrap();
        let merged = run_sharded_in_process(&specs, &plan, &dir, RetryPolicy::default()).unwrap();
        assert_eq!(outcomes_hash(&merged), outcomes_hash(&reference));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_reports_missing_cells_as_failed() {
        let specs = independent(4);
        let dir = temp_dir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        let plan = plan_shards(&specs, 2).unwrap();
        // Only shard 0 ran; shard 1's journal never appeared.
        let first = shard_journal_path(&dir, 0);
        run_shard_worker(&specs, plan[0], &first, RetryPolicy::default(), None).unwrap();
        let pairs = vec![(plan[0], first), (plan[1], shard_journal_path(&dir, 1))];
        let (outcomes, missing) = merge_shard_journals(&specs, &pairs).unwrap();
        assert_eq!(outcomes.len(), 4);
        assert_eq!(missing, plan[1].len());
        for (i, outcome) in outcomes
            .iter()
            .enumerate()
            .take(plan[1].end)
            .skip(plan[1].start)
        {
            match outcome {
                ScenarioOutcome::Failed(f) => {
                    assert!(f.error.contains("not recovered"), "{}", f.error);
                    assert_eq!(f.attempts, 0);
                }
                other => panic!("cell {i} should be Failed, got {other:?}"),
            }
        }
        // A plan that does not tile the grid is rejected.
        let bad = vec![(plan[0], shard_journal_path(&dir, 0))];
        assert!(merge_shard_journals(&specs, &bad).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
