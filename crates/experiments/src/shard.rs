//! Sharded multi-process scenario execution: split a grid into per-shard
//! cell slices (plus, optionally, distributed pass-1 moment tasks), run
//! each shard in its own worker process against its own journal, and
//! reduce the journals into one outcome list **bit-identical** to a
//! single-process [`run_scenarios`](crate::scenario::run_scenarios) run.
//!
//! ## The balance-aware planner
//!
//! Every scenario's result is a pure function of its spec (all randomness
//! is spec-derived), and workload groups — scenarios sharing {data, noise,
//! engine, seeds} — are independent of each other. [`plan_shards`] costs
//! each group as cells × records and places whole groups greedily by LPT
//! (heaviest first, each onto the least-loaded shard; all ties broken by
//! index, so the plan is a pure function of `(specs, n_shards, policy)`
//! and coordinator and re-exec'd workers always agree on it). A shard's
//! cells therefore form a possibly non-contiguous [`ShardSlice`], not a
//! single range.
//!
//! Under [`SplitPolicy::Auto`]/[`SplitPolicy::Always`], a *splittable*
//! group — streaming-MVN geometry, where pass 1 folds fixed-width
//! self-anchored moment segments — may instead become a [`SplitGroup`]:
//! its per-trial segment window is dealt contiguously across the shards as
//! [`MomentTask`]s, so one workload group's pass 1 runs as a **distributed
//! reduction** instead of pinning the whole group (and its dataset
//! generation) to one worker.
//!
//! ## The worker ↔ coordinator protocol
//!
//! * The coordinator ([`run_sharded`]) expands the grid once, plans the
//!   shards, and spawns one `std::process::Command` worker per shard
//!   (typically the same binary re-exec'd with `--shard-range` and
//!   repeated `--moment-task` flags, the pattern the re-exec determinism
//!   suites established).
//! * Each worker ([`run_shard_worker_with`]) first accumulates its moment
//!   tasks — journaling one frame per `(leader, trial, segment)` partial —
//!   then runs its cell slice through the same fail-soft machinery as a
//!   single-process sweep, journaling every outcome under its *global*
//!   grid index. Contiguous no-task shards keep the byte-stable **v4**
//!   shard journal; slices and moment tasks ride the **v5** slice journal
//!   (see the [journal module docs](crate::journal)).
//! * A worker that dies is re-spawned up to
//!   [`ShardedRunConfig::max_restarts`] times; on restart it resumes from
//!   its journal, recomputing only the cells — and only the moment
//!   segments — that never landed.
//! * After all workers finish (or exhaust their restarts), the coordinator
//!   runs the **reduce** ([`reduce_shard_journals`]): it recovers every
//!   journal read-only, merges outcomes by global index, reassembles each
//!   split group's segment partials in segment order, folds them with the
//!   *same* two-level merge a single process uses
//!   ([`merge_moment_segments`]), and finishes the split groups' pass 2
//!   coordinator-side against the reduced moments. Because the segmentation
//!   is fixed-width and each partial is self-anchored, the reduced moments
//!   are bit-identical to local accumulation — no f64 reassociation ever
//!   happens. The reduce is fail-soft twice over: a group with incomplete
//!   partials falls back to self-computing pass 1 (bit-identical, slower),
//!   and cells no journal holds surface as
//!   [`ScenarioOutcome::Failed`] entries, not a dead sweep.
//!
//! Wall-clock `seconds` aside, the reduced outcome list is bit-identical
//! to a single-process run — pinned by the re-exec suite in
//! `tests/shard_tests.rs` and by CI comparing the `outcome hash:` lines of
//! sharded (plain and moment-merged) and unsharded `scenarios`
//! invocations.
//!
//! ## The heartbeat protocol and the watchdog
//!
//! A worker that *dies* is caught by its exit status; a worker that
//! *wedges* — an infinite loop, a deadlock, an I/O stall — would hang a
//! blocking `wait()` forever. Supervised runs therefore add a liveness
//! side-channel:
//!
//! * Each worker writes a **heartbeat sidecar** next to its shard journal
//!   ([`shard_heartbeat_path`]: same path, `heartbeat` extension). The file
//!   holds one frame, `"<records> <cell>\n"` — the journal's monotonic
//!   record count plus the global index of the cell just journaled —
//!   rewritten at worker startup and then on journal appends, throttled to
//!   at most one write per [`HEARTBEAT_INTERVAL`] (liveness needs no finer
//!   granularity against a seconds-scale timeout, and per-append writes
//!   would tax fast cells with small-write filesystem latency). Writes are
//!   best-effort: a failed heartbeat never kills a healthy worker (the
//!   watchdog will kill it later, which is the conservative failure mode).
//! * The coordinator never blocks on a child. It polls `try_wait` on every
//!   running worker, and — when [`ShardedRunConfig::worker_timeout`] is set
//!   — re-reads each worker's heartbeat file. A worker whose heartbeat
//!   content has not changed within the timeout is killed and counted in
//!   [`ShardStatus::watchdog_kills`]; the kill burns an attempt and the
//!   normal restart path resumes the shard from its journal.
//! * Restarts are paced by a deterministic
//!   [`BackoffPolicy`](crate::backoff::BackoffPolicy): the delay before
//!   attempt `a` of shard `i` is a pure function of
//!   `(grid fingerprint, i, a)`, so the whole restart schedule of any sweep
//!   is derivable in advance. A shard whose cumulative backoff exceeds the
//!   policy budget stops restarting ([`ShardStatus::backoff_exhausted`])
//!   and its unjournaled cells surface as `Failed` outcomes in the merge.

use crate::backoff::BackoffPolicy;
use crate::error::{ExperimentError, Result};
use crate::journal::{grid_fingerprint, CrashPoint, ResultJournal, ResumableRun, ShardRecovery};
use crate::scenario::{
    accumulate_split_segments, data_group_consumers, execute_group_failsoft,
    execute_group_failsoft_with_moments, execute_specs_failsoft, workload_groups, DatasetPool,
    RetryPolicy, ScenarioFailure, ScenarioOutcome, ScenarioSpec,
};
use randrecon_core::streaming::StreamMoments;
use randrecon_core::{merge_moment_segments, MomentSegment};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Mutex;
use std::time::{Duration, Instant};

fn config_err(reason: impl Into<String>) -> ExperimentError {
    ExperimentError::InvalidConfig {
        reason: reason.into(),
    }
}

// ---------------------------------------------------------------------------
// Shard ranges and planning
// ---------------------------------------------------------------------------

/// A non-empty half-open range `[start, end)` of global grid indices — one
/// shard's slice of an expanded spec list. Displays (and parses) as
/// `start..end`, the format the `scenarios` binary's `--shard-range` flag
/// uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// First global cell index (inclusive).
    pub start: usize,
    /// One past the last global cell index (exclusive).
    pub end: usize,
}

impl ShardRange {
    /// Builds a range, rejecting empty or inverted bounds.
    pub fn new(start: usize, end: usize) -> Result<ShardRange> {
        if start >= end {
            return Err(config_err(format!(
                "shard range {start}..{end} is empty or inverted"
            )));
        }
        Ok(ShardRange { start, end })
    }

    /// Number of cells in the range (always ≥ 1).
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Ranges are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether global index `i` falls inside the range.
    pub fn contains(&self, i: usize) -> bool {
        self.start <= i && i < self.end
    }

    /// Parses the `start..end` rendering (the `--shard-range` flag).
    pub fn parse(s: &str) -> Option<ShardRange> {
        let (start, end) = s.split_once("..")?;
        ShardRange::new(start.trim().parse().ok()?, end.trim().parse().ok()?).ok()
    }
}

impl fmt::Display for ShardRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// One shard's (possibly non-contiguous) set of global cell indices: a
/// canonical list of sorted, disjoint, non-adjacent [`ShardRange`]s.
/// Displays (and parses) as comma-joined ranges — `0..3,6..9` — the format
/// the `scenarios` binary's `--shard-range` flag accepts. May be empty: a
/// shard can carry only distributed pass-1 moment tasks and no whole cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSlice {
    ranges: Vec<ShardRange>,
}

impl ShardSlice {
    /// Builds a slice from arbitrary ranges: sorts them, rejects overlaps,
    /// and coalesces adjacent ranges into canonical form (so two slices
    /// covering the same cells always compare and render equal).
    pub fn new(mut ranges: Vec<ShardRange>) -> Result<ShardSlice> {
        ranges.sort_by_key(|r| r.start);
        let mut canonical: Vec<ShardRange> = Vec::with_capacity(ranges.len());
        for range in ranges {
            match canonical.last_mut() {
                Some(prev) if range.start < prev.end => {
                    return Err(config_err(format!(
                        "shard slice ranges overlap: {prev} and {range}"
                    )));
                }
                Some(prev) if range.start == prev.end => prev.end = range.end,
                _ => canonical.push(range),
            }
        }
        Ok(ShardSlice { ranges: canonical })
    }

    /// A slice of one contiguous range.
    pub fn single(range: ShardRange) -> ShardSlice {
        ShardSlice {
            ranges: vec![range],
        }
    }

    /// A slice over an explicit (deduplicated) cell set.
    pub fn from_cells(mut cells: Vec<usize>) -> Result<ShardSlice> {
        cells.sort_unstable();
        cells.dedup();
        let mut ranges = Vec::new();
        for cell in cells {
            match ranges.last_mut() {
                Some(ShardRange { end, .. }) if *end == cell => *end += 1,
                _ => ranges.push(ShardRange {
                    start: cell,
                    end: cell + 1,
                }),
            }
        }
        Ok(ShardSlice { ranges })
    }

    /// The canonical range list (sorted, disjoint, non-adjacent).
    pub fn ranges(&self) -> &[ShardRange] {
        &self.ranges
    }

    /// Total number of cells in the slice.
    pub fn len(&self) -> usize {
        self.ranges.iter().map(ShardRange::len).sum()
    }

    /// Whether the slice holds no cells.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Whether global index `i` falls inside the slice.
    pub fn contains(&self, i: usize) -> bool {
        self.ranges.iter().any(|r| r.contains(i))
    }

    /// The slice's cells in ascending order.
    pub fn cells(&self) -> impl Iterator<Item = usize> + '_ {
        self.ranges.iter().flat_map(|r| r.start..r.end)
    }

    /// The position of global index `i` within [`cells`](Self::cells)
    /// order, or `None` when `i` is outside the slice.
    pub fn position(&self, i: usize) -> Option<usize> {
        let mut offset = 0usize;
        for range in &self.ranges {
            if range.contains(i) {
                return Some(offset + (i - range.start));
            }
            offset += range.len();
        }
        None
    }

    /// The lowest cell index, or `None` for an empty slice.
    pub fn first(&self) -> Option<usize> {
        self.ranges.first().map(|r| r.start)
    }

    /// Parses the comma-joined rendering (the `--shard-range` flag);
    /// an empty string is the empty slice.
    pub fn parse(s: &str) -> Option<ShardSlice> {
        let s = s.trim();
        if s.is_empty() {
            return Some(ShardSlice { ranges: Vec::new() });
        }
        let ranges = s
            .split(',')
            .map(ShardRange::parse)
            .collect::<Option<Vec<_>>>()?;
        ShardSlice::new(ranges).ok()
    }
}

impl fmt::Display for ShardSlice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, range) in self.ranges.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{range}")?;
        }
        Ok(())
    }
}

/// One distributed pass-1 task: accumulate moment segments
/// `seg_lo..seg_hi` (for every trial) of the workload group led by global
/// cell `leader`. Displays/parses as `leader:lo..hi` (the `--moment-task`
/// flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MomentTask {
    /// Global index of the group's leader cell (lowest member index).
    pub leader: usize,
    /// First segment index (inclusive).
    pub seg_lo: usize,
    /// Last segment index (exclusive).
    pub seg_hi: usize,
}

impl MomentTask {
    /// Parses the `leader:lo..hi` rendering.
    pub fn parse(s: &str) -> Option<MomentTask> {
        let (leader, range) = s.split_once(':')?;
        let range = ShardRange::parse(range)?;
        Some(MomentTask {
            leader: leader.trim().parse().ok()?,
            seg_lo: range.start,
            seg_hi: range.end,
        })
    }
}

impl fmt::Display for MomentTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}..{}", self.leader, self.seg_lo, self.seg_hi)
    }
}

/// When the planner may split one workload group's pass-1 moment
/// accumulation across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitPolicy {
    /// Never split: every group's cells stay on one shard and pass 1 runs
    /// locally (the PR-8 protocol; shard journals stay format v4).
    #[default]
    Never,
    /// Split a group only when it is splittable (streaming MVN geometry)
    /// and its cost exceeds an even per-shard share of the grid.
    Auto,
    /// Split every splittable group (used by tests and `--moment-merge`).
    Always,
}

/// A workload group whose pass-1 moment fold is distributed across shards.
#[derive(Debug, Clone)]
pub struct SplitGroup {
    /// Global index of the group leader (lowest member index).
    pub leader: usize,
    /// All member cell indices, ascending.
    pub members: Vec<usize>,
    /// Trials per member (identical across the group).
    pub trials: usize,
    /// Total moment segments per trial.
    pub segments: usize,
    /// `(shard index, task)` assignments partitioning `0..segments`.
    pub tasks: Vec<(usize, MomentTask)>,
}

/// A balance-aware shard plan: per-shard cell slices plus the split groups
/// whose pass-1 segments are distributed across shards.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// One (possibly empty) cell slice per shard.
    pub slices: Vec<ShardSlice>,
    /// Workload groups whose moment fold is sharded; their member cells are
    /// *not* in any slice — the coordinator finishes them after the reduce.
    pub split: Vec<SplitGroup>,
}

impl ShardPlan {
    /// Number of shards in the plan.
    pub fn n_shards(&self) -> usize {
        self.slices.len()
    }

    /// The moment tasks assigned to shard `i`, in leader order.
    pub fn tasks_for(&self, shard: usize) -> Vec<MomentTask> {
        self.split
            .iter()
            .flat_map(|g| {
                g.tasks
                    .iter()
                    .filter(move |(s, _)| *s == shard)
                    .map(|&(_, t)| t)
            })
            .collect()
    }
}

/// Per-group cost model for the balance-aware planner: cells × records.
/// Records dominate both dataset generation and reconstruction time, and
/// cells multiply the reconstruction sweeps, so the product tracks wall
/// time well enough for LPT balancing without timing anything.
fn group_cost(specs: &[ScenarioSpec], members: &[usize]) -> u128 {
    let records = members
        .iter()
        .map(|&i| specs[i].approx_records() as u128)
        .max()
        .unwrap_or(1);
    members.len() as u128 * records.max(1)
}

/// Splits `specs` into an `n_shards`-way balance-aware [`ShardPlan`].
///
/// Groups are costed as cells × records. Under [`SplitPolicy::Auto`] /
/// [`SplitPolicy::Always`], workload groups with streaming-MVN geometry
/// (and, for `Auto`, cost above an even per-shard share) become
/// [`SplitGroup`]s: their pass-1 moment segments are dealt contiguously
/// across all shards and their cells are finished coordinator-side after
/// the reduce. The remaining groups are placed greedily by LPT — heaviest
/// first (ties: lowest leader index), each onto the least-loaded shard
/// (ties: lowest shard index) — then each shard's cells are coalesced into
/// a canonical [`ShardSlice`]. The plan is a pure function of
/// `(specs, n_shards, policy)`, so coordinator and re-executed workers
/// always agree on it.
pub fn plan_shards(
    specs: &[ScenarioSpec],
    n_shards: usize,
    policy: SplitPolicy,
) -> Result<ShardPlan> {
    if specs.is_empty() {
        return Err(config_err("cannot shard an empty scenario grid"));
    }
    if n_shards == 0 {
        return Err(config_err("shard count must be at least 1"));
    }
    let mut groups = workload_groups(specs);
    for g in &mut groups {
        g.sort_unstable();
    }
    groups.sort_by_key(|g| g[0]);

    let total_cost: u128 = groups.iter().map(|g| group_cost(specs, g)).sum();
    let share = total_cost / n_shards as u128;
    let mut loads = vec![0u128; n_shards];
    let mut split = Vec::new();
    let mut unsplit = Vec::new();
    for group in groups {
        let leader = group[0];
        let cost = group_cost(specs, &group);
        let geometry = specs[leader].stream_geometry();
        let do_split = n_shards > 1
            && match policy {
                SplitPolicy::Never => false,
                SplitPolicy::Auto => geometry.is_some() && cost > share,
                SplitPolicy::Always => geometry.is_some(),
            };
        match geometry {
            Some((_, segments)) if do_split => {
                // Deal the group's segments contiguously across shards and
                // charge each shard a proportional piece of the group cost.
                let mut tasks = Vec::new();
                let mut lo = 0usize;
                for (shard, load) in loads.iter_mut().enumerate() {
                    let hi = segments * (shard + 1) / n_shards;
                    if hi > lo {
                        tasks.push((
                            shard,
                            MomentTask {
                                leader,
                                seg_lo: lo,
                                seg_hi: hi,
                            },
                        ));
                        *load += cost * (hi - lo) as u128 / segments.max(1) as u128;
                        lo = hi;
                    }
                }
                split.push(SplitGroup {
                    leader,
                    trials: specs[leader].trials,
                    segments,
                    members: group,
                    tasks,
                });
            }
            _ => unsplit.push((cost, group)),
        }
    }

    // LPT: heaviest group first (ties by first index for determinism), each
    // onto the currently least-loaded shard (ties by lowest shard index).
    unsplit.sort_by(|a, b| b.0.cmp(&a.0).then(a.1[0].cmp(&b.1[0])));
    let mut bins: Vec<Vec<usize>> = vec![Vec::new(); n_shards];
    for (cost, group) in unsplit {
        let shard = (0..n_shards)
            .min_by_key(|&s| loads[s])
            .expect("n_shards >= 1");
        loads[shard] += cost;
        bins[shard].extend(group);
    }
    let slices = bins
        .into_iter()
        .map(ShardSlice::from_cells)
        .collect::<Result<Vec<_>>>()?;
    Ok(ShardPlan { slices, split })
}

/// Checks that `plan` tiles `0..specs.len()` exactly: every cell appears in
/// exactly one shard slice or exactly one split group, with located errors
/// naming the first duplicated and first missing cell.
fn validate_plan(specs: &[ScenarioSpec], plan: &ShardPlan) -> Result<()> {
    if plan.slices.is_empty() {
        return Err(config_err("shard plan is empty"));
    }
    let mut owner: Vec<Option<String>> = vec![None; specs.len()];
    let mut claim = |cell: usize, who: String| -> Result<()> {
        if cell >= specs.len() {
            return Err(config_err(format!(
                "shard plan covers cell {cell} but the grid has {} cells",
                specs.len()
            )));
        }
        if let Some(prev) = &owner[cell] {
            return Err(config_err(format!(
                "shard plan overlaps: cell {cell} claimed by both {prev} and {who}"
            )));
        }
        owner[cell] = Some(who);
        Ok(())
    };
    for (i, slice) in plan.slices.iter().enumerate() {
        for cell in slice.cells() {
            claim(cell, format!("shard {i} ({slice})"))?;
        }
    }
    for group in &plan.split {
        for &cell in &group.members {
            claim(cell, format!("split group {}", group.leader))?;
        }
    }
    if let Some(missing) = owner.iter().position(Option::is_none) {
        return Err(config_err(format!(
            "shard plan has a gap: cell {missing} is assigned to no shard"
        )));
    }
    Ok(())
}

/// The conventional shard-journal path inside a shard directory.
pub fn shard_journal_path(dir: &Path, shard_index: usize) -> PathBuf {
    dir.join(format!("shard-{shard_index}.journal"))
}

/// The heartbeat sidecar conventionally paired with a shard journal: the
/// same path with a `heartbeat` extension (`shard-0.journal` →
/// `shard-0.heartbeat`). Both sides of the protocol derive it from the
/// journal path, so no extra flag travels between coordinator and worker.
pub fn shard_heartbeat_path(journal: &Path) -> PathBuf {
    journal.with_extension("heartbeat")
}

/// The coordinator's view of a worker's heartbeat: the sidecar's current
/// content, `None` when it does not exist (yet) **or is torn**. Heartbeat
/// frames are newline-terminated by the writer; a read that races the
/// write can observe a partial frame, and accepting it would feed the
/// watchdog a phantom "change" (resetting the stall clock for a wedged
/// worker) — so only complete, newline-terminated frames count.
fn read_heartbeat(journal: &Path) -> Option<String> {
    let content = std::fs::read_to_string(shard_heartbeat_path(journal)).ok()?;
    content.ends_with('\n').then_some(content)
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Supervision and fault-injection knobs for a shard worker, beyond the
/// retry policy: the crash point, the heartbeat sidecar, and the
/// deterministic hang used to exercise the coordinator's watchdog.
#[derive(Debug, Default)]
pub struct WorkerOptions {
    /// Deterministic abort point installed on the shard journal — how the
    /// coordinator's kill-and-restart path is exercised.
    pub crash: Option<CrashPoint>,
    /// Heartbeat sidecar to write (conventionally
    /// [`shard_heartbeat_path`] of the journal). Rewritten best-effort at
    /// startup and then on journaled cells, throttled to at most one write
    /// per [`HEARTBEAT_INTERVAL`] — a liveness signal for a seconds-scale
    /// watchdog needs no finer granularity, and per-append writes would tax
    /// sweeps whose cells land faster than the filesystem's small-write
    /// latency. `None` disables heartbeats (the worker is then only
    /// supervisable by exit status).
    pub heartbeat: Option<PathBuf>,
    /// Testing support: once the journal holds this many records, the
    /// worker wedges — it sleeps forever **while holding the journal lock**,
    /// so no further cell can land and no heartbeat advances. Exactly this
    /// many records reach the journal; only an external kill (the watchdog)
    /// ends the process.
    pub hang_after_records: Option<u64>,
}

/// The worker half of a sharded sweep: runs `specs[range]` with the same
/// fail-soft + journal-resume semantics as
/// [`run_scenarios_resumable`](crate::journal::run_scenarios_resumable),
/// but against a **shard journal** keyed to the full grid plus `range`,
/// journaling outcomes under their *global* indices. `crash` installs a
/// deterministic [`CrashPoint`] — how the coordinator's kill-and-restart
/// path is exercised. Returns one outcome per cell of `range`, in range
/// order. Supervised runs and moment-merge shards use
/// [`run_shard_worker_with`].
pub fn run_shard_worker(
    specs: &[ScenarioSpec],
    range: ShardRange,
    journal_path: impl Into<PathBuf>,
    policy: RetryPolicy,
    crash: Option<CrashPoint>,
) -> Result<ResumableRun> {
    run_shard_worker_with(
        specs,
        &ShardSlice::single(range),
        &[],
        journal_path,
        policy,
        WorkerOptions {
            crash,
            ..WorkerOptions::default()
        },
    )
}

/// [`run_shard_worker`] generalized to the moment-merge protocol: the
/// worker owns a (possibly non-contiguous, possibly empty) cell `slice`
/// plus a set of distributed pass-1 `tasks`, and takes full
/// [`WorkerOptions`] (heartbeats, crash point, hang injection).
///
/// Moment tasks run **first** — their partials are what other shards'
/// groups wait on — and journal one frame per accumulated segment, so a
/// restarted worker resumes segment-granular: recovered `(leader, trial,
/// segment)` triples are skipped and only the gaps are re-accumulated
/// (each contiguous gap in one seed-cursor skip-ahead call). Cells then
/// execute exactly as in the contiguous protocol.
///
/// Journal format: a plain contiguous no-task shard keeps the v4 shard
/// journal (byte-compatible with PR-8 coordinators); any slice with moment
/// tasks or a non-contiguous/empty cell set gets a v5 slice journal.
pub fn run_shard_worker_with(
    specs: &[ScenarioSpec],
    slice: &ShardSlice,
    tasks: &[MomentTask],
    journal_path: impl Into<PathBuf>,
    policy: RetryPolicy,
    options: WorkerOptions,
) -> Result<ResumableRun> {
    let journal_path = journal_path.into();
    let (mut journal, recovery) = if tasks.is_empty() && slice.ranges().len() == 1 {
        let (journal, outcomes) =
            ResultJournal::open_or_create_shard(&journal_path, specs, slice.ranges()[0])?;
        (
            journal,
            ShardRecovery {
                outcomes,
                moments: Vec::new(),
            },
        )
    } else {
        ResultJournal::open_or_create_slice(&journal_path, specs, slice)?
    };
    journal.set_crash_point(options.crash);

    // Best-effort heartbeat frame: monotonic record count + the global cell
    // index that advanced it. A write failure is deliberately swallowed —
    // the watchdog killing a silent-but-healthy worker is the conservative
    // outcome, and the restart resumes from the journal anyway. Writes are
    // throttled: the watchdog only watches for *content change* on a
    // seconds-scale timeout, so one write per HEARTBEAT_INTERVAL carries
    // the full liveness signal, while writing on every append would charge
    // fast cells the filesystem's small-write latency per cell.
    let last_beat: Mutex<Option<Instant>> = Mutex::new(None);
    let beat = |records: u64, cell: usize| {
        if let Some(path) = &options.heartbeat {
            let mut last = last_beat.lock().unwrap_or_else(|e| e.into_inner());
            let now = Instant::now();
            if let Some(prev) = *last {
                if now.duration_since(prev) < HEARTBEAT_INTERVAL {
                    return;
                }
            }
            *last = Some(now);
            let _ = std::fs::write(path, format!("{records} {cell}\n"));
        }
    };
    let first_cell = slice
        .first()
        .or_else(|| tasks.first().map(|t| t.leader))
        .unwrap_or(0);
    beat(journal.records_written(), first_cell);

    let hang_if_due = |records: u64| {
        if let Some(k) = options.hang_after_records {
            if records >= k {
                // Wedge with the journal lock held: every other executor
                // thread blocks on the next append, the heartbeat freezes,
                // and only the watchdog's kill ends the process.
                loop {
                    std::thread::sleep(Duration::from_secs(3600));
                }
            }
        }
    };

    let mut resumed = recovery.moments.len();
    let mut executed = 0usize;
    let done: HashSet<(usize, usize, usize)> = recovery
        .moments
        .iter()
        .map(|f| (f.leader, f.trial, f.segment.index))
        .collect();
    let journal = Mutex::new(journal);
    for task in tasks {
        let proto = specs.get(task.leader).ok_or_else(|| {
            config_err(format!(
                "moment task {task} names leader cell {} but the grid has {} cells",
                task.leader,
                specs.len()
            ))
        })?;
        for trial in 0..proto.trials {
            // Walk the task's segment window, batching each contiguous run
            // of missing segments into one skip-ahead accumulation call.
            let mut lo = task.seg_lo;
            while lo < task.seg_hi {
                if done.contains(&(task.leader, trial, lo)) {
                    lo += 1;
                    continue;
                }
                let mut hi = lo + 1;
                while hi < task.seg_hi && !done.contains(&(task.leader, trial, hi)) {
                    hi += 1;
                }
                let segments = accumulate_split_segments(proto, trial, lo, hi)?;
                for segment in &segments {
                    let mut journal = journal.lock().unwrap_or_else(|e| e.into_inner());
                    journal.append_moment(task.leader, trial, segment)?;
                    executed += 1;
                    beat(journal.records_written(), task.leader);
                    hang_if_due(journal.records_written());
                }
                lo = hi;
            }
        }
    }

    let cells: Vec<usize> = slice.cells().collect();
    let mut slots: Vec<Option<ScenarioOutcome>> = vec![None; cells.len()];
    for (global, outcome) in recovery.outcomes {
        // Duplicate indices cannot arise from this runner, but a journal is
        // just a file: last record wins, matching append order.
        if let Some(pos) = slice.position(global) {
            slots[pos] = Some(outcome);
        }
    }
    resumed += slots.iter().filter(|s| s.is_some()).count();

    let pending: Vec<usize> = cells
        .iter()
        .enumerate()
        .filter(|&(pos, _)| slots[pos].is_none())
        .map(|(_, &global)| global)
        .collect();
    let pending_specs: Vec<ScenarioSpec> = pending.iter().map(|&i| specs[i].clone()).collect();
    executed += pending_specs.len();

    let fresh = execute_specs_failsoft(&pending_specs, policy, |sub_index, outcome| {
        let mut journal = journal.lock().unwrap_or_else(|e| e.into_inner());
        journal.append(pending[sub_index], outcome)?;
        beat(journal.records_written(), pending[sub_index]);
        hang_if_due(journal.records_written());
        Ok(())
    })?;
    for (sub_index, outcome) in fresh.into_iter().enumerate() {
        let pos = slice
            .position(pending[sub_index])
            .expect("pending cells come from the slice");
        slots[pos] = Some(outcome);
    }

    let mut outcomes = Vec::with_capacity(cells.len());
    for (pos, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(outcome) => outcomes.push(outcome),
            // The fail-soft executor reports every input, so a hole here
            // means the recovery/execution bookkeeping above disagrees with
            // the slice — a protocol bug. Surface it as a located error
            // instead of panicking the worker process.
            None => {
                return Err(ExperimentError::Journal {
                    path: journal_path,
                    reason: format!(
                        "executed outcomes do not tile the shard: cell {} of slice {slice} \
                         finished with no outcome",
                        cells[pos]
                    ),
                });
            }
        }
    }
    Ok(ResumableRun {
        outcomes,
        resumed,
        executed,
    })
}

// ---------------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------------

/// Fills cells no journal recovered with located `Failed` outcomes and
/// counts them — the shared fail-soft tail of [`merge_shard_journals`] and
/// [`reduce_shard_journals`].
fn fill_missing_cells(
    specs: &[ScenarioSpec],
    slots: Vec<Option<ScenarioOutcome>>,
) -> (Vec<ScenarioOutcome>, usize) {
    let mut missing = 0usize;
    let outcomes = slots
        .into_iter()
        .zip(specs)
        .map(|(slot, spec)| {
            slot.unwrap_or_else(|| {
                missing += 1;
                ScenarioOutcome::Failed(ScenarioFailure {
                    label: spec.label.clone(),
                    attack: spec.attack.label(),
                    engine: spec.engine.label(),
                    error: "cell not recovered from any shard journal (worker exhausted \
                            restarts before journaling it)"
                        .to_string(),
                    transient: false,
                    timed_out: false,
                    attempts: 0,
                })
            })
        })
        .collect();
    (outcomes, missing)
}

/// Merges contiguous-range shard journals into one full-grid outcome list
/// by global cell index (read-only recovery; last record wins within each
/// journal). The `(range, journal path)` pairs must **tile** the grid:
/// overlaps and gaps in the range set are detected up front and reported
/// as located errors naming the offending journals — a silently
/// overlapping pair would otherwise resolve last-wins by iteration order,
/// hiding a coordination bug behind plausible results. Cells no journal
/// holds — a worker that exhausted its restarts mid-shard — surface as
/// [`ScenarioOutcome::Failed`] entries; the second return value counts
/// them.
pub fn merge_shard_journals(
    specs: &[ScenarioSpec],
    shards: &[(ShardRange, PathBuf)],
) -> Result<(Vec<ScenarioOutcome>, usize)> {
    if shards.is_empty() {
        return Err(config_err("cannot merge zero shard journals"));
    }
    let mut sorted: Vec<&(ShardRange, PathBuf)> = shards.iter().collect();
    sorted.sort_by_key(|(range, _)| range.start);
    let mut covered = 0usize;
    let mut prev: Option<&(ShardRange, PathBuf)> = None;
    for pair in sorted {
        let (range, path) = pair;
        if range.start < covered {
            let (prev_range, prev_path) = prev.expect("overlap implies a predecessor");
            return Err(config_err(format!(
                "shard journals overlap: {range} ({}) intersects {prev_range} ({})",
                path.display(),
                prev_path.display(),
            )));
        }
        if range.start > covered {
            return Err(config_err(format!(
                "shard journals leave a gap: cells {covered}..{} belong to no journal \
                 (next is {range} at {})",
                range.start,
                path.display(),
            )));
        }
        covered = range.end;
        prev = Some(pair);
    }
    if covered != specs.len() {
        return Err(config_err(format!(
            "shard journals cover cells 0..{covered} but the grid has {} cells",
            specs.len()
        )));
    }
    let mut slots: Vec<Option<ScenarioOutcome>> = vec![None; specs.len()];
    for (range, path) in shards {
        for (global, outcome) in ResultJournal::recover_shard(path, specs, *range)? {
            slots[global] = Some(outcome);
        }
    }
    Ok(fill_missing_cells(specs, slots))
}

/// Assembles one reduced [`StreamMoments`] per trial of a split group from
/// the journaled segment partials, or `None` when any trial is incomplete
/// (a shard died before journaling all its segments) — the caller then
/// falls back to self-computing pass 1, which is bit-identical.
fn assemble_group_moments(
    group: &SplitGroup,
    segments: &HashMap<(usize, usize), BTreeMap<usize, MomentSegment>>,
) -> Option<Vec<StreamMoments>> {
    let mut prepared = Vec::with_capacity(group.trials);
    for trial in 0..group.trials {
        let by_index = segments.get(&(group.leader, trial))?;
        if by_index.len() != group.segments {
            return None;
        }
        let ordered: Vec<MomentSegment> = by_index.values().cloned().collect();
        let m = ordered.first()?.accumulator.n_attributes();
        let (accumulator, n_chunks) = merge_moment_segments(m, &ordered).ok()?;
        prepared.push(StreamMoments::from_accumulator(&accumulator, n_chunks).ok()?);
    }
    Some(prepared)
}

/// The coordinator's **reduce** step for a moment-merge [`ShardPlan`]:
/// recovers every shard journal read-only (`journals[i]` belongs to shard
/// `i`), merges outcome frames by global index, reduces the journaled
/// pass-1 segment partials of each [`SplitGroup`] into per-trial
/// [`StreamMoments`] (the same two-level fixed-segment fold a
/// single-process pass runs, so the reduced moments are **bit-identical**
/// to local accumulation), and finishes the split groups' cells
/// coordinator-side against those moments. A split group whose partials
/// are incomplete — some shard exhausted its restarts mid-task — falls
/// back to a self-computing group run: slower, but bit-identical. Cells no
/// journal and no group run produced surface as `Failed`; the second
/// return value counts them.
pub fn reduce_shard_journals(
    specs: &[ScenarioSpec],
    plan: &ShardPlan,
    journals: &[PathBuf],
    policy: RetryPolicy,
) -> Result<(Vec<ScenarioOutcome>, usize)> {
    validate_plan(specs, plan)?;
    if journals.len() != plan.n_shards() {
        return Err(config_err(format!(
            "reduce needs one journal per shard: plan has {} shards, got {} journals",
            plan.n_shards(),
            journals.len()
        )));
    }
    let mut slots: Vec<Option<ScenarioOutcome>> = vec![None; specs.len()];
    let mut segments: HashMap<(usize, usize), BTreeMap<usize, MomentSegment>> = HashMap::new();
    for (shard, (slice, path)) in plan.slices.iter().zip(journals).enumerate() {
        let recovery = if plan.tasks_for(shard).is_empty() && slice.ranges().len() == 1 {
            ShardRecovery {
                outcomes: ResultJournal::recover_shard(path, specs, slice.ranges()[0])?,
                moments: Vec::new(),
            }
        } else {
            ResultJournal::recover_slice(path, specs, slice)?
        };
        for (global, outcome) in recovery.outcomes {
            slots[global] = Some(outcome);
        }
        for frame in recovery.moments {
            segments
                .entry((frame.leader, frame.trial))
                .or_default()
                .insert(frame.segment.index, frame.segment);
        }
    }

    if !plan.split.is_empty() {
        // Split groups share the grid's dataset economy: one pool scoped to
        // the coordinator-side groups, so groups differing only in
        // noise/attack still build each trial dataset once here.
        let member_sets: Vec<Vec<usize>> = plan.split.iter().map(|g| g.members.clone()).collect();
        let pool = DatasetPool::new(data_group_consumers(specs, &member_sets));
        for group in &plan.split {
            let members: Vec<ScenarioSpec> =
                group.members.iter().map(|&i| specs[i].clone()).collect();
            let outcomes = match assemble_group_moments(group, &segments) {
                Some(moments) => {
                    execute_group_failsoft_with_moments(&members, &moments, policy, Some(&pool))
                }
                None => execute_group_failsoft(&members, policy, Some(&pool)),
            };
            for (&global, outcome) in group.members.iter().zip(outcomes) {
                slots[global] = Some(outcome);
            }
        }
    }
    Ok(fill_missing_cells(specs, slots))
}

/// How the coordinator treats worker processes.
#[derive(Debug, Clone, Copy)]
pub struct ShardedRunConfig {
    /// Restarts granted to each shard beyond its first attempt. A restarted
    /// worker resumes from its journal, so each restart recomputes only the
    /// cells that never landed.
    pub max_restarts: u32,
    /// Heartbeat-stall watchdog: a worker whose heartbeat sidecar has not
    /// changed within this window is killed (burning an attempt) and
    /// restarted from its journal. `None` disables the watchdog — workers
    /// are then supervised by exit status alone, the pre-supervision
    /// behaviour.
    pub worker_timeout: Option<Duration>,
    /// Deterministic backoff paced before every restart; the delay ahead of
    /// attempt `a` of shard `i` is a pure function of
    /// `(grid fingerprint, i, a)`. Budget exhaustion stops restarting the
    /// shard. [`BackoffPolicy::none`] restores immediate respawn.
    pub backoff: BackoffPolicy,
    /// Retry policy used by the coordinator's reduce step when it finishes
    /// split workload groups from the merged pass-1 moments (workers carry
    /// their own policy on their command line).
    pub policy: RetryPolicy,
}

impl Default for ShardedRunConfig {
    fn default() -> Self {
        ShardedRunConfig {
            max_restarts: 2,
            worker_timeout: None,
            backoff: BackoffPolicy::default(),
            policy: RetryPolicy::default(),
        }
    }
}

/// One spawn request handed to the coordinator's command factory.
#[derive(Debug)]
pub struct ShardSpawn<'a> {
    /// Shard number (index into the plan).
    pub index: usize,
    /// The global cell slice this worker owns (may be empty for a
    /// task-only shard).
    pub slice: &'a ShardSlice,
    /// The distributed pass-1 moment tasks this worker must accumulate.
    pub tasks: &'a [MomentTask],
    /// The shard journal the worker must write.
    pub journal: &'a Path,
    /// 0 on the first spawn, incremented on each restart — lets test
    /// harnesses inject a kill on the first attempt only.
    pub attempt: u32,
}

/// Per-shard postmortem from [`run_sharded`].
#[derive(Debug)]
pub struct ShardStatus {
    /// The global cell slice the shard owned.
    pub slice: ShardSlice,
    /// Its journal path.
    pub journal: PathBuf,
    /// Worker processes spawned (1 = no restarts).
    pub attempts: u32,
    /// Whether some attempt exited successfully.
    pub completed: bool,
    /// Workers of this shard killed by the heartbeat watchdog.
    pub watchdog_kills: u32,
    /// Whether the restart backoff budget ran out before the shard
    /// completed (the shard stops restarting; unjournaled cells surface as
    /// `Failed` in the merge).
    pub backoff_exhausted: bool,
}

/// What a sharded sweep produced.
#[derive(Debug)]
pub struct ShardedRun {
    /// One outcome per grid cell, in grid order — merged from the shard
    /// journals.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Per-shard attempt counts and completion flags, in plan order.
    pub shards: Vec<ShardStatus>,
    /// Cells reported `Failed` because no journal held them.
    pub unrecovered: usize,
}

/// How often the coordinator polls `try_wait` and heartbeat files.
const WATCHDOG_POLL: Duration = Duration::from_millis(10);

/// Minimum spacing between a worker's heartbeat writes. The watchdog only
/// watches for content *change* against a [`ShardedRunConfig::worker_timeout`]
/// measured in seconds, so this granularity loses nothing — while writing on
/// every journal append would charge sweeps whose cells complete faster than
/// the filesystem's small-write latency (~hundreds of µs on overlay
/// filesystems) per cell. Worker timeouts must be comfortably larger than
/// this interval (they are validated positive and are seconds-scale in
/// practice).
pub const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(100);

/// A worker process under supervision: its shard, its child handle, and the
/// last heartbeat frame observed with when it changed.
struct RunningWorker {
    shard: usize,
    child: std::process::Child,
    last_beat: Option<String>,
    last_change: Instant,
}

/// The coordinator: spawns one worker process per shard (commands built by
/// `command_for`, typically re-execing the current binary with
/// `--shard-range`), restarts failed workers up to
/// [`ShardedRunConfig::max_restarts`] times — each restart resumes from the
/// shard journal — then merges every journal into a full-grid outcome
/// list. Fail-soft: a shard that exhausts its restarts surfaces its
/// unjournaled cells as `Failed` outcomes rather than killing the sweep.
///
/// Supervision (see the [module docs](self)): the coordinator polls
/// `try_wait` instead of blocking, kills workers whose heartbeat stalls
/// past [`ShardedRunConfig::worker_timeout`], and paces every restart with
/// the deterministic [`ShardedRunConfig::backoff`] schedule.
///
/// Workers within a round run concurrently; `stdout`/`stderr` are
/// inherited from the coordinator. Watchdog kills are reported on the
/// coordinator's stderr.
pub fn run_sharded<F>(
    specs: &[ScenarioSpec],
    plan: &ShardPlan,
    shard_dir: &Path,
    config: &ShardedRunConfig,
    mut command_for: F,
) -> Result<ShardedRun>
where
    F: FnMut(&ShardSpawn<'_>) -> Command,
{
    validate_plan(specs, plan)?;
    std::fs::create_dir_all(shard_dir).map_err(|e| ExperimentError::IoAt {
        path: shard_dir.to_path_buf(),
        source: e,
    })?;
    let fingerprint = grid_fingerprint(specs);
    let shard_tasks: Vec<Vec<MomentTask>> =
        (0..plan.n_shards()).map(|i| plan.tasks_for(i)).collect();
    let mut shards: Vec<ShardStatus> = plan
        .slices
        .iter()
        .enumerate()
        .map(|(i, slice)| ShardStatus {
            slice: slice.clone(),
            journal: shard_journal_path(shard_dir, i),
            attempts: 0,
            completed: false,
            watchdog_kills: 0,
            backoff_exhausted: false,
        })
        .collect();

    loop {
        let pending: Vec<usize> = shards
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                !s.completed && !s.backoff_exhausted && s.attempts <= config.max_restarts
            })
            .map(|(i, _)| i)
            .collect();
        if pending.is_empty() {
            break;
        }
        let mut children: Vec<RunningWorker> = Vec::with_capacity(pending.len());
        for &i in &pending {
            let attempt = shards[i].attempts;
            // Deterministic restart pacing: attempt 0 is free; every
            // restart sleeps its seed-derived slot, and budget exhaustion
            // permanently retires the shard instead of hot-looping it.
            match config.backoff.delay(fingerprint, i as u64, attempt) {
                Some(delay) => {
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
                None => {
                    shards[i].backoff_exhausted = true;
                    continue;
                }
            }
            let spawn = ShardSpawn {
                index: i,
                slice: &shards[i].slice,
                tasks: &shard_tasks[i],
                journal: &shards[i].journal,
                attempt,
            };
            let mut command = command_for(&spawn);
            shards[i].attempts += 1;
            // A spawn failure burns the attempt, like a worker that died
            // instantly — the restart loop (and ultimately the fail-soft
            // merge) absorbs it.
            if let Ok(child) = command.spawn() {
                children.push(RunningWorker {
                    shard: i,
                    child,
                    // Whatever frame a previous attempt left behind is the
                    // baseline; spawning counts as liveness.
                    last_beat: read_heartbeat(&shards[i].journal),
                    last_change: Instant::now(),
                });
            }
        }
        // Poll every running worker: reap exits via `try_wait` (never a
        // blocking `wait`) and kill any worker whose heartbeat stalls.
        while !children.is_empty() {
            let mut index = 0;
            while index < children.len() {
                let worker = &mut children[index];
                match worker.child.try_wait() {
                    Ok(Some(status)) => {
                        if status.success() {
                            shards[worker.shard].completed = true;
                        }
                        children.swap_remove(index);
                        continue;
                    }
                    Ok(None) => {
                        if let Some(timeout) = config.worker_timeout {
                            let beat = read_heartbeat(&shards[worker.shard].journal);
                            if beat.is_some() && beat != worker.last_beat {
                                worker.last_beat = beat;
                                worker.last_change = Instant::now();
                            } else if worker.last_change.elapsed() > timeout {
                                eprintln!(
                                    "watchdog: shard {} heartbeat stalled past {:.1}s; \
                                     killing worker (attempt {})",
                                    worker.shard,
                                    timeout.as_secs_f64(),
                                    shards[worker.shard].attempts - 1,
                                );
                                let _ = worker.child.kill();
                                let _ = worker.child.wait();
                                shards[worker.shard].watchdog_kills += 1;
                                children.swap_remove(index);
                                continue;
                            }
                        }
                    }
                    // The child is unreachable (already reaped elsewhere or
                    // an OS-level error): treat as a dead attempt.
                    Err(_) => {
                        children.swap_remove(index);
                        continue;
                    }
                }
                index += 1;
            }
            if !children.is_empty() {
                std::thread::sleep(WATCHDOG_POLL);
            }
        }
    }

    let journals: Vec<PathBuf> = shards.iter().map(|s| s.journal.clone()).collect();
    let (outcomes, unrecovered) = reduce_shard_journals(specs, plan, &journals, config.policy)?;
    Ok(ShardedRun {
        outcomes,
        shards,
        unrecovered,
    })
}

/// Runs a sharded sweep without spawning processes: each shard executes
/// [`run_shard_worker_with`] in this process (sequentially), then the
/// journals are reduced exactly as [`run_sharded`] would — including the
/// cross-shard moment merge for split groups. This is the bench/test
/// harness for measuring pure coordination overhead — plan, per-shard
/// journals, recovery, reduce — without process spawn cost; existing shard
/// journals in `shard_dir` are resumed, so benches must clear the
/// directory between iterations.
pub fn run_sharded_in_process(
    specs: &[ScenarioSpec],
    plan: &ShardPlan,
    shard_dir: &Path,
    policy: RetryPolicy,
) -> Result<Vec<ScenarioOutcome>> {
    validate_plan(specs, plan)?;
    std::fs::create_dir_all(shard_dir).map_err(|e| ExperimentError::IoAt {
        path: shard_dir.to_path_buf(),
        source: e,
    })?;
    let mut journals = Vec::with_capacity(plan.n_shards());
    for (i, slice) in plan.slices.iter().enumerate() {
        let path = shard_journal_path(shard_dir, i);
        run_shard_worker_with(
            specs,
            slice,
            &plan.tasks_for(i),
            &path,
            policy,
            WorkerOptions::default(),
        )?;
        journals.push(path);
    }
    reduce_shard_journals(specs, plan, &journals, policy).map(|(outcomes, _)| outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultMode;
    use crate::scenario::{AttackSpec, EngineSpec};

    /// `n` independent single-cell workloads (distinct seeds → no sharing).
    fn independent(n: usize) -> Vec<ScenarioSpec> {
        (0..n)
            .map(|i| {
                let mut spec = ScenarioSpec::synthetic_quick(&format!("cell{i}"), 64, 4, 2);
                spec.seed = 0x5AD_0000 + i as u64;
                spec
            })
            .collect()
    }

    /// Two workload groups of three: cells 0–2 share one workload, 3–5
    /// another (the attack axis varies within each group).
    fn grouped() -> Vec<ScenarioSpec> {
        use crate::SchemeKind;
        let mut specs = Vec::new();
        for seed in [1u64, 2u64] {
            for scheme in [SchemeKind::Udr, SchemeKind::PcaDr, SchemeKind::BeDr] {
                let mut spec = ScenarioSpec::synthetic_quick("group", 64, 4, 2);
                spec.seed = seed;
                spec.attack = AttackSpec::Scheme(scheme);
                specs.push(spec);
            }
        }
        specs
    }

    #[test]
    fn shard_range_display_parse_roundtrip() {
        let range = ShardRange::new(3, 11).unwrap();
        assert_eq!(range.to_string(), "3..11");
        assert_eq!(ShardRange::parse("3..11"), Some(range));
        assert_eq!(ShardRange::parse(" 3 .. 11 "), Some(range));
        assert!(ShardRange::parse("11..3").is_none());
        assert!(ShardRange::parse("5..5").is_none());
        assert!(ShardRange::parse("nope").is_none());
        assert!(ShardRange::new(4, 4).is_err());
        assert_eq!(range.len(), 8);
        assert!(range.contains(3) && range.contains(10));
        assert!(!range.contains(11) && !range.contains(2));
    }

    /// Two streaming workload groups of two cells each (the attack varies
    /// within each group); 2000 records / 256-row chunks = 8 chunks = 2
    /// moment segments per trial.
    fn streaming_grouped() -> Vec<ScenarioSpec> {
        use crate::SchemeKind;
        let mut specs = Vec::new();
        for seed in [11u64, 22u64] {
            for scheme in [SchemeKind::Udr, SchemeKind::BeDr] {
                let mut spec = ScenarioSpec::synthetic_quick("stream-group", 2000, 6, 2);
                spec.engine = EngineSpec::Streaming { chunk_rows: 256 };
                spec.seed = seed;
                spec.attack = AttackSpec::Scheme(scheme);
                specs.push(spec);
            }
        }
        specs
    }

    #[test]
    fn shard_slice_and_moment_task_roundtrip() {
        let slice = ShardSlice::parse("0..3,6..9").unwrap();
        assert_eq!(slice.to_string(), "0..3,6..9");
        assert_eq!(slice.len(), 6);
        assert_eq!(slice.cells().collect::<Vec<_>>(), vec![0, 1, 2, 6, 7, 8]);
        assert_eq!(slice.position(7), Some(4));
        assert_eq!(slice.position(4), None);
        assert!(slice.contains(2) && !slice.contains(3));
        // Adjacent ranges coalesce into canonical form; overlaps reject.
        let joined = ShardSlice::new(vec![
            ShardRange::new(3, 5).unwrap(),
            ShardRange::new(0, 3).unwrap(),
        ])
        .unwrap();
        assert_eq!(joined.to_string(), "0..5");
        assert!(ShardSlice::new(vec![
            ShardRange::new(0, 4).unwrap(),
            ShardRange::new(3, 5).unwrap(),
        ])
        .is_err());
        let empty = ShardSlice::parse("").unwrap();
        assert!(empty.is_empty() && empty.first().is_none());
        assert!(ShardSlice::parse("1..2,nope").is_none());
        let task = MomentTask::parse("4:0..2").unwrap();
        assert_eq!((task.leader, task.seg_lo, task.seg_hi), (4, 0, 2));
        assert_eq!(task.to_string(), "4:0..2");
        assert!(MomentTask::parse("x:0..2").is_none());
        assert!(MomentTask::parse("4").is_none());
    }

    #[test]
    fn plan_tiles_grid_and_balances_independent_cells() {
        let specs = independent(10);
        let plan = plan_shards(&specs, 3, SplitPolicy::Never).unwrap();
        assert_eq!(plan.n_shards(), 3);
        assert!(plan.split.is_empty());
        let mut cells: Vec<usize> = plan.slices.iter().flat_map(ShardSlice::cells).collect();
        cells.sort_unstable();
        assert_eq!(cells, (0..10).collect::<Vec<_>>());
        // Equal-cost cells: LPT lands within one cell of perfectly even.
        let sizes: Vec<usize> = plan.slices.iter().map(ShardSlice::len).collect();
        assert!(sizes.iter().all(|&s| (3..=4).contains(&s)), "{sizes:?}");
        assert_eq!(
            plan_shards(&specs, 1, SplitPolicy::Never)
                .unwrap()
                .n_shards(),
            1
        );
        // More shards than groups: the surplus shards get empty slices.
        let wide = plan_shards(&specs, 100, SplitPolicy::Never).unwrap();
        assert_eq!(wide.n_shards(), 100);
        assert_eq!(wide.slices.iter().filter(|s| !s.is_empty()).count(), 10);
        assert!(plan_shards(&[], 2, SplitPolicy::Never).is_err());
        assert!(plan_shards(&specs, 0, SplitPolicy::Never).is_err());
    }

    #[test]
    fn plan_balances_uneven_group_costs() {
        // One heavy group (4096 records) + four light cells (64 records):
        // LPT puts the heavy group alone on a shard and spreads the rest.
        let mut specs = independent(4);
        let mut heavy = ScenarioSpec::synthetic_quick("heavy", 4096, 4, 2);
        heavy.seed = 0xFEED;
        specs.push(heavy);
        let plan = plan_shards(&specs, 2, SplitPolicy::Never).unwrap();
        let heavy_shard = plan
            .slices
            .iter()
            .position(|s| s.contains(4))
            .expect("heavy cell placed");
        assert_eq!(
            plan.slices[heavy_shard].len(),
            1,
            "heavy group should sit alone: {plan:?}"
        );
        assert_eq!(plan.slices[1 - heavy_shard].len(), 4);
    }

    #[test]
    fn plan_never_splits_a_workload_group() {
        let specs = grouped();
        let groups = workload_groups(&specs);
        assert_eq!(groups.len(), 2, "fixture should form two groups");
        // Any shard count: every group stays within one shard.
        for n in 1..=6 {
            let plan = plan_shards(&specs, n, SplitPolicy::Never).unwrap();
            assert!(plan.split.is_empty());
            for group in &groups {
                let holder: Vec<usize> = plan
                    .slices
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| group.iter().any(|&i| s.contains(i)))
                    .map(|(s, _)| s)
                    .collect();
                assert_eq!(holder.len(), 1, "group {group:?} split across {holder:?}");
            }
        }
        // In-memory groups are never splittable, whatever the policy.
        let plan = plan_shards(&specs, 3, SplitPolicy::Always).unwrap();
        assert!(plan.split.is_empty());
    }

    #[test]
    fn plan_splits_streaming_groups_into_dealt_segment_tasks() {
        let specs = streaming_grouped();
        let plan = plan_shards(&specs, 2, SplitPolicy::Always).unwrap();
        assert_eq!(plan.split.len(), 2, "{plan:?}");
        for group in &plan.split {
            assert_eq!(group.segments, 2);
            assert_eq!(group.trials, 1);
            // Tasks deal 0..segments contiguously with no gap or overlap.
            let mut covered = 0usize;
            for &(_, task) in &group.tasks {
                assert_eq!(task.leader, group.leader);
                assert_eq!(task.seg_lo, covered);
                assert!(task.seg_hi > task.seg_lo);
                covered = task.seg_hi;
            }
            assert_eq!(covered, group.segments);
            // Split members live in no shard slice — the coordinator
            // finishes them after the reduce.
            for &member in &group.members {
                assert!(plan.slices.iter().all(|s| !s.contains(member)));
            }
        }
        validate_plan(&specs, &plan).unwrap();
        // A single shard never splits (there is nothing to distribute).
        let solo = plan_shards(&specs, 1, SplitPolicy::Always).unwrap();
        assert!(solo.split.is_empty());
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("randrecon-shard-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn in_process_sharded_run_matches_single_process() {
        use crate::report::outcomes_hash;
        let mut specs = independent(5);
        let mut failing = ScenarioSpec::synthetic_quick("shard-fault", 64, 4, 2);
        failing.attack = AttackSpec::InjectedFault {
            mode: FaultMode::Error,
        };
        specs.push(failing);
        let reference =
            crate::scenario::run_scenarios_failsoft(&specs, RetryPolicy::default()).unwrap();
        let dir = temp_dir("inproc");
        let plan = plan_shards(&specs, 3, SplitPolicy::Never).unwrap();
        let merged = run_sharded_in_process(&specs, &plan, &dir, RetryPolicy::default()).unwrap();
        assert_eq!(outcomes_hash(&merged), outcomes_hash(&reference));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_process_moment_merge_matches_single_process() {
        use crate::report::outcomes_hash;
        let specs = streaming_grouped();
        let reference =
            crate::scenario::run_scenarios_failsoft(&specs, RetryPolicy::default()).unwrap();
        let dir = temp_dir("moment-merge");
        let plan = plan_shards(&specs, 3, SplitPolicy::Always).unwrap();
        assert_eq!(plan.split.len(), 2, "both streaming groups split");
        let merged = run_sharded_in_process(&specs, &plan, &dir, RetryPolicy::default()).unwrap();
        assert_eq!(
            outcomes_hash(&merged),
            outcomes_hash(&reference),
            "moment-merged sharded run must be bit-identical to single-process"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_reports_missing_cells_as_failed_and_checks_tiling() {
        let specs = independent(4);
        let dir = temp_dir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        let r0 = ShardRange::new(0, 2).unwrap();
        let r1 = ShardRange::new(2, 4).unwrap();
        // Only shard 0 ran; shard 1's journal never appeared.
        let first = shard_journal_path(&dir, 0);
        run_shard_worker(&specs, r0, &first, RetryPolicy::default(), None).unwrap();
        let pairs = vec![(r0, first.clone()), (r1, shard_journal_path(&dir, 1))];
        let (outcomes, missing) = merge_shard_journals(&specs, &pairs).unwrap();
        assert_eq!(outcomes.len(), 4);
        assert_eq!(missing, r1.len());
        for (i, outcome) in outcomes.iter().enumerate().skip(2) {
            match outcome {
                ScenarioOutcome::Failed(f) => {
                    assert!(f.error.contains("not recovered"), "{}", f.error);
                    assert_eq!(f.attempts, 0);
                }
                other => panic!("cell {i} should be Failed, got {other:?}"),
            }
        }
        // Tiling violations are located errors, not silent last-wins merges.
        let short = vec![(r0, first.clone())];
        let err = merge_shard_journals(&specs, &short)
            .unwrap_err()
            .to_string();
        assert!(err.contains("cover cells 0..2"), "{err}");
        let overlap = vec![
            (r0, first.clone()),
            (ShardRange::new(1, 4).unwrap(), shard_journal_path(&dir, 1)),
        ];
        let err = merge_shard_journals(&specs, &overlap)
            .unwrap_err()
            .to_string();
        assert!(err.contains("overlap"), "{err}");
        let gap = vec![
            (r0, first.clone()),
            (ShardRange::new(3, 4).unwrap(), shard_journal_path(&dir, 1)),
        ];
        let err = merge_shard_journals(&specs, &gap).unwrap_err().to_string();
        assert!(err.contains("gap"), "{err}");
        assert!(merge_shard_journals(&specs, &[]).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reduce_falls_back_when_a_split_group_is_incomplete() {
        use crate::report::outcomes_hash;
        let specs = streaming_grouped();
        let reference =
            crate::scenario::run_scenarios_failsoft(&specs, RetryPolicy::default()).unwrap();
        let dir = temp_dir("reduce-fallback");
        std::fs::create_dir_all(&dir).unwrap();
        let plan = plan_shards(&specs, 2, SplitPolicy::Always).unwrap();
        // Run only shard 0's worker; shard 1 (and its moment tasks) never
        // ran, so every split group's partials are incomplete and the
        // coordinator self-computes pass 1 — bit-identical, fail-soft.
        let first = shard_journal_path(&dir, 0);
        run_shard_worker_with(
            &specs,
            &plan.slices[0],
            &plan.tasks_for(0),
            &first,
            RetryPolicy::default(),
            WorkerOptions::default(),
        )
        .unwrap();
        let journals = vec![first, shard_journal_path(&dir, 1)];
        let (outcomes, missing) =
            reduce_shard_journals(&specs, &plan, &journals, RetryPolicy::default()).unwrap();
        assert_eq!(missing, 0, "split groups are finished coordinator-side");
        assert_eq!(outcomes_hash(&outcomes), outcomes_hash(&reference));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
