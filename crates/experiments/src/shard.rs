//! Sharded multi-process scenario execution: split a grid into contiguous
//! shards, run each shard in its own worker process against its own
//! journal, and merge the journals into one outcome list **bit-identical**
//! to a single-process [`run_scenarios`](crate::scenario::run_scenarios)
//! run.
//!
//! ## Why sharding composes cleanly here
//!
//! Every scenario's result is a pure function of its spec (all randomness
//! is spec-derived), and workload groups — scenarios sharing {data, noise,
//! engine, seeds} — are independent of each other. So the only constraint
//! a shard split must respect is *group integrity*: a workload group must
//! not straddle a shard boundary, or its members would regenerate the
//! shared workload in two processes (still correct, but wasted work and a
//! broken economy contract). [`plan_shards`] therefore only cuts the grid
//! at positions no group spans, placing cuts as close to the balanced
//! ideal as those positions allow — possibly yielding fewer shards than
//! asked for, never an invalid split.
//!
//! ## The worker ↔ coordinator protocol
//!
//! * The coordinator ([`run_sharded`]) expands the grid once, plans the
//!   shards, and spawns one `std::process::Command` worker per shard
//!   (typically the same binary re-exec'd with `--shard-range a..b`, the
//!   pattern the re-exec determinism suites established).
//! * Each worker ([`run_shard_worker`]) runs its slice through the same
//!   fail-soft machinery as a single-process sweep, journaling every
//!   outcome to a **shard journal** — a [`ResultJournal`] whose version-2
//!   header carries the full-grid fingerprint *plus* the worker's global
//!   index range (see the [journal module docs](crate::journal)). Record
//!   indices are global grid indices, so merging needs no renumbering.
//! * A worker that dies is re-spawned up to
//!   [`ShardedRunConfig::max_restarts`] times; on restart it resumes from
//!   its journal, recomputing only the cells that never landed.
//! * After all workers finish (or exhaust their restarts), the coordinator
//!   recovers every shard journal read-only
//!   ([`ResultJournal::recover_shard`]) and merges by global index
//!   ([`merge_shard_journals`]). The coordinator is itself fail-soft: a
//!   shard that never completed surfaces its unrecovered cells as
//!   [`ScenarioOutcome::Failed`] entries, not a dead sweep.
//!
//! Wall-clock `seconds` aside, the merged outcome list is bit-identical to
//! a single-process run — pinned by the re-exec suite in
//! `tests/shard_tests.rs` and by CI comparing the `outcome hash:` lines of
//! a sharded and an unsharded `scenarios` invocation.

use crate::error::{ExperimentError, Result};
use crate::journal::{CrashPoint, ResultJournal, ResumableRun};
use crate::scenario::{
    execute_specs_failsoft, workload_groups, RetryPolicy, ScenarioFailure, ScenarioOutcome,
    ScenarioSpec,
};
use std::fmt;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Mutex;

fn config_err(reason: impl Into<String>) -> ExperimentError {
    ExperimentError::InvalidConfig {
        reason: reason.into(),
    }
}

// ---------------------------------------------------------------------------
// Shard ranges and planning
// ---------------------------------------------------------------------------

/// A non-empty half-open range `[start, end)` of global grid indices — one
/// shard's slice of an expanded spec list. Displays (and parses) as
/// `start..end`, the format the `scenarios` binary's `--shard-range` flag
/// uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// First global cell index (inclusive).
    pub start: usize,
    /// One past the last global cell index (exclusive).
    pub end: usize,
}

impl ShardRange {
    /// Builds a range, rejecting empty or inverted bounds.
    pub fn new(start: usize, end: usize) -> Result<ShardRange> {
        if start >= end {
            return Err(config_err(format!(
                "shard range {start}..{end} is empty or inverted"
            )));
        }
        Ok(ShardRange { start, end })
    }

    /// Number of cells in the range (always ≥ 1).
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Ranges are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether global index `i` falls inside the range.
    pub fn contains(&self, i: usize) -> bool {
        self.start <= i && i < self.end
    }

    /// Parses the `start..end` rendering (the `--shard-range` flag).
    pub fn parse(s: &str) -> Option<ShardRange> {
        let (start, end) = s.split_once("..")?;
        ShardRange::new(start.trim().parse().ok()?, end.trim().parse().ok()?).ok()
    }
}

impl fmt::Display for ShardRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Splits `specs` into up to `n_shards` contiguous, workload-group-aware
/// ranges tiling `0..specs.len()`.
///
/// A cut position is *valid* if no workload group has members on both
/// sides of it; each of the `n_shards - 1` ideal balanced cut points is
/// moved to the nearest valid position (searching outward, nearer-lower
/// first). When no valid position remains between two cuts the shard count
/// degrades gracefully — a grid that is one giant group yields one shard —
/// so the result always tiles the grid exactly and never splits a group.
pub fn plan_shards(specs: &[ScenarioSpec], n_shards: usize) -> Result<Vec<ShardRange>> {
    if specs.is_empty() {
        return Err(config_err("cannot shard an empty scenario grid"));
    }
    if n_shards == 0 {
        return Err(config_err("shard count must be at least 1"));
    }
    let len = specs.len();
    let mut cut_ok = vec![true; len + 1];
    for group in workload_groups(specs) {
        let lo = *group.iter().min().expect("groups are non-empty");
        let hi = *group.iter().max().expect("groups are non-empty");
        for slot in cut_ok.iter_mut().take(hi + 1).skip(lo + 1) {
            *slot = false;
        }
    }
    let mut cuts: Vec<usize> = vec![0];
    for k in 1..n_shards {
        let ideal = (len * k + n_shards / 2) / n_shards;
        let last = *cuts.last().expect("cuts start with 0");
        let valid = |c: usize| c > last && c < len && cut_ok[c];
        let mut chosen = None;
        for d in 0..len {
            let below = ideal.checked_sub(d).filter(|&c| valid(c));
            let above = Some(ideal + d).filter(|&c| valid(c));
            if let Some(c) = below.or(above) {
                chosen = Some(c);
                break;
            }
            if ideal.saturating_sub(d) <= last && ideal + d >= len {
                break;
            }
        }
        if let Some(c) = chosen {
            cuts.push(c);
        }
    }
    cuts.push(len);
    Ok(cuts
        .windows(2)
        .map(|w| ShardRange {
            start: w[0],
            end: w[1],
        })
        .collect())
}

/// Checks that `plan` tiles `0..specs.len()` exactly — contiguous,
/// in-order, no gaps or overlaps.
fn validate_plan(specs: &[ScenarioSpec], plan: &[ShardRange]) -> Result<()> {
    if plan.is_empty() {
        return Err(config_err("shard plan is empty"));
    }
    let mut expected = 0usize;
    for range in plan {
        if range.start != expected || range.start >= range.end {
            return Err(config_err(format!(
                "shard plan does not tile the grid: expected a shard starting at {expected}, \
                 found {range}"
            )));
        }
        expected = range.end;
    }
    if expected != specs.len() {
        return Err(config_err(format!(
            "shard plan covers {expected} cells but the grid has {}",
            specs.len()
        )));
    }
    Ok(())
}

/// The conventional shard-journal path inside a shard directory.
pub fn shard_journal_path(dir: &Path, shard_index: usize) -> PathBuf {
    dir.join(format!("shard-{shard_index}.journal"))
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// The worker half of a sharded sweep: runs `specs[range]` with the same
/// fail-soft + journal-resume semantics as
/// [`run_scenarios_resumable`](crate::journal::run_scenarios_resumable),
/// but against a **shard journal** keyed to the full grid plus `range`,
/// journaling outcomes under their *global* indices. `crash` installs a
/// deterministic [`CrashPoint`] — how the coordinator's kill-and-restart
/// path is exercised. Returns one outcome per cell of `range`, in range
/// order.
pub fn run_shard_worker(
    specs: &[ScenarioSpec],
    range: ShardRange,
    journal_path: impl Into<PathBuf>,
    policy: RetryPolicy,
    crash: Option<CrashPoint>,
) -> Result<ResumableRun> {
    let (mut journal, recovered) = ResultJournal::open_or_create_shard(journal_path, specs, range)?;
    journal.set_crash_point(crash);

    let mut slots: Vec<Option<ScenarioOutcome>> = vec![None; range.len()];
    for (global, outcome) in recovered {
        // Duplicate indices cannot arise from this runner, but a journal is
        // just a file: last record wins, matching append order.
        slots[global - range.start] = Some(outcome);
    }
    let resumed = slots.iter().filter(|s| s.is_some()).count();

    let pending: Vec<usize> = (range.start..range.end)
        .filter(|&i| slots[i - range.start].is_none())
        .collect();
    let pending_specs: Vec<ScenarioSpec> = pending.iter().map(|&i| specs[i].clone()).collect();
    let executed = pending_specs.len();

    let journal = Mutex::new(journal);
    let fresh = execute_specs_failsoft(&pending_specs, policy, |sub_index, outcome| {
        let mut journal = journal.lock().unwrap_or_else(|e| e.into_inner());
        journal.append(pending[sub_index], outcome)
    })?;
    for (sub_index, outcome) in fresh.into_iter().enumerate() {
        slots[pending[sub_index] - range.start] = Some(outcome);
    }

    Ok(ResumableRun {
        outcomes: slots
            .into_iter()
            .map(|s| s.expect("every shard cell has an outcome"))
            .collect(),
        resumed,
        executed,
    })
}

// ---------------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------------

/// Merges shard journals into one full-grid outcome list by global cell
/// index (read-only recovery; last record wins within each journal). The
/// `(range, journal path)` pairs must tile the grid. Cells no journal
/// holds — a worker that exhausted its restarts mid-shard — surface as
/// [`ScenarioOutcome::Failed`] entries; the second return value counts
/// them.
pub fn merge_shard_journals(
    specs: &[ScenarioSpec],
    shards: &[(ShardRange, PathBuf)],
) -> Result<(Vec<ScenarioOutcome>, usize)> {
    let plan: Vec<ShardRange> = shards.iter().map(|(range, _)| *range).collect();
    validate_plan(specs, &plan)?;
    let mut slots: Vec<Option<ScenarioOutcome>> = vec![None; specs.len()];
    for (range, path) in shards {
        for (global, outcome) in ResultJournal::recover_shard(path, specs, *range)? {
            slots[global] = Some(outcome);
        }
    }
    let mut missing = 0usize;
    let outcomes = slots
        .into_iter()
        .zip(specs)
        .map(|(slot, spec)| {
            slot.unwrap_or_else(|| {
                missing += 1;
                ScenarioOutcome::Failed(ScenarioFailure {
                    label: spec.label.clone(),
                    attack: spec.attack.label(),
                    engine: spec.engine.label(),
                    error: "cell not recovered from any shard journal (worker exhausted \
                            restarts before journaling it)"
                        .to_string(),
                    transient: false,
                    attempts: 0,
                })
            })
        })
        .collect();
    Ok((outcomes, missing))
}

/// How the coordinator treats worker processes.
#[derive(Debug, Clone, Copy)]
pub struct ShardedRunConfig {
    /// Restarts granted to each shard beyond its first attempt. A restarted
    /// worker resumes from its journal, so each restart recomputes only the
    /// cells that never landed.
    pub max_restarts: u32,
}

impl Default for ShardedRunConfig {
    fn default() -> Self {
        ShardedRunConfig { max_restarts: 2 }
    }
}

/// One spawn request handed to the coordinator's command factory.
#[derive(Debug)]
pub struct ShardSpawn<'a> {
    /// Shard number (index into the plan).
    pub index: usize,
    /// The global cell range this worker owns.
    pub range: ShardRange,
    /// The shard journal the worker must write.
    pub journal: &'a Path,
    /// 0 on the first spawn, incremented on each restart — lets test
    /// harnesses inject a kill on the first attempt only.
    pub attempt: u32,
}

/// Per-shard postmortem from [`run_sharded`].
#[derive(Debug)]
pub struct ShardStatus {
    /// The global cell range the shard owned.
    pub range: ShardRange,
    /// Its journal path.
    pub journal: PathBuf,
    /// Worker processes spawned (1 = no restarts).
    pub attempts: u32,
    /// Whether some attempt exited successfully.
    pub completed: bool,
}

/// What a sharded sweep produced.
#[derive(Debug)]
pub struct ShardedRun {
    /// One outcome per grid cell, in grid order — merged from the shard
    /// journals.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Per-shard attempt counts and completion flags, in plan order.
    pub shards: Vec<ShardStatus>,
    /// Cells reported `Failed` because no journal held them.
    pub unrecovered: usize,
}

/// The coordinator: spawns one worker process per shard (commands built by
/// `command_for`, typically re-execing the current binary with
/// `--shard-range`), restarts failed workers up to
/// [`ShardedRunConfig::max_restarts`] times — each restart resumes from the
/// shard journal — then merges every journal into a full-grid outcome
/// list. Fail-soft: a shard that exhausts its restarts surfaces its
/// unjournaled cells as `Failed` outcomes rather than killing the sweep.
///
/// Workers within a round run concurrently; `stdout`/`stderr` are
/// inherited from the coordinator.
pub fn run_sharded<F>(
    specs: &[ScenarioSpec],
    plan: &[ShardRange],
    shard_dir: &Path,
    config: &ShardedRunConfig,
    mut command_for: F,
) -> Result<ShardedRun>
where
    F: FnMut(&ShardSpawn<'_>) -> Command,
{
    validate_plan(specs, plan)?;
    std::fs::create_dir_all(shard_dir).map_err(|e| ExperimentError::IoAt {
        path: shard_dir.to_path_buf(),
        source: e,
    })?;
    let mut shards: Vec<ShardStatus> = plan
        .iter()
        .enumerate()
        .map(|(i, &range)| ShardStatus {
            range,
            journal: shard_journal_path(shard_dir, i),
            attempts: 0,
            completed: false,
        })
        .collect();

    loop {
        let pending: Vec<usize> = shards
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.completed && s.attempts <= config.max_restarts)
            .map(|(i, _)| i)
            .collect();
        if pending.is_empty() {
            break;
        }
        let mut children = Vec::with_capacity(pending.len());
        for &i in &pending {
            let spawn = ShardSpawn {
                index: i,
                range: shards[i].range,
                journal: &shards[i].journal,
                attempt: shards[i].attempts,
            };
            let mut command = command_for(&spawn);
            shards[i].attempts += 1;
            // A spawn failure burns the attempt, like a worker that died
            // instantly — the restart loop (and ultimately the fail-soft
            // merge) absorbs it.
            if let Ok(child) = command.spawn() {
                children.push((i, child));
            }
        }
        for (i, mut child) in children {
            if matches!(child.wait(), Ok(status) if status.success()) {
                shards[i].completed = true;
            }
        }
    }

    let pairs: Vec<(ShardRange, PathBuf)> = shards
        .iter()
        .map(|s| (s.range, s.journal.clone()))
        .collect();
    let (outcomes, unrecovered) = merge_shard_journals(specs, &pairs)?;
    Ok(ShardedRun {
        outcomes,
        shards,
        unrecovered,
    })
}

/// Runs a sharded sweep without spawning processes: each shard executes
/// [`run_shard_worker`] in this process (sequentially), then the journals
/// are merged exactly as [`run_sharded`] would. This is the bench/test
/// harness for measuring pure coordination overhead — plan, per-shard
/// journals, recovery, merge — without process spawn cost; existing shard
/// journals in `shard_dir` are resumed, so benches must clear the
/// directory between iterations.
pub fn run_sharded_in_process(
    specs: &[ScenarioSpec],
    plan: &[ShardRange],
    shard_dir: &Path,
    policy: RetryPolicy,
) -> Result<Vec<ScenarioOutcome>> {
    validate_plan(specs, plan)?;
    std::fs::create_dir_all(shard_dir).map_err(|e| ExperimentError::IoAt {
        path: shard_dir.to_path_buf(),
        source: e,
    })?;
    let mut pairs = Vec::with_capacity(plan.len());
    for (i, &range) in plan.iter().enumerate() {
        let path = shard_journal_path(shard_dir, i);
        run_shard_worker(specs, range, &path, policy, None)?;
        pairs.push((range, path));
    }
    merge_shard_journals(specs, &pairs).map(|(outcomes, _)| outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultMode;
    use crate::scenario::AttackSpec;

    /// `n` independent single-cell workloads (distinct seeds → no sharing).
    fn independent(n: usize) -> Vec<ScenarioSpec> {
        (0..n)
            .map(|i| {
                let mut spec = ScenarioSpec::synthetic_quick(&format!("cell{i}"), 64, 4, 2);
                spec.seed = 0x5AD_0000 + i as u64;
                spec
            })
            .collect()
    }

    /// Two workload groups of three: cells 0–2 share one workload, 3–5
    /// another (the attack axis varies within each group).
    fn grouped() -> Vec<ScenarioSpec> {
        use crate::SchemeKind;
        let mut specs = Vec::new();
        for seed in [1u64, 2u64] {
            for scheme in [SchemeKind::Udr, SchemeKind::PcaDr, SchemeKind::BeDr] {
                let mut spec = ScenarioSpec::synthetic_quick("group", 64, 4, 2);
                spec.seed = seed;
                spec.attack = AttackSpec::Scheme(scheme);
                specs.push(spec);
            }
        }
        specs
    }

    #[test]
    fn shard_range_display_parse_roundtrip() {
        let range = ShardRange::new(3, 11).unwrap();
        assert_eq!(range.to_string(), "3..11");
        assert_eq!(ShardRange::parse("3..11"), Some(range));
        assert_eq!(ShardRange::parse(" 3 .. 11 "), Some(range));
        assert!(ShardRange::parse("11..3").is_none());
        assert!(ShardRange::parse("5..5").is_none());
        assert!(ShardRange::parse("nope").is_none());
        assert!(ShardRange::new(4, 4).is_err());
        assert_eq!(range.len(), 8);
        assert!(range.contains(3) && range.contains(10));
        assert!(!range.contains(11) && !range.contains(2));
    }

    #[test]
    fn plan_tiles_grid_and_balances_independent_cells() {
        let specs = independent(10);
        let plan = plan_shards(&specs, 3).unwrap();
        assert_eq!(plan.len(), 3);
        assert_eq!(plan[0].start, 0);
        assert_eq!(plan.last().unwrap().end, 10);
        for pair in plan.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        let sizes: Vec<usize> = plan.iter().map(|r| r.len()).collect();
        assert!(sizes.iter().all(|&s| (3..=4).contains(&s)), "{sizes:?}");
        // One shard = the whole grid; shards > cells clamp to cell count.
        assert_eq!(plan_shards(&specs, 1).unwrap().len(), 1);
        assert_eq!(plan_shards(&specs, 100).unwrap().len(), 10);
        assert!(plan_shards(&[], 2).is_err());
        assert!(plan_shards(&specs, 0).is_err());
    }

    #[test]
    fn plan_never_splits_a_workload_group() {
        let specs = grouped();
        let groups = workload_groups(&specs);
        assert_eq!(groups.len(), 2, "fixture should form two groups");
        // Any shard count: every group stays within one shard.
        for n in 1..=6 {
            let plan = plan_shards(&specs, n).unwrap();
            for group in &groups {
                let holder: Vec<usize> = plan
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| group.iter().any(|&i| r.contains(i)))
                    .map(|(s, _)| s)
                    .collect();
                assert_eq!(holder.len(), 1, "group {group:?} split across {holder:?}");
            }
        }
        // The only valid cut is at 3, so at most two shards exist.
        assert_eq!(plan_shards(&specs, 6).unwrap().len(), 2);
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("randrecon-shard-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn in_process_sharded_run_matches_single_process() {
        use crate::report::outcomes_hash;
        let mut specs = independent(5);
        let mut failing = ScenarioSpec::synthetic_quick("shard-fault", 64, 4, 2);
        failing.attack = AttackSpec::InjectedFault {
            mode: FaultMode::Error,
        };
        specs.push(failing);
        let reference =
            crate::scenario::run_scenarios_failsoft(&specs, RetryPolicy::default()).unwrap();
        let dir = temp_dir("inproc");
        let plan = plan_shards(&specs, 3).unwrap();
        let merged = run_sharded_in_process(&specs, &plan, &dir, RetryPolicy::default()).unwrap();
        assert_eq!(outcomes_hash(&merged), outcomes_hash(&reference));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_reports_missing_cells_as_failed() {
        let specs = independent(4);
        let dir = temp_dir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        let plan = plan_shards(&specs, 2).unwrap();
        // Only shard 0 ran; shard 1's journal never appeared.
        let first = shard_journal_path(&dir, 0);
        run_shard_worker(&specs, plan[0], &first, RetryPolicy::default(), None).unwrap();
        let pairs = vec![(plan[0], first), (plan[1], shard_journal_path(&dir, 1))];
        let (outcomes, missing) = merge_shard_journals(&specs, &pairs).unwrap();
        assert_eq!(outcomes.len(), 4);
        assert_eq!(missing, plan[1].len());
        for (i, outcome) in outcomes
            .iter()
            .enumerate()
            .take(plan[1].end)
            .skip(plan[1].start)
        {
            match outcome {
                ScenarioOutcome::Failed(f) => {
                    assert!(f.error.contains("not recovered"), "{}", f.error);
                    assert_eq!(f.attempts, 0);
                }
                other => panic!("cell {i} should be Failed, got {other:?}"),
            }
        }
        // A plan that does not tile the grid is rejected.
        let bad = vec![(plan[0], shard_journal_path(&dir, 0))];
        assert!(merge_shard_journals(&specs, &bad).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
