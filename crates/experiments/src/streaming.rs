//! Streaming workload scenarios: attack pipelines at record counts that are
//! generated, disguised, attacked and scored **without ever materializing an
//! `n × m` matrix**.
//!
//! A [`StreamingScenario`] wires together the chunked synthetic generator
//! (`randrecon_data::chunks::SyntheticChunkSource`), the chunk-wise
//! disguising adapter (`randrecon_noise::additive::DisguisedChunkSource`),
//! the two-pass streaming attacks (`randrecon_core::streaming`) and the
//! metrics-only MSE sink. Peak memory is a few chunks plus `m × m` state,
//! so the 500 k-record scenario runs comfortably where the in-memory
//! pipeline would need hundreds of megabytes of record storage.

use crate::error::{ExperimentError, Result};
use randrecon_core::streaming::{MseSink, StreamingBeDr, StreamingPcaDr};
use randrecon_data::chunks::SyntheticChunkSource;
use randrecon_data::synthetic::EigenSpectrum;
use randrecon_noise::additive::{AdditiveRandomizer, DisguisedChunkSource};
use std::fmt;
use std::time::Instant;

/// Configuration of one streaming attack scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingScenario {
    /// Records to stream.
    pub n_records: usize,
    /// Attributes per record.
    pub n_attributes: usize,
    /// Rows per chunk (the memory knob).
    pub chunk_rows: usize,
    /// Principal components of the synthetic workload.
    pub principal_components: usize,
    /// Standard deviation of the independent Gaussian noise.
    pub noise_sigma: f64,
    /// Base seed (generator and noise derive child seeds from it).
    pub seed: u64,
}

impl StreamingScenario {
    /// A small smoke-sized scenario for tests.
    pub fn quick() -> Self {
        StreamingScenario {
            n_records: 10_000,
            n_attributes: 16,
            chunk_rows: 2_048,
            principal_components: 3,
            noise_sigma: 8.0,
            seed: 7,
        }
    }

    /// The PR-3 trajectory size shared with the in-memory benches:
    /// 50 k × 64.
    pub fn standard_50k() -> Self {
        StreamingScenario {
            n_records: 50_000,
            n_attributes: 64,
            chunk_rows: 4_096,
            principal_components: 6,
            noise_sigma: 10.0,
            seed: 50,
        }
    }

    /// The bounded-memory flagship: 500 k × 64 (an in-memory run would need
    /// ~256 MB per record matrix; streaming peaks at a few chunk buffers).
    pub fn large_500k() -> Self {
        StreamingScenario {
            n_records: 500_000,
            n_attributes: 64,
            chunk_rows: 8_192,
            principal_components: 6,
            noise_sigma: 10.0,
            seed: 500,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.n_records < 2
            || self.n_attributes == 0
            || self.chunk_rows == 0
            || self.principal_components == 0
            || self.principal_components > self.n_attributes
            || !(self.noise_sigma > 0.0 && self.noise_sigma.is_finite())
        {
            return Err(ExperimentError::InvalidConfig {
                reason: format!("invalid streaming scenario: {self:?}"),
            });
        }
        Ok(())
    }

    /// Runs streaming BE-DR and PCA-DR end to end against this scenario,
    /// scoring both with a metrics-only sink against the original record
    /// stream.
    pub fn run(&self) -> Result<StreamingOutcome> {
        self.validate()?;
        let spectrum = EigenSpectrum::principal_plus_small(
            self.principal_components,
            400.0,
            self.n_attributes,
            4.0,
        )?;
        let original =
            SyntheticChunkSource::generate(&spectrum, self.n_records, self.chunk_rows, self.seed)?;
        let randomizer = AdditiveRandomizer::gaussian(self.noise_sigma)?;
        let mut disguised = DisguisedChunkSource::new(original.clone(), randomizer, self.seed + 1);
        let noise = disguised.model().clone();

        let be_dr = {
            let mut reference = original.clone();
            let mut sink = MseSink::new(&mut reference)?;
            let start = Instant::now();
            let report = StreamingBeDr::default().run(&mut disguised, &noise, &mut sink)?;
            SchemeOutcome::from_run(start, self.n_records, sink.mse(), report.components_kept)
        };
        let pca_dr = {
            let mut reference = original.clone();
            let mut sink = MseSink::new(&mut reference)?;
            let start = Instant::now();
            let report = StreamingPcaDr::largest_gap().run(&mut disguised, &noise, &mut sink)?;
            SchemeOutcome::from_run(start, self.n_records, sink.mse(), report.components_kept)
        };

        Ok(StreamingOutcome {
            scenario: *self,
            be_dr,
            pca_dr,
        })
    }
}

/// Timing and accuracy of one streaming attack run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemeOutcome {
    /// Mean squared error per value against the original stream.
    pub mse: f64,
    /// Wall-clock seconds for the full two-pass run (including chunk
    /// generation and disguising, which stream through the same sweep).
    pub seconds: f64,
    /// Records per second of end-to-end throughput.
    pub records_per_second: f64,
    /// Principal components kept (PCA-DR only).
    pub components_kept: Option<usize>,
}

impl SchemeOutcome {
    fn from_run(
        start: Instant,
        n_records: usize,
        mse: f64,
        components_kept: Option<usize>,
    ) -> Self {
        let seconds = start.elapsed().as_secs_f64();
        SchemeOutcome {
            mse,
            seconds,
            records_per_second: n_records as f64 / seconds.max(1e-9),
            components_kept,
        }
    }

    /// Root-mean-square error per value.
    pub fn rmse(&self) -> f64 {
        self.mse.sqrt()
    }
}

/// Results of a [`StreamingScenario`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingOutcome {
    /// The configuration that produced these numbers.
    pub scenario: StreamingScenario,
    /// Streaming BE-DR results.
    pub be_dr: SchemeOutcome,
    /// Streaming PCA-DR results.
    pub pca_dr: SchemeOutcome,
}

impl StreamingOutcome {
    /// The MSE an attacker gets for free by returning the disguised data
    /// unchanged (NDR): the per-value noise variance σ².
    pub fn noise_floor_mse(&self) -> f64 {
        self.scenario.noise_sigma * self.scenario.noise_sigma
    }
}

impl fmt::Display for StreamingOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = &self.scenario;
        writeln!(
            f,
            "streaming scenario: {} records x {} attributes, chunk {}, sigma {}",
            s.n_records, s.n_attributes, s.chunk_rows, s.noise_sigma
        )?;
        writeln!(f, "  noise floor (NDR) MSE: {:.4}", self.noise_floor_mse())?;
        writeln!(
            f,
            "  BE-DR : MSE {:.4}  ({:.2} s, {:.0} records/s)",
            self.be_dr.mse, self.be_dr.seconds, self.be_dr.records_per_second
        )?;
        writeln!(
            f,
            "  PCA-DR: MSE {:.4}  ({:.2} s, {:.0} records/s, p = {})",
            self.pca_dr.mse,
            self.pca_dr.seconds,
            self.pca_dr.records_per_second,
            self.pca_dr
                .components_kept
                .map_or_else(|| "?".to_string(), |p| p.to_string())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scenario_attacks_beat_the_noise_floor() {
        let outcome = StreamingScenario::quick().run().unwrap();
        let floor = outcome.noise_floor_mse();
        assert!(
            outcome.be_dr.mse < 0.5 * floor,
            "BE-DR mse {} vs noise floor {floor}",
            outcome.be_dr.mse
        );
        assert!(
            outcome.pca_dr.mse < floor,
            "PCA-DR mse {} vs noise floor {floor}",
            outcome.pca_dr.mse
        );
        // BE-DR is at least as strong as PCA-DR (the paper's Section 6 result).
        assert!(outcome.be_dr.mse <= outcome.pca_dr.mse * 1.05);
        assert_eq!(outcome.pca_dr.components_kept, Some(3));
        assert!(outcome.be_dr.records_per_second > 0.0);
        let rendered = outcome.to_string();
        assert!(rendered.contains("BE-DR"));
        assert!(rendered.contains("records/s"));
    }

    #[test]
    fn scenario_validation_rejects_nonsense() {
        let mut s = StreamingScenario::quick();
        s.n_records = 1;
        assert!(s.run().is_err());
        let mut s = StreamingScenario::quick();
        s.chunk_rows = 0;
        assert!(s.run().is_err());
        let mut s = StreamingScenario::quick();
        s.principal_components = 0;
        assert!(s.run().is_err());
        let mut s = StreamingScenario::quick();
        s.noise_sigma = -1.0;
        assert!(s.run().is_err());
    }
}
