//! Streaming workload scenarios: attack pipelines at record counts that are
//! generated, disguised, attacked and scored **without ever materializing an
//! `n × m` matrix**.
//!
//! A [`StreamingScenario`] is now a thin named grid over the declarative
//! scenario engine ([`crate::scenario`]): its [`StreamingScenario::grid`]
//! sweeps the paper's **full five-scheme comparison** (NDR / UDR / SF /
//! PCA-DR / BE-DR) across the streaming engine, and the runner's workload
//! grouping accumulates pass-1 moments once per stream and shares them
//! between the schemes. Peak memory is a few chunks plus `m × m` state, so
//! the 500 k-record scenario runs comfortably where the in-memory pipeline
//! would need hundreds of megabytes of record storage. The helper functions
//! here ([`run_streaming_scheme`], [`evaluate_streaming_schemes`]) expose
//! the same scheme-dispatch for callers that hold their own chunk sources.

use crate::config::SchemeKind;
use crate::error::{ExperimentError, Result};
use crate::scenario::{
    AttackSpec, DataSpec, EngineSpec, GridAxis, MetricKind, NoiseSpec, ScenarioGrid, ScenarioSpec,
    SpectrumSpec,
};
use randrecon_core::engine::Attack;
use randrecon_core::streaming::{
    MseSink, RecordSink, StreamMoments, StreamingDriver, StreamingReport,
};
use randrecon_data::chunks::RecordChunkSource;
use randrecon_noise::NoiseModel;
use std::fmt;

/// Pass 2 of one streaming scheme against moments accumulated earlier from
/// the same source.
///
/// The scheme dispatch routes through the core attack engine
/// ([`Attack::standard`]`(scheme).chunk_reconstructor()`), so every
/// [`SchemeKind`] runs its paper-default configuration (largest-gap
/// selection for PCA-DR, textbook Marčenko–Pastur bound for SF,
/// Gaussian-moments prior for UDR). Pass 1 is accumulated **once** per
/// stream (`StreamingDriver::accumulate_moments`) and shared across all
/// five schemes — they all consume the same `(n, μ̂_y, Σ̂_y)`, so
/// re-sweeping the stream per scheme would be pure waste.
pub fn run_streaming_scheme_with_moments<S, K>(
    scheme: SchemeKind,
    moments: &StreamMoments,
    source: &mut S,
    noise: &NoiseModel,
    sink: &mut K,
) -> Result<StreamingReport>
where
    S: RecordChunkSource + Send + ?Sized,
    K: RecordSink + ?Sized,
{
    let attack = Attack::standard(scheme).chunk_reconstructor()?;
    Ok(StreamingDriver::default().run_with_moments(
        attack.as_ref(),
        moments,
        source,
        noise,
        sink,
    )?)
}

/// Runs one streaming scheme end to end (both passes) through the unified
/// driver — the single-scheme convenience over
/// [`run_streaming_scheme_with_moments`].
pub fn run_streaming_scheme<S, K>(
    scheme: SchemeKind,
    source: &mut S,
    noise: &NoiseModel,
    sink: &mut K,
) -> Result<StreamingReport>
where
    S: RecordChunkSource + Send + ?Sized,
    K: RecordSink + ?Sized,
{
    let moments = StreamingDriver::accumulate_moments(source)?;
    run_streaming_scheme_with_moments(scheme, &moments, source, noise, sink)
}

/// The streaming analogue of [`crate::workload::evaluate_schemes`]: runs the
/// requested schemes against one disguised chunk source, scoring each with a
/// metrics-only MSE sink against the original record stream, and returns
/// `(scheme, RMSE)` in the order requested — with `O(chunk · m + m²)`
/// memory, never materializing either stream. Pass 1 runs once; every
/// scheme shares the accumulated moments.
pub fn evaluate_streaming_schemes<S, R>(
    disguised: &mut S,
    original: &mut R,
    noise: &NoiseModel,
    schemes: &[SchemeKind],
) -> Result<Vec<(SchemeKind, f64)>>
where
    S: RecordChunkSource + Send + ?Sized,
    R: RecordChunkSource,
{
    let moments = StreamingDriver::accumulate_moments(disguised)?;
    let mut out = Vec::with_capacity(schemes.len());
    for &scheme in schemes {
        let mut sink = MseSink::new(original)?;
        run_streaming_scheme_with_moments(scheme, &moments, disguised, noise, &mut sink)?;
        out.push((scheme, sink.rmse()));
    }
    Ok(out)
}

/// Configuration of one streaming attack scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingScenario {
    /// Records to stream.
    pub n_records: usize,
    /// Attributes per record.
    pub n_attributes: usize,
    /// Rows per chunk (the memory knob).
    pub chunk_rows: usize,
    /// Principal components of the synthetic workload.
    pub principal_components: usize,
    /// Standard deviation of the independent Gaussian noise.
    pub noise_sigma: f64,
    /// Base seed (generator and noise derive child seeds from it).
    pub seed: u64,
}

impl StreamingScenario {
    /// A small smoke-sized scenario for tests.
    pub fn quick() -> Self {
        StreamingScenario {
            n_records: 10_000,
            n_attributes: 16,
            chunk_rows: 2_048,
            principal_components: 3,
            noise_sigma: 8.0,
            seed: 7,
        }
    }

    /// The PR-3 trajectory size shared with the in-memory benches:
    /// 50 k × 64.
    pub fn standard_50k() -> Self {
        StreamingScenario {
            n_records: 50_000,
            n_attributes: 64,
            chunk_rows: 4_096,
            principal_components: 6,
            noise_sigma: 10.0,
            seed: 50,
        }
    }

    /// The bounded-memory flagship: 500 k × 64 (an in-memory run would need
    /// ~256 MB per record matrix; streaming peaks at a few chunk buffers).
    pub fn large_500k() -> Self {
        StreamingScenario {
            n_records: 500_000,
            n_attributes: 64,
            chunk_rows: 8_192,
            principal_components: 6,
            noise_sigma: 10.0,
            seed: 500,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.n_records < 2
            || self.n_attributes == 0
            || self.chunk_rows == 0
            || self.principal_components == 0
            || self.principal_components > self.n_attributes
            || !(self.noise_sigma > 0.0 && self.noise_sigma.is_finite())
        {
            return Err(ExperimentError::InvalidConfig {
                reason: format!("invalid streaming scenario: {self:?}"),
            });
        }
        Ok(())
    }

    /// The scenario as a declarative five-scheme grid over the streaming
    /// engine. The runner's workload grouping accumulates pass-1 moments
    /// once and shares them across all five schemes, exactly like the old
    /// hand-written sweep; the pinned seeds (`dataset_seed = seed`,
    /// `noise_seed = seed + 1`) reproduce its streams verbatim.
    pub fn grid(&self) -> ScenarioGrid {
        ScenarioGrid {
            base: ScenarioSpec {
                label: "streaming".to_string(),
                x: 0.0,
                data: DataSpec::SyntheticMvn {
                    spectrum: SpectrumSpec::PrincipalPlusSmall {
                        p: self.principal_components,
                        principal: 400.0,
                        m: self.n_attributes,
                        small: 4.0,
                    },
                    records: self.n_records,
                },
                noise: NoiseSpec::Gaussian {
                    sigma: self.noise_sigma,
                },
                attack: AttackSpec::Scheme(SchemeKind::BeDr),
                engine: EngineSpec::Streaming {
                    chunk_rows: self.chunk_rows,
                },
                metrics: vec![MetricKind::Mse],
                trials: 1,
                seed: self.seed,
                seed_offset: 0,
                dataset_seed: Some(self.seed),
                noise_seed: Some(self.seed + 1),
            },
            axes: vec![GridAxis::schemes(&SchemeKind::all())],
        }
    }

    /// Runs all five streaming schemes end to end against this scenario,
    /// scoring each with a metrics-only sink against the original record
    /// stream.
    pub fn run(&self) -> Result<StreamingOutcome> {
        self.validate()?;
        let results = self.grid().run()?;
        let outcome_of = |scheme: SchemeKind| -> Result<SchemeOutcome> {
            let r = results
                .iter()
                .find(|r| r.scheme == Some(scheme))
                .ok_or_else(|| ExperimentError::InvalidConfig {
                    reason: format!(
                        "streaming sweep produced no result for scheme {}",
                        scheme.label()
                    ),
                })?;
            let mse = r
                .metric(MetricKind::Mse)
                .ok_or_else(|| ExperimentError::MetricMissing {
                    label: r.label.clone(),
                    metric: "mse",
                })?;
            Ok(SchemeOutcome {
                mse,
                seconds: r.seconds,
                records_per_second: self.n_records as f64 / r.seconds.max(1e-9),
                components_kept: r.components_kept,
            })
        };
        Ok(StreamingOutcome {
            scenario: *self,
            ndr: outcome_of(SchemeKind::Ndr)?,
            udr: outcome_of(SchemeKind::Udr)?,
            sf: outcome_of(SchemeKind::SpectralFiltering)?,
            pca_dr: outcome_of(SchemeKind::PcaDr)?,
            be_dr: outcome_of(SchemeKind::BeDr)?,
        })
    }
}

/// Timing and accuracy of one streaming attack run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemeOutcome {
    /// Mean squared error per value against the original stream.
    pub mse: f64,
    /// Wall-clock seconds for the scheme's prepare + reconstruction sweep
    /// (chunk generation and disguising stream through the sweep; the
    /// pass-1 moment accumulation runs once per scenario and is shared by
    /// all five schemes, so it is not attributed to any one of them).
    pub seconds: f64,
    /// Records per second of end-to-end throughput.
    pub records_per_second: f64,
    /// Principal/signal components kept (projection schemes only).
    pub components_kept: Option<usize>,
}

impl SchemeOutcome {
    /// Root-mean-square error per value.
    pub fn rmse(&self) -> f64 {
        self.mse.sqrt()
    }
}

/// Results of a [`StreamingScenario`] run: the full five-scheme comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingOutcome {
    /// The configuration that produced these numbers.
    pub scenario: StreamingScenario,
    /// Streaming NDR (the `X̂ = Y` noise floor) results.
    pub ndr: SchemeOutcome,
    /// Streaming UDR (Gaussian-moments posterior) results.
    pub udr: SchemeOutcome,
    /// Streaming spectral filtering results.
    pub sf: SchemeOutcome,
    /// Streaming PCA-DR results.
    pub pca_dr: SchemeOutcome,
    /// Streaming BE-DR results.
    pub be_dr: SchemeOutcome,
}

impl StreamingOutcome {
    /// The MSE an attacker gets for free by returning the disguised data
    /// unchanged (NDR): the per-value noise variance σ².
    pub fn noise_floor_mse(&self) -> f64 {
        self.scenario.noise_sigma * self.scenario.noise_sigma
    }

    /// The outcomes in the paper's scheme order, labelled.
    pub fn schemes(&self) -> [(SchemeKind, SchemeOutcome); 5] {
        [
            (SchemeKind::Ndr, self.ndr),
            (SchemeKind::Udr, self.udr),
            (SchemeKind::SpectralFiltering, self.sf),
            (SchemeKind::PcaDr, self.pca_dr),
            (SchemeKind::BeDr, self.be_dr),
        ]
    }
}

impl fmt::Display for StreamingOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = &self.scenario;
        writeln!(
            f,
            "streaming scenario: {} records x {} attributes, chunk {}, sigma {}",
            s.n_records, s.n_attributes, s.chunk_rows, s.noise_sigma
        )?;
        writeln!(
            f,
            "  theoretical noise floor (NDR) MSE: {:.4}",
            self.noise_floor_mse()
        )?;
        for (scheme, outcome) in self.schemes() {
            write!(
                f,
                "  {:<6}: MSE {:.4}  ({:.2} s, {:.0} records/s",
                scheme.label(),
                outcome.mse,
                outcome.seconds,
                outcome.records_per_second
            )?;
            if let Some(p) = outcome.components_kept {
                write!(f, ", p = {p}")?;
            }
            writeln!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use randrecon_data::chunks::SyntheticChunkSource;
    use randrecon_data::synthetic::EigenSpectrum;
    use randrecon_noise::additive::{AdditiveRandomizer, DisguisedChunkSource};

    #[test]
    fn quick_scenario_runs_all_five_schemes_with_the_expected_ordering() {
        let outcome = StreamingScenario::quick().run().unwrap();
        let floor = outcome.noise_floor_mse();
        // NDR measures the empirical noise floor.
        assert!(
            (outcome.ndr.mse - floor).abs() / floor < 0.1,
            "NDR mse {} should sit at the σ² = {floor} noise floor",
            outcome.ndr.mse
        );
        // Every real attack beats the floor. PCA-DR beats UDR on this
        // correlated workload (3 principal components out of 16 attributes);
        // SF only has to beat the floor — its Marčenko–Pastur bound sits
        // right at the bulk edge here, and over-keeping components is
        // exactly the SF weakness the paper documents.
        assert!(outcome.udr.mse < 0.8 * floor, "UDR {}", outcome.udr.mse);
        assert!(outcome.sf.mse < 0.8 * floor, "SF {}", outcome.sf.mse);
        assert!(
            outcome.pca_dr.mse < outcome.udr.mse,
            "PCA-DR {} vs UDR {}",
            outcome.pca_dr.mse,
            outcome.udr.mse
        );
        assert!(
            outcome.be_dr.mse < 0.5 * floor,
            "BE-DR mse {} vs noise floor {floor}",
            outcome.be_dr.mse
        );
        // BE-DR is at least as strong as PCA-DR (the paper's Section 6 result).
        assert!(outcome.be_dr.mse <= outcome.pca_dr.mse * 1.05);
        assert_eq!(outcome.pca_dr.components_kept, Some(3));
        assert_eq!(outcome.ndr.components_kept, None);
        assert!(outcome.be_dr.records_per_second > 0.0);
        let rendered = outcome.to_string();
        for label in ["NDR", "UDR", "SF", "PCA-DR", "BE-DR"] {
            assert!(rendered.contains(label), "missing {label} in:\n{rendered}");
        }
        assert!(rendered.contains("records/s"));
    }

    #[test]
    fn evaluate_streaming_schemes_orders_results_like_the_in_memory_analogue() {
        let scenario = StreamingScenario {
            n_records: 3_000,
            n_attributes: 8,
            chunk_rows: 512,
            principal_components: 2,
            noise_sigma: 6.0,
            seed: 31,
        };
        let spectrum = EigenSpectrum::principal_plus_small(
            scenario.principal_components,
            400.0,
            scenario.n_attributes,
            4.0,
        )
        .unwrap();
        let mut original = SyntheticChunkSource::generate(
            &spectrum,
            scenario.n_records,
            scenario.chunk_rows,
            scenario.seed,
        )
        .unwrap();
        let randomizer = AdditiveRandomizer::gaussian(scenario.noise_sigma).unwrap();
        let mut disguised =
            DisguisedChunkSource::new(original.clone(), randomizer, scenario.seed + 1);
        let noise = disguised.model().clone();

        let schemes = [
            SchemeKind::Ndr,
            SchemeKind::Udr,
            SchemeKind::SpectralFiltering,
            SchemeKind::PcaDr,
            SchemeKind::BeDr,
        ];
        let results =
            evaluate_streaming_schemes(&mut disguised, &mut original, &noise, &schemes).unwrap();
        assert_eq!(results.len(), 5);
        for (i, &(scheme, rmse)) in results.iter().enumerate() {
            assert_eq!(scheme, schemes[i]);
            assert!(rmse.is_finite() && rmse >= 0.0);
        }
        // On this correlated workload BE-DR beats the NDR baseline.
        assert!(results[4].1 < results[0].1);
    }

    #[test]
    fn scenario_validation_rejects_nonsense() {
        let mut s = StreamingScenario::quick();
        s.n_records = 1;
        assert!(s.run().is_err());
        let mut s = StreamingScenario::quick();
        s.chunk_rows = 0;
        assert!(s.run().is_err());
        let mut s = StreamingScenario::quick();
        s.principal_components = 0;
        assert!(s.run().is_err());
        let mut s = StreamingScenario::quick();
        s.noise_sigma = -1.0;
        assert!(s.run().is_err());
    }
}
