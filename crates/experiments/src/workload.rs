//! Shared workload evaluation: run a set of attacks against one disguised
//! data set and report their RMSE.

use crate::config::SchemeKind;
use crate::error::Result;
use randrecon_core::engine::Attack;
use randrecon_data::DataTable;
use randrecon_metrics::rmse;
use randrecon_noise::NoiseModel;

/// Evaluates the requested schemes against a single disguised data set and
/// returns `(scheme, RMSE against the original)` in the order requested.
/// Dispatch routes through the core attack engine
/// ([`Attack::standard`]`(scheme)`), the same call site the scenario runner
/// uses.
pub fn evaluate_schemes(
    original: &DataTable,
    disguised: &DataTable,
    noise: &NoiseModel,
    schemes: &[SchemeKind],
) -> Result<Vec<(SchemeKind, f64)>> {
    let mut out = Vec::with_capacity(schemes.len());
    for &scheme in schemes {
        let reconstruction = Attack::standard(scheme).reconstruct_table(disguised, noise)?;
        out.push((scheme, rmse(original, &reconstruction)?));
    }
    Ok(out)
}

/// Averages per-scheme RMSE values across repeated trials (same scheme order
/// as the individual runs).
pub fn average_trials(trials: &[Vec<(SchemeKind, f64)>]) -> Vec<(SchemeKind, f64)> {
    if trials.is_empty() {
        return Vec::new();
    }
    let schemes: Vec<SchemeKind> = trials[0].iter().map(|&(s, _)| s).collect();
    schemes
        .iter()
        .map(|&scheme| {
            let sum: f64 = trials
                .iter()
                .filter_map(|t| t.iter().find(|(s, _)| *s == scheme).map(|&(_, v)| v))
                .sum();
            let count = trials
                .iter()
                .filter(|t| t.iter().any(|(s, _)| *s == scheme))
                .count()
                .max(1);
            (scheme, sum / count as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use randrecon_data::synthetic::{EigenSpectrum, SyntheticDataset};
    use randrecon_noise::additive::AdditiveRandomizer;
    use randrecon_stats::rng::seeded_rng;

    #[test]
    fn evaluates_all_schemes_and_orders_results() {
        let spectrum = EigenSpectrum::principal_plus_small(2, 200.0, 8, 2.0).unwrap();
        let ds = SyntheticDataset::generate(&spectrum, 400, 1).unwrap();
        let randomizer = AdditiveRandomizer::gaussian(6.0).unwrap();
        let disguised = randomizer.disguise(&ds.table, &mut seeded_rng(2)).unwrap();
        let schemes = vec![
            SchemeKind::Ndr,
            SchemeKind::Udr,
            SchemeKind::SpectralFiltering,
            SchemeKind::PcaDr,
            SchemeKind::BeDr,
        ];
        let results =
            evaluate_schemes(&ds.table, &disguised, randomizer.model(), &schemes).unwrap();
        assert_eq!(results.len(), 5);
        for (i, &(s, v)) in results.iter().enumerate() {
            assert_eq!(s, schemes[i]);
            assert!(v.is_finite() && v >= 0.0);
        }
        // On this correlated workload the correlation-based schemes beat NDR.
        let ndr = results[0].1;
        let be = results[4].1;
        assert!(be < ndr);
    }

    #[test]
    fn average_trials_means_values() {
        let t1 = vec![(SchemeKind::Udr, 4.0), (SchemeKind::BeDr, 2.0)];
        let t2 = vec![(SchemeKind::Udr, 6.0), (SchemeKind::BeDr, 4.0)];
        let avg = average_trials(&[t1, t2]);
        assert_eq!(avg, vec![(SchemeKind::Udr, 5.0), (SchemeKind::BeDr, 3.0)]);
        assert!(average_trials(&[]).is_empty());
    }
}
