//! Shared workload evaluation: run a set of attacks against one disguised
//! data set and report their RMSE — plus the two-level dataset pool that
//! lets *workload groups* differing only in noise/attack/engine share one
//! generated dataset per trial ([`SharePool`]).

use crate::config::SchemeKind;
use crate::error::Result;
use randrecon_core::engine::Attack;
use randrecon_data::DataTable;
use randrecon_metrics::rmse;
use randrecon_noise::NoiseModel;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A reference-counted pool of built datasets keyed on
/// `(data fingerprint, trial seed)`.
///
/// This is the second level of the two-level workload grouping: workload
/// groups (scenarios identical up to their attack) that additionally share a
/// *data fingerprint* — same data spec, engine family, trial count, and seed
/// derivation, but possibly different noise models or attacks — lease their
/// per-trial dataset from this pool, so the dataset is generated **once** per
/// `(fingerprint, trial)` across the whole sweep instead of once per group.
///
/// The pool is constructed with the number of consumer groups per
/// fingerprint; each group calls [`SharePool::release`] once after it
/// finishes all its trials, and the last release evicts every cached trial
/// dataset for that fingerprint. Entries are per-`(key, trial)` mutex cells,
/// so distinct datasets build in parallel while two groups racing for the
/// same dataset serialize on one build.
///
/// Bit-exactness: a leased dataset is produced by the *identical* generation
/// call (same constructor, same seeds) the group would have made privately,
/// so pooled and unpooled sweeps are bit-identical.
pub(crate) struct SharePool<T> {
    /// Consumer groups still to release each fingerprint.
    remaining: Mutex<HashMap<String, usize>>,
    /// Built datasets, one cell per `(fingerprint, trial seed)`.
    cells: Mutex<HashMap<(String, u64), PoolCell<T>>>,
}

/// One lazily-built dataset cell: the outer mutex is the build latch
/// (concurrent builders of the same cell serialize on it), the inner
/// `Option` holds the shared value once built.
type PoolCell<T> = Arc<Mutex<Option<Arc<T>>>>;

impl<T> SharePool<T> {
    /// Creates a pool expecting `consumers[fp]` releases per fingerprint.
    pub fn new(consumers: HashMap<String, usize>) -> Self {
        Self {
            remaining: Mutex::new(consumers),
            cells: Mutex::new(HashMap::new()),
        }
    }

    /// Returns the dataset for `(key, trial_seed)`, building it with `build`
    /// if no other consumer has yet. Concurrent leases of the same key block
    /// on the single build; leases of distinct keys proceed in parallel.
    pub fn lease(
        &self,
        key: &str,
        trial_seed: u64,
        build: impl FnOnce() -> Result<T>,
    ) -> Result<Arc<T>> {
        let cell = {
            let mut cells = self.cells.lock().expect("share pool cell map poisoned");
            cells
                .entry((key.to_owned(), trial_seed))
                .or_default()
                .clone()
        };
        let mut slot = cell.lock().expect("share pool cell poisoned");
        if let Some(data) = slot.as_ref() {
            return Ok(Arc::clone(data));
        }
        let data = Arc::new(build()?);
        *slot = Some(Arc::clone(&data));
        Ok(data)
    }

    /// Records that one consumer group of `key` has finished all its trials;
    /// the last release evicts every cached trial dataset for `key`.
    pub fn release(&self, key: &str) {
        let evict = {
            let mut remaining = self.remaining.lock().expect("share pool counts poisoned");
            match remaining.get_mut(key) {
                Some(n) => {
                    *n = n.saturating_sub(1);
                    *n == 0
                }
                None => false,
            }
        };
        if evict {
            let mut cells = self.cells.lock().expect("share pool cell map poisoned");
            cells.retain(|(k, _), _| k != key);
        }
    }

    /// Number of currently cached datasets (test/observability hook).
    #[cfg(test)]
    pub fn cached(&self) -> usize {
        self.cells
            .lock()
            .expect("share pool cell map poisoned")
            .values()
            .filter(|cell| cell.lock().expect("share pool cell poisoned").is_some())
            .count()
    }
}

/// Evaluates the requested schemes against a single disguised data set and
/// returns `(scheme, RMSE against the original)` in the order requested.
/// Dispatch routes through the core attack engine
/// ([`Attack::standard`]`(scheme)`), the same call site the scenario runner
/// uses.
pub fn evaluate_schemes(
    original: &DataTable,
    disguised: &DataTable,
    noise: &NoiseModel,
    schemes: &[SchemeKind],
) -> Result<Vec<(SchemeKind, f64)>> {
    let mut out = Vec::with_capacity(schemes.len());
    for &scheme in schemes {
        let reconstruction = Attack::standard(scheme).reconstruct_table(disguised, noise)?;
        out.push((scheme, rmse(original, &reconstruction)?));
    }
    Ok(out)
}

/// Averages per-scheme RMSE values across repeated trials (same scheme order
/// as the individual runs).
pub fn average_trials(trials: &[Vec<(SchemeKind, f64)>]) -> Vec<(SchemeKind, f64)> {
    if trials.is_empty() {
        return Vec::new();
    }
    let schemes: Vec<SchemeKind> = trials[0].iter().map(|&(s, _)| s).collect();
    schemes
        .iter()
        .map(|&scheme| {
            let sum: f64 = trials
                .iter()
                .filter_map(|t| t.iter().find(|(s, _)| *s == scheme).map(|&(_, v)| v))
                .sum();
            let count = trials
                .iter()
                .filter(|t| t.iter().any(|(s, _)| *s == scheme))
                .count()
                .max(1);
            (scheme, sum / count as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use randrecon_data::synthetic::{EigenSpectrum, SyntheticDataset};
    use randrecon_noise::additive::AdditiveRandomizer;
    use randrecon_stats::rng::seeded_rng;

    #[test]
    fn evaluates_all_schemes_and_orders_results() {
        let spectrum = EigenSpectrum::principal_plus_small(2, 200.0, 8, 2.0).unwrap();
        let ds = SyntheticDataset::generate(&spectrum, 400, 1).unwrap();
        let randomizer = AdditiveRandomizer::gaussian(6.0).unwrap();
        let disguised = randomizer.disguise(&ds.table, &mut seeded_rng(2)).unwrap();
        let schemes = vec![
            SchemeKind::Ndr,
            SchemeKind::Udr,
            SchemeKind::SpectralFiltering,
            SchemeKind::PcaDr,
            SchemeKind::BeDr,
        ];
        let results =
            evaluate_schemes(&ds.table, &disguised, randomizer.model(), &schemes).unwrap();
        assert_eq!(results.len(), 5);
        for (i, &(s, v)) in results.iter().enumerate() {
            assert_eq!(s, schemes[i]);
            assert!(v.is_finite() && v >= 0.0);
        }
        // On this correlated workload the correlation-based schemes beat NDR.
        let ndr = results[0].1;
        let be = results[4].1;
        assert!(be < ndr);
    }

    #[test]
    fn share_pool_builds_once_and_evicts_on_last_release() {
        let pool: SharePool<u64> = SharePool::new(HashMap::from([
            ("fp".to_owned(), 2),
            ("other".to_owned(), 1),
        ]));
        let mut builds = 0u32;
        let a = pool
            .lease("fp", 7, || {
                builds += 1;
                Ok(41)
            })
            .unwrap();
        let b = pool
            .lease("fp", 7, || {
                builds += 1;
                Ok(99)
            })
            .unwrap();
        assert_eq!(
            (*a, *b, builds),
            (41, 41, 1),
            "second lease reuses the build"
        );
        pool.lease("fp", 8, || Ok(42)).unwrap();
        pool.lease("other", 7, || Ok(1)).unwrap();
        assert_eq!(pool.cached(), 3);
        pool.release("fp");
        assert_eq!(pool.cached(), 3, "one of two consumers released: keep");
        pool.release("fp");
        assert_eq!(pool.cached(), 1, "last consumer released: evict fp trials");
        pool.release("unknown");
        assert_eq!(pool.cached(), 1);
    }

    #[test]
    fn share_pool_build_error_leaves_cell_reusable() {
        let pool: SharePool<u64> = SharePool::new(HashMap::from([("fp".to_owned(), 1)]));
        let err = pool.lease("fp", 0, || {
            Err(crate::error::ExperimentError::InvalidConfig {
                reason: "boom".to_string(),
            })
        });
        assert!(err.is_err());
        let ok = pool.lease("fp", 0, || Ok(5)).unwrap();
        assert_eq!(*ok, 5);
    }

    #[test]
    fn average_trials_means_values() {
        let t1 = vec![(SchemeKind::Udr, 4.0), (SchemeKind::BeDr, 2.0)];
        let t2 = vec![(SchemeKind::Udr, 6.0), (SchemeKind::BeDr, 4.0)];
        let avg = average_trials(&[t1, t2]);
        assert_eq!(avg, vec![(SchemeKind::Udr, 5.0), (SchemeKind::BeDr, 3.0)]);
        assert!(average_trials(&[]).is_empty());
    }
}
