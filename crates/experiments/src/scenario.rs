//! The declarative scenario engine: one spec-driven runner for the whole
//! evaluation matrix.
//!
//! A [`ScenarioSpec`] is a self-contained description of one cell of the
//! paper's evaluation space — {data source × noise model × attack × engine ×
//! metrics × seed × scale} — and a [`ScenarioGrid`] is a base spec plus a
//! list of axes whose cartesian product expands into many specs (a figure
//! sweep, a scheme comparison, an engine shoot-out, or all of them at once).
//! [`run_scenarios`] executes any list of specs on the shared
//! `randrecon-parallel` pool and returns one [`ScenarioResult`] per spec, in
//! input order, bit-identically for any thread count.
//!
//! Every hand-written experiment driver this repository used to carry
//! (`exp1`–`exp4`, the ablations, the five-scheme streaming sweep) is now a
//! thin *named grid* over this engine; adding a new scenario means writing a
//! spec, not a driver.
//!
//! ## Determinism and seeding
//!
//! Each scenario derives its per-trial workload seed as
//! `child_seed(seed, seed_offset + trial)` and its disguise seed as
//! `child_seed(trial_seed, 1)`; both can be pinned explicitly
//! ([`ScenarioSpec::dataset_seed`] / [`ScenarioSpec::noise_seed`]) for grids
//! that share one workload across axis values (the ablations do this). All
//! randomness is spec-derived, so results are a pure function of the spec
//! list — the runner's parallel dispatch preserves input order and cannot
//! perturb a single bit.
//!
//! ## Workload sharing
//!
//! Scenarios that differ **only in their attack** (same data, noise, engine,
//! seeds, trials) form a *workload group*: the runner generates the workload
//! once per group and trial, accumulates streaming pass-1 moments once, and
//! runs every member attack against the shared state — the expensive economy
//! the old hand-written drivers had when they evaluated four schemes against
//! one disguised table. Sharing does **not** extend across the noise axis:
//! scenarios with the same pinned dataset but different noise models each
//! regenerate the (deterministic, identical) dataset — correct but
//! redundant work, cheap at current sizes and listed as a ROADMAP item.
//!
//! ## Supervision: deadlines, retries, and graceful degradation
//!
//! Fail-soft execution ([`run_scenarios_failsoft`]) is supervised:
//!
//! * **Cell deadlines** — [`RetryPolicy::cell_timeout`] runs each attempt
//!   under a cooperative [`CancelToken`] checked at trial, member, and
//!   streaming-chunk boundaries; a runaway cell becomes a
//!   [`ScenarioOutcome::Failed`] with a `timed-out` classification
//!   ([`ScenarioFailure::timed_out`]) instead of wedging the sweep.
//! * **Deterministic retry backoff** — transient retries sleep on the
//!   seed-derived [`BackoffPolicy`] schedule (a pure function of the spec
//!   fingerprint and the attempt number), so retry timing is reproducible
//!   and a persistent fault cannot hot-loop.
//! * **Graceful numerical degradation** — a cell whose attack completed
//!   only by repairing an ill-conditioned system (non-empty
//!   [`ScenarioResult::warnings`], e.g. BE-DR's eigenvalue-clipped SPD
//!   fallback) is reported as [`ScenarioOutcome::Degraded`]: its metrics
//!   are real, journaled, and merged, but reports render it distinctly from
//!   clean completions.
//!
//! ## Example
//!
//! ```
//! use randrecon_experiments::scenario::*;
//! use randrecon_experiments::SchemeKind;
//!
//! // 2 schemes × 2 engines over one synthetic workload = 4 scenarios.
//! let grid = ScenarioGrid {
//!     base: ScenarioSpec::synthetic_quick("demo", 400, 8, 3),
//!     axes: vec![
//!         GridAxis::schemes(&[SchemeKind::Udr, SchemeKind::BeDr]),
//!         GridAxis::engines(&[EngineSpec::InMemory, EngineSpec::Streaming { chunk_rows: 128 }]),
//!     ],
//! };
//! let results = grid.run().unwrap();
//! assert_eq!(results.len(), 4);
//! assert!(results.iter().all(|r| r.rmse().unwrap() > 0.0));
//! ```

use crate::backoff::BackoffPolicy;
use crate::config::SchemeKind;
use crate::error::{ExperimentError, Result};
use crate::fault::FaultMode;
use crate::runner::parallel_map;
use crate::workload::SharePool;
use randrecon_core::engine::Attack;
use randrecon_core::partial::{KnownAttributes, PartialKnowledgeBeDr};
use randrecon_core::streaming::{
    accumulate_moment_segments, moment_segment_count, CancelToken, MomentSegment, MseSink,
    StreamMoments, StreamingDriver,
};
use randrecon_core::temporal::TemporalSmoother;
use randrecon_core::ComponentSelection;
use randrecon_data::chunks::{RecordChunkSource, SyntheticChunkSource};
use randrecon_data::csv::{read_csv_file, CsvChunkReader};
use randrecon_data::synthetic::{EigenSpectrum, SyntheticDataset};
use randrecon_data::timeseries::Ar1Spec;
use randrecon_data::DataTable;
use randrecon_linalg::Matrix;
use randrecon_metrics::dissimilarity::correlation_dissimilarity_from_covariances;
use randrecon_metrics::{accuracy::normalized_rmse, mse, rmse};
use randrecon_noise::additive::{AdditiveRandomizer, DisguisedChunkSource};
use randrecon_noise::correlated::{interpolated_spectrum, noise_covariance, SimilarityLevel};
use randrecon_stats::rng::{child_seed, seeded_rng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Spec types
// ---------------------------------------------------------------------------

/// A synthetic covariance spectrum, declaratively.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SpectrumSpec {
    /// `p` eigenvalues at `principal`, the remaining `m − p` at `small`
    /// (the paper's canonical workload).
    PrincipalPlusSmall {
        /// Number of principal components.
        p: usize,
        /// The principal eigenvalue.
        principal: f64,
        /// Number of attributes.
        m: usize,
        /// The non-principal eigenvalue.
        small: f64,
    },
    /// `m − p` eigenvalues fixed at `small`; the `p` principal ones absorb
    /// the rest of `total_variance` (Experiments 1–2, Equation 12).
    PrincipalFillingTotal {
        /// Number of principal components.
        p: usize,
        /// Number of attributes.
        m: usize,
        /// The non-principal eigenvalue.
        small: f64,
        /// Total variance budget (trace of the covariance).
        total_variance: f64,
    },
    /// Explicit eigenvalues.
    Explicit(Vec<f64>),
}

impl SpectrumSpec {
    fn build(&self) -> Result<EigenSpectrum> {
        Ok(match self {
            SpectrumSpec::PrincipalPlusSmall {
                p,
                principal,
                m,
                small,
            } => EigenSpectrum::principal_plus_small(*p, *principal, *m, *small)?,
            SpectrumSpec::PrincipalFillingTotal {
                p,
                m,
                small,
                total_variance,
            } => EigenSpectrum::principal_filling_total(*p, *m, *small, *total_variance)?,
            SpectrumSpec::Explicit(values) => EigenSpectrum::new(values.clone())?,
        })
    }
}

/// Where a scenario's original records come from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DataSpec {
    /// Zero-mean multivariate-normal records from a synthetic spectrum
    /// (Section 7.1) — runs on both engines, and the only source that
    /// supports the correlated-similarity noise model (which needs the
    /// data's eigenstructure).
    SyntheticMvn {
        /// The eigenvalue spectrum of the generating covariance.
        spectrum: SpectrumSpec,
        /// Records to generate.
        records: usize,
    },
    /// Records read from a CSV file (header row of attribute names, one
    /// record per line) — runs on both engines.
    Csv {
        /// Path to the file.
        path: PathBuf,
    },
    /// Independent AR(1) time-series columns (the sample-dependency workload
    /// of Section 3) — in-memory engine only.
    Ar1Timeseries {
        /// Autoregressive coefficient (|phi| < 1).
        phi: f64,
        /// Innovation standard deviation.
        innovation_std: f64,
        /// Long-run mean.
        mean: f64,
        /// Samples per series (records).
        records: usize,
        /// Number of series (attributes).
        series: usize,
    },
}

/// The disguising noise model of a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NoiseSpec {
    /// Independent zero-mean Gaussian noise.
    Gaussian {
        /// Standard deviation.
        sigma: f64,
    },
    /// Independent zero-mean uniform noise of the same variance family.
    Uniform {
        /// Standard deviation.
        sigma: f64,
    },
    /// The Section 8 correlated-noise defense: noise eigenvectors equal the
    /// data's, noise spectrum interpolated between similar (`+1`), flat
    /// (`0`) and anti-similar (`−1`) with a fixed per-attribute variance
    /// budget. Requires a [`DataSpec::SyntheticMvn`] source; the measured
    /// correlation dissimilarity (Definition 8.1) becomes the result's `x`.
    CorrelatedSimilar {
        /// Similarity level in `[-1, 1]` (Experiment 4's sweep axis).
        similarity: f64,
        /// Average per-attribute noise variance (total budget is this times
        /// the attribute count, matching an i.i.d. scheme of variance
        /// `noise_variance`).
        noise_variance: f64,
    },
}

impl NoiseSpec {
    /// Builds the randomizer, plus the measured correlation dissimilarity
    /// for the correlated model. `structure` is the synthetic workload's
    /// ground truth `(eigenvalues, eigenvectors, covariance)`.
    fn build(
        &self,
        structure: Option<(&[f64], &Matrix, &Matrix)>,
    ) -> Result<(AdditiveRandomizer, Option<f64>)> {
        match self {
            NoiseSpec::Gaussian { sigma } => Ok((AdditiveRandomizer::gaussian(*sigma)?, None)),
            NoiseSpec::Uniform { sigma } => Ok((AdditiveRandomizer::uniform(*sigma)?, None)),
            NoiseSpec::CorrelatedSimilar {
                similarity,
                noise_variance,
            } => {
                let (eigenvalues, eigenvectors, covariance) =
                    structure.ok_or_else(|| ExperimentError::InvalidConfig {
                        reason: "correlated-similarity noise needs a synthetic MVN data source \
                                 (the model reuses the data's eigenstructure)"
                            .to_string(),
                    })?;
                let level = SimilarityLevel::new(*similarity)?;
                let total = noise_variance * eigenvalues.len() as f64;
                let spectrum = interpolated_spectrum(eigenvalues, level, total)?;
                let sigma_r = noise_covariance(eigenvectors, &spectrum)?;
                let dissimilarity =
                    correlation_dissimilarity_from_covariances(covariance, &sigma_r)?;
                Ok((
                    AdditiveRandomizer::correlated(sigma_r)?,
                    Some(dissimilarity),
                ))
            }
        }
    }
}

/// The reconstruction attack of a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttackSpec {
    /// One of the five paper schemes with its default configuration.
    Scheme(SchemeKind),
    /// PCA-DR with an explicit component-selection rule.
    PcaDr {
        /// The selection rule.
        selection: ComponentSelection,
    },
    /// Spectral filtering with an explicit Marčenko–Pastur bound multiplier.
    SpectralFiltering {
        /// Multiplier on the textbook bound.
        bound_multiplier: f64,
    },
    /// BE-DR with an explicit eigenvalue floor.
    BeDr {
        /// Floor for the regularized covariance estimate (`None` = default).
        eigenvalue_floor: Option<f64>,
    },
    /// Partial-value disclosure: BE-DR conditioned on the true values of the
    /// given attributes (taken from the original records — the adversary's
    /// side knowledge). In-memory engine only.
    PartialKnowledgeBeDr {
        /// Indices of the attributes the adversary already knows.
        known_attributes: Vec<usize>,
    },
    /// The temporal (sample-dependency) windowed Bayes smoother. In-memory
    /// engine only; pair it with [`DataSpec::Ar1Timeseries`].
    Temporal {
        /// Window length (odd, ≥ 3).
        window: usize,
    },
    /// **Testing support**: a scenario that fails deterministically instead
    /// of attacking (see [`crate::fault::FaultMode`]) — the lever the
    /// fail-soft and crash-resume suites use to plant errors, panics, and
    /// transient failures at known grid cells. When the fault does not fire
    /// (a [`FaultMode::Transient`] past its budget), the scenario completes
    /// with zeroed metrics. In-memory engine only.
    InjectedFault {
        /// How the scenario fails.
        mode: FaultMode,
    },
}

impl AttackSpec {
    /// The scheme this attack is an instance of, when it is one of the five
    /// paper schemes (`None` for the partial-knowledge and temporal
    /// variants, which fall outside the figure legends).
    pub fn scheme(&self) -> Option<SchemeKind> {
        match self {
            AttackSpec::Scheme(s) => Some(*s),
            AttackSpec::PcaDr { .. } => Some(SchemeKind::PcaDr),
            AttackSpec::SpectralFiltering { .. } => Some(SchemeKind::SpectralFiltering),
            AttackSpec::BeDr { .. } => Some(SchemeKind::BeDr),
            AttackSpec::PartialKnowledgeBeDr { .. }
            | AttackSpec::Temporal { .. }
            | AttackSpec::InjectedFault { .. } => None,
        }
    }

    /// Display label.
    pub fn label(&self) -> String {
        match self {
            AttackSpec::Scheme(s) => s.label().to_string(),
            AttackSpec::PcaDr { selection } => format!("PCA-DR[{selection:?}]"),
            AttackSpec::SpectralFiltering { bound_multiplier } => {
                format!("SF[bound x{bound_multiplier}]")
            }
            AttackSpec::BeDr { eigenvalue_floor } => match eigenvalue_floor {
                Some(f) => format!("BE-DR[floor {f}]"),
                None => "BE-DR".to_string(),
            },
            AttackSpec::PartialKnowledgeBeDr { known_attributes } => {
                format!("BE-DR[known {known_attributes:?}]")
            }
            AttackSpec::Temporal { window } => format!("Temporal-BE[w={window}]"),
            AttackSpec::InjectedFault { mode } => format!("fault[{mode:?}]"),
        }
    }

    /// True for the five base schemes (runnable on both engines).
    fn supports_streaming(&self) -> bool {
        !matches!(
            self,
            AttackSpec::PartialKnowledgeBeDr { .. }
                | AttackSpec::Temporal { .. }
                | AttackSpec::InjectedFault { .. }
        )
    }

    /// The core [`Attack`] for the five base schemes.
    fn core_attack(&self) -> Result<Attack> {
        Ok(match self {
            AttackSpec::Scheme(s) => Attack::standard(*s),
            AttackSpec::PcaDr { selection } => Attack::PcaDr(randrecon_core::pca_dr::PcaDr {
                selection: *selection,
            }),
            AttackSpec::SpectralFiltering { bound_multiplier } => Attack::SpectralFiltering(
                randrecon_core::spectral::SpectralFiltering::with_bound_multiplier(
                    *bound_multiplier,
                )?,
            ),
            AttackSpec::BeDr { eigenvalue_floor } => Attack::BeDr(randrecon_core::be_dr::BeDr {
                eigenvalue_floor: *eigenvalue_floor,
            }),
            AttackSpec::PartialKnowledgeBeDr { .. }
            | AttackSpec::Temporal { .. }
            | AttackSpec::InjectedFault { .. } => {
                return Err(ExperimentError::InvalidConfig {
                    reason: format!(
                        "{} is not one of the five engine-dispatchable schemes",
                        self.label()
                    ),
                })
            }
        })
    }
}

/// Which execution engine a scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineSpec {
    /// Materialized tables through the in-memory reconstructors.
    InMemory,
    /// The bounded-memory two-pass streaming driver.
    Streaming {
        /// Rows per chunk (the memory knob).
        chunk_rows: usize,
    },
}

impl EngineSpec {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            EngineSpec::InMemory => "in-memory",
            EngineSpec::Streaming { .. } => "streaming",
        }
    }
}

/// A metric the runner reports for each scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Root-mean-square error per value against the original records.
    Rmse,
    /// Mean-square error per value.
    Mse,
    /// RMSE normalized by the original data's standard deviation
    /// (in-memory engine only).
    NormalizedRmse,
}

impl MetricKind {
    /// Column/display label.
    pub fn label(&self) -> &'static str {
        match self {
            MetricKind::Rmse => "rmse",
            MetricKind::Mse => "mse",
            MetricKind::NormalizedRmse => "normalized_rmse",
        }
    }
}

/// One fully-specified evaluation scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Human-readable label ("figure1/m=20/scheme=BE-DR").
    pub label: String,
    /// x-axis coordinate for series regrouping (overridden by the measured
    /// correlation dissimilarity for correlated noise).
    pub x: f64,
    /// Data source.
    pub data: DataSpec,
    /// Noise model.
    pub noise: NoiseSpec,
    /// Attack.
    pub attack: AttackSpec,
    /// Execution engine.
    pub engine: EngineSpec,
    /// Metrics to report (non-empty).
    pub metrics: Vec<MetricKind>,
    /// Independent repetitions averaged into the reported metrics.
    pub trials: usize,
    /// Base random seed.
    pub seed: u64,
    /// Offset folded into the per-trial child seed:
    /// `trial_seed = child_seed(seed, seed_offset + trial)`.
    pub seed_offset: u64,
    /// Pins the workload seed for every trial (used by grids that share one
    /// data set across axis values). `None` = derive per trial. Pinning
    /// requires `trials = 1` — a pinned workload seed would make repeated
    /// trials byte-identical, which validation rejects.
    pub dataset_seed: Option<u64>,
    /// Pins the disguise seed. `None` = `child_seed(trial_seed, 1)`. Like
    /// [`dataset_seed`](ScenarioSpec::dataset_seed), pinning requires
    /// `trials = 1`.
    pub noise_seed: Option<u64>,
}

impl ScenarioSpec {
    /// A small single-scenario template over a quick synthetic workload:
    /// BE-DR, in-memory, Gaussian noise σ = 5, RMSE metric, one trial.
    /// Grids override the axes they sweep.
    pub fn synthetic_quick(label: &str, records: usize, attributes: usize, p: usize) -> Self {
        ScenarioSpec {
            label: label.to_string(),
            x: 0.0,
            data: DataSpec::SyntheticMvn {
                spectrum: SpectrumSpec::PrincipalPlusSmall {
                    p,
                    principal: 400.0,
                    m: attributes,
                    small: 4.0,
                },
                records,
            },
            noise: NoiseSpec::Gaussian { sigma: 5.0 },
            attack: AttackSpec::Scheme(SchemeKind::BeDr),
            engine: EngineSpec::InMemory,
            metrics: vec![MetricKind::Rmse],
            trials: 1,
            seed: 0x5EED_5CE0,
            seed_offset: 0,
            dataset_seed: None,
            noise_seed: None,
        }
    }

    /// Checks the spec for internal consistency (sizes, ranges, and
    /// engine/attack/noise/data compatibility).
    pub fn validate(&self) -> Result<()> {
        let fail = |reason: String| {
            Err(ExperimentError::InvalidConfig {
                reason: format!("scenario '{}': {reason}", self.label),
            })
        };
        if self.trials == 0 {
            return fail("need at least one trial".to_string());
        }
        if self.trials > 1 && (self.dataset_seed.is_some() || self.noise_seed.is_some()) {
            // With the workload seed pinned, the derived disguise seed is
            // constant too, so every "trial" would replay the identical run
            // at N× cost while claiming N independent repetitions; a pinned
            // noise seed likewise freezes the noise realization the trials
            // are supposed to average over.
            return fail(
                "pinned dataset_seed/noise_seed make repeated trials replay the same \
                 randomness; use trials = 1 (sweep seed_offset on an axis for repetitions)"
                    .to_string(),
            );
        }
        if self.metrics.is_empty() {
            return fail("need at least one metric".to_string());
        }
        match &self.data {
            DataSpec::SyntheticMvn { spectrum, records } => {
                if *records < 2 {
                    return fail(format!("need at least 2 records, got {records}"));
                }
                spectrum.build()?;
            }
            DataSpec::Ar1Timeseries {
                phi,
                innovation_std,
                mean,
                records,
                series,
            } => {
                if *records < 2 || *series == 0 {
                    return fail("AR(1) workload needs >= 2 records and >= 1 series".to_string());
                }
                Ar1Spec::new(*phi, *innovation_std, *mean)?;
            }
            DataSpec::Csv { .. } => {}
        }
        match &self.noise {
            NoiseSpec::Gaussian { sigma } | NoiseSpec::Uniform { sigma } => {
                if !(*sigma > 0.0 && sigma.is_finite()) {
                    return fail(format!("noise sigma must be positive, got {sigma}"));
                }
            }
            NoiseSpec::CorrelatedSimilar {
                similarity,
                noise_variance,
            } => {
                SimilarityLevel::new(*similarity)?;
                if !(*noise_variance > 0.0 && noise_variance.is_finite()) {
                    return fail(format!(
                        "noise variance must be positive, got {noise_variance}"
                    ));
                }
                if !matches!(self.data, DataSpec::SyntheticMvn { .. }) {
                    return fail(
                        "correlated-similarity noise needs a synthetic MVN data source".to_string(),
                    );
                }
            }
        }
        if let AttackSpec::PartialKnowledgeBeDr { known_attributes } = &self.attack {
            if known_attributes.is_empty() {
                return fail("partial knowledge needs at least one known attribute".to_string());
            }
        }
        match self.engine {
            EngineSpec::InMemory => {}
            EngineSpec::Streaming { chunk_rows } => {
                if chunk_rows == 0 {
                    return fail("streaming chunk_rows must be at least 1".to_string());
                }
                if !self.attack.supports_streaming() {
                    return fail(format!(
                        "{} runs on the in-memory engine only",
                        self.attack.label()
                    ));
                }
                if matches!(self.data, DataSpec::Ar1Timeseries { .. }) {
                    return fail("AR(1) time-series scenarios run in-memory only".to_string());
                }
                if self.metrics.contains(&MetricKind::NormalizedRmse) {
                    return fail(
                        "normalized RMSE needs the materialized original (in-memory engine only)"
                            .to_string(),
                    );
                }
            }
        }
        Ok(())
    }

    /// The workload-group fingerprint: everything that shapes the generated
    /// data and disguise streams — i.e. every field except the attack, the
    /// metrics and the presentation fields (`label`, `x`). Scenarios with
    /// equal fingerprints share one workload per trial.
    fn workload_fingerprint(&self) -> String {
        format!(
            "{:?}|{:?}|{:?}|{}|{}|{}|{:?}|{:?}",
            self.data,
            self.noise,
            self.engine,
            self.trials,
            self.seed,
            self.seed_offset,
            self.dataset_seed,
            self.noise_seed
        )
    }

    /// The *data fingerprint*: the subset of the workload fingerprint that
    /// shapes the **generated dataset alone** — the data spec, trial count,
    /// engine family, and the dataset-seed derivation, but *not* the noise
    /// model, noise seed, attack, or metrics. Scenarios with equal data
    /// fingerprints draw identical per-trial datasets, so the runner's
    /// [`DatasetPool`] generates each `(fingerprint, trial)` dataset once and
    /// shares it across workload groups that differ only in noise or attack.
    ///
    /// The engine is part of the fingerprint because the streaming
    /// `SyntheticChunkSource` record stream deliberately differs from the
    /// in-memory `SyntheticDataset::generate` realization for the same seed
    /// (chunk-local child seeding; see `randrecon_data::chunks`).
    pub fn data_fingerprint(&self) -> String {
        let engine_family = match self.engine {
            EngineSpec::InMemory => "mem".to_string(),
            EngineSpec::Streaming { chunk_rows } => format!("stream:{chunk_rows}"),
        };
        format!(
            "{:?}|{engine_family}|{}|{}|{}|{:?}",
            self.data, self.trials, self.seed, self.seed_offset, self.dataset_seed
        )
    }

    /// Pass-1 stream geometry — `(chunks, segments)` — for cells whose
    /// pass 1 can run as a distributed segment reduction: the streaming
    /// engine over a synthetic MVN workload. `None` for every other
    /// engine/data combination (in-memory cells have no pass 1; CSV streams
    /// cannot skip ahead without reading, so splitting them buys nothing).
    pub fn stream_geometry(&self) -> Option<(usize, usize)> {
        match (&self.engine, &self.data) {
            (EngineSpec::Streaming { chunk_rows }, DataSpec::SyntheticMvn { records, .. }) => {
                let chunks = records.div_ceil(*chunk_rows).max(1);
                Some((chunks, moment_segment_count(chunks)))
            }
            _ => None,
        }
    }

    /// Approximate record count of the cell's dataset — the weight the
    /// balance-aware shard planner's cost model uses. CSV sources would
    /// need an I/O pass to count, so they get a flat nominal weight; the
    /// planner only needs relative proportions, not exact sizes.
    pub fn approx_records(&self) -> usize {
        match &self.data {
            DataSpec::SyntheticMvn { records, .. } => *records,
            DataSpec::Ar1Timeseries { records, .. } => *records,
            DataSpec::Csv { .. } => 4096,
        }
    }

    /// Runs this single scenario directly (no pool dispatch, no grouping) —
    /// the hand-rolled baseline the runner's scheduling overhead is
    /// benchmarked against.
    pub fn run(&self) -> Result<ScenarioResult> {
        self.validate()?;
        let mut results = execute_group(std::slice::from_ref(self), None)?;
        Ok(results.pop().expect("one scenario in, one result out"))
    }
}

/// The measured outcome of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// The scenario's label.
    pub label: String,
    /// x coordinate: the spec's `x`, or the measured correlation
    /// dissimilarity for correlated noise (averaged over trials).
    pub x: f64,
    /// The scheme, when the attack is one of the five paper schemes.
    pub scheme: Option<SchemeKind>,
    /// Attack display label.
    pub attack: String,
    /// Engine display label.
    pub engine: &'static str,
    /// Records per trial.
    pub n_records: usize,
    /// Trials averaged.
    pub trials: usize,
    /// `(metric, value)` pairs in the spec's metric order, averaged over
    /// trials.
    pub metrics: Vec<(MetricKind, f64)>,
    /// Principal/signal components kept (projection schemes, last trial).
    pub components_kept: Option<usize>,
    /// Wall-clock seconds spent in this scenario's attack runs (summed over
    /// trials; excludes workload generation shared with other scenarios).
    pub seconds: f64,
    /// Graceful numerical-degradation notes accumulated across trials
    /// (deduplicated, first-appearance order). Non-empty means the attack
    /// completed only by repairing an ill-conditioned system — the fail-soft
    /// runner reports such a cell as
    /// [`ScenarioOutcome::Degraded`] rather than `Completed`.
    pub warnings: Vec<String>,
}

impl ScenarioResult {
    /// The value of a reported metric, if it was requested.
    pub fn metric(&self, kind: MetricKind) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|&(_, v)| v)
    }

    /// RMSE, from either the RMSE or the MSE metric.
    pub fn rmse(&self) -> Option<f64> {
        self.metric(MetricKind::Rmse)
            .or_else(|| self.metric(MetricKind::Mse).map(f64::sqrt))
    }
}

// ---------------------------------------------------------------------------
// Grid expansion
// ---------------------------------------------------------------------------

/// A single override a grid axis value applies to the base spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Override {
    /// Replace the data source.
    Data(DataSpec),
    /// Replace the noise model.
    Noise(NoiseSpec),
    /// Replace the attack.
    Attack(AttackSpec),
    /// Replace the engine.
    Engine(EngineSpec),
    /// Replace the metric set.
    Metrics(Vec<MetricKind>),
    /// Replace the trial count.
    Trials(usize),
    /// Replace the base seed.
    Seed(u64),
    /// Replace the per-trial seed offset.
    SeedOffset(u64),
    /// Pin (or unpin) the workload seed.
    DatasetSeed(Option<u64>),
    /// Pin (or unpin) the disguise seed.
    NoiseSeed(Option<u64>),
}

impl Override {
    fn apply(&self, spec: &mut ScenarioSpec) {
        match self {
            Override::Data(d) => spec.data = d.clone(),
            Override::Noise(n) => spec.noise = n.clone(),
            Override::Attack(a) => spec.attack = a.clone(),
            Override::Engine(e) => spec.engine = *e,
            Override::Metrics(m) => spec.metrics = m.clone(),
            Override::Trials(t) => spec.trials = *t,
            Override::Seed(s) => spec.seed = *s,
            Override::SeedOffset(o) => spec.seed_offset = *o,
            Override::DatasetSeed(s) => spec.dataset_seed = *s,
            Override::NoiseSeed(s) => spec.noise_seed = *s,
        }
    }
}

/// One value of a grid axis: a label, an optional x coordinate, and the
/// overrides it applies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridAxisValue {
    /// Label appended to the scenario label (`axis=label`).
    pub label: String,
    /// If set, becomes the expanded scenario's x coordinate.
    pub x: Option<f64>,
    /// Overrides applied to the base spec (in order).
    pub overrides: Vec<Override>,
}

/// One axis of a scenario grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridAxis {
    /// Axis name (used in scenario labels).
    pub name: String,
    /// The axis values; the expansion iterates them in order.
    pub values: Vec<GridAxisValue>,
}

impl GridAxis {
    /// An axis sweeping the attack over paper-default schemes.
    pub fn schemes(schemes: &[SchemeKind]) -> GridAxis {
        GridAxis {
            name: "scheme".to_string(),
            values: schemes
                .iter()
                .map(|&s| GridAxisValue {
                    label: s.label().to_string(),
                    x: None,
                    overrides: vec![Override::Attack(AttackSpec::Scheme(s))],
                })
                .collect(),
        }
    }

    /// An axis sweeping the execution engine.
    pub fn engines(engines: &[EngineSpec]) -> GridAxis {
        GridAxis {
            name: "engine".to_string(),
            values: engines
                .iter()
                .map(|&e| GridAxisValue {
                    label: match e {
                        EngineSpec::InMemory => "in-memory".to_string(),
                        EngineSpec::Streaming { chunk_rows } => {
                            format!("streaming({chunk_rows})")
                        }
                    },
                    x: None,
                    overrides: vec![Override::Engine(e)],
                })
                .collect(),
        }
    }

    /// An axis sweeping labelled noise models.
    pub fn noises(noises: &[(&str, NoiseSpec)]) -> GridAxis {
        GridAxis {
            name: "noise".to_string(),
            values: noises
                .iter()
                .map(|(label, n)| GridAxisValue {
                    label: label.to_string(),
                    x: None,
                    overrides: vec![Override::Noise(n.clone())],
                })
                .collect(),
        }
    }
}

/// A base scenario plus sweep axes; the cartesian product of the axis values
/// expands into one [`ScenarioSpec`] per grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioGrid {
    /// The spec every cell starts from.
    pub base: ScenarioSpec,
    /// Sweep axes. Expansion is row-major: the **last** axis varies fastest.
    pub axes: Vec<GridAxis>,
}

impl ScenarioGrid {
    /// Expands the grid into specs, in a deterministic order (row-major over
    /// the axes, last axis fastest). With no axes, the expansion is the base
    /// spec alone. Labels are `base/axis1=v1/axis2=v2/…`, so distinct axis
    /// values expand to distinct, stably-ordered scenarios.
    pub fn expand(&self) -> Vec<ScenarioSpec> {
        let mut out = vec![self.base.clone()];
        for axis in &self.axes {
            let mut next = Vec::with_capacity(out.len() * axis.values.len().max(1));
            for spec in &out {
                for value in &axis.values {
                    let mut cell = spec.clone();
                    for o in &value.overrides {
                        o.apply(&mut cell);
                    }
                    if let Some(x) = value.x {
                        cell.x = x;
                    }
                    let _ = write!(cell.label, "/{}={}", axis.name, value.label);
                    next.push(cell);
                }
            }
            out = next;
        }
        out
    }

    /// Expands and validates: every cell must pass
    /// [`ScenarioSpec::validate`] and labels must be unique (duplicate axis
    /// value labels would silently shadow each other in reports).
    pub fn expand_validated(&self) -> Result<Vec<ScenarioSpec>> {
        for axis in &self.axes {
            if axis.values.is_empty() {
                return Err(ExperimentError::InvalidConfig {
                    reason: format!("grid axis '{}' has no values", axis.name),
                });
            }
        }
        let specs = self.expand();
        let mut labels: Vec<&str> = specs.iter().map(|s| s.label.as_str()).collect();
        labels.sort_unstable();
        if let Some(w) = labels.windows(2).find(|w| w[0] == w[1]) {
            return Err(ExperimentError::InvalidConfig {
                reason: format!("grid expands to duplicate scenario label '{}'", w[0]),
            });
        }
        for spec in &specs {
            spec.validate()?;
        }
        Ok(specs)
    }

    /// Expands the grid and runs every cell through [`run_scenarios`].
    pub fn run(&self) -> Result<Vec<ScenarioResult>> {
        run_scenarios(&self.expand_validated()?)
    }
}

// ---------------------------------------------------------------------------
// The runner
// ---------------------------------------------------------------------------

/// Groups scenario indices by workload fingerprint, in first-appearance
/// order (deterministic, input-order based). Scenarios in one group share
/// everything but the attack/metrics — same data source, noise model,
/// engine, trial count, and seeds — so the runners generate the workload
/// once per group, and the shard planner ([`crate::shard::plan_shards`])
/// must keep a group's members on one shard to preserve that economy.
pub fn workload_groups(specs: &[ScenarioSpec]) -> Vec<Vec<usize>> {
    let mut groups: Vec<(String, Vec<usize>)> = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let fp = spec.workload_fingerprint();
        match groups.iter_mut().find(|(key, _)| *key == fp) {
            Some((_, members)) => members.push(i),
            None => groups.push((fp, vec![i])),
        }
    }
    groups.into_iter().map(|(_, members)| members).collect()
}

/// Groups scenario indices by **data fingerprint**
/// ([`ScenarioSpec::data_fingerprint`]), in first-appearance order — the
/// coarser, second level of the two-level workload grouping. One data group
/// may span several workload groups (same dataset, different noise models or
/// attack families); the runner's [`DatasetPool`] generates each data
/// group's per-trial dataset exactly once.
pub fn data_groups(specs: &[ScenarioSpec]) -> Vec<Vec<usize>> {
    let mut groups: Vec<(String, Vec<usize>)> = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let fp = spec.data_fingerprint();
        match groups.iter_mut().find(|(key, _)| *key == fp) {
            Some((_, members)) => members.push(i),
            None => groups.push((fp, vec![i])),
        }
    }
    groups.into_iter().map(|(_, members)| members).collect()
}

/// Process-wide count of dataset constructions (synthetic generations, AR(1)
/// generations, CSV materializations, synthetic stream sources) since
/// process start or the last [`reset_dataset_generations`]. The observable
/// half of the two-level grouping acceptance: on a grid whose cells differ
/// only in noise/attack, this counter equals `data groups × trials`, not
/// `workload groups × trials`.
static DATASET_GENERATIONS: AtomicU64 = AtomicU64::new(0);

/// Reads the process-wide dataset-construction counter.
pub fn dataset_generations() -> u64 {
    DATASET_GENERATIONS.load(Ordering::Relaxed)
}

/// Resets the dataset-construction counter (test/CLI observability hook).
pub fn reset_dataset_generations() {
    DATASET_GENERATIONS.store(0, Ordering::Relaxed);
}

fn note_dataset_generated() {
    DATASET_GENERATIONS.fetch_add(1, Ordering::Relaxed);
}

/// One built per-trial dataset, shareable across workload groups through the
/// [`DatasetPool`]. A data fingerprint always maps to one variant: in-memory
/// fingerprints build [`SharedData::Memory`], streaming synthetic
/// fingerprints build [`SharedData::Stream`].
pub(crate) enum SharedData {
    /// A materialized in-memory dataset.
    Memory(BuiltData),
    /// A seeded synthetic chunk source (cheap to clone, replays exactly).
    Stream(SyntheticChunkSource),
}

/// The runner's dataset pool: [`SharePool`] keyed on
/// `(data fingerprint, trial seed)` holding [`SharedData`].
pub(crate) type DatasetPool = SharePool<SharedData>;

/// Consumer counts for a [`DatasetPool`]: how many workload groups share
/// each data fingerprint (each group releases its fingerprint once, after
/// its last trial).
pub(crate) fn data_group_consumers(
    specs: &[ScenarioSpec],
    member_sets: &[Vec<usize>],
) -> HashMap<String, usize> {
    let mut consumers: HashMap<String, usize> = HashMap::new();
    for set in member_sets {
        if let Some(&leader) = set.first() {
            *consumers
                .entry(specs[leader].data_fingerprint())
                .or_insert(0) += 1;
        }
    }
    consumers
}

fn lease_shared(
    pool: Option<&DatasetPool>,
    data_fp: &str,
    trial_seed: u64,
    build: impl FnOnce() -> Result<SharedData>,
) -> Result<Arc<SharedData>> {
    match pool {
        Some(pool) => pool.lease(data_fp, trial_seed, build),
        None => Ok(Arc::new(build()?)),
    }
}

/// Runs a list of scenarios on the shared workspace pool and returns their
/// results **in input order**.
///
/// Scenarios with equal workload fingerprints (same data/noise/engine/seeds,
/// different attacks) are grouped: the workload is generated once per group
/// and trial, streaming pass-1 moments are accumulated once and shared, and
/// the member attacks run against the shared state — the same economy the
/// old hand-written drivers had. Groups are dispatched over
/// `randrecon-parallel`; all seeding is spec-derived, so the output is
/// bit-identical for any `RANDRECON_THREADS`.
pub fn run_scenarios(specs: &[ScenarioSpec]) -> Result<Vec<ScenarioResult>> {
    for spec in specs {
        spec.validate()?;
    }
    let member_sets = workload_groups(specs);
    let pool = DatasetPool::new(data_group_consumers(specs, &member_sets));

    let group_results = parallel_map(member_sets, |members| {
        let group: Vec<ScenarioSpec> = members.iter().map(|&i| specs[i].clone()).collect();
        let results = execute_group(&group, Some(&pool))?;
        Ok(members
            .iter()
            .copied()
            .zip(results)
            .collect::<Vec<(usize, ScenarioResult)>>())
    })?;

    // Scatter back into input order.
    let mut out: Vec<Option<ScenarioResult>> = (0..specs.len()).map(|_| None).collect();
    for batch in group_results {
        for (i, result) in batch {
            out[i] = Some(result);
        }
    }
    Ok(out
        .into_iter()
        .map(|r| r.expect("every scenario produced a result"))
        .collect())
}

/// Per-member, per-trial measurement.
struct TrialMeasurement {
    metrics: Vec<f64>,
    components_kept: Option<usize>,
    seconds: f64,
    n_records: usize,
    warnings: Vec<String>,
}

/// The error a cooperatively-cancelled cell surfaces: a
/// [`randrecon_core::ReconError::Cancelled`] wrapped for this crate, which
/// [`ExperimentError::is_timeout`] classifies as timed out.
fn cancelled_error() -> ExperimentError {
    ExperimentError::Recon(randrecon_core::ReconError::Cancelled {
        reason: "cell deadline exceeded or cancel token tripped".to_string(),
    })
}

/// Executes one workload group (scenarios sharing everything but the
/// attack/metrics) and returns one result per member, in member order.
fn execute_group(
    group: &[ScenarioSpec],
    pool: Option<&DatasetPool>,
) -> Result<Vec<ScenarioResult>> {
    execute_group_inner(group, &CancelToken::new(), pool, None)
}

/// [`execute_group`] with a cooperative [`CancelToken`]: checked before each
/// trial, before each member attack, and once per chunk inside the
/// streaming driver's pass 2 — a tripped token (or expired deadline) stops
/// the group at the next check with a timeout-classified error.
fn execute_group_cancellable(
    group: &[ScenarioSpec],
    cancel: &CancelToken,
) -> Result<Vec<ScenarioResult>> {
    execute_group_inner(group, cancel, None, None)
}

/// The grouped-execution core. `pool` (when given) shares per-trial datasets
/// across workload groups with equal data fingerprints; `prepared` (when
/// given) supplies one already-reduced [`StreamMoments`] per trial — the
/// coordinator's path for *split* streaming groups whose pass 1 was
/// distributed across shard workers — and skips the local pass 1.
fn execute_group_inner(
    group: &[ScenarioSpec],
    cancel: &CancelToken,
    pool: Option<&DatasetPool>,
    prepared: Option<&[StreamMoments]>,
) -> Result<Vec<ScenarioResult>> {
    let proto = &group[0];
    if let Some(prepared) = prepared {
        if prepared.len() != proto.trials {
            return Err(ExperimentError::InvalidConfig {
                reason: format!(
                    "scenario '{}': {} prepared moment sets for {} trials",
                    proto.label,
                    prepared.len(),
                    proto.trials
                ),
            });
        }
    }
    let data_fp = proto.data_fingerprint();
    let mut metric_sums: Vec<Vec<f64>> = group.iter().map(|s| vec![0.0; s.metrics.len()]).collect();
    let mut components: Vec<Option<usize>> = vec![None; group.len()];
    let mut seconds: Vec<f64> = vec![0.0; group.len()];
    let mut warnings: Vec<Vec<String>> = vec![Vec::new(); group.len()];
    let mut n_records = 0usize;
    let mut measured_x_sum: Option<f64> = None;

    for trial in 0..proto.trials {
        if cancel.is_cancelled() {
            return Err(cancelled_error());
        }
        let (trial_seed, noise_seed) = trial_seeds(proto, trial);

        let (measurements, measured_x) = match proto.engine {
            EngineSpec::InMemory => {
                if prepared.is_some() {
                    return Err(ExperimentError::InvalidConfig {
                        reason: format!(
                            "scenario '{}': prepared stream moments on the in-memory engine",
                            proto.label
                        ),
                    });
                }
                run_in_memory_trial(group, trial_seed, noise_seed, cancel, pool, &data_fp)?
            }
            EngineSpec::Streaming { chunk_rows } => run_streaming_trial(
                group,
                chunk_rows,
                trial_seed,
                noise_seed,
                cancel,
                pool,
                &data_fp,
                prepared.map(|p| &p[trial]),
            )?,
        };
        if let Some(x) = measured_x {
            *measured_x_sum.get_or_insert(0.0) += x;
        }
        for (i, m) in measurements.into_iter().enumerate() {
            for (sum, v) in metric_sums[i].iter_mut().zip(m.metrics.iter()) {
                *sum += v;
            }
            components[i] = m.components_kept;
            seconds[i] += m.seconds;
            n_records = m.n_records;
            for w in m.warnings {
                if !warnings[i].contains(&w) {
                    warnings[i].push(w);
                }
            }
        }
    }
    // This group has consumed all its trials; the last sharing group's
    // release evicts the cached datasets. (An errored group skips its
    // release — its cache entries simply live until the pool drops.)
    if let Some(pool) = pool {
        pool.release(&data_fp);
    }

    let trials = proto.trials as f64;
    Ok(group
        .iter()
        .enumerate()
        .zip(warnings)
        .map(|((i, spec), warnings)| ScenarioResult {
            label: spec.label.clone(),
            x: measured_x_sum.map(|s| s / trials).unwrap_or(spec.x),
            scheme: spec.attack.scheme(),
            attack: spec.attack.label(),
            engine: spec.engine.label(),
            n_records,
            trials: spec.trials,
            metrics: spec
                .metrics
                .iter()
                .copied()
                .zip(metric_sums[i].iter().map(|s| s / trials))
                .collect(),
            components_kept: components[i],
            seconds: seconds[i],
            warnings,
        })
        .collect())
}

/// Derives the per-trial `(workload seed, disguise seed)` pair — the single
/// source of truth shared by grouped execution, isolated re-runs, and the
/// distributed pass-1 worker, so all three are bit-identical by
/// construction.
pub(crate) fn trial_seeds(spec: &ScenarioSpec, trial: usize) -> (u64, u64) {
    let trial_seed = spec
        .dataset_seed
        .unwrap_or_else(|| child_seed(spec.seed, spec.seed_offset + trial as u64));
    let noise_seed = spec.noise_seed.unwrap_or_else(|| child_seed(trial_seed, 1));
    (trial_seed, noise_seed)
}

/// The materialized original data of an in-memory trial, with the synthetic
/// ground-truth structure when available (the correlated noise model and the
/// partial-knowledge attack need it).
pub(crate) enum BuiltData {
    /// A synthetic MVN draw with its ground-truth spectral structure.
    Synthetic(SyntheticDataset),
    /// A plain table (AR(1) series or CSV load).
    Table(DataTable),
}

impl BuiltData {
    fn table(&self) -> &DataTable {
        match self {
            BuiltData::Synthetic(ds) => &ds.table,
            BuiltData::Table(t) => t,
        }
    }

    fn structure(&self) -> Option<(&[f64], &Matrix, &Matrix)> {
        match self {
            BuiltData::Synthetic(ds) => {
                Some((&ds.eigenvalues[..], &ds.eigenvectors, &ds.covariance))
            }
            BuiltData::Table(_) => None,
        }
    }
}

/// Builds one in-memory trial dataset (and counts the construction).
fn build_memory_data(proto: &ScenarioSpec, trial_seed: u64) -> Result<SharedData> {
    note_dataset_generated();
    Ok(SharedData::Memory(match &proto.data {
        DataSpec::SyntheticMvn { spectrum, records } => BuiltData::Synthetic(
            SyntheticDataset::generate(&spectrum.build()?, *records, trial_seed)?,
        ),
        DataSpec::Ar1Timeseries {
            phi,
            innovation_std,
            mean,
            records,
            series,
        } => BuiltData::Table(
            Ar1Spec::new(*phi, *innovation_std, *mean)?
                .generate_table(*records, *series, trial_seed)?,
        ),
        DataSpec::Csv { path } => BuiltData::Table(read_csv_file(path)?),
    }))
}

/// Builds one streaming trial's synthetic chunk source (and counts the
/// construction).
fn build_stream_data(
    spectrum: &SpectrumSpec,
    records: usize,
    chunk_rows: usize,
    trial_seed: u64,
) -> Result<SharedData> {
    note_dataset_generated();
    Ok(SharedData::Stream(SyntheticChunkSource::generate(
        &spectrum.build()?,
        records,
        chunk_rows,
        trial_seed,
    )?))
}

#[allow(clippy::too_many_arguments)]
fn run_in_memory_trial(
    group: &[ScenarioSpec],
    trial_seed: u64,
    noise_seed: u64,
    cancel: &CancelToken,
    pool: Option<&DatasetPool>,
    data_fp: &str,
) -> Result<(Vec<TrialMeasurement>, Option<f64>)> {
    let proto = &group[0];
    let shared = lease_shared(pool, data_fp, trial_seed, || {
        build_memory_data(proto, trial_seed)
    })?;
    let SharedData::Memory(data) = shared.as_ref() else {
        return Err(ExperimentError::InvalidConfig {
            reason: format!(
                "scenario '{}': dataset pool held a stream source for an in-memory fingerprint",
                proto.label
            ),
        });
    };
    let (randomizer, measured_x) = proto.noise.build(data.structure())?;
    let original = data.table();
    let disguised = randomizer.disguise(original, &mut seeded_rng(noise_seed))?;
    let noise = randomizer.model();

    let mut out = Vec::with_capacity(group.len());
    for spec in group {
        if cancel.is_cancelled() {
            return Err(cancelled_error());
        }
        if let AttackSpec::InjectedFault { mode } = &spec.attack {
            // Testing support: fire the planted fault; if it declines to
            // fire (transient budget exhausted), report zeroed metrics.
            mode.trigger(&spec.label)?;
            out.push(TrialMeasurement {
                metrics: vec![0.0; spec.metrics.len()],
                components_kept: None,
                seconds: 0.0,
                n_records: original.n_records(),
                warnings: Vec::new(),
            });
            continue;
        }
        let start = Instant::now();
        let (reconstruction, components_kept, warnings) = match &spec.attack {
            AttackSpec::PartialKnowledgeBeDr { known_attributes } => {
                let known = KnownAttributes::new(known_attributes.clone())?;
                let idx = known.indices();
                // Bounds-check before gathering the side-channel columns, so
                // a bad index surfaces as a located error instead of an
                // out-of-range read inside Matrix::from_fn.
                let m = original.n_attributes();
                if let Some(&bad) = idx.iter().find(|&&j| j >= m) {
                    return Err(ExperimentError::InvalidConfig {
                        reason: format!(
                            "scenario '{}': known attribute index {bad} out of bounds for \
                             {m} attributes",
                            spec.label
                        ),
                    });
                }
                let known_values = Matrix::from_fn(original.n_records(), idx.len(), |i, j| {
                    original.values().get(i, idx[j])
                });
                (
                    PartialKnowledgeBeDr::default().reconstruct(
                        &disguised,
                        noise,
                        &known,
                        &known_values,
                    )?,
                    None,
                    Vec::new(),
                )
            }
            AttackSpec::Temporal { window } => (
                randrecon_core::Reconstructor::reconstruct(
                    &TemporalSmoother::new(*window)?,
                    &disguised,
                    noise,
                )?,
                None,
                Vec::new(),
            ),
            base => base
                .core_attack()?
                .reconstruct_table_with_report(&disguised, noise)?,
        };
        let seconds = start.elapsed().as_secs_f64();
        let metrics = spec
            .metrics
            .iter()
            .map(|kind| {
                Ok(match kind {
                    MetricKind::Rmse => rmse(original, &reconstruction)?,
                    MetricKind::Mse => mse(original, &reconstruction)?,
                    MetricKind::NormalizedRmse => normalized_rmse(original, &reconstruction)?,
                })
            })
            .collect::<Result<Vec<f64>>>()?;
        out.push(TrialMeasurement {
            metrics,
            components_kept,
            seconds,
            n_records: original.n_records(),
            warnings,
        });
    }
    Ok((out, measured_x))
}

#[allow(clippy::too_many_arguments)]
fn run_streaming_trial(
    group: &[ScenarioSpec],
    chunk_rows: usize,
    trial_seed: u64,
    noise_seed: u64,
    cancel: &CancelToken,
    pool: Option<&DatasetPool>,
    data_fp: &str,
    prepared: Option<&StreamMoments>,
) -> Result<(Vec<TrialMeasurement>, Option<f64>)> {
    let proto = &group[0];
    match &proto.data {
        DataSpec::SyntheticMvn { spectrum, records } => {
            let shared = lease_shared(pool, data_fp, trial_seed, || {
                build_stream_data(spectrum, *records, chunk_rows, trial_seed)
            })?;
            let SharedData::Stream(original) = shared.as_ref() else {
                return Err(ExperimentError::InvalidConfig {
                    reason: format!(
                        "scenario '{}': dataset pool held an in-memory dataset for a streaming \
                         fingerprint",
                        proto.label
                    ),
                });
            };
            let (randomizer, measured_x) = proto.noise.build(Some((
                original.eigenvalues(),
                original.eigenvectors(),
                original.covariance(),
            )))?;
            let mut disguised = DisguisedChunkSource::new(original.clone(), randomizer, noise_seed);
            let noise = disguised.model().clone();
            let fresh = original.clone();
            let measurements = sweep_streaming_group(
                group,
                &mut disguised,
                &noise,
                move || Ok(Box::new(fresh.clone())),
                cancel,
                prepared,
            )?;
            Ok((measurements, measured_x))
        }
        DataSpec::Csv { path } => {
            if prepared.is_some() {
                return Err(ExperimentError::InvalidConfig {
                    reason: format!(
                        "scenario '{}': prepared stream moments on a CSV stream (only synthetic \
                         streams split their pass 1)",
                        proto.label
                    ),
                });
            }
            let (randomizer, measured_x) = proto.noise.build(None)?;
            let reader = CsvChunkReader::open(path, chunk_rows)?;
            let mut disguised = DisguisedChunkSource::new(reader, randomizer, noise_seed);
            let noise = disguised.model().clone();
            let path = path.clone();
            let measurements = sweep_streaming_group(
                group,
                &mut disguised,
                &noise,
                move || Ok(Box::new(CsvChunkReader::open(&path, chunk_rows)?)),
                cancel,
                None,
            )?;
            Ok((measurements, measured_x))
        }
        DataSpec::Ar1Timeseries { .. } => Err(ExperimentError::InvalidConfig {
            reason: "AR(1) time-series scenarios run in-memory only".to_string(),
        }),
    }
}

/// Streaming pass 1 once (skipped when `prepared` moments are supplied —
/// the coordinator's reduced cross-shard moments are bit-identical to a
/// local pass 1), then every member attack over the shared moments, each
/// scored by a metrics-only MSE sink against a fresh original stream.
fn sweep_streaming_group<S, F>(
    group: &[ScenarioSpec],
    disguised: &mut S,
    noise: &randrecon_noise::NoiseModel,
    mut fresh_original: F,
    cancel: &CancelToken,
    prepared: Option<&StreamMoments>,
) -> Result<Vec<TrialMeasurement>>
where
    S: RecordChunkSource + Send + ?Sized,
    F: FnMut() -> Result<Box<dyn RecordChunkSource>>,
{
    if cancel.is_cancelled() {
        return Err(cancelled_error());
    }
    let computed;
    let moments = match prepared {
        Some(moments) => moments,
        None => {
            computed = StreamingDriver::accumulate_moments(disguised)?;
            &computed
        }
    };
    let driver = StreamingDriver::default();
    let mut out = Vec::with_capacity(group.len());
    for spec in group {
        if cancel.is_cancelled() {
            return Err(cancelled_error());
        }
        let chunk_attack = spec.attack.core_attack()?.chunk_reconstructor()?;
        let mut reference = fresh_original()?;
        let start = Instant::now();
        let mut sink = MseSink::new(reference.as_mut())?;
        let report = driver.run_with_moments_cancellable(
            chunk_attack.as_ref(),
            moments,
            disguised,
            noise,
            &mut sink,
            cancel,
        )?;
        let seconds = start.elapsed().as_secs_f64();
        let mse_value = sink.mse();
        let metrics = spec
            .metrics
            .iter()
            .map(|kind| match kind {
                MetricKind::Mse => mse_value,
                MetricKind::Rmse => mse_value.sqrt(),
                // Rejected by validation before execution.
                MetricKind::NormalizedRmse => f64::NAN,
            })
            .collect();
        out.push(TrialMeasurement {
            metrics,
            components_kept: report.components_kept,
            seconds,
            n_records: report.n_records,
            warnings: report.warnings,
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Fail-soft execution
// ---------------------------------------------------------------------------

/// How the fail-soft runner handles a failed scenario.
///
/// Classification uses [`ExperimentError::is_transient`]: I/O-family errors
/// are **transient** (a retry under the same inputs may not reproduce them);
/// everything else — bad configs, numeric failures, panics — is
/// **deterministic**, because all scenario randomness is spec-derived and a
/// retry would replay the identical failure. Deterministic failures are
/// therefore not retried unless [`retry_deterministic`] is set (useful only
/// against external nondeterminism the classifier cannot see). Failures
/// classified as **timed out** ([`ExperimentError::is_timeout`]) are never
/// retried — a replay under the same deadline would wedge identically.
///
/// Retries are spaced by the deterministic [`BackoffPolicy`] (stream 0 of
/// the spec's own grid fingerprint); a retry whose backoff budget is
/// exhausted is abandoned as if `max_attempts` had been reached.
///
/// [`retry_deterministic`]: RetryPolicy::retry_deterministic
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per scenario (≥ 1; 1 = no retries).
    pub max_attempts: u32,
    /// Also retry failures classified as deterministic.
    pub retry_deterministic: bool,
    /// Cooperative per-attempt deadline: each attempt runs under a
    /// [`CancelToken`] with this timeout, checked at trial, member, and
    /// chunk boundaries. `None` = no deadline. An expired deadline reports
    /// the cell as failed with a timed-out classification.
    pub cell_timeout: Option<Duration>,
    /// Deterministic delay schedule between in-process retry attempts.
    pub backoff: BackoffPolicy,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            retry_deterministic: false,
            cell_timeout: None,
            backoff: BackoffPolicy::default(),
        }
    }
}

impl RetryPolicy {
    /// Up to `max_attempts` total attempts, retrying transient failures only.
    pub fn transient_retries(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..RetryPolicy::default()
        }
    }

    /// This policy with a cooperative per-attempt cell deadline.
    pub fn with_cell_timeout(mut self, timeout: Duration) -> Self {
        self.cell_timeout = Some(timeout);
        self
    }
}

/// A scenario that failed under fail-soft execution — the cell's slot in
/// the sweep, with the error that killed it.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioFailure {
    /// The scenario's label.
    pub label: String,
    /// Attack display label.
    pub attack: String,
    /// Engine display label.
    pub engine: &'static str,
    /// Rendered error (or panic message) of the **last** attempt.
    pub error: String,
    /// Whether the last error was classified transient (panics are not).
    pub transient: bool,
    /// Whether the last error was a cooperative timeout (an expired cell
    /// deadline or a tripped cancel token). Timed-out failures are reported
    /// distinctly and never retried.
    pub timed_out: bool,
    /// Isolated attempts made before giving up.
    pub attempts: u32,
}

impl ScenarioFailure {
    /// The failure-classification label reports render: `timed-out`,
    /// `transient`, or `deterministic`.
    pub fn classification(&self) -> &'static str {
        if self.timed_out {
            "timed-out"
        } else if self.transient {
            "transient"
        } else {
            "deterministic"
        }
    }
}

/// The outcome of one scenario under fail-soft execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioOutcome {
    /// The scenario ran to completion with no degradation warnings.
    Completed(ScenarioResult),
    /// The scenario ran to completion, but only by degrading gracefully —
    /// its result carries non-empty [`ScenarioResult::warnings`] (e.g.
    /// BE-DR's eigenvalue-clipped SPD repair of an indefinite posterior
    /// system). The metrics are real and usable; reports render these cells
    /// distinctly so a silent numerical rescue cannot masquerade as a clean
    /// run.
    Degraded(ScenarioResult),
    /// The scenario errored or panicked on every attempt; the rest of the
    /// sweep ran anyway.
    Failed(ScenarioFailure),
}

impl ScenarioOutcome {
    /// Wraps a runner result in the outcome its warnings dictate:
    /// [`Completed`](ScenarioOutcome::Completed) when the warning list is
    /// empty, [`Degraded`](ScenarioOutcome::Degraded) otherwise. Every
    /// construction site of a successful outcome goes through here so the
    /// degraded contract cannot be bypassed.
    pub fn from_result(result: ScenarioResult) -> ScenarioOutcome {
        if result.warnings.is_empty() {
            ScenarioOutcome::Completed(result)
        } else {
            ScenarioOutcome::Degraded(result)
        }
    }

    /// The scenario's label.
    pub fn label(&self) -> &str {
        match self {
            ScenarioOutcome::Completed(r) | ScenarioOutcome::Degraded(r) => &r.label,
            ScenarioOutcome::Failed(f) => &f.label,
        }
    }

    /// The scenario result, if the scenario produced one — `Some` for both
    /// [`Completed`](ScenarioOutcome::Completed) and
    /// [`Degraded`](ScenarioOutcome::Degraded) (degraded metrics are real
    /// measurements; only their provenance is flagged).
    pub fn as_completed(&self) -> Option<&ScenarioResult> {
        match self {
            ScenarioOutcome::Completed(r) | ScenarioOutcome::Degraded(r) => Some(r),
            ScenarioOutcome::Failed(_) => None,
        }
    }

    /// True for [`ScenarioOutcome::Failed`].
    pub fn is_failed(&self) -> bool {
        matches!(self, ScenarioOutcome::Failed(_))
    }

    /// True for [`ScenarioOutcome::Degraded`].
    pub fn is_degraded(&self) -> bool {
        matches!(self, ScenarioOutcome::Degraded(_))
    }
}

/// Runs one scenario in isolation, catching panics and applying the retry
/// policy (deadline per attempt, deterministic backoff between attempts).
/// Re-running a member standalone is bit-identical to running it
/// inside its workload group (sharing is purely a cost optimization; all
/// seeding is spec-derived), so isolation never changes results.
fn run_one_failsoft(spec: &ScenarioSpec, policy: RetryPolicy) -> ScenarioOutcome {
    let fingerprint = crate::journal::grid_fingerprint(std::slice::from_ref(spec));
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let cancel = match policy.cell_timeout {
            Some(timeout) => CancelToken::with_deadline(timeout),
            None => CancelToken::new(),
        };
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_group_cancellable(std::slice::from_ref(spec), &cancel)
        }));
        let (error, transient, timed_out) = match attempt {
            Ok(Ok(mut results)) => match results.pop() {
                Some(result) => return ScenarioOutcome::from_result(result),
                None => ("scenario produced no result".to_string(), false, false),
            },
            Ok(Err(e)) => (e.to_string(), e.is_transient(), e.is_timeout()),
            Err(payload) => (
                format!(
                    "panic: {}",
                    randrecon_parallel::panic_message(payload.as_ref())
                ),
                false,
                false,
            ),
        };
        let mut retry = !timed_out
            && attempts < policy.max_attempts.max(1)
            && (transient || policy.retry_deterministic);
        if retry {
            // Deterministic backoff before the next attempt; an exhausted
            // delay budget abandons the retry instead of sleeping.
            match policy.backoff.delay(fingerprint, 0, attempts) {
                Some(delay) => {
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
                None => retry = false,
            }
        }
        if !retry {
            return ScenarioOutcome::Failed(ScenarioFailure {
                label: spec.label.clone(),
                attack: spec.attack.label(),
                engine: spec.engine.label(),
                error,
                transient,
                timed_out,
                attempts,
            });
        }
    }
}

/// Executes one workload group fail-soft: the shared (grouped) run is tried
/// first; if any member poisons it — an error, a panic, or a blown group
/// deadline — each member is re-run in isolation (under its own per-cell
/// deadline) so one bad cell cannot take down its group-mates.
pub(crate) fn execute_group_failsoft(
    group: &[ScenarioSpec],
    policy: RetryPolicy,
    pool: Option<&DatasetPool>,
) -> Vec<ScenarioOutcome> {
    if group.len() > 1 || pool.is_some() {
        // The shared run gets the whole group's worth of cell deadlines —
        // it does the work of `group.len()` cells.
        let cancel = match policy.cell_timeout {
            Some(timeout) => CancelToken::with_deadline(timeout * group.len() as u32),
            None => CancelToken::new(),
        };
        let shared = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_group_inner(group, &cancel, pool, None)
        }));
        if let Ok(Ok(results)) = shared {
            return results
                .into_iter()
                .map(ScenarioOutcome::from_result)
                .collect();
        }
    }
    // Isolated (unpooled) per-member retries — bit-identical to the shared
    // path, since dataset sharing is purely a cost optimization.
    group.iter().map(|s| run_one_failsoft(s, policy)).collect()
}

/// Finishes a *split* workload group coordinator-side from already-reduced
/// per-trial stream moments (one [`StreamMoments`] per trial): builds the
/// group's disguised stream — through the dataset `pool`, so the grid's
/// shared datasets are constructed once — and runs every member's pass 2
/// against the supplied moments. Because the reduced moments are
/// bit-identical to the moments a local pass 1 would produce (same fixed
/// segmentation, same fold), results equal single-process execution bit for
/// bit. On error or panic the members fall back to isolated self-computing
/// runs — again bit-identical, just without the distributed economy.
pub(crate) fn execute_group_failsoft_with_moments(
    group: &[ScenarioSpec],
    moments: &[StreamMoments],
    policy: RetryPolicy,
    pool: Option<&DatasetPool>,
) -> Vec<ScenarioOutcome> {
    let cancel = match policy.cell_timeout {
        Some(timeout) => CancelToken::with_deadline(timeout * group.len().max(1) as u32),
        None => CancelToken::new(),
    };
    let shared = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        execute_group_inner(group, &cancel, pool, Some(moments))
    }));
    if let Ok(Ok(results)) = shared {
        return results
            .into_iter()
            .map(ScenarioOutcome::from_result)
            .collect();
    }
    group.iter().map(|s| run_one_failsoft(s, policy)).collect()
}

/// Worker half of the distributed pass 1: builds trial `trial`'s disguised
/// stream for a splittable group prototype ([`ScenarioSpec::stream_geometry`]
/// is `Some`) and accumulates its self-anchored moment segments
/// `seg_lo..seg_hi`. Skipping to `seg_lo` is a pure seed-cursor jump (both
/// the synthetic sampler and the disguise noise are child-seeded per chunk
/// index), so the returned segments are bit-identical to the ones a full
/// single-process pass folds — the property the coordinator's cross-shard
/// reduce depends on.
pub(crate) fn accumulate_split_segments(
    proto: &ScenarioSpec,
    trial: usize,
    seg_lo: usize,
    seg_hi: usize,
) -> Result<Vec<MomentSegment>> {
    let EngineSpec::Streaming { chunk_rows } = proto.engine else {
        return Err(ExperimentError::InvalidConfig {
            reason: format!(
                "scenario '{}': moment segments need the streaming engine",
                proto.label
            ),
        });
    };
    let DataSpec::SyntheticMvn { spectrum, records } = &proto.data else {
        return Err(ExperimentError::InvalidConfig {
            reason: format!(
                "scenario '{}': moment segments need a synthetic MVN stream",
                proto.label
            ),
        });
    };
    let (trial_seed, noise_seed) = trial_seeds(proto, trial);
    let SharedData::Stream(original) =
        build_stream_data(spectrum, *records, chunk_rows, trial_seed)?
    else {
        unreachable!("build_stream_data always builds a stream");
    };
    let (randomizer, _measured_x) = proto.noise.build(Some((
        original.eigenvalues(),
        original.eigenvectors(),
        original.covariance(),
    )))?;
    let mut disguised = DisguisedChunkSource::new(original, randomizer, noise_seed);
    Ok(accumulate_moment_segments(&mut disguised, seg_lo, seg_hi)?)
}

/// The fail-soft core: validates, groups, dispatches, and reports every
/// scenario's outcome **in input order**, invoking `on_done(input_index,
/// outcome)` as each scenario finishes (under parallel dispatch — the
/// callback must be `Sync`; the journal layer serializes appends behind a
/// mutex). A callback error aborts the sweep with that error once dispatch
/// drains.
pub(crate) fn execute_specs_failsoft<F>(
    specs: &[ScenarioSpec],
    policy: RetryPolicy,
    on_done: F,
) -> Result<Vec<ScenarioOutcome>>
where
    F: Fn(usize, &ScenarioOutcome) -> Result<()> + Sync,
{
    for spec in specs {
        spec.validate()?;
    }
    let member_sets = workload_groups(specs);
    let pool = DatasetPool::new(data_group_consumers(specs, &member_sets));

    let callback_error: std::sync::Mutex<Option<ExperimentError>> = std::sync::Mutex::new(None);
    let group_outcomes = randrecon_parallel::parallel_map_catch(&member_sets, |members| {
        let group: Vec<ScenarioSpec> = members.iter().map(|&i| specs[i].clone()).collect();
        let outcomes = execute_group_failsoft(&group, policy, Some(&pool));
        for (&i, outcome) in members.iter().zip(outcomes.iter()) {
            if let Err(e) = on_done(i, outcome) {
                let mut slot = callback_error.lock().unwrap_or_else(|e| e.into_inner());
                slot.get_or_insert(e);
            }
        }
        members
            .iter()
            .copied()
            .zip(outcomes)
            .collect::<Vec<(usize, ScenarioOutcome)>>()
    });

    if let Some(e) = callback_error
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take()
    {
        return Err(e);
    }

    let mut out: Vec<Option<ScenarioOutcome>> = (0..specs.len()).map(|_| None).collect();
    for (set, batch) in member_sets.iter().zip(group_outcomes) {
        match batch {
            Ok(pairs) => {
                for (i, outcome) in pairs {
                    out[i] = Some(outcome);
                }
            }
            // A panic escaped even the per-group containment (e.g. inside
            // the dispatch bookkeeping): every member of that group is
            // reported failed rather than silently dropped.
            Err(panic_msg) => {
                for &i in set {
                    out[i] = Some(ScenarioOutcome::Failed(ScenarioFailure {
                        label: specs[i].label.clone(),
                        attack: specs[i].attack.label(),
                        engine: specs[i].engine.label(),
                        error: format!("panic: {panic_msg}"),
                        transient: false,
                        timed_out: false,
                        attempts: 1,
                    }));
                }
            }
        }
    }
    Ok(out
        .into_iter()
        .map(|r| r.expect("every scenario produced an outcome"))
        .collect())
}

/// Fail-soft variant of [`run_scenarios`]: instead of aborting the sweep at
/// the first error, every scenario reports a [`ScenarioOutcome`] — failures
/// (errors *and* panics, contained per scenario) sit alongside the completed
/// cells, in input order. Scenario groups still share workloads on the happy
/// path; a failing group falls back to isolated per-member execution (with
/// `policy`'s retries) so one poisoned cell cannot sink its group-mates.
/// Only spec-validation errors abort the whole sweep — an invalid grid is a
/// caller bug, not a runtime casualty.
pub fn run_scenarios_failsoft(
    specs: &[ScenarioSpec],
    policy: RetryPolicy,
) -> Result<Vec<ScenarioOutcome>> {
    execute_specs_failsoft(specs, policy, |_, _| Ok(()))
}

// ---------------------------------------------------------------------------
// Series regrouping
// ---------------------------------------------------------------------------

/// Regroups runner results into an [`crate::config::ExperimentSeries`]: one
/// point per distinct `x` (first-appearance order), one `(scheme, RMSE)`
/// entry per result at that x. Results whose attack is not one of the five
/// paper schemes are skipped (they have no figure legend).
pub fn series_from_results(
    name: &str,
    x_label: &str,
    results: &[ScenarioResult],
) -> crate::config::ExperimentSeries {
    let mut points: Vec<crate::config::SeriesPoint> = Vec::new();
    for result in results {
        let Some(scheme) = result.scheme else {
            continue;
        };
        let Some(value) = result.rmse() else {
            continue;
        };
        // A result joins the most recent point with its x — unless that
        // point already carries its scheme, which means a *repeated* sweep
        // value has started a fresh point (sweeps may legitimately visit the
        // same x twice; each visit stays its own point, as the hand-written
        // drivers emitted them).
        match points
            .iter_mut()
            .rev()
            .find(|p| p.x == result.x)
            .filter(|p| p.rmse_of(scheme).is_none())
        {
            Some(point) => point.rmse.push((scheme, value)),
            None => points.push(crate::config::SeriesPoint {
                x: result.x,
                rmse: vec![(scheme, value)],
            }),
        }
    }
    crate::config::ExperimentSeries {
        name: name.to_string(),
        x_label: x_label.to_string(),
        points,
    }
}
