//! Deterministic fault injection — the testing-support harness behind the
//! crash-resume and fail-soft test suites.
//!
//! Nothing in this module fires on its own: every fault is installed
//! explicitly, fires at a **deterministic, seed-derivable point** (record
//! `k`, chunk `k`, byte offset `b`), and is therefore reproducible across
//! runs and thread counts. The pieces:
//!
//! * [`FaultMode`] — the payload of
//!   [`AttackSpec::InjectedFault`](crate::scenario::AttackSpec::InjectedFault):
//!   a scenario that errors, panics, or fails transiently (first `k`
//!   invocations) instead of attacking. This is how the fail-soft runner's
//!   containment and retry paths are exercised end to end.
//! * [`FaultyChunkSource`] — wraps any [`RecordChunkSource`] and injects an
//!   error, a panic, or a malformed (wrong-width) chunk at sweep `s`,
//!   chunk `k` — the streaming driver's chunk-located error wrapping
//!   ([`ReconError::AtChunk`](randrecon_core::ReconError::AtChunk)) is
//!   tested through this.
//! * [`FaultySink`] — wraps any [`RecordSink`] and fails (or panics) when
//!   chunk `k` of the reconstruction arrives.
//! * [`FailingWrite`] — an [`std::io::Write`] with a byte budget: writes
//!   succeed until the budget is spent, then fail — torn-write behaviour
//!   without a real full disk.
//! * [`crash_offsets`] — seed-derived byte offsets for the randomized
//!   crash-matrix tests (kill a journal-writing child at offset `b`,
//!   resume, assert recovery).
//!
//! The process-global transient counter ([`FaultMode::Transient`]) is keyed
//! by scenario label; call [`reset_transient_counters`] between tests that
//! reuse labels.

use crate::error::{ExperimentError, Result};
use randrecon_core::streaming::RecordSink;
use randrecon_core::ReconError;
use randrecon_data::chunks::RecordChunkSource;
use randrecon_data::DataError;
use randrecon_linalg::Matrix;
use randrecon_stats::rng::child_seed;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::Write;
use std::sync::{Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Scenario-level faults
// ---------------------------------------------------------------------------

/// How an [`AttackSpec::InjectedFault`](crate::scenario::AttackSpec::InjectedFault)
/// scenario fails. Testing support: real scenarios never produce these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultMode {
    /// Every invocation returns [`ExperimentError::InjectedFault`]
    /// (deterministic — the retry policy will not retry it by default).
    Error,
    /// Every invocation panics (exercises `catch_unwind` containment).
    Panic,
    /// The first `fail_first` invocations fail with an I/O error (which
    /// [`ExperimentError::is_transient`] classifies as retryable); later
    /// invocations succeed with zeroed metrics. Invocations are counted
    /// per scenario label in a process-global registry — see
    /// [`reset_transient_counters`].
    Transient {
        /// Number of leading invocations that fail.
        fail_first: u32,
    },
}

fn transient_counters() -> &'static Mutex<HashMap<String, u32>> {
    static COUNTS: OnceLock<Mutex<HashMap<String, u32>>> = OnceLock::new();
    COUNTS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Clears the process-global invocation counters behind
/// [`FaultMode::Transient`]. Tests that reuse scenario labels call this
/// first so earlier tests cannot spend their fault budget.
pub fn reset_transient_counters() {
    transient_counters()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
}

impl FaultMode {
    /// Fires the fault for the scenario `label`: returns an error, panics,
    /// or — for [`FaultMode::Transient`] past its budget — returns `Ok(())`
    /// (the scenario then reports zeroed metrics).
    pub fn trigger(&self, label: &str) -> Result<()> {
        match self {
            FaultMode::Error => Err(ExperimentError::InjectedFault {
                label: label.to_string(),
            }),
            FaultMode::Panic => panic!("injected panic in scenario '{label}'"),
            FaultMode::Transient { fail_first } => {
                let mut counts = transient_counters()
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                let count = counts.entry(label.to_string()).or_insert(0);
                *count += 1;
                if *count <= *fail_first {
                    Err(ExperimentError::Io(std::io::Error::other(format!(
                        "injected transient fault in scenario '{label}' \
                         (invocation {count} of {fail_first} that fail)"
                    ))))
                } else {
                    Ok(())
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Chunk-source faults
// ---------------------------------------------------------------------------

/// What a [`FaultyChunkSource`] does when its trigger chunk is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkFault {
    /// `next_chunk` returns a [`DataError::Stream`] error.
    Error,
    /// `next_chunk` panics.
    Panic,
    /// The chunk is emitted with its last column dropped (wrong width), so
    /// the failure surfaces downstream — in the reconstructor or the sink —
    /// rather than at the source.
    Malformed,
    /// `next_chunk` never returns: the source sleeps forever at the trigger
    /// chunk, modelling a wedged upstream (stuck NFS read, deadlocked
    /// producer). Only cooperative supervision — a worker watchdog killing
    /// the process — can get past it; use [`ChunkFault::SlowChunk`] to
    /// exercise the in-process cell-deadline path instead.
    Hang,
    /// Every chunk from the trigger onward (within the trigger sweep) is
    /// delayed by `delay_ms` before being emitted — slow enough to blow a
    /// cell deadline, but still yielding at chunk boundaries so the
    /// cooperative [`CancelToken`](randrecon_core::streaming::CancelToken)
    /// check fires deterministically.
    SlowChunk {
        /// Delay injected before each affected chunk, in milliseconds.
        delay_ms: u64,
    },
}

/// A [`RecordChunkSource`] wrapper that injects one deterministic fault at
/// (`sweep`, `chunk`).
///
/// Sweeps are counted by [`reset`](RecordChunkSource::reset) calls: the
/// two-pass streaming driver resets before each pass, so `on_sweep = 1`
/// fires during pass 1 (moment accumulation) and `on_sweep = 2` during
/// pass 2 (reconstruction) — the pass whose chunk-located
/// [`AtChunk`](randrecon_core::ReconError::AtChunk) wrapping the crash
/// tests pin down.
pub struct FaultyChunkSource<S> {
    inner: S,
    fault: ChunkFault,
    on_sweep: usize,
    at_chunk: usize,
    sweep: usize,
    emitted: usize,
}

impl<S: RecordChunkSource> FaultyChunkSource<S> {
    /// Wraps `inner`; the fault fires when chunk `at_chunk` (0-based) of
    /// sweep `on_sweep` (1-based, counted by `reset` calls) is requested.
    pub fn new(inner: S, fault: ChunkFault, on_sweep: usize, at_chunk: usize) -> Self {
        FaultyChunkSource {
            inner,
            fault,
            on_sweep,
            at_chunk,
            sweep: 0,
            emitted: 0,
        }
    }
}

impl<S: RecordChunkSource> RecordChunkSource for FaultyChunkSource<S> {
    fn n_attributes(&self) -> usize {
        self.inner.n_attributes()
    }

    fn n_records_hint(&self) -> Option<usize> {
        self.inner.n_records_hint()
    }

    fn reset(&mut self) -> randrecon_data::Result<()> {
        self.sweep += 1;
        self.emitted = 0;
        self.inner.reset()
    }

    fn next_chunk(&mut self) -> randrecon_data::Result<Option<Matrix>> {
        let at_trigger = self.sweep == self.on_sweep && self.emitted == self.at_chunk;
        let past_trigger = self.sweep == self.on_sweep && self.emitted >= self.at_chunk;
        self.emitted += 1;
        match self.fault {
            ChunkFault::Error if at_trigger => {
                return Err(DataError::Stream {
                    reason: format!(
                        "injected source fault at sweep {} chunk {}",
                        self.sweep, self.at_chunk
                    ),
                })
            }
            ChunkFault::Panic if at_trigger => panic!(
                "injected source panic at sweep {} chunk {}",
                self.sweep, self.at_chunk
            ),
            ChunkFault::Malformed if at_trigger => {
                let chunk = self.inner.next_chunk()?;
                return Ok(match chunk {
                    Some(c) if c.cols() > 1 => Some(c.submatrix(0, c.rows(), 0, c.cols() - 1)?),
                    other => other,
                });
            }
            ChunkFault::Hang if at_trigger => loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            },
            ChunkFault::SlowChunk { delay_ms } if past_trigger => {
                std::thread::sleep(std::time::Duration::from_millis(delay_ms));
            }
            _ => {}
        }
        self.inner.next_chunk()
    }
}

// ---------------------------------------------------------------------------
// Sink faults
// ---------------------------------------------------------------------------

/// A [`RecordSink`] wrapper that fails (or panics) when reconstruction
/// chunk `at_chunk` (0-based) arrives. Chunks before the trigger are
/// forwarded to the inner sink unchanged.
pub struct FaultySink<S> {
    inner: S,
    at_chunk: usize,
    panic_instead: bool,
    seen: usize,
}

impl<S: RecordSink> FaultySink<S> {
    /// Fails `consume_chunk` with a [`ReconError::InvalidInput`] at chunk
    /// `at_chunk`.
    pub fn erroring(inner: S, at_chunk: usize) -> Self {
        FaultySink {
            inner,
            at_chunk,
            panic_instead: false,
            seen: 0,
        }
    }

    /// Panics in `consume_chunk` at chunk `at_chunk`.
    pub fn panicking(inner: S, at_chunk: usize) -> Self {
        FaultySink {
            inner,
            at_chunk,
            panic_instead: true,
            seen: 0,
        }
    }

    /// The wrapped sink (to read accumulated state after a partial run).
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: RecordSink> RecordSink for FaultySink<S> {
    fn consume_chunk(&mut self, chunk: &Matrix) -> randrecon_core::Result<()> {
        let fire = self.seen == self.at_chunk;
        self.seen += 1;
        if fire {
            if self.panic_instead {
                panic!("injected sink panic at chunk {}", self.at_chunk);
            }
            return Err(ReconError::InvalidInput {
                reason: format!("injected sink fault at chunk {}", self.at_chunk),
            });
        }
        self.inner.consume_chunk(chunk)
    }
}

// ---------------------------------------------------------------------------
// Write faults
// ---------------------------------------------------------------------------

/// An [`std::io::Write`] with a byte budget: bytes pass through until the
/// budget is spent, after which every write fails. A write straddling the
/// budget is **torn** — its leading bytes go through — which is exactly the
/// partial-frame state the journal's recovery pass must detect.
pub struct FailingWrite<W> {
    inner: W,
    remaining: usize,
}

impl<W: Write> FailingWrite<W> {
    /// Allows exactly `budget` bytes through before failing.
    pub fn new(inner: W, budget: usize) -> Self {
        FailingWrite {
            inner,
            remaining: budget,
        }
    }

    /// The wrapped writer (to inspect what made it through).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FailingWrite<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.remaining == 0 {
            return Err(std::io::Error::other(
                "injected write failure (budget spent)",
            ));
        }
        let n = buf.len().min(self.remaining);
        let written = self.inner.write(&buf[..n])?;
        self.remaining -= written;
        Ok(written)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

// ---------------------------------------------------------------------------
// Crash-offset derivation
// ---------------------------------------------------------------------------

/// `count` deterministic byte offsets in `[0, max)`, derived from `seed`
/// with the same SplitMix64 stream-splitting the experiment seeds use — the
/// randomized crash-offset matrix kills a journal at these offsets and
/// asserts recovery at each.
pub fn crash_offsets(seed: u64, count: usize, max: u64) -> Vec<u64> {
    assert!(max > 0, "crash_offsets needs a positive range");
    (0..count)
        .map(|i| child_seed(seed, i as u64) % max)
        .collect()
}

// ---------------------------------------------------------------------------
// Crash-point flags (worker kill injection)
// ---------------------------------------------------------------------------

/// Parses the textual [`CrashPoint`](crate::journal::CrashPoint) form used
/// on command lines and in child-process environment variables:
/// `records:<k>` (abort once `k` records have been journaled) or
/// `byte:<b>` (abort once the journal reaches byte offset `b`).
pub fn parse_crash_point(s: &str) -> Option<crate::journal::CrashPoint> {
    use crate::journal::CrashPoint;
    let (kind, value) = s.split_once(':')?;
    match kind.trim() {
        "records" => Some(CrashPoint::AfterRecords(value.trim().parse().ok()?)),
        "byte" => Some(CrashPoint::AtByte(value.trim().parse().ok()?)),
        _ => None,
    }
}

/// Renders a [`CrashPoint`](crate::journal::CrashPoint) in the form
/// [`parse_crash_point`] accepts — how a shard coordinator forwards a kill
/// request to a worker's `--crash` flag.
pub fn format_crash_point(point: crate::journal::CrashPoint) -> String {
    use crate::journal::CrashPoint;
    match point {
        CrashPoint::AfterRecords(k) => format!("records:{k}"),
        CrashPoint::AtByte(b) => format!("byte:{b}"),
    }
}

/// A kill request for one shard worker of a sharded sweep: shard `shard`
/// aborts at `crash` — **on its first attempt only** (a restarted worker
/// resumes past its journaled records, so re-arming the same
/// `AfterRecords` trigger would abort it immediately forever). Parsed from
/// the `scenarios` binary's `--kill-shard <shard>:records:<k>` /
/// `--kill-shard <shard>:byte:<b>` testing flag, which CI's sharded smoke
/// uses to exercise kill-and-restart end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerKill {
    /// Index of the shard whose first worker attempt is killed.
    pub shard: usize,
    /// Where in the shard journal the abort fires.
    pub crash: crate::journal::CrashPoint,
}

impl WorkerKill {
    /// Parses `<shard>:records:<k>` or `<shard>:byte:<b>`.
    pub fn parse(s: &str) -> Option<WorkerKill> {
        let (shard, rest) = s.split_once(':')?;
        Some(WorkerKill {
            shard: shard.trim().parse().ok()?,
            crash: parse_crash_point(rest)?,
        })
    }
}

/// A hang request for one shard worker: shard `shard` wedges (sleeps
/// forever **while holding its journal lock**, so exactly `after_records`
/// records land) once it has journaled `after_records` records — on its
/// first attempt only, like [`WorkerKill`]. Unlike a crash, a hung worker
/// never exits: only the coordinator's heartbeat watchdog
/// ([`crate::shard::ShardedRunConfig::worker_timeout`]) can detect, kill,
/// and restart it. Parsed from the `scenarios` binary's
/// `--hang-shard <shard>:<records>` testing flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerHang {
    /// Index of the shard whose first worker attempt hangs.
    pub shard: usize,
    /// Records journaled before the worker wedges.
    pub after_records: u64,
}

impl WorkerHang {
    /// Parses `<shard>:<records>`.
    pub fn parse(s: &str) -> Option<WorkerHang> {
        let (shard, records) = s.split_once(':')?;
        Some(WorkerHang {
            shard: shard.trim().parse().ok()?,
            after_records: records.trim().parse().ok()?,
        })
    }
}

// ---------------------------------------------------------------------------
// Numerically degenerate workloads
// ---------------------------------------------------------------------------

/// A scenario whose BE-DR posterior system `Σ̂_x + Σ_r` reliably lands
/// numerically indefinite. Fewer records (6) than attributes (8) make the
/// sample covariance rank-deficient, so `Σ̂_x = Σ̂_y − σ²I` has exact
/// `−σ²` eigenvalues in the null space; the tiny clip floor lifts them to
/// `1e-12`, and recomposing through the `1e9`-scale principal eigenvalues
/// leaves rounding of order `ε·λ_max ≈ 2e-7` — dwarfing both the floor and
/// the `σ² = 1e-12` noise variance, so the straight Cholesky of `T` fails
/// and the cell completes only through the escalated eigenvalue-clip SPD
/// repair. (The true spectrum itself stays comfortably factorable:
/// `1e-3` tails against `ε·λ_max ≈ 2e-7`, so *generation* never trips.)
/// The graceful-degradation suites pin that such a cell finishes as
/// [`ScenarioOutcome::Degraded`](crate::scenario::ScenarioOutcome::Degraded)
/// with metrics within a few percent of a well-floored run. Deterministic
/// for a given `seed`.
pub fn near_singular_be_dr_spec(label: &str, seed: u64) -> crate::scenario::ScenarioSpec {
    use crate::scenario::{
        AttackSpec, DataSpec, EngineSpec, MetricKind, NoiseSpec, ScenarioSpec, SpectrumSpec,
    };
    let mut eigenvalues = vec![1e9, 1e9];
    eigenvalues.extend(vec![1e-3; 6]);
    ScenarioSpec {
        label: label.to_string(),
        x: 0.0,
        data: DataSpec::SyntheticMvn {
            spectrum: SpectrumSpec::Explicit(eigenvalues),
            records: 6,
        },
        noise: NoiseSpec::Gaussian { sigma: 1e-6 },
        attack: AttackSpec::BeDr {
            eigenvalue_floor: Some(1e-12),
        },
        engine: EngineSpec::InMemory,
        metrics: vec![MetricKind::Rmse, MetricKind::Mse],
        trials: 1,
        seed,
        seed_offset: 0,
        dataset_seed: None,
        noise_seed: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use randrecon_data::chunks::TableChunkSource;
    use randrecon_data::DataTable;

    fn small_table() -> DataTable {
        let values = Matrix::from_fn(10, 3, |i, j| (i * 3 + j) as f64);
        DataTable::from_matrix(values).expect("table")
    }

    #[test]
    fn fault_mode_error_and_transient() {
        reset_transient_counters();
        assert!(FaultMode::Error.trigger("cell").is_err());
        let t = FaultMode::Transient { fail_first: 2 };
        let first = t.trigger("cell-t").unwrap_err();
        assert!(first.is_transient());
        assert!(t.trigger("cell-t").is_err());
        assert!(t.trigger("cell-t").is_ok());
        // Fresh label has its own budget.
        assert!(t.trigger("cell-u").is_err());
    }

    #[test]
    fn faulty_source_fires_on_requested_sweep_only() {
        let table = small_table();
        let inner = TableChunkSource::new(&table, 4).expect("source");
        let mut src = FaultyChunkSource::new(inner, ChunkFault::Error, 2, 1);
        // Sweep 1: clean.
        src.reset().unwrap();
        let mut chunks = 0;
        while src.next_chunk().unwrap().is_some() {
            chunks += 1;
        }
        assert_eq!(chunks, 3);
        // Sweep 2: chunk 1 errors.
        src.reset().unwrap();
        assert!(src.next_chunk().is_ok());
        let err = src.next_chunk().unwrap_err();
        assert!(err.to_string().contains("injected source fault"));
    }

    #[test]
    fn malformed_chunk_loses_a_column() {
        let table = small_table();
        let inner = TableChunkSource::new(&table, 4).expect("source");
        let mut src = FaultyChunkSource::new(inner, ChunkFault::Malformed, 1, 0);
        src.reset().unwrap();
        let bad = src.next_chunk().unwrap().expect("chunk");
        assert_eq!(bad.cols(), 2);
        let good = src.next_chunk().unwrap().expect("chunk");
        assert_eq!(good.cols(), 3);
    }

    #[test]
    fn faulty_sink_errors_at_chunk() {
        use randrecon_core::streaming::DiscardSink;
        let mut sink = FaultySink::erroring(DiscardSink::default(), 1);
        let chunk = Matrix::from_fn(2, 3, |i, j| (i + j) as f64);
        sink.consume_chunk(&chunk).unwrap();
        let err = sink.consume_chunk(&chunk).unwrap_err();
        assert!(err.to_string().contains("injected sink fault at chunk 1"));
        assert_eq!(sink.inner().rows(), 2);
    }

    #[test]
    fn failing_write_tears_at_budget() {
        let mut w = FailingWrite::new(Vec::new(), 5);
        assert_eq!(w.write(b"abc").unwrap(), 3);
        // Straddles the budget: only 2 of 4 bytes go through.
        assert_eq!(w.write(b"defg").unwrap(), 2);
        assert!(w.write(b"h").is_err());
        assert_eq!(w.into_inner(), b"abcde");
    }

    #[test]
    fn crash_point_flags_parse_and_roundtrip() {
        use crate::journal::CrashPoint;
        assert_eq!(
            parse_crash_point("records:3"),
            Some(CrashPoint::AfterRecords(3))
        );
        assert_eq!(parse_crash_point("byte:177"), Some(CrashPoint::AtByte(177)));
        assert_eq!(parse_crash_point("records:"), None);
        assert_eq!(parse_crash_point("chunks:3"), None);
        assert_eq!(parse_crash_point("records"), None);
        for point in [CrashPoint::AfterRecords(9), CrashPoint::AtByte(512)] {
            assert_eq!(parse_crash_point(&format_crash_point(point)), Some(point));
        }
        assert_eq!(
            WorkerKill::parse("1:records:2"),
            Some(WorkerKill {
                shard: 1,
                crash: CrashPoint::AfterRecords(2),
            })
        );
        assert_eq!(WorkerKill::parse("one:records:2"), None);
        assert_eq!(WorkerKill::parse("1"), None);
    }

    #[test]
    fn crash_offsets_deterministic_and_in_range() {
        let a = crash_offsets(42, 16, 1000);
        let b = crash_offsets(42, 16, 1000);
        assert_eq!(a, b);
        assert!(a.iter().all(|&o| o < 1000));
        assert_ne!(a, crash_offsets(43, 16, 1000));
    }
}
