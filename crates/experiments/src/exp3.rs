//! Experiment 3 (Figure 3): increasing the eigenvalues of the non-principal
//! components.
//!
//! The spectrum keeps 20 large principal eigenvalues (λ = 400) while the
//! remaining eigenvalues grow from small toward λ. Larger non-principal
//! eigenvalues mean the data are less concentrated in the principal subspace:
//! the PCA-based schemes (and SF) discard more and more real information and
//! eventually become *worse* than the UDR baseline, while BE-DR — which never
//! discards components — degrades gracefully and converges to UDR.

use crate::config::{figure_1_to_3_set, ExperimentSeries, SchemeKind};
use crate::error::{ExperimentError, Result};
use crate::scenario::{
    series_from_results, DataSpec, GridAxis, GridAxisValue, NoiseSpec, Override, ScenarioGrid,
    ScenarioSpec, SpectrumSpec,
};
use serde::{Deserialize, Serialize};

/// Configuration of Experiment 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Experiment3 {
    /// Number of attributes (fixed; the paper uses 100).
    pub attributes: usize,
    /// Number of principal components with the large eigenvalue (paper: 20).
    pub principal_components: usize,
    /// The (fixed) principal eigenvalue λ (paper: 400).
    pub principal_eigenvalue: f64,
    /// Sweep over the non-principal eigenvalue.
    pub non_principal_eigenvalues: Vec<f64>,
    /// Records per generated data set.
    pub records: usize,
    /// Standard deviation of the independent Gaussian disguising noise.
    pub noise_sigma: f64,
    /// Independent repetitions averaged per sweep point.
    pub trials: usize,
    /// Base random seed.
    pub seed: u64,
    /// Schemes to evaluate.
    pub schemes: Vec<SchemeKind>,
}

impl Default for Experiment3 {
    fn default() -> Self {
        Experiment3 {
            attributes: 100,
            principal_components: 20,
            principal_eigenvalue: 400.0,
            non_principal_eigenvalues: vec![
                1.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 45.0, 50.0,
            ],
            records: 1_000,
            noise_sigma: 5.0,
            trials: 3,
            seed: 0x5EED_0003,
            schemes: figure_1_to_3_set(),
        }
    }
}

impl Experiment3 {
    /// The full-size configuration used by the `figure3` binary and bench.
    pub fn full() -> Self {
        Self::default()
    }

    /// A scaled-down configuration for tests and smoke runs.
    pub fn quick() -> Self {
        Experiment3 {
            attributes: 25,
            principal_components: 5,
            non_principal_eigenvalues: vec![1.0, 25.0, 60.0],
            records: 300,
            trials: 1,
            ..Self::default()
        }
    }

    fn validate(&self) -> Result<()> {
        if self.non_principal_eigenvalues.is_empty() {
            return Err(ExperimentError::InvalidConfig {
                reason: "non_principal_eigenvalues must not be empty".to_string(),
            });
        }
        if self
            .non_principal_eigenvalues
            .iter()
            .any(|&e| !(e > 0.0 && e.is_finite()))
        {
            return Err(ExperimentError::InvalidConfig {
                reason: "non-principal eigenvalues must be positive and finite".to_string(),
            });
        }
        if self.principal_components == 0 || self.principal_components >= self.attributes {
            return Err(ExperimentError::InvalidConfig {
                reason: format!(
                    "need 1 <= principal components < attributes, got {} of {}",
                    self.principal_components, self.attributes
                ),
            });
        }
        if self.trials == 0 || self.records < 2 || self.schemes.is_empty() {
            return Err(ExperimentError::InvalidConfig {
                reason: "need at least 1 trial, 2 records and 1 scheme".to_string(),
            });
        }
        Ok(())
    }

    /// The experiment as a declarative scenario grid (seeding matches the
    /// historical driver: `trial_seed = child_seed(seed, idx·1000 + trial)`
    /// where `idx` is the sweep position).
    pub fn grid(&self) -> ScenarioGrid {
        // The template's workload is a placeholder — every axis value
        // overrides the data source below.
        let mut base = ScenarioSpec::synthetic_quick("figure3", self.records, 1, 1);
        base.noise = NoiseSpec::Gaussian {
            sigma: self.noise_sigma,
        };
        base.trials = self.trials;
        base.seed = self.seed;
        let eigenvalue_axis = GridAxis {
            name: "small".to_string(),
            values: self
                .non_principal_eigenvalues
                .iter()
                .enumerate()
                // The sweep index prefixes the label (and drives the seed),
                // so repeated eigenvalues stay distinct sweep points — the
                // historical driver behaviour.
                .map(|(idx, &small)| GridAxisValue {
                    label: format!("{idx}:{small}"),
                    x: Some(small),
                    overrides: vec![
                        Override::Data(DataSpec::SyntheticMvn {
                            spectrum: SpectrumSpec::PrincipalPlusSmall {
                                p: self.principal_components,
                                principal: self.principal_eigenvalue,
                                m: self.attributes,
                                small,
                            },
                            records: self.records,
                        }),
                        Override::SeedOffset((idx as u64) * 1_000),
                    ],
                })
                .collect(),
        };
        ScenarioGrid {
            base,
            axes: vec![eigenvalue_axis, GridAxis::schemes(&self.schemes)],
        }
    }

    /// Runs the sweep and returns the Figure 3 series.
    pub fn run(&self) -> Result<ExperimentSeries> {
        self.validate()?;
        let results = self.grid().run()?;
        Ok(series_from_results(
            "Figure 3: increasing the eigenvalues of the non-principal components",
            "non-principal eigenvalue",
            &results,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = Experiment3::quick();
        c.non_principal_eigenvalues.clear();
        assert!(c.run().is_err());
        let mut c = Experiment3::quick();
        c.non_principal_eigenvalues = vec![-1.0];
        assert!(c.run().is_err());
        let mut c = Experiment3::quick();
        c.principal_components = c.attributes;
        assert!(c.run().is_err());
    }

    #[test]
    fn quick_run_reproduces_figure_3_shape() {
        let series = Experiment3::quick().run().unwrap();
        assert_eq!(series.points.len(), 3);

        // PCA-DR degrades as the non-principal eigenvalues grow.
        let pca = series.series_for(SchemeKind::PcaDr);
        assert!(pca.last().unwrap().1 > pca.first().unwrap().1, "{pca:?}");

        // At the largest non-principal eigenvalue the PCA-based scheme discards
        // so much information that it falls behind UDR, while BE-DR does not
        // fall meaningfully behind UDR.
        let last = series.points.last().unwrap();
        let udr = last.rmse_of(SchemeKind::Udr).unwrap();
        let pca_last = last.rmse_of(SchemeKind::PcaDr).unwrap();
        let be_last = last.rmse_of(SchemeKind::BeDr).unwrap();
        assert!(
            pca_last > udr,
            "PCA-DR ({pca_last}) should cross above UDR ({udr})"
        );
        assert!(
            be_last <= udr * 1.05,
            "BE-DR ({be_last}) should stay at or below UDR ({udr})"
        );

        // At the smallest non-principal eigenvalue everything beats UDR.
        let first = series.points.first().unwrap();
        assert!(
            first.rmse_of(SchemeKind::PcaDr).unwrap() < first.rmse_of(SchemeKind::Udr).unwrap()
        );
        assert!(first.rmse_of(SchemeKind::BeDr).unwrap() < first.rmse_of(SchemeKind::Udr).unwrap());
    }
}
