//! The append-only result journal behind crash-resumable sweeps.
//!
//! A long sweep writes each scenario's outcome to a [`ResultJournal`] the
//! moment it finishes, so a crash — a kill, a panic that escapes, a power
//! cut — loses at most the scenarios in flight. Re-running the same sweep
//! with [`run_scenarios_resumable`] recovers the journal, skips every cell
//! it already holds, executes only the remainder, and returns outcomes
//! **bit-identical** to a fresh run (all scenario randomness is
//! spec-derived; the journal stores full results, not summaries).
//!
//! ## On-disk format
//!
//! Everything is hand-rolled little-endian binary (no serialization
//! dependency) and self-checking:
//!
//! ```text
//! header (32 bytes):
//!   magic        8  b"RRJOURN1"
//!   version      4  u32 = 1
//!   spec_count   4  u32   — cells in the grid this journal belongs to
//!   fingerprint  8  u64   — FNV-1a over the full spec list
//!   header_crc   8  u64   — FNV-1a over the 24 bytes above
//! record (repeated):
//!   len          4  u32   — payload length in bytes
//!   crc          8  u64   — FNV-1a over the payload
//!   payload    len        — (grid index, ScenarioOutcome), see below
//! ```
//!
//! Strings are `u32` length + UTF-8 bytes; `f64`s are stored as raw IEEE
//! bits (`to_bits`/`from_bits`), so values — including the wall-clock
//! `seconds` field — round-trip exactly.
//!
//! ## Recovery semantics
//!
//! [`ResultJournal::open_or_create`] classifies what it finds:
//!
//! * empty or missing file → fresh journal;
//! * a **torn header** (shorter than 32 bytes but a prefix of the magic) →
//!   the creating process died mid-create; start fresh;
//! * anything that is not this journal format (bad magic, bad header CRC)
//!   → hard error — the file belongs to someone else and is not clobbered;
//! * a valid header whose fingerprint or spec count disagrees with the
//!   grid being resumed → hard [`ExperimentError::Journal`] error (a stale
//!   journal silently mixed into a changed grid would corrupt results);
//! * a valid header followed by records → every intact record is
//!   recovered; the first torn or corrupt record frame (a crash mid-append
//!   tears exactly the trailing record) ends the scan and the file is
//!   truncated back to the last intact frame.
//!
//! ## Crash points
//!
//! [`CrashPoint`] aborts the process at a deterministic spot inside
//! [`append`](ResultJournal::append) — after `k` records, or mid-frame at
//! absolute byte offset `b` — which is how the kill-and-resume tests
//! produce real torn files instead of simulated ones.

use crate::error::{ExperimentError, Result};
use crate::scenario::{
    execute_specs_failsoft, MetricKind, RetryPolicy, ScenarioFailure, ScenarioOutcome,
    ScenarioResult, ScenarioSpec,
};
use crate::SchemeKind;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

const MAGIC: &[u8; 8] = b"RRJOURN1";
const VERSION: u32 = 1;
const HEADER_LEN: u64 = 32;
/// Frame overhead preceding each record payload: `len` (4) + `crc` (8).
const FRAME_OVERHEAD: usize = 12;

// ---------------------------------------------------------------------------
// FNV-1a
// ---------------------------------------------------------------------------

fn fnv64(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// The grid fingerprint stored in the journal header: FNV-1a over the debug
/// rendering of every spec. Any change to the grid — an added cell, a
/// different seed, a renamed label — changes the fingerprint, and
/// [`ResultJournal::open_or_create`] rejects the stale journal instead of
/// resuming into the wrong grid.
pub fn grid_fingerprint(specs: &[ScenarioSpec]) -> u64 {
    let mut hash = fnv64(FNV_OFFSET, &(specs.len() as u64).to_le_bytes());
    for spec in specs {
        hash = fnv64(hash, format!("{spec:?}").as_bytes());
        hash = fnv64(hash, &[0xFF]);
    }
    hash
}

// ---------------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn scheme_tag(scheme: Option<SchemeKind>) -> u8 {
    match scheme {
        None => 0,
        Some(SchemeKind::Ndr) => 1,
        Some(SchemeKind::Udr) => 2,
        Some(SchemeKind::SpectralFiltering) => 3,
        Some(SchemeKind::PcaDr) => 4,
        Some(SchemeKind::BeDr) => 5,
    }
}

fn metric_tag(kind: MetricKind) -> u8 {
    match kind {
        MetricKind::Rmse => 0,
        MetricKind::Mse => 1,
        MetricKind::NormalizedRmse => 2,
    }
}

fn encode_record(index: usize, outcome: &ScenarioOutcome) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    put_u64(&mut out, index as u64);
    match outcome {
        ScenarioOutcome::Completed(r) => {
            out.push(0);
            put_str(&mut out, &r.label);
            put_f64(&mut out, r.x);
            out.push(scheme_tag(r.scheme));
            put_str(&mut out, &r.attack);
            put_str(&mut out, r.engine);
            put_u64(&mut out, r.n_records as u64);
            put_u64(&mut out, r.trials as u64);
            put_u32(&mut out, r.metrics.len() as u32);
            for &(kind, value) in &r.metrics {
                out.push(metric_tag(kind));
                put_f64(&mut out, value);
            }
            match r.components_kept {
                Some(k) => {
                    out.push(1);
                    put_u64(&mut out, k as u64);
                }
                None => out.push(0),
            }
            put_f64(&mut out, r.seconds);
        }
        ScenarioOutcome::Failed(f) => {
            out.push(1);
            put_str(&mut out, &f.label);
            put_str(&mut out, &f.attack);
            put_str(&mut out, f.engine);
            put_str(&mut out, &f.error);
            out.push(u8::from(f.transient));
            put_u32(&mut out, f.attempts);
        }
    }
    out
}

/// Bounds-checked little-endian reader over a payload; any violation makes
/// the whole record count as corrupt.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

fn decode_scheme(tag: u8) -> Option<Option<SchemeKind>> {
    Some(match tag {
        0 => None,
        1 => Some(SchemeKind::Ndr),
        2 => Some(SchemeKind::Udr),
        3 => Some(SchemeKind::SpectralFiltering),
        4 => Some(SchemeKind::PcaDr),
        5 => Some(SchemeKind::BeDr),
        _ => return None,
    })
}

fn decode_metric(tag: u8) -> Option<MetricKind> {
    Some(match tag {
        0 => MetricKind::Rmse,
        1 => MetricKind::Mse,
        2 => MetricKind::NormalizedRmse,
        _ => return None,
    })
}

fn decode_engine(label: &str) -> Option<&'static str> {
    match label {
        "in-memory" => Some("in-memory"),
        "streaming" => Some("streaming"),
        _ => None,
    }
}

fn decode_record(payload: &[u8]) -> Option<(usize, ScenarioOutcome)> {
    let mut d = Dec {
        buf: payload,
        pos: 0,
    };
    let index = usize::try_from(d.u64()?).ok()?;
    let outcome = match d.u8()? {
        0 => {
            let label = d.str()?;
            let x = d.f64()?;
            let scheme = decode_scheme(d.u8()?)?;
            let attack = d.str()?;
            let engine = decode_engine(&d.str()?)?;
            let n_records = usize::try_from(d.u64()?).ok()?;
            let trials = usize::try_from(d.u64()?).ok()?;
            let n_metrics = d.u32()? as usize;
            let mut metrics = Vec::with_capacity(n_metrics.min(64));
            for _ in 0..n_metrics {
                let kind = decode_metric(d.u8()?)?;
                metrics.push((kind, d.f64()?));
            }
            let components_kept = match d.u8()? {
                0 => None,
                1 => Some(usize::try_from(d.u64()?).ok()?),
                _ => return None,
            };
            let seconds = d.f64()?;
            ScenarioOutcome::Completed(ScenarioResult {
                label,
                x,
                scheme,
                attack,
                engine,
                n_records,
                trials,
                metrics,
                components_kept,
                seconds,
            })
        }
        1 => {
            let label = d.str()?;
            let attack = d.str()?;
            let engine = decode_engine(&d.str()?)?;
            let error = d.str()?;
            let transient = match d.u8()? {
                0 => false,
                1 => true,
                _ => return None,
            };
            let attempts = d.u32()?;
            ScenarioOutcome::Failed(ScenarioFailure {
                label,
                attack,
                engine,
                error,
                transient,
                attempts,
            })
        }
        _ => return None,
    };
    // Trailing garbage means the frame length lied about the payload.
    if d.pos != payload.len() {
        return None;
    }
    Some((index, outcome))
}

// ---------------------------------------------------------------------------
// The journal
// ---------------------------------------------------------------------------

/// Deterministic process-abort points inside [`ResultJournal::append`] —
/// testing support for the kill-and-resume suite. The abort is a real
/// `std::process::abort()`, so the file is left exactly as a crash would
/// leave it (no destructors, no buffered-writer flush).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Abort before writing record `k` (0-based): the journal ends with
    /// exactly `k` intact records.
    AfterRecords(u64),
    /// Abort once the file reaches absolute byte offset `b`: the frame
    /// straddling `b` is written only up to `b` — a torn trailing record
    /// (or, for `b` < 32, a torn header).
    AtByte(u64),
}

/// An append-only, checksummed, crash-recoverable log of scenario outcomes.
/// See the [module docs](self) for the format and recovery rules.
pub struct ResultJournal {
    path: PathBuf,
    file: File,
    bytes_written: u64,
    records_written: u64,
    crash: Option<CrashPoint>,
}

impl std::fmt::Debug for ResultJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultJournal")
            .field("path", &self.path)
            .field("bytes_written", &self.bytes_written)
            .field("records_written", &self.records_written)
            .field("crash", &self.crash)
            .finish()
    }
}

impl ResultJournal {
    fn journal_err(path: &Path, reason: impl Into<String>) -> ExperimentError {
        ExperimentError::Journal {
            path: path.to_path_buf(),
            reason: reason.into(),
        }
    }

    fn io_err(path: &Path, source: std::io::Error) -> ExperimentError {
        ExperimentError::IoAt {
            path: path.to_path_buf(),
            source,
        }
    }

    fn header_bytes(specs: &[ScenarioSpec]) -> [u8; 32] {
        let mut header = [0u8; 32];
        header[..8].copy_from_slice(MAGIC);
        header[8..12].copy_from_slice(&VERSION.to_le_bytes());
        header[12..16].copy_from_slice(&(specs.len() as u32).to_le_bytes());
        header[16..24].copy_from_slice(&grid_fingerprint(specs).to_le_bytes());
        let crc = fnv64(FNV_OFFSET, &header[..24]);
        header[24..32].copy_from_slice(&crc.to_le_bytes());
        header
    }

    /// Creates (or truncates) the journal at `path` for the given grid and
    /// writes a fresh header.
    pub fn create(path: impl Into<PathBuf>, specs: &[ScenarioSpec]) -> Result<ResultJournal> {
        let path = path.into();
        let mut file = File::create(&path).map_err(|e| Self::io_err(&path, e))?;
        file.write_all(&Self::header_bytes(specs))
            .map_err(|e| Self::io_err(&path, e))?;
        Ok(ResultJournal {
            path,
            file,
            bytes_written: HEADER_LEN,
            records_written: 0,
            crash: None,
        })
    }

    /// Opens an existing journal for the given grid — recovering every
    /// intact record and truncating a torn tail — or creates a fresh one if
    /// `path` is missing or empty. Returns the journal positioned for
    /// appends plus the recovered `(grid index, outcome)` pairs in journal
    /// order. See the [module docs](self) for the full recovery rules.
    pub fn open_or_create(
        path: impl Into<PathBuf>,
        specs: &[ScenarioSpec],
    ) -> Result<(ResultJournal, Vec<(usize, ScenarioOutcome)>)> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| Self::io_err(&path, e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| Self::io_err(&path, e))?;

        if (bytes.len() as u64) < HEADER_LEN {
            // Empty file: fresh. A short file that is a prefix of our own
            // magic is a header torn by a crash mid-create: also fresh.
            // Anything else is some other file — refuse to clobber it.
            let probe = bytes.len().min(MAGIC.len());
            if !bytes.is_empty() && bytes[..probe] != MAGIC[..probe] {
                return Err(Self::journal_err(
                    &path,
                    "existing file is not a result journal (bad magic)",
                ));
            }
            file.set_len(0).map_err(|e| Self::io_err(&path, e))?;
            file.seek(SeekFrom::Start(0))
                .map_err(|e| Self::io_err(&path, e))?;
            file.write_all(&Self::header_bytes(specs))
                .map_err(|e| Self::io_err(&path, e))?;
            return Ok((
                ResultJournal {
                    path,
                    file,
                    bytes_written: HEADER_LEN,
                    records_written: 0,
                    crash: None,
                },
                Vec::new(),
            ));
        }

        if &bytes[..8] != MAGIC {
            return Err(Self::journal_err(
                &path,
                "existing file is not a result journal (bad magic)",
            ));
        }
        let stored_crc = u64::from_le_bytes(bytes[24..32].try_into().expect("8 header bytes"));
        if fnv64(FNV_OFFSET, &bytes[..24]) != stored_crc {
            return Err(Self::journal_err(&path, "header checksum mismatch"));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 header bytes"));
        if version != VERSION {
            return Err(Self::journal_err(
                &path,
                format!("unsupported journal version {version} (this build writes {VERSION})"),
            ));
        }
        let spec_count = u32::from_le_bytes(bytes[12..16].try_into().expect("4 header bytes"));
        let fingerprint = u64::from_le_bytes(bytes[16..24].try_into().expect("8 header bytes"));
        if spec_count as usize != specs.len() || fingerprint != grid_fingerprint(specs) {
            return Err(Self::journal_err(
                &path,
                format!(
                    "grid fingerprint mismatch: journal was written for a different scenario \
                     grid ({spec_count} cells, fingerprint {fingerprint:#018x}); delete the \
                     journal or rerun with the original grid"
                ),
            ));
        }

        // Scan record frames; the first torn or corrupt frame ends the
        // journal and everything from it on is truncated away.
        let mut recovered = Vec::new();
        let mut offset = HEADER_LEN as usize;
        let mut records = 0u64;
        loop {
            let remaining = bytes.len() - offset;
            if remaining == 0 {
                break;
            }
            if remaining < FRAME_OVERHEAD {
                break; // torn frame prefix
            }
            let len =
                u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 frame bytes"))
                    as usize;
            if len > remaining - FRAME_OVERHEAD {
                break; // torn payload
            }
            let crc = u64::from_le_bytes(
                bytes[offset + 4..offset + 12]
                    .try_into()
                    .expect("8 frame bytes"),
            );
            let payload = &bytes[offset + FRAME_OVERHEAD..offset + FRAME_OVERHEAD + len];
            if fnv64(FNV_OFFSET, payload) != crc {
                break; // corrupt payload
            }
            let Some((index, outcome)) = decode_record(payload) else {
                break; // structurally invalid payload
            };
            if index >= specs.len() {
                break; // index beyond the grid: corrupt
            }
            recovered.push((index, outcome));
            records += 1;
            offset += FRAME_OVERHEAD + len;
        }

        if offset < bytes.len() {
            file.set_len(offset as u64)
                .map_err(|e| Self::io_err(&path, e))?;
        }
        file.seek(SeekFrom::Start(offset as u64))
            .map_err(|e| Self::io_err(&path, e))?;
        Ok((
            ResultJournal {
                path,
                file,
                bytes_written: offset as u64,
                records_written: records,
                crash: None,
            },
            recovered,
        ))
    }

    /// Appends one outcome, framed and checksummed. Writes go straight to
    /// the file (no user-space buffering), so a process abort immediately
    /// after `append` returns loses nothing.
    pub fn append(&mut self, index: usize, outcome: &ScenarioOutcome) -> Result<()> {
        let payload = encode_record(index, outcome);
        let mut frame = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u64(&mut frame, fnv64(FNV_OFFSET, &payload));
        frame.extend_from_slice(&payload);

        match self.crash {
            Some(CrashPoint::AfterRecords(k)) if self.records_written >= k => {
                std::process::abort();
            }
            Some(CrashPoint::AtByte(b)) if self.bytes_written + frame.len() as u64 > b => {
                let keep = b.saturating_sub(self.bytes_written) as usize;
                // Tear the frame at the crash byte, then die like a crash.
                let _ = self.file.write_all(&frame[..keep]);
                let _ = self.file.flush();
                std::process::abort();
            }
            _ => {}
        }

        self.file
            .write_all(&frame)
            .map_err(|e| Self::io_err(&self.path, e))?;
        self.bytes_written += frame.len() as u64;
        self.records_written += 1;
        Ok(())
    }

    /// Installs (or clears) a deterministic abort point — testing support
    /// for the kill-and-resume suite.
    pub fn set_crash_point(&mut self, crash: Option<CrashPoint>) {
        self.crash = crash;
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records currently in the journal (recovered + appended).
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Current file length in bytes (header + intact frames).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }
}

// ---------------------------------------------------------------------------
// The resumable runner
// ---------------------------------------------------------------------------

/// What [`run_scenarios_resumable`] did: the full outcome list plus how
/// much of it came from the journal versus this invocation.
#[derive(Debug)]
pub struct ResumableRun {
    /// One outcome per input spec, in input order — journaled cells and
    /// freshly-executed cells are indistinguishable here.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Cells restored from the journal (skipped this invocation).
    pub resumed: usize,
    /// Cells executed (and journaled) by this invocation.
    pub executed: usize,
}

/// Runs a sweep fail-soft with every outcome journaled to `journal_path`
/// the moment it lands, resuming past work if the journal already holds it.
///
/// Scenarios found in the journal (matched by grid index, after the
/// fingerprint check guarantees the journal belongs to exactly this spec
/// list) are **not** re-executed; the remainder runs under
/// [`run_scenarios_failsoft`](crate::scenario::run_scenarios_failsoft)
/// semantics with outcomes appended as they complete. Because every
/// scenario's result is a pure function of its spec, the final outcome
/// list is bit-identical to an uninterrupted run — `seconds` (wall-clock)
/// aside — no matter how many crash/resume cycles it took.
///
/// A journal append failure aborts the sweep: continuing without
/// durability would silently downgrade the crash-safety contract.
pub fn run_scenarios_resumable(
    specs: &[ScenarioSpec],
    journal_path: impl Into<PathBuf>,
    policy: RetryPolicy,
) -> Result<ResumableRun> {
    run_scenarios_resumable_with_crash(specs, journal_path, policy, None)
}

/// [`run_scenarios_resumable`] with a [`CrashPoint`] installed on the
/// journal — testing support for the kill-and-resume suite, which re-execs
/// a child sweep with a crash point and then resumes it without one.
pub fn run_scenarios_resumable_with_crash(
    specs: &[ScenarioSpec],
    journal_path: impl Into<PathBuf>,
    policy: RetryPolicy,
    crash: Option<CrashPoint>,
) -> Result<ResumableRun> {
    let journal_path = journal_path.into();
    let (mut journal, recovered) = ResultJournal::open_or_create(&journal_path, specs)?;
    journal.set_crash_point(crash);

    let mut slots: Vec<Option<ScenarioOutcome>> = (0..specs.len()).map(|_| None).collect();
    for (index, outcome) in recovered {
        // Duplicate indices cannot arise from this runner, but a journal is
        // just a file: last record wins, matching append order.
        slots[index] = Some(outcome);
    }
    let resumed = slots.iter().filter(|s| s.is_some()).count();

    let pending: Vec<usize> = (0..specs.len()).filter(|&i| slots[i].is_none()).collect();
    let pending_specs: Vec<ScenarioSpec> = pending.iter().map(|&i| specs[i].clone()).collect();
    let executed = pending_specs.len();

    let journal = Mutex::new(journal);
    let fresh = execute_specs_failsoft(&pending_specs, policy, |sub_index, outcome| {
        let mut journal = journal.lock().unwrap_or_else(|e| e.into_inner());
        journal.append(pending[sub_index], outcome)
    })?;
    for (sub_index, outcome) in fresh.into_iter().enumerate() {
        slots[pending[sub_index]] = Some(outcome);
    }

    Ok(ResumableRun {
        outcomes: slots
            .into_iter()
            .map(|s| s.expect("every scenario has an outcome"))
            .collect(),
        resumed,
        executed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs(n: usize) -> Vec<ScenarioSpec> {
        (0..n)
            .map(|i| ScenarioSpec::synthetic_quick(&format!("cell{i}"), 64 + i, 4, 2))
            .collect()
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "randrecon-journal-{tag}-{}.bin",
            std::process::id()
        ))
    }

    fn sample_completed(label: &str) -> ScenarioOutcome {
        ScenarioOutcome::Completed(ScenarioResult {
            label: label.to_string(),
            x: 12.5,
            scheme: Some(SchemeKind::BeDr),
            attack: "BE-DR".to_string(),
            engine: "in-memory",
            n_records: 100,
            trials: 3,
            metrics: vec![(MetricKind::Rmse, 1.25), (MetricKind::Mse, 1.5625)],
            components_kept: Some(5),
            seconds: 0.125,
        })
    }

    fn sample_failed(label: &str) -> ScenarioOutcome {
        ScenarioOutcome::Failed(ScenarioFailure {
            label: label.to_string(),
            attack: "fault[Error]".to_string(),
            engine: "in-memory",
            error: "injected fault".to_string(),
            transient: false,
            attempts: 2,
        })
    }

    #[test]
    fn round_trip_preserves_outcomes_exactly() {
        let grid = specs(4);
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let mut journal = ResultJournal::create(&path, &grid).unwrap();
            journal.append(2, &sample_completed("cell2")).unwrap();
            journal.append(0, &sample_failed("cell0")).unwrap();
            assert_eq!(journal.records_written(), 2);
        }
        let (journal, recovered) = ResultJournal::open_or_create(&path, &grid).unwrap();
        assert_eq!(journal.records_written(), 2);
        assert_eq!(
            recovered,
            vec![(2, sample_completed("cell2")), (0, sample_failed("cell0")),]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let grid = specs(3);
        let path = temp_path("stale");
        let _ = std::fs::remove_file(&path);
        ResultJournal::create(&path, &grid).unwrap();
        let mut changed = grid.clone();
        changed[1].seed ^= 1;
        let err = ResultJournal::open_or_create(&path, &changed).unwrap_err();
        assert!(err.to_string().contains("fingerprint mismatch"));
        // Different cell count fails too.
        let err = ResultJournal::open_or_create(&path, &grid[..2]).unwrap_err();
        assert!(err.to_string().contains("fingerprint mismatch"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_files_are_not_clobbered() {
        let path = temp_path("foreign");
        std::fs::write(&path, b"this is somebody's notes file, 40+ bytes long").unwrap();
        let err = ResultJournal::open_or_create(&path, &specs(1)).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
        // Short foreign files are refused as well.
        std::fs::write(&path, b"hi").unwrap();
        let err = ResultJournal::open_or_create(&path, &specs(1)).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_header_restarts_fresh() {
        let grid = specs(2);
        let path = temp_path("torn-header");
        std::fs::write(&path, &MAGIC[..5]).unwrap();
        let (journal, recovered) = ResultJournal::open_or_create(&path, &grid).unwrap();
        assert!(recovered.is_empty());
        assert_eq!(journal.bytes_written(), HEADER_LEN);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn out_of_range_index_truncates() {
        let grid = specs(2);
        let path = temp_path("bad-index");
        let _ = std::fs::remove_file(&path);
        {
            let mut journal = ResultJournal::create(&path, &grid).unwrap();
            journal.append(0, &sample_completed("cell0")).unwrap();
            journal.append(7, &sample_completed("ghost")).unwrap();
        }
        let (journal, recovered) = ResultJournal::open_or_create(&path, &grid).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(journal.records_written(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_crc_truncates_to_prefix() {
        let grid = specs(2);
        let path = temp_path("corrupt");
        let _ = std::fs::remove_file(&path);
        let first_end;
        {
            let mut journal = ResultJournal::create(&path, &grid).unwrap();
            journal.append(0, &sample_completed("cell0")).unwrap();
            first_end = journal.bytes_written();
            journal.append(1, &sample_failed("cell1")).unwrap();
        }
        // Flip a payload byte of the second record.
        let mut bytes = std::fs::read(&path).unwrap();
        let target = first_end as usize + FRAME_OVERHEAD + 2;
        bytes[target] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let (journal, recovered) = ResultJournal::open_or_create(&path, &grid).unwrap();
        assert_eq!(recovered, vec![(0, sample_completed("cell0"))]);
        assert_eq!(journal.bytes_written(), first_end);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), first_end);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_writes_through_failing_write_recover() {
        // Build intact journal bytes in memory, push them through a
        // byte-budgeted writer, and confirm recovery keeps exactly the
        // frames that fit.
        let grid = specs(3);
        let path = temp_path("failing-write");
        let _ = std::fs::remove_file(&path);
        let boundaries;
        {
            let mut journal = ResultJournal::create(&path, &grid).unwrap();
            let mut b = vec![journal.bytes_written()];
            for i in 0..3 {
                journal
                    .append(i, &sample_completed(&format!("cell{i}")))
                    .unwrap();
                b.push(journal.bytes_written());
            }
            boundaries = b;
        }
        let intact = std::fs::read(&path).unwrap();
        // Tear inside the third record: budget lands between its frame start
        // and end.
        let budget = (boundaries[2] + 3) as usize;
        let mut w = crate::fault::FailingWrite::new(Vec::new(), budget);
        let mut written = 0;
        while written < intact.len() {
            match std::io::Write::write(&mut w, &intact[written..]) {
                Ok(n) => written += n,
                Err(_) => break,
            }
        }
        std::fs::write(&path, w.into_inner()).unwrap();
        let (journal, recovered) = ResultJournal::open_or_create(&path, &grid).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(journal.bytes_written(), boundaries[2]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn grid_fingerprint_sensitive_to_any_spec_change() {
        let grid = specs(3);
        let base = grid_fingerprint(&grid);
        let mut changed = grid.clone();
        changed[0].label.push('!');
        assert_ne!(base, grid_fingerprint(&changed));
        let mut changed = grid.clone();
        changed[2].trials += 1;
        assert_ne!(base, grid_fingerprint(&changed));
        assert_ne!(base, grid_fingerprint(&grid[..2]));
        assert_eq!(base, grid_fingerprint(&specs(3)));
    }
}
