//! The append-only result journal behind crash-resumable sweeps.
//!
//! A long sweep writes each scenario's outcome to a [`ResultJournal`] the
//! moment it finishes, so a crash — a kill, a panic that escapes, a power
//! cut — loses at most the scenarios in flight. Re-running the same sweep
//! with [`run_scenarios_resumable`] recovers the journal, skips every cell
//! it already holds, executes only the remainder, and returns outcomes
//! **bit-identical** to a fresh run (all scenario randomness is
//! spec-derived; the journal stores full results, not summaries).
//!
//! ## On-disk format
//!
//! Everything is hand-rolled little-endian binary (no serialization
//! dependency) and self-checking:
//!
//! ```text
//! header (32 bytes):
//!   magic        8  b"RRJOURN1"
//!   version      4  u32 = 3
//!   spec_count   4  u32   — cells in the grid this journal belongs to
//!   fingerprint  8  u64   — FNV-1a over the full spec list
//!   header_crc   8  u64   — FNV-1a over the 24 bytes above
//! record (repeated):
//!   len          4  u32   — payload length in bytes
//!   crc          8  u64   — FNV-1a over the payload
//!   payload    len        — (grid index, ScenarioOutcome), see below
//! ```
//!
//! Record payloads are tagged by outcome kind: `0` = `Completed`, `1` =
//! `Failed` (whose flags carry both the transient and the timed-out
//! classification), `2` = `Degraded` — a completed result plus the
//! non-empty list of degradation warnings (e.g. the eigenvalue-clipped SPD
//! repair fallback). Pre-supervision journals (versions 1/2) used an
//! incompatible `Failed` payload and are rejected by version, never
//! mis-decoded.
//!
//! **Shard journals** (version 4, 48-byte header) extend the header with the
//! half-open global index range `[shard_start, shard_end)` the worker owns,
//! inserted between `fingerprint` and `header_crc` as two `u64`s. The
//! fingerprint still covers the **full** grid, so a shard journal is pinned
//! to both the exact sweep *and* its slice of it; record indices are global
//! grid indices, which is what lets [`ResultJournal::recover_shard`] merge
//! worker journals back into one outcome list without renumbering. A plain
//! (v1) journal opened as a shard journal — or vice versa — is a hard
//! error, never a silent resume.
//!
//! **Slice journals** (version 5, variable-length header) are the
//! moment-merge generation of shard journals: the fixed range extension is
//! replaced by `n_ranges` (`u32`) followed by `n_ranges` half-open
//! `(start, end)` `u64` pairs — the worker's (possibly non-contiguous,
//! possibly empty) [`ShardSlice`] — and the header CRC moves to the end of
//! the variable block. Besides the outcome records above, a v5 journal may
//! hold **moment frames** (payload tag `3`): one self-anchored pass-1
//! [`MomentSegment`] of a split workload group, keyed by the group's leader
//! cell index and trial, with the accumulator stored as raw IEEE-754 bits
//! (`count`, optional anchor `shift`, `sum`, `cross`) so the coordinator's
//! reduce ([`crate::shard::reduce_shard_journals`]) folds **bit-identical**
//! state to a single-process pass 1. Versions 1–4 are byte-for-byte
//! untouched by v5; each version is dispatched by its header and the wrong
//! flavor is always a pointed hard error.
//!
//! Strings are `u32` length + UTF-8 bytes; `f64`s are stored as raw IEEE
//! bits (`to_bits`/`from_bits`), so values — including the wall-clock
//! `seconds` field — round-trip exactly.
//!
//! ## Recovery semantics
//!
//! [`ResultJournal::open_or_create`] classifies what it finds:
//!
//! * empty or missing file → fresh journal;
//! * a **torn header** (shorter than 32 bytes but a prefix of the magic) →
//!   the creating process died mid-create; start fresh;
//! * anything that is not this journal format (bad magic, bad header CRC)
//!   → hard error — the file belongs to someone else and is not clobbered;
//! * a valid header whose fingerprint or spec count disagrees with the
//!   grid being resumed → hard [`ExperimentError::Journal`] error (a stale
//!   journal silently mixed into a changed grid would corrupt results);
//! * a valid header followed by records → every intact record is
//!   recovered; the first torn or corrupt record frame (a crash mid-append
//!   tears exactly the trailing record) ends the scan and the file is
//!   truncated back to the last intact frame.
//!
//! ## Crash points
//!
//! [`CrashPoint`] aborts the process at a deterministic spot inside
//! [`append`](ResultJournal::append) — after `k` records, or mid-frame at
//! absolute byte offset `b` — which is how the kill-and-resume tests
//! produce real torn files instead of simulated ones.

use crate::error::{ExperimentError, Result};
use crate::scenario::{
    execute_specs_failsoft, MetricKind, RetryPolicy, ScenarioFailure, ScenarioOutcome,
    ScenarioResult, ScenarioSpec,
};
use crate::shard::{ShardRange, ShardSlice};
use crate::SchemeKind;
use randrecon_core::{CovarianceAccumulator, MomentSegment};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

const MAGIC: &[u8; 8] = b"RRJOURN1";
/// Versions 1 (plain) and 2 (shard) predate the supervised-execution record
/// format (`Degraded` tag 2, `timed_out` flag in `Failed`); journals written
/// by them are rejected as unsupported rather than mis-decoded.
const VERSION: u32 = 3;
const HEADER_LEN: u64 = 32;
/// Shard journals (see the module docs) carry a 16-byte range extension.
const SHARD_VERSION: u32 = 4;
const SHARD_HEADER_LEN: u64 = 48;
/// Slice journals (see the module docs) carry a variable-length range-list
/// extension and may hold moment frames.
const SLICE_VERSION: u32 = 5;
/// Fixed part of a v5 header: everything but the `n_ranges × 16` range
/// pairs — magic (8) + version (4) + spec_count (4) + fingerprint (8) +
/// n_ranges (4) + crc (8).
const SLICE_HEADER_FIXED: usize = 36;
/// Frame overhead preceding each record payload: `len` (4) + `crc` (8).
const FRAME_OVERHEAD: usize = 12;

/// Total v5 header length for a slice of `n` ranges.
fn slice_header_len(n_ranges: usize) -> usize {
    SLICE_HEADER_FIXED + 16 * n_ranges
}

// ---------------------------------------------------------------------------
// FNV-1a
// ---------------------------------------------------------------------------

fn fnv64(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// The grid fingerprint stored in the journal header: FNV-1a over the debug
/// rendering of every spec. Any change to the grid — an added cell, a
/// different seed, a renamed label — changes the fingerprint, and
/// [`ResultJournal::open_or_create`] rejects the stale journal instead of
/// resuming into the wrong grid.
pub fn grid_fingerprint(specs: &[ScenarioSpec]) -> u64 {
    let mut hash = fnv64(FNV_OFFSET, &(specs.len() as u64).to_le_bytes());
    for spec in specs {
        hash = fnv64(hash, format!("{spec:?}").as_bytes());
        hash = fnv64(hash, &[0xFF]);
    }
    hash
}

// ---------------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn scheme_tag(scheme: Option<SchemeKind>) -> u8 {
    match scheme {
        None => 0,
        Some(SchemeKind::Ndr) => 1,
        Some(SchemeKind::Udr) => 2,
        Some(SchemeKind::SpectralFiltering) => 3,
        Some(SchemeKind::PcaDr) => 4,
        Some(SchemeKind::BeDr) => 5,
    }
}

fn metric_tag(kind: MetricKind) -> u8 {
    match kind {
        MetricKind::Rmse => 0,
        MetricKind::Mse => 1,
        MetricKind::NormalizedRmse => 2,
    }
}

/// The result payload shared by `Completed` (tag 0) and `Degraded` (tag 2)
/// records; `Degraded` appends its warning list after these fields.
fn encode_result(out: &mut Vec<u8>, r: &ScenarioResult) {
    put_str(out, &r.label);
    put_f64(out, r.x);
    out.push(scheme_tag(r.scheme));
    put_str(out, &r.attack);
    put_str(out, r.engine);
    put_u64(out, r.n_records as u64);
    put_u64(out, r.trials as u64);
    put_u32(out, r.metrics.len() as u32);
    for &(kind, value) in &r.metrics {
        out.push(metric_tag(kind));
        put_f64(out, value);
    }
    match r.components_kept {
        Some(k) => {
            out.push(1);
            put_u64(out, k as u64);
        }
        None => out.push(0),
    }
    put_f64(out, r.seconds);
}

fn encode_record(index: usize, outcome: &ScenarioOutcome) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    put_u64(&mut out, index as u64);
    match outcome {
        ScenarioOutcome::Completed(r) => {
            out.push(0);
            encode_result(&mut out, r);
        }
        ScenarioOutcome::Degraded(r) => {
            out.push(2);
            encode_result(&mut out, r);
            put_u32(&mut out, r.warnings.len() as u32);
            for w in &r.warnings {
                put_str(&mut out, w);
            }
        }
        ScenarioOutcome::Failed(f) => {
            out.push(1);
            put_str(&mut out, &f.label);
            put_str(&mut out, &f.attack);
            put_str(&mut out, f.engine);
            put_str(&mut out, &f.error);
            out.push(u8::from(f.transient));
            out.push(u8::from(f.timed_out));
            put_u32(&mut out, f.attempts);
        }
    }
    out
}

/// Bounds-checked little-endian reader over a payload; any violation makes
/// the whole record count as corrupt.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

fn decode_scheme(tag: u8) -> Option<Option<SchemeKind>> {
    Some(match tag {
        0 => None,
        1 => Some(SchemeKind::Ndr),
        2 => Some(SchemeKind::Udr),
        3 => Some(SchemeKind::SpectralFiltering),
        4 => Some(SchemeKind::PcaDr),
        5 => Some(SchemeKind::BeDr),
        _ => return None,
    })
}

fn decode_metric(tag: u8) -> Option<MetricKind> {
    Some(match tag {
        0 => MetricKind::Rmse,
        1 => MetricKind::Mse,
        2 => MetricKind::NormalizedRmse,
        _ => return None,
    })
}

fn decode_engine(label: &str) -> Option<&'static str> {
    match label {
        "in-memory" => Some("in-memory"),
        "streaming" => Some("streaming"),
        _ => None,
    }
}

/// Decodes the shared result payload (see [`encode_result`]); warnings are
/// left empty for the caller to fill (tag 2 appends them after this).
fn decode_result(d: &mut Dec<'_>) -> Option<ScenarioResult> {
    let label = d.str()?;
    let x = d.f64()?;
    let scheme = decode_scheme(d.u8()?)?;
    let attack = d.str()?;
    let engine = decode_engine(&d.str()?)?;
    let n_records = usize::try_from(d.u64()?).ok()?;
    let trials = usize::try_from(d.u64()?).ok()?;
    let n_metrics = d.u32()? as usize;
    let mut metrics = Vec::with_capacity(n_metrics.min(64));
    for _ in 0..n_metrics {
        let kind = decode_metric(d.u8()?)?;
        metrics.push((kind, d.f64()?));
    }
    let components_kept = match d.u8()? {
        0 => None,
        1 => Some(usize::try_from(d.u64()?).ok()?),
        _ => return None,
    };
    let seconds = d.f64()?;
    Some(ScenarioResult {
        label,
        x,
        scheme,
        attack,
        engine,
        n_records,
        trials,
        metrics,
        components_kept,
        seconds,
        warnings: Vec::new(),
    })
}

fn decode_bool(byte: u8) -> Option<bool> {
    match byte {
        0 => Some(false),
        1 => Some(true),
        _ => None,
    }
}

fn decode_record(payload: &[u8]) -> Option<(usize, ScenarioOutcome)> {
    let mut d = Dec {
        buf: payload,
        pos: 0,
    };
    let index = usize::try_from(d.u64()?).ok()?;
    let outcome = match d.u8()? {
        0 => ScenarioOutcome::Completed(decode_result(&mut d)?),
        2 => {
            let mut result = decode_result(&mut d)?;
            let n_warnings = d.u32()? as usize;
            let mut warnings = Vec::with_capacity(n_warnings.min(64));
            for _ in 0..n_warnings {
                warnings.push(d.str()?);
            }
            // A degraded record with zero warnings is structurally invalid:
            // `Degraded` exists precisely because warnings are non-empty.
            if warnings.is_empty() {
                return None;
            }
            result.warnings = warnings;
            ScenarioOutcome::Degraded(result)
        }
        1 => {
            let label = d.str()?;
            let attack = d.str()?;
            let engine = decode_engine(&d.str()?)?;
            let error = d.str()?;
            let transient = decode_bool(d.u8()?)?;
            let timed_out = decode_bool(d.u8()?)?;
            let attempts = d.u32()?;
            ScenarioOutcome::Failed(ScenarioFailure {
                label,
                attack,
                engine,
                error,
                transient,
                timed_out,
                attempts,
            })
        }
        _ => return None,
    };
    // Trailing garbage means the frame length lied about the payload.
    if d.pos != payload.len() {
        return None;
    }
    Some((index, outcome))
}

/// Moment-frame payload (tag 3, v5 journals only): leader index, trial,
/// then the segment with its accumulator's raw state — `count`, the
/// optional anchor `shift`, `sum`, `cross` — all `f64`s as raw IEEE bits,
/// so a recovered accumulator is **bit-identical** to the one journaled.
fn encode_moment(leader: usize, trial: usize, segment: &MomentSegment) -> Vec<u8> {
    let acc = &segment.accumulator;
    let m = acc.n_attributes();
    let mut out = Vec::with_capacity(64 + 8 * (2 * m + m * m));
    put_u64(&mut out, leader as u64);
    out.push(3);
    put_u64(&mut out, trial as u64);
    put_u64(&mut out, segment.index as u64);
    put_u64(&mut out, segment.n_chunks as u64);
    put_u32(&mut out, m as u32);
    put_u64(&mut out, acc.count() as u64);
    match acc.shift() {
        Some(shift) => {
            out.push(1);
            for &v in shift {
                put_f64(&mut out, v);
            }
        }
        None => out.push(0),
    }
    for &v in acc.raw_sum() {
        put_f64(&mut out, v);
    }
    for &v in acc.raw_cross() {
        put_f64(&mut out, v);
    }
    out
}

fn decode_moment(leader: usize, d: &mut Dec<'_>) -> Option<MomentFrame> {
    let trial = usize::try_from(d.u64()?).ok()?;
    let seg_index = usize::try_from(d.u64()?).ok()?;
    let n_chunks = usize::try_from(d.u64()?).ok()?;
    let m = d.u32()? as usize;
    // An attribute-count sanity cap keeps a corrupt frame from demanding a
    // huge allocation before its CRC-checked payload runs out of bytes.
    if m == 0 || m > 1 << 20 {
        return None;
    }
    let count = usize::try_from(d.u64()?).ok()?;
    fn take_f64s(d: &mut Dec<'_>, n: usize) -> Option<Vec<f64>> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(d.f64()?);
        }
        Some(out)
    }
    let shift = match d.u8()? {
        0 => None,
        1 => Some(take_f64s(d, m)?),
        _ => return None,
    };
    let sum = take_f64s(d, m)?;
    let cross = take_f64s(d, m * m)?;
    let accumulator = CovarianceAccumulator::from_raw_parts(count, sum, cross, shift).ok()?;
    Some(MomentFrame {
        leader,
        trial,
        segment: MomentSegment {
            index: seg_index,
            n_chunks,
            accumulator,
        },
    })
}

/// Decodes any v5 frame payload: outcome tags 0/1/2 exactly as
/// [`decode_record`], or the moment tag 3.
fn decode_shard_frame(payload: &[u8]) -> Option<ShardFrame> {
    if payload.len() < 9 {
        return None;
    }
    if payload[8] != 3 {
        let (index, outcome) = decode_record(payload)?;
        return Some(ShardFrame::Outcome(index, outcome));
    }
    let mut d = Dec {
        buf: payload,
        pos: 0,
    };
    let leader = usize::try_from(d.u64()?).ok()?;
    let tag = d.u8()?;
    debug_assert_eq!(tag, 3);
    let frame = decode_moment(leader, &mut d)?;
    if d.pos != payload.len() {
        return None;
    }
    Some(ShardFrame::Moment(frame))
}

// ---------------------------------------------------------------------------
// The journal
// ---------------------------------------------------------------------------

/// Deterministic process-abort points inside [`ResultJournal::append`] —
/// testing support for the kill-and-resume suite. The abort is a real
/// `std::process::abort()`, so the file is left exactly as a crash would
/// leave it (no destructors, no buffered-writer flush).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Abort before writing record `k` (0-based): the journal ends with
    /// exactly `k` intact records.
    AfterRecords(u64),
    /// Abort once the file reaches absolute byte offset `b`: the frame
    /// straddling `b` is written only up to `b` — a torn trailing record
    /// (or, for `b` < 32, a torn header).
    AtByte(u64),
}

/// Which on-disk flavor a [`ResultJournal`] is (see the module docs):
/// plain (v3), shard (v4, one contiguous range), or slice (v5, a range
/// list plus moment frames). Each flavor has its own header layout and
/// versions never mix.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Flavor {
    Plain,
    Shard(ShardRange),
    Slice(ShardSlice),
}

impl Flavor {
    fn version(&self) -> u32 {
        match self {
            Flavor::Plain => VERSION,
            Flavor::Shard(_) => SHARD_VERSION,
            Flavor::Slice(_) => SLICE_VERSION,
        }
    }

    /// Whether an *outcome* record under global index `index` belongs in a
    /// journal of this flavor over a `specs_len`-cell grid.
    fn outcome_index_ok(&self, specs_len: usize, index: usize) -> bool {
        match self {
            Flavor::Plain => index < specs_len,
            Flavor::Shard(range) => range.contains(index),
            Flavor::Slice(slice) => slice.contains(index),
        }
    }
}

/// One recovered frame of a v5 slice journal (outcome or moment).
#[derive(Debug, Clone)]
enum ShardFrame {
    Outcome(usize, ScenarioOutcome),
    Moment(MomentFrame),
}

/// A recovered pass-1 moment frame: one self-anchored segment partial of
/// the split workload group led by global cell `leader`, for one trial.
#[derive(Debug, Clone)]
pub struct MomentFrame {
    /// Global index of the split group's leader cell.
    pub leader: usize,
    /// 0-based trial within the group.
    pub trial: usize,
    /// The segment partial (index, covered chunks, raw accumulator state).
    pub segment: MomentSegment,
}

/// Everything recovered from a v5 slice journal.
#[derive(Debug, Default)]
pub struct ShardRecovery {
    /// Recovered `(global index, outcome)` pairs, in journal order.
    pub outcomes: Vec<(usize, ScenarioOutcome)>,
    /// Recovered moment frames, in journal order.
    pub moments: Vec<MomentFrame>,
}

/// Splits a recovered frame stream into its outcome and moment halves,
/// preserving journal order within each.
fn split_frames(frames: Vec<ShardFrame>) -> ShardRecovery {
    let mut recovery = ShardRecovery::default();
    for frame in frames {
        match frame {
            ShardFrame::Outcome(index, outcome) => recovery.outcomes.push((index, outcome)),
            ShardFrame::Moment(m) => recovery.moments.push(m),
        }
    }
    recovery
}

/// What one recovered frame of a given journal flavor decodes to — lets
/// [`ResultJournal::open_impl`] share the open/truncate/recover machinery
/// between the outcome-only flavors (v1–v4) and the v5 frame stream.
trait JournalFrames: Sized {
    fn scan(bytes: &[u8], offset: usize, specs_len: usize, flavor: &Flavor) -> (Vec<Self>, usize);
}

impl JournalFrames for (usize, ScenarioOutcome) {
    fn scan(bytes: &[u8], offset: usize, specs_len: usize, flavor: &Flavor) -> (Vec<Self>, usize) {
        ResultJournal::scan_frames(bytes, offset, |i| flavor.outcome_index_ok(specs_len, i))
    }
}

impl JournalFrames for ShardFrame {
    fn scan(bytes: &[u8], offset: usize, specs_len: usize, flavor: &Flavor) -> (Vec<Self>, usize) {
        match flavor {
            Flavor::Slice(slice) => {
                ResultJournal::scan_slice_frames(bytes, offset, specs_len, slice)
            }
            _ => unreachable!("ShardFrame streams only exist in v5 slice journals"),
        }
    }
}

/// An append-only, checksummed, crash-recoverable log of scenario outcomes.
/// See the [module docs](self) for the format and recovery rules.
pub struct ResultJournal {
    path: PathBuf,
    file: File,
    bytes_written: u64,
    records_written: u64,
    crash: Option<CrashPoint>,
    /// The journal's on-disk flavor; appends a flavor does not permit (an
    /// outcome outside the owned range/slice, a moment frame in a
    /// non-slice journal) are rejected.
    flavor: Flavor,
}

impl std::fmt::Debug for ResultJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultJournal")
            .field("path", &self.path)
            .field("bytes_written", &self.bytes_written)
            .field("records_written", &self.records_written)
            .field("crash", &self.crash)
            .field("flavor", &self.flavor)
            .finish()
    }
}

/// What [`ResultJournal::check_header`] concluded about existing bytes.
enum HeaderCheck {
    /// Empty file or a header torn by a crash mid-create: start fresh.
    Fresh,
    /// A complete, checksum-valid header matching the grid (and shard
    /// range, if any): record frames follow.
    Valid,
}

impl ResultJournal {
    fn journal_err(path: &Path, reason: impl Into<String>) -> ExperimentError {
        ExperimentError::Journal {
            path: path.to_path_buf(),
            reason: reason.into(),
        }
    }

    fn io_err(path: &Path, source: std::io::Error) -> ExperimentError {
        ExperimentError::IoAt {
            path: path.to_path_buf(),
            source,
        }
    }

    fn header_len(flavor: &Flavor) -> u64 {
        match flavor {
            Flavor::Plain => HEADER_LEN,
            Flavor::Shard(_) => SHARD_HEADER_LEN,
            Flavor::Slice(slice) => slice_header_len(slice.ranges().len()) as u64,
        }
    }

    fn header_bytes(specs: &[ScenarioSpec], flavor: &Flavor) -> Vec<u8> {
        let len = Self::header_len(flavor) as usize;
        let mut header = vec![0u8; len];
        header[..8].copy_from_slice(MAGIC);
        header[8..12].copy_from_slice(&flavor.version().to_le_bytes());
        header[12..16].copy_from_slice(&(specs.len() as u32).to_le_bytes());
        header[16..24].copy_from_slice(&grid_fingerprint(specs).to_le_bytes());
        match flavor {
            Flavor::Plain => {}
            Flavor::Shard(range) => {
                header[24..32].copy_from_slice(&(range.start as u64).to_le_bytes());
                header[32..40].copy_from_slice(&(range.end as u64).to_le_bytes());
            }
            Flavor::Slice(slice) => {
                let ranges = slice.ranges();
                header[24..28].copy_from_slice(&(ranges.len() as u32).to_le_bytes());
                for (i, range) in ranges.iter().enumerate() {
                    let at = 28 + 16 * i;
                    header[at..at + 8].copy_from_slice(&(range.start as u64).to_le_bytes());
                    header[at + 8..at + 16].copy_from_slice(&(range.end as u64).to_le_bytes());
                }
            }
        }
        let crc_at = len - 8;
        let crc = fnv64(FNV_OFFSET, &header[..crc_at]);
        header[crc_at..].copy_from_slice(&crc.to_le_bytes());
        header
    }

    /// A shard range or slice must sit inside the grid it journals.
    fn check_flavor_bounds(path: &Path, specs: &[ScenarioSpec], flavor: &Flavor) -> Result<()> {
        let past_end = match flavor {
            Flavor::Plain => None,
            Flavor::Shard(range) => (range.end > specs.len()).then(|| range.to_string()),
            Flavor::Slice(slice) => slice
                .ranges()
                .last()
                .filter(|r| r.end > specs.len())
                .map(|_| slice.to_string()),
        };
        if let Some(rendered) = past_end {
            return Err(Self::journal_err(
                path,
                format!(
                    "shard range {rendered} extends past the {}-cell grid",
                    specs.len()
                ),
            ));
        }
        Ok(())
    }

    /// Creates (or truncates) the journal at `path` for the given grid and
    /// writes a fresh header.
    pub fn create(path: impl Into<PathBuf>, specs: &[ScenarioSpec]) -> Result<ResultJournal> {
        Self::create_impl(path.into(), specs, Flavor::Plain)
    }

    /// Creates (or truncates) a **shard** journal: a version-4 header
    /// carrying the full-grid fingerprint plus the worker's global index
    /// range (see the [module docs](self)).
    pub fn create_shard(
        path: impl Into<PathBuf>,
        specs: &[ScenarioSpec],
        range: ShardRange,
    ) -> Result<ResultJournal> {
        let path = path.into();
        let flavor = Flavor::Shard(range);
        Self::check_flavor_bounds(&path, specs, &flavor)?;
        Self::create_impl(path, specs, flavor)
    }

    fn create_impl(path: PathBuf, specs: &[ScenarioSpec], flavor: Flavor) -> Result<ResultJournal> {
        let mut file = File::create(&path).map_err(|e| Self::io_err(&path, e))?;
        file.write_all(&Self::header_bytes(specs, &flavor))
            .map_err(|e| Self::io_err(&path, e))?;
        Ok(ResultJournal {
            path,
            file,
            bytes_written: Self::header_len(&flavor),
            records_written: 0,
            crash: None,
            flavor,
        })
    }

    /// Classifies existing journal bytes against the expected grid and
    /// flavor. `Fresh` means start over (empty or torn header); any
    /// mismatch — foreign file, wrong flavor, stale grid, wrong shard
    /// range or slice — is a hard error.
    fn check_header(
        path: &Path,
        bytes: &[u8],
        specs: &[ScenarioSpec],
        flavor: &Flavor,
    ) -> Result<HeaderCheck> {
        if bytes.is_empty() {
            return Ok(HeaderCheck::Fresh);
        }
        let probe = bytes.len().min(MAGIC.len());
        if bytes[..probe] != MAGIC[..probe] {
            return Err(Self::journal_err(
                path,
                "existing file is not a result journal (bad magic)",
            ));
        }
        if bytes.len() < 12 {
            // Torn before the version field ever landed: fresh.
            return Ok(HeaderCheck::Fresh);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 header bytes"));
        let expected = flavor.version();
        // On-disk header length for a given version; v5 is variable, so it
        // reads `n_ranges` from the bytes (None = torn before the count).
        let version_len = |v: u32| -> Option<usize> {
            match v {
                VERSION => Some(HEADER_LEN as usize),
                SHARD_VERSION => Some(SHARD_HEADER_LEN as usize),
                SLICE_VERSION => {
                    let n = u32::from_le_bytes(bytes.get(24..28)?.try_into().expect("4 bytes"));
                    Some(slice_header_len(n as usize))
                }
                _ => None,
            }
        };
        if version != expected {
            // A complete, checksum-valid header of the *other* flavor is a
            // usage error, not corruption — refuse with a pointed message
            // instead of clobbering or mis-resuming.
            let valid_other = |len: usize| {
                bytes.len() >= len
                    && fnv64(FNV_OFFSET, &bytes[..len - 8])
                        == u64::from_le_bytes(bytes[len - 8..len].try_into().expect("8 crc bytes"))
            };
            let other_valid = version_len(version).is_some_and(valid_other);
            if other_valid {
                let pointed = match version {
                    VERSION => format!(
                        "journal belongs to an unsharded run (version {VERSION}); \
                         a shard worker cannot resume it"
                    ),
                    SHARD_VERSION => format!(
                        "journal belongs to a sharded run (version {SHARD_VERSION}); \
                         recover it through the shard coordinator"
                    ),
                    _ => format!(
                        "journal belongs to a moment-merge sharded run (version \
                         {SLICE_VERSION}); recover it through the shard coordinator's reduce"
                    ),
                };
                return Err(Self::journal_err(path, pointed));
            }
            return Err(Self::journal_err(
                path,
                format!("unsupported journal version {version} (this path expects {expected})"),
            ));
        }
        let Some(header_len) = version_len(version).filter(|&len| bytes.len() >= len) else {
            // Torn header of our own flavor: the creating process died
            // mid-create; start fresh.
            return Ok(HeaderCheck::Fresh);
        };
        let crc_at = header_len - 8;
        let stored_crc = u64::from_le_bytes(
            bytes[crc_at..header_len]
                .try_into()
                .expect("8 header bytes"),
        );
        if fnv64(FNV_OFFSET, &bytes[..crc_at]) != stored_crc {
            return Err(Self::journal_err(path, "header checksum mismatch"));
        }
        let spec_count = u32::from_le_bytes(bytes[12..16].try_into().expect("4 header bytes"));
        let fingerprint = u64::from_le_bytes(bytes[16..24].try_into().expect("8 header bytes"));
        if spec_count as usize != specs.len() || fingerprint != grid_fingerprint(specs) {
            return Err(Self::journal_err(
                path,
                format!(
                    "grid fingerprint mismatch: journal was written for a different scenario \
                     grid ({spec_count} cells, fingerprint {fingerprint:#018x}); delete the \
                     journal or rerun with the original grid"
                ),
            ));
        }
        match flavor {
            Flavor::Plain => {}
            Flavor::Shard(range) => {
                let start = u64::from_le_bytes(bytes[24..32].try_into().expect("8 header bytes"));
                let end = u64::from_le_bytes(bytes[32..40].try_into().expect("8 header bytes"));
                if start != range.start as u64 || end != range.end as u64 {
                    return Err(Self::journal_err(
                        path,
                        format!("shard range mismatch: journal covers {start}..{end}, not {range}"),
                    ));
                }
            }
            Flavor::Slice(slice) => {
                let n = u32::from_le_bytes(bytes[24..28].try_into().expect("4 header bytes"));
                let mut stored = Vec::with_capacity(n as usize);
                for i in 0..n as usize {
                    let at = 28 + 16 * i;
                    let start = u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
                    let end =
                        u64::from_le_bytes(bytes[at + 8..at + 16].try_into().expect("8 bytes"));
                    stored.push(format!("{start}..{end}"));
                }
                let stored = stored.join(",");
                if stored != slice.to_string() {
                    return Err(Self::journal_err(
                        path,
                        format!("shard slice mismatch: journal covers {stored}, not {slice}"),
                    ));
                }
            }
        }
        Ok(HeaderCheck::Valid)
    }

    /// Scans checksummed frames from `offset`, decoding each intact payload
    /// with `decode` (`None` = structurally invalid, ends the scan exactly
    /// like a torn or corrupt frame). Returns the decoded frames in journal
    /// order plus the byte offset just past the last intact frame.
    fn scan_raw_frames<T>(
        bytes: &[u8],
        mut offset: usize,
        decode: impl Fn(&[u8]) -> Option<T>,
    ) -> (Vec<T>, usize) {
        let mut recovered = Vec::new();
        loop {
            let remaining = bytes.len() - offset;
            if remaining < FRAME_OVERHEAD {
                break; // end of file, or a torn frame prefix
            }
            let len =
                u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 frame bytes"))
                    as usize;
            if len > remaining - FRAME_OVERHEAD {
                break; // torn payload
            }
            let crc = u64::from_le_bytes(
                bytes[offset + 4..offset + 12]
                    .try_into()
                    .expect("8 frame bytes"),
            );
            let payload = &bytes[offset + FRAME_OVERHEAD..offset + FRAME_OVERHEAD + len];
            if fnv64(FNV_OFFSET, payload) != crc {
                break; // corrupt payload
            }
            let Some(frame) = decode(payload) else {
                break; // structurally invalid payload
            };
            recovered.push(frame);
            offset += FRAME_OVERHEAD + len;
        }
        (recovered, offset)
    }

    /// Outcome-record scan (journal versions 1–4): frames decode as
    /// `(index, outcome)` pairs, and an index `index_ok` rejects ends the
    /// scan as corruption.
    fn scan_frames(
        bytes: &[u8],
        offset: usize,
        index_ok: impl Fn(usize) -> bool,
    ) -> (Vec<(usize, ScenarioOutcome)>, usize) {
        Self::scan_raw_frames(bytes, offset, |payload| {
            decode_record(payload).filter(|&(index, _)| index_ok(index))
        })
    }

    /// v5 scan: outcome frames *and* moment frames. Outcome indices must
    /// fall inside `slice`; moment leaders anywhere inside the grid (a
    /// worker journals moment partials for groups whose cells it does not
    /// own — that is the point of the split).
    fn scan_slice_frames(
        bytes: &[u8],
        offset: usize,
        specs_len: usize,
        slice: &ShardSlice,
    ) -> (Vec<ShardFrame>, usize) {
        Self::scan_raw_frames(bytes, offset, |payload| {
            decode_shard_frame(payload).filter(|frame| match frame {
                ShardFrame::Outcome(index, _) => slice.contains(*index),
                ShardFrame::Moment(m) => m.leader < specs_len,
            })
        })
    }

    /// Opens an existing journal for the given grid — recovering every
    /// intact record and truncating a torn tail — or creates a fresh one if
    /// `path` is missing or empty. Returns the journal positioned for
    /// appends plus the recovered `(grid index, outcome)` pairs in journal
    /// order. See the [module docs](self) for the full recovery rules.
    pub fn open_or_create(
        path: impl Into<PathBuf>,
        specs: &[ScenarioSpec],
    ) -> Result<(ResultJournal, Vec<(usize, ScenarioOutcome)>)> {
        Self::open_impl(path.into(), specs, Flavor::Plain)
    }

    /// [`open_or_create`](Self::open_or_create) for a **shard** journal:
    /// validates the version-4 header against both the full grid and the
    /// worker's shard range, recovering only records whose global index
    /// falls inside the range.
    pub fn open_or_create_shard(
        path: impl Into<PathBuf>,
        specs: &[ScenarioSpec],
        range: ShardRange,
    ) -> Result<(ResultJournal, Vec<(usize, ScenarioOutcome)>)> {
        let path = path.into();
        let flavor = Flavor::Shard(range);
        Self::check_flavor_bounds(&path, specs, &flavor)?;
        Self::open_impl(path, specs, flavor)
    }

    /// [`open_or_create`](Self::open_or_create) for a **slice** (v5,
    /// moment-merge) journal: validates the variable-length header against
    /// the full grid and the worker's exact slice, recovering both outcome
    /// records (inside the slice) and moment frames (any group leader in
    /// the grid).
    pub fn open_or_create_slice(
        path: impl Into<PathBuf>,
        specs: &[ScenarioSpec],
        slice: &ShardSlice,
    ) -> Result<(ResultJournal, ShardRecovery)> {
        let path = path.into();
        let flavor = Flavor::Slice(slice.clone());
        Self::check_flavor_bounds(&path, specs, &flavor)?;
        let (journal, frames) = Self::open_impl(path, specs, flavor)?;
        Ok((journal, split_frames(frames)))
    }

    fn open_impl<T: JournalFrames>(
        path: PathBuf,
        specs: &[ScenarioSpec],
        flavor: Flavor,
    ) -> Result<(ResultJournal, Vec<T>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| Self::io_err(&path, e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| Self::io_err(&path, e))?;

        if let HeaderCheck::Fresh = Self::check_header(&path, &bytes, specs, &flavor)? {
            file.set_len(0).map_err(|e| Self::io_err(&path, e))?;
            file.seek(SeekFrom::Start(0))
                .map_err(|e| Self::io_err(&path, e))?;
            file.write_all(&Self::header_bytes(specs, &flavor))
                .map_err(|e| Self::io_err(&path, e))?;
            let bytes_written = Self::header_len(&flavor);
            return Ok((
                ResultJournal {
                    path,
                    file,
                    bytes_written,
                    records_written: 0,
                    crash: None,
                    flavor,
                },
                Vec::new(),
            ));
        }

        // Scan record frames; the first torn or corrupt frame ends the
        // journal and everything from it on is truncated away.
        let (recovered, offset) = T::scan(
            &bytes,
            Self::header_len(&flavor) as usize,
            specs.len(),
            &flavor,
        );

        if offset < bytes.len() {
            file.set_len(offset as u64)
                .map_err(|e| Self::io_err(&path, e))?;
        }
        file.seek(SeekFrom::Start(offset as u64))
            .map_err(|e| Self::io_err(&path, e))?;
        Ok((
            ResultJournal {
                path,
                file,
                bytes_written: offset as u64,
                records_written: recovered.len() as u64,
                crash: None,
                flavor,
            },
            recovered,
        ))
    }

    /// Read-only recovery of a shard journal — the coordinator's merge
    /// path. A missing or empty file recovers zero records (the worker
    /// never started); everything else goes through exactly the
    /// [`open_or_create_shard`](Self::open_or_create_shard) validation, but
    /// the file is neither truncated nor kept open, and a torn header
    /// recovers zero records instead of writing a fresh one.
    pub fn recover_shard(
        path: impl AsRef<Path>,
        specs: &[ScenarioSpec],
        range: ShardRange,
    ) -> Result<Vec<(usize, ScenarioOutcome)>> {
        let path = path.as_ref();
        let flavor = Flavor::Shard(range);
        Self::check_flavor_bounds(path, specs, &flavor)?;
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(Self::io_err(path, e)),
        };
        match Self::check_header(path, &bytes, specs, &flavor)? {
            HeaderCheck::Fresh => Ok(Vec::new()),
            HeaderCheck::Valid => {
                let (recovered, _) =
                    Self::scan_frames(&bytes, SHARD_HEADER_LEN as usize, |i| range.contains(i));
                Ok(recovered)
            }
        }
    }

    /// Read-only recovery of a v5 slice journal — the coordinator's reduce
    /// path: outcome records *and* moment frames. Missing/empty/torn files
    /// recover empty, exactly like [`recover_shard`](Self::recover_shard).
    pub fn recover_slice(
        path: impl AsRef<Path>,
        specs: &[ScenarioSpec],
        slice: &ShardSlice,
    ) -> Result<ShardRecovery> {
        let path = path.as_ref();
        let flavor = Flavor::Slice(slice.clone());
        Self::check_flavor_bounds(path, specs, &flavor)?;
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(ShardRecovery::default())
            }
            Err(e) => return Err(Self::io_err(path, e)),
        };
        match Self::check_header(path, &bytes, specs, &flavor)? {
            HeaderCheck::Fresh => Ok(ShardRecovery::default()),
            HeaderCheck::Valid => {
                let offset = slice_header_len(slice.ranges().len());
                let (frames, _) = Self::scan_slice_frames(&bytes, offset, specs.len(), slice);
                Ok(split_frames(frames))
            }
        }
    }

    /// Appends one outcome, framed and checksummed. Writes go straight to
    /// the file (no user-space buffering), so a process abort immediately
    /// after `append` returns loses nothing.
    pub fn append(&mut self, index: usize, outcome: &ScenarioOutcome) -> Result<()> {
        if !self.flavor.outcome_index_ok(usize::MAX, index) {
            let owned = match &self.flavor {
                Flavor::Shard(range) => format!("shard range {range}"),
                Flavor::Slice(slice) => format!("shard slice {slice}"),
                Flavor::Plain => unreachable!("plain journals accept every index"),
            };
            return Err(Self::journal_err(
                &self.path,
                format!("record index {index} outside {owned}"),
            ));
        }
        self.write_frame(encode_record(index, outcome))
    }

    /// Appends one pass-1 moment frame (v5 slice journals only): segment
    /// `segment` of `trial` of the split group led by `leader`. Shares the
    /// framing, crash-point, and durability semantics of
    /// [`append`](Self::append) — `records_written` counts moment frames
    /// too, so `CrashPoint::AfterRecords` can land mid-moment-task.
    pub fn append_moment(
        &mut self,
        leader: usize,
        trial: usize,
        segment: &MomentSegment,
    ) -> Result<()> {
        if !matches!(self.flavor, Flavor::Slice(_)) {
            return Err(Self::journal_err(
                &self.path,
                "moment frames belong to v5 slice journals only",
            ));
        }
        self.write_frame(encode_moment(leader, trial, segment))
    }

    fn write_frame(&mut self, payload: Vec<u8>) -> Result<()> {
        let mut frame = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u64(&mut frame, fnv64(FNV_OFFSET, &payload));
        frame.extend_from_slice(&payload);

        match self.crash {
            Some(CrashPoint::AfterRecords(k)) if self.records_written >= k => {
                std::process::abort();
            }
            Some(CrashPoint::AtByte(b)) if self.bytes_written + frame.len() as u64 > b => {
                let keep = b.saturating_sub(self.bytes_written) as usize;
                // Tear the frame at the crash byte, then die like a crash.
                let _ = self.file.write_all(&frame[..keep]);
                let _ = self.file.flush();
                std::process::abort();
            }
            _ => {}
        }

        self.file
            .write_all(&frame)
            .map_err(|e| Self::io_err(&self.path, e))?;
        self.bytes_written += frame.len() as u64;
        self.records_written += 1;
        Ok(())
    }

    /// Installs (or clears) a deterministic abort point — testing support
    /// for the kill-and-resume suite.
    pub fn set_crash_point(&mut self, crash: Option<CrashPoint>) {
        self.crash = crash;
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records currently in the journal (recovered + appended).
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Current file length in bytes (header + intact frames).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// The global index range this journal owns when it is a v4 shard
    /// journal (`None` for plain and v5 slice journals).
    pub fn shard_range(&self) -> Option<ShardRange> {
        match self.flavor {
            Flavor::Shard(range) => Some(range),
            _ => None,
        }
    }

    /// The global cell slice this journal owns when it is a v5 slice
    /// journal (`None` for plain and v4 shard journals).
    pub fn shard_slice(&self) -> Option<&ShardSlice> {
        match &self.flavor {
            Flavor::Slice(slice) => Some(slice),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// The resumable runner
// ---------------------------------------------------------------------------

/// What [`run_scenarios_resumable`] did: the full outcome list plus how
/// much of it came from the journal versus this invocation.
#[derive(Debug)]
pub struct ResumableRun {
    /// One outcome per input spec, in input order — journaled cells and
    /// freshly-executed cells are indistinguishable here.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Cells restored from the journal (skipped this invocation).
    pub resumed: usize,
    /// Cells executed (and journaled) by this invocation.
    pub executed: usize,
}

/// Runs a sweep fail-soft with every outcome journaled to `journal_path`
/// the moment it lands, resuming past work if the journal already holds it.
///
/// Scenarios found in the journal (matched by grid index, after the
/// fingerprint check guarantees the journal belongs to exactly this spec
/// list) are **not** re-executed; the remainder runs under
/// [`run_scenarios_failsoft`](crate::scenario::run_scenarios_failsoft)
/// semantics with outcomes appended as they complete. Because every
/// scenario's result is a pure function of its spec, the final outcome
/// list is bit-identical to an uninterrupted run — `seconds` (wall-clock)
/// aside — no matter how many crash/resume cycles it took.
///
/// A journal append failure aborts the sweep: continuing without
/// durability would silently downgrade the crash-safety contract.
pub fn run_scenarios_resumable(
    specs: &[ScenarioSpec],
    journal_path: impl Into<PathBuf>,
    policy: RetryPolicy,
) -> Result<ResumableRun> {
    run_scenarios_resumable_with_crash(specs, journal_path, policy, None)
}

/// [`run_scenarios_resumable`] with a [`CrashPoint`] installed on the
/// journal — testing support for the kill-and-resume suite, which re-execs
/// a child sweep with a crash point and then resumes it without one.
pub fn run_scenarios_resumable_with_crash(
    specs: &[ScenarioSpec],
    journal_path: impl Into<PathBuf>,
    policy: RetryPolicy,
    crash: Option<CrashPoint>,
) -> Result<ResumableRun> {
    let journal_path = journal_path.into();
    let (mut journal, recovered) = ResultJournal::open_or_create(&journal_path, specs)?;
    journal.set_crash_point(crash);

    let mut slots: Vec<Option<ScenarioOutcome>> = (0..specs.len()).map(|_| None).collect();
    for (index, outcome) in recovered {
        // Duplicate indices cannot arise from this runner, but a journal is
        // just a file: last record wins, matching append order.
        slots[index] = Some(outcome);
    }
    let resumed = slots.iter().filter(|s| s.is_some()).count();

    let pending: Vec<usize> = (0..specs.len()).filter(|&i| slots[i].is_none()).collect();
    let pending_specs: Vec<ScenarioSpec> = pending.iter().map(|&i| specs[i].clone()).collect();
    let executed = pending_specs.len();

    let journal = Mutex::new(journal);
    let fresh = execute_specs_failsoft(&pending_specs, policy, |sub_index, outcome| {
        let mut journal = journal.lock().unwrap_or_else(|e| e.into_inner());
        journal.append(pending[sub_index], outcome)
    })?;
    for (sub_index, outcome) in fresh.into_iter().enumerate() {
        slots[pending[sub_index]] = Some(outcome);
    }

    Ok(ResumableRun {
        outcomes: slots
            .into_iter()
            .map(|s| s.expect("every scenario has an outcome"))
            .collect(),
        resumed,
        executed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs(n: usize) -> Vec<ScenarioSpec> {
        (0..n)
            .map(|i| ScenarioSpec::synthetic_quick(&format!("cell{i}"), 64 + i, 4, 2))
            .collect()
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "randrecon-journal-{tag}-{}.bin",
            std::process::id()
        ))
    }

    fn sample_completed(label: &str) -> ScenarioOutcome {
        ScenarioOutcome::Completed(ScenarioResult {
            label: label.to_string(),
            x: 12.5,
            scheme: Some(SchemeKind::BeDr),
            attack: "BE-DR".to_string(),
            engine: "in-memory",
            n_records: 100,
            trials: 3,
            metrics: vec![(MetricKind::Rmse, 1.25), (MetricKind::Mse, 1.5625)],
            components_kept: Some(5),
            seconds: 0.125,
            warnings: Vec::new(),
        })
    }

    fn sample_degraded(label: &str) -> ScenarioOutcome {
        let ScenarioOutcome::Completed(mut result) = sample_completed(label) else {
            unreachable!("sample_completed builds Completed");
        };
        result.warnings = vec![
            "BE-DR: Cholesky of the posterior system failed; recovered".to_string(),
            "second warning".to_string(),
        ];
        ScenarioOutcome::Degraded(result)
    }

    fn sample_failed(label: &str) -> ScenarioOutcome {
        ScenarioOutcome::Failed(ScenarioFailure {
            label: label.to_string(),
            attack: "fault[Error]".to_string(),
            engine: "in-memory",
            error: "injected fault".to_string(),
            transient: false,
            timed_out: true,
            attempts: 2,
        })
    }

    #[test]
    fn round_trip_preserves_outcomes_exactly() {
        let grid = specs(4);
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let mut journal = ResultJournal::create(&path, &grid).unwrap();
            journal.append(2, &sample_completed("cell2")).unwrap();
            journal.append(0, &sample_failed("cell0")).unwrap();
            journal.append(1, &sample_degraded("cell1")).unwrap();
            assert_eq!(journal.records_written(), 3);
        }
        let (journal, recovered) = ResultJournal::open_or_create(&path, &grid).unwrap();
        assert_eq!(journal.records_written(), 3);
        assert_eq!(
            recovered,
            vec![
                (2, sample_completed("cell2")),
                (0, sample_failed("cell0")),
                (1, sample_degraded("cell1")),
            ]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pre_supervision_journal_versions_are_rejected() {
        let grid = specs(2);
        let path = temp_path("old-version");
        // Forge a checksum-valid version-1 (pre-supervision) plain header.
        let mut header = ResultJournal::header_bytes(&grid, &Flavor::Plain);
        header[8..12].copy_from_slice(&1u32.to_le_bytes());
        let crc_at = header.len() - 8;
        let crc = fnv64(FNV_OFFSET, &header[..crc_at]);
        header[crc_at..].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &header).unwrap();
        let err = ResultJournal::open_or_create(&path, &grid).unwrap_err();
        assert!(err.to_string().contains("unsupported journal version 1"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let grid = specs(3);
        let path = temp_path("stale");
        let _ = std::fs::remove_file(&path);
        ResultJournal::create(&path, &grid).unwrap();
        let mut changed = grid.clone();
        changed[1].seed ^= 1;
        let err = ResultJournal::open_or_create(&path, &changed).unwrap_err();
        assert!(err.to_string().contains("fingerprint mismatch"));
        // Different cell count fails too.
        let err = ResultJournal::open_or_create(&path, &grid[..2]).unwrap_err();
        assert!(err.to_string().contains("fingerprint mismatch"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_files_are_not_clobbered() {
        let path = temp_path("foreign");
        std::fs::write(&path, b"this is somebody's notes file, 40+ bytes long").unwrap();
        let err = ResultJournal::open_or_create(&path, &specs(1)).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
        // Short foreign files are refused as well.
        std::fs::write(&path, b"hi").unwrap();
        let err = ResultJournal::open_or_create(&path, &specs(1)).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_header_restarts_fresh() {
        let grid = specs(2);
        let path = temp_path("torn-header");
        std::fs::write(&path, &MAGIC[..5]).unwrap();
        let (journal, recovered) = ResultJournal::open_or_create(&path, &grid).unwrap();
        assert!(recovered.is_empty());
        assert_eq!(journal.bytes_written(), HEADER_LEN);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn out_of_range_index_truncates() {
        let grid = specs(2);
        let path = temp_path("bad-index");
        let _ = std::fs::remove_file(&path);
        {
            let mut journal = ResultJournal::create(&path, &grid).unwrap();
            journal.append(0, &sample_completed("cell0")).unwrap();
            journal.append(7, &sample_completed("ghost")).unwrap();
        }
        let (journal, recovered) = ResultJournal::open_or_create(&path, &grid).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(journal.records_written(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_crc_truncates_to_prefix() {
        let grid = specs(2);
        let path = temp_path("corrupt");
        let _ = std::fs::remove_file(&path);
        let first_end;
        {
            let mut journal = ResultJournal::create(&path, &grid).unwrap();
            journal.append(0, &sample_completed("cell0")).unwrap();
            first_end = journal.bytes_written();
            journal.append(1, &sample_failed("cell1")).unwrap();
        }
        // Flip a payload byte of the second record.
        let mut bytes = std::fs::read(&path).unwrap();
        let target = first_end as usize + FRAME_OVERHEAD + 2;
        bytes[target] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let (journal, recovered) = ResultJournal::open_or_create(&path, &grid).unwrap();
        assert_eq!(recovered, vec![(0, sample_completed("cell0"))]);
        assert_eq!(journal.bytes_written(), first_end);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), first_end);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_writes_through_failing_write_recover() {
        // Build intact journal bytes in memory, push them through a
        // byte-budgeted writer, and confirm recovery keeps exactly the
        // frames that fit.
        let grid = specs(3);
        let path = temp_path("failing-write");
        let _ = std::fs::remove_file(&path);
        let boundaries;
        {
            let mut journal = ResultJournal::create(&path, &grid).unwrap();
            let mut b = vec![journal.bytes_written()];
            for i in 0..3 {
                journal
                    .append(i, &sample_completed(&format!("cell{i}")))
                    .unwrap();
                b.push(journal.bytes_written());
            }
            boundaries = b;
        }
        let intact = std::fs::read(&path).unwrap();
        // Tear inside the third record: budget lands between its frame start
        // and end.
        let budget = (boundaries[2] + 3) as usize;
        let mut w = crate::fault::FailingWrite::new(Vec::new(), budget);
        let mut written = 0;
        while written < intact.len() {
            match std::io::Write::write(&mut w, &intact[written..]) {
                Ok(n) => written += n,
                Err(_) => break,
            }
        }
        std::fs::write(&path, w.into_inner()).unwrap();
        let (journal, recovered) = ResultJournal::open_or_create(&path, &grid).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(journal.bytes_written(), boundaries[2]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shard_journal_round_trip_and_range_validation() {
        let grid = specs(6);
        let range = ShardRange::new(2, 5).unwrap();
        let path = temp_path("shard-roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let mut journal = ResultJournal::create_shard(&path, &grid, range).unwrap();
            assert_eq!(journal.bytes_written(), SHARD_HEADER_LEN);
            assert_eq!(journal.shard_range(), Some(range));
            journal.append(3, &sample_completed("cell3")).unwrap();
            journal.append(2, &sample_failed("cell2")).unwrap();
            // Appends outside the owned range are rejected, not written.
            let err = journal.append(5, &sample_completed("ghost")).unwrap_err();
            assert!(err.to_string().contains("outside shard range"));
        }
        // Worker resume recovers both records.
        let (journal, recovered) =
            ResultJournal::open_or_create_shard(&path, &grid, range).unwrap();
        assert_eq!(journal.records_written(), 2);
        assert_eq!(
            recovered,
            vec![(3, sample_completed("cell3")), (2, sample_failed("cell2"))]
        );
        drop(journal);
        // Read-only coordinator recovery sees the same records.
        let merged = ResultJournal::recover_shard(&path, &grid, range).unwrap();
        assert_eq!(merged.len(), 2);
        // A different shard range is a hard error, as is a stale grid.
        let other = ShardRange::new(0, 2).unwrap();
        let err = ResultJournal::recover_shard(&path, &grid, other).unwrap_err();
        assert!(err.to_string().contains("shard range mismatch"));
        let mut changed = grid.clone();
        changed[0].seed ^= 1;
        let err = ResultJournal::recover_shard(&path, &changed, range).unwrap_err();
        assert!(err.to_string().contains("fingerprint mismatch"));
        // Ranges past the grid are rejected up front.
        let too_far = ShardRange::new(4, 9).unwrap();
        assert!(ResultJournal::create_shard(&path, &grid, too_far).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shard_and_plain_flavors_do_not_mix() {
        let grid = specs(3);
        let range = ShardRange::new(0, 3).unwrap();
        let plain = temp_path("flavor-plain");
        let _ = std::fs::remove_file(&plain);
        ResultJournal::create(&plain, &grid).unwrap();
        let err = ResultJournal::open_or_create_shard(&plain, &grid, range).unwrap_err();
        assert!(err.to_string().contains("unsharded run"), "{err}");

        let sharded = temp_path("flavor-shard");
        let _ = std::fs::remove_file(&sharded);
        ResultJournal::create_shard(&sharded, &grid, range).unwrap();
        let err = ResultJournal::open_or_create(&sharded, &grid).unwrap_err();
        assert!(err.to_string().contains("sharded run"), "{err}");
        let _ = std::fs::remove_file(&plain);
        let _ = std::fs::remove_file(&sharded);
    }

    #[test]
    fn missing_and_torn_shard_journals_recover_empty() {
        let grid = specs(4);
        let range = ShardRange::new(1, 3).unwrap();
        let path = temp_path("shard-missing");
        let _ = std::fs::remove_file(&path);
        assert!(ResultJournal::recover_shard(&path, &grid, range)
            .unwrap()
            .is_empty());
        // A header torn mid-create (prefix of a real shard header).
        let full = ResultJournal::header_bytes(&grid, &Flavor::Shard(range));
        std::fs::write(&path, &full[..20]).unwrap();
        assert!(ResultJournal::recover_shard(&path, &grid, range)
            .unwrap()
            .is_empty());
        // And the worker-side open starts fresh over the torn header.
        let (journal, recovered) =
            ResultJournal::open_or_create_shard(&path, &grid, range).unwrap();
        assert!(recovered.is_empty());
        assert_eq!(journal.bytes_written(), SHARD_HEADER_LEN);
        let _ = std::fs::remove_file(&path);
    }

    fn sample_segment(index: usize) -> MomentSegment {
        // Deliberately awkward values (negatives, non-dyadic fractions, a
        // subnormal) so the raw-bits round trip is actually exercised.
        let acc = CovarianceAccumulator::from_raw_parts(
            3,
            vec![1.5, -2.25e-300],
            vec![0.1 + 0.2, -4.0, -4.0, f64::MIN_POSITIVE / 4.0],
            Some(vec![0.125, std::f64::consts::PI]),
        )
        .expect("valid raw parts");
        MomentSegment {
            index,
            n_chunks: 4,
            accumulator: acc,
        }
    }

    fn assert_acc_bits_eq(a: &CovarianceAccumulator, b: &CovarianceAccumulator) {
        assert_eq!(a.count(), b.count());
        assert_eq!(a.shift().map(raw_bits), b.shift().map(raw_bits));
        assert_eq!(raw_bits(a.raw_sum()), raw_bits(b.raw_sum()));
        assert_eq!(raw_bits(a.raw_cross()), raw_bits(b.raw_cross()));
    }

    fn raw_bits(values: &[f64]) -> Vec<u64> {
        values.iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn slice_journal_round_trips_outcomes_and_moment_frames_bit_exactly() {
        let grid = specs(6);
        let slice = ShardSlice::parse("0..2,4..6").unwrap();
        let path = temp_path("slice-roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let (mut journal, recovery) =
                ResultJournal::open_or_create_slice(&path, &grid, &slice).unwrap();
            assert!(recovery.outcomes.is_empty() && recovery.moments.is_empty());
            assert_eq!(journal.shard_slice(), Some(&slice));
            assert_eq!(journal.shard_range(), None);
            journal.append(4, &sample_completed("cell4")).unwrap();
            journal.append_moment(2, 1, &sample_segment(7)).unwrap();
            journal.append(0, &sample_failed("cell0")).unwrap();
            // Outcomes outside the slice are rejected, not written.
            let err = journal.append(2, &sample_completed("ghost")).unwrap_err();
            assert!(err.to_string().contains("outside shard slice"), "{err}");
            assert_eq!(journal.records_written(), 3);
        }
        // Worker resume sees all three frames, moment state bit-identical.
        let (journal, recovery) =
            ResultJournal::open_or_create_slice(&path, &grid, &slice).unwrap();
        assert_eq!(journal.records_written(), 3);
        assert_eq!(
            recovery.outcomes,
            vec![(4, sample_completed("cell4")), (0, sample_failed("cell0"))]
        );
        assert_eq!(recovery.moments.len(), 1);
        let frame = &recovery.moments[0];
        assert_eq!((frame.leader, frame.trial), (2, 1));
        assert_eq!(frame.segment.index, 7);
        assert_eq!(frame.segment.n_chunks, 4);
        assert_acc_bits_eq(&frame.segment.accumulator, &sample_segment(7).accumulator);
        drop(journal);
        // Read-only coordinator recovery sees the same.
        let recovery = ResultJournal::recover_slice(&path, &grid, &slice).unwrap();
        assert_eq!(recovery.outcomes.len(), 2);
        assert_eq!(recovery.moments.len(), 1);
        // A different slice is a hard error.
        let other = ShardSlice::parse("0..3").unwrap();
        let err = ResultJournal::recover_slice(&path, &grid, &other).unwrap_err();
        assert!(err.to_string().contains("shard slice mismatch"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn slice_journals_do_not_mix_with_other_flavors() {
        let grid = specs(4);
        let slice = ShardSlice::parse("1..3").unwrap();
        let range = ShardRange::new(1, 3).unwrap();
        let path = temp_path("slice-flavor");
        let _ = std::fs::remove_file(&path);
        ResultJournal::open_or_create_slice(&path, &grid, &slice).unwrap();
        // Plain and v4 shard opens refuse with pointed messages.
        let err = ResultJournal::open_or_create(&path, &grid).unwrap_err();
        assert!(err.to_string().contains("moment-merge"), "{err}");
        let err = ResultJournal::open_or_create_shard(&path, &grid, range).unwrap_err();
        assert!(err.to_string().contains("moment-merge"), "{err}");
        // And a v4 journal refuses moment frames entirely.
        let shard_path = temp_path("slice-flavor-v4");
        let _ = std::fs::remove_file(&shard_path);
        let mut v4 = ResultJournal::create_shard(&shard_path, &grid, range).unwrap();
        let err = v4.append_moment(0, 0, &sample_segment(0)).unwrap_err();
        assert!(err.to_string().contains("v5 slice journals only"), "{err}");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&shard_path);
    }

    #[test]
    fn empty_slice_journal_is_valid_and_task_only() {
        // A worker can hold zero cells and only moment tasks.
        let grid = specs(3);
        let slice = ShardSlice::parse("").unwrap();
        let path = temp_path("slice-empty");
        let _ = std::fs::remove_file(&path);
        {
            let (mut journal, _) =
                ResultJournal::open_or_create_slice(&path, &grid, &slice).unwrap();
            journal.append_moment(1, 0, &sample_segment(0)).unwrap();
            let err = journal.append(1, &sample_completed("cell1")).unwrap_err();
            assert!(err.to_string().contains("outside shard slice"), "{err}");
        }
        let recovery = ResultJournal::recover_slice(&path, &grid, &slice).unwrap();
        assert!(recovery.outcomes.is_empty());
        assert_eq!(recovery.moments.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_moment_frame_truncates_to_prefix() {
        let grid = specs(3);
        let slice = ShardSlice::parse("0..3").unwrap();
        let path = temp_path("slice-torn");
        let _ = std::fs::remove_file(&path);
        let first_end;
        {
            let (mut journal, _) =
                ResultJournal::open_or_create_slice(&path, &grid, &slice).unwrap();
            journal.append_moment(0, 0, &sample_segment(0)).unwrap();
            first_end = journal.bytes_written();
            journal.append_moment(0, 0, &sample_segment(1)).unwrap();
        }
        // Tear the second moment frame mid-payload.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..first_end as usize + 20]).unwrap();
        let recovery = ResultJournal::recover_slice(&path, &grid, &slice).unwrap();
        assert_eq!(recovery.moments.len(), 1);
        assert_eq!(recovery.moments[0].segment.index, 0);
        // And the worker-side open truncates back to the intact frame.
        let (journal, recovery) =
            ResultJournal::open_or_create_slice(&path, &grid, &slice).unwrap();
        assert_eq!(recovery.moments.len(), 1);
        assert_eq!(journal.bytes_written(), first_end);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn grid_fingerprint_sensitive_to_any_spec_change() {
        let grid = specs(3);
        let base = grid_fingerprint(&grid);
        let mut changed = grid.clone();
        changed[0].label.push('!');
        assert_ne!(base, grid_fingerprint(&changed));
        let mut changed = grid.clone();
        changed[2].trials += 1;
        assert_ne!(base, grid_fingerprint(&changed));
        assert_ne!(base, grid_fingerprint(&grid[..2]));
        assert_eq!(base, grid_fingerprint(&specs(3)));
    }
}
