//! Error type for the experiment harness.

use randrecon_core::ReconError;
use randrecon_data::DataError;
use randrecon_metrics::MetricsError;
use randrecon_noise::NoiseError;
use std::fmt;

/// Convenience alias used throughout `randrecon-experiments`.
pub type Result<T> = std::result::Result<T, ExperimentError>;

/// Errors raised while configuring or running an experiment.
#[derive(Debug)]
pub enum ExperimentError {
    /// The experiment configuration is inconsistent (empty sweep, bad sizes, …).
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },
    /// A worker thread panicked or a parallel task failed to produce a result.
    WorkerFailed {
        /// Description of the failure.
        reason: String,
    },
    /// I/O failure while writing reports.
    Io(std::io::Error),
    /// I/O failure located at the file path it hit (report writing, journal
    /// paths passed on the command line, …).
    IoAt {
        /// The file the operation targeted.
        path: std::path::PathBuf,
        /// The underlying I/O failure.
        source: std::io::Error,
    },
    /// A result-journal failure: the file could not be created, appended, or
    /// recovered, or an existing journal does not match the grid it is being
    /// resumed against (stale-journal rejection).
    Journal {
        /// The journal file.
        path: std::path::PathBuf,
        /// What went wrong.
        reason: String,
    },
    /// A deterministic injected fault from the testing-support harness
    /// ([`crate::fault`]) — never produced by real scenarios.
    InjectedFault {
        /// The scenario that carried the fault spec.
        label: String,
    },
    /// A requested metric is missing from a result (a report asked for a
    /// metric the scenario did not compute).
    MetricMissing {
        /// The scenario label.
        label: String,
        /// The metric's display name.
        metric: &'static str,
    },
    /// Propagated failure from workload generation.
    Data(DataError),
    /// Propagated failure from the randomization layer.
    Noise(NoiseError),
    /// Propagated failure from a reconstruction attack.
    Recon(ReconError),
    /// Propagated failure from a metric computation.
    Metrics(MetricsError),
}

impl ExperimentError {
    /// Whether this failure is plausibly **transient** — an external
    /// condition (disk, file system) that a retry under the same inputs
    /// might not reproduce — as opposed to deterministic (bad config, a
    /// numeric failure, a panic), which would replay identically because
    /// all scenario randomness is spec-derived. The fail-soft runner's
    /// [`crate::scenario::RetryPolicy`] consults this classification.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ExperimentError::Io(_)
                | ExperimentError::IoAt { .. }
                | ExperimentError::Data(DataError::Io(_) | DataError::IoAt { .. })
                | ExperimentError::Recon(ReconError::Data(
                    DataError::Io(_) | DataError::IoAt { .. }
                ))
        )
    }

    /// Whether this failure is a cooperative **timeout** — a cell deadline
    /// expired or a supervisor tripped the cancel token, surfacing as
    /// [`ReconError::Cancelled`] (possibly chunk-located). Timed-out cells
    /// are never retried: all scenario randomness is spec-derived, so a
    /// replay under the same deadline would wedge identically.
    pub fn is_timeout(&self) -> bool {
        matches!(self, ExperimentError::Recon(e) if e.is_cancelled())
    }
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::InvalidConfig { reason } => {
                write!(f, "invalid experiment config: {reason}")
            }
            ExperimentError::WorkerFailed { reason } => {
                write!(f, "experiment worker failed: {reason}")
            }
            ExperimentError::Io(e) => write!(f, "I/O error: {e}"),
            ExperimentError::IoAt { path, source } => {
                write!(f, "I/O error on {}: {source}", path.display())
            }
            ExperimentError::Journal { path, reason } => {
                write!(f, "result journal {}: {reason}", path.display())
            }
            ExperimentError::InjectedFault { label } => {
                write!(f, "injected fault (testing support) in scenario '{label}'")
            }
            ExperimentError::MetricMissing { label, metric } => {
                write!(f, "scenario '{label}' did not compute metric '{metric}'")
            }
            ExperimentError::Data(e) => write!(f, "data error: {e}"),
            ExperimentError::Noise(e) => write!(f, "noise error: {e}"),
            ExperimentError::Recon(e) => write!(f, "reconstruction error: {e}"),
            ExperimentError::Metrics(e) => write!(f, "metrics error: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExperimentError::Io(e) => Some(e),
            ExperimentError::IoAt { source, .. } => Some(source),
            ExperimentError::Data(e) => Some(e),
            ExperimentError::Noise(e) => Some(e),
            ExperimentError::Recon(e) => Some(e),
            ExperimentError::Metrics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ExperimentError {
    fn from(e: std::io::Error) -> Self {
        ExperimentError::Io(e)
    }
}

impl From<DataError> for ExperimentError {
    fn from(e: DataError) -> Self {
        ExperimentError::Data(e)
    }
}

impl From<NoiseError> for ExperimentError {
    fn from(e: NoiseError) -> Self {
        ExperimentError::Noise(e)
    }
}

impl From<ReconError> for ExperimentError {
    fn from(e: ReconError) -> Self {
        ExperimentError::Recon(e)
    }
}

impl From<MetricsError> for ExperimentError {
    fn from(e: MetricsError) -> Self {
        ExperimentError::Metrics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        assert!(ExperimentError::InvalidConfig {
            reason: "empty sweep".into()
        }
        .to_string()
        .contains("empty sweep"));
        assert!(ExperimentError::WorkerFailed {
            reason: "panic".into()
        }
        .to_string()
        .contains("panic"));
        let e: ExperimentError = MetricsError::EmptyInput { metric: "rmse" }.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: ExperimentError = DataError::UnknownAttribute { name: "x".into() }.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: ExperimentError = std::io::Error::other("disk").into();
        assert!(e.to_string().contains("disk"));
        let e = ExperimentError::Journal {
            path: std::path::PathBuf::from("/tmp/sweep.journal"),
            reason: "fingerprint mismatch".into(),
        };
        assert!(e.to_string().contains("sweep.journal"));
        assert!(e.to_string().contains("fingerprint"));
        let e = ExperimentError::MetricMissing {
            label: "cell".into(),
            metric: "rmse",
        };
        assert!(e.to_string().contains("rmse"));
    }

    #[test]
    fn transient_classification() {
        assert!(ExperimentError::Io(std::io::Error::other("disk")).is_transient());
        assert!(ExperimentError::IoAt {
            path: "/x".into(),
            source: std::io::Error::other("disk"),
        }
        .is_transient());
        assert!(ExperimentError::from(DataError::Io(std::io::Error::other("disk"))).is_transient());
        assert!(!ExperimentError::InvalidConfig { reason: "x".into() }.is_transient());
        assert!(!ExperimentError::WorkerFailed { reason: "x".into() }.is_transient());
        assert!(!ExperimentError::InjectedFault { label: "x".into() }.is_transient());
    }

    #[test]
    fn timeout_classification() {
        let timed_out = ExperimentError::Recon(ReconError::Cancelled {
            reason: "cell deadline exceeded".into(),
        });
        assert!(timed_out.is_timeout());
        assert!(!timed_out.is_transient());
        let located = ExperimentError::Recon(ReconError::AtChunk {
            chunk: 4,
            source: Box::new(ReconError::Cancelled {
                reason: "cell deadline exceeded".into(),
            }),
        });
        assert!(located.is_timeout());
        assert!(!ExperimentError::Io(std::io::Error::other("disk")).is_timeout());
        assert!(!ExperimentError::InvalidConfig { reason: "x".into() }.is_timeout());
    }
}
