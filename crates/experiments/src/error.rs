//! Error type for the experiment harness.

use randrecon_core::ReconError;
use randrecon_data::DataError;
use randrecon_metrics::MetricsError;
use randrecon_noise::NoiseError;
use std::fmt;

/// Convenience alias used throughout `randrecon-experiments`.
pub type Result<T> = std::result::Result<T, ExperimentError>;

/// Errors raised while configuring or running an experiment.
#[derive(Debug)]
pub enum ExperimentError {
    /// The experiment configuration is inconsistent (empty sweep, bad sizes, …).
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },
    /// A worker thread panicked or a parallel task failed to produce a result.
    WorkerFailed {
        /// Description of the failure.
        reason: String,
    },
    /// I/O failure while writing reports.
    Io(std::io::Error),
    /// Propagated failure from workload generation.
    Data(DataError),
    /// Propagated failure from the randomization layer.
    Noise(NoiseError),
    /// Propagated failure from a reconstruction attack.
    Recon(ReconError),
    /// Propagated failure from a metric computation.
    Metrics(MetricsError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::InvalidConfig { reason } => {
                write!(f, "invalid experiment config: {reason}")
            }
            ExperimentError::WorkerFailed { reason } => {
                write!(f, "experiment worker failed: {reason}")
            }
            ExperimentError::Io(e) => write!(f, "I/O error: {e}"),
            ExperimentError::Data(e) => write!(f, "data error: {e}"),
            ExperimentError::Noise(e) => write!(f, "noise error: {e}"),
            ExperimentError::Recon(e) => write!(f, "reconstruction error: {e}"),
            ExperimentError::Metrics(e) => write!(f, "metrics error: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExperimentError::Io(e) => Some(e),
            ExperimentError::Data(e) => Some(e),
            ExperimentError::Noise(e) => Some(e),
            ExperimentError::Recon(e) => Some(e),
            ExperimentError::Metrics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ExperimentError {
    fn from(e: std::io::Error) -> Self {
        ExperimentError::Io(e)
    }
}

impl From<DataError> for ExperimentError {
    fn from(e: DataError) -> Self {
        ExperimentError::Data(e)
    }
}

impl From<NoiseError> for ExperimentError {
    fn from(e: NoiseError) -> Self {
        ExperimentError::Noise(e)
    }
}

impl From<ReconError> for ExperimentError {
    fn from(e: ReconError) -> Self {
        ExperimentError::Recon(e)
    }
}

impl From<MetricsError> for ExperimentError {
    fn from(e: MetricsError) -> Self {
        ExperimentError::Metrics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        assert!(ExperimentError::InvalidConfig {
            reason: "empty sweep".into()
        }
        .to_string()
        .contains("empty sweep"));
        assert!(ExperimentError::WorkerFailed {
            reason: "panic".into()
        }
        .to_string()
        .contains("panic"));
        let e: ExperimentError = MetricsError::EmptyInput { metric: "rmse" }.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: ExperimentError = DataError::UnknownAttribute { name: "x".into() }.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: ExperimentError = std::io::Error::other("disk").into();
        assert!(e.to_string().contains("disk"));
    }
}
