//! Experiment 4 (Figure 4): the correlated-noise defense.
//!
//! The original data has 50 dominant and 50 small eigenvalues. The disguising
//! noise keeps the *data's eigenvectors* but its eigenvalue spectrum is swept
//! from "similar" (proportional to the data spectrum — noise concentrates on
//! the data's principal components) through "independent" (flat spectrum, i.e.
//! exactly the classic i.i.d. scheme) to "anti-similar" (noise concentrated on
//! the non-principal components). The x-axis is the correlation dissimilarity
//! of Definition 8.1.
//!
//! Expected shape (Figure 4): reconstruction error of PCA-DR and (improved)
//! BE-DR is highest when the dissimilarity is smallest — the defense works —
//! and decreases as the noise becomes less like the data; SF behaves
//! erratically once the noise stops being i.i.d. because its filtering bound
//! assumes independence.

use crate::config::{figure_4_set, ExperimentSeries, SchemeKind};
use crate::error::{ExperimentError, Result};
use crate::scenario::{
    series_from_results, DataSpec, GridAxis, GridAxisValue, NoiseSpec, Override, ScenarioGrid,
    ScenarioSpec, SpectrumSpec,
};
use serde::{Deserialize, Serialize};

/// Configuration of Experiment 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Experiment4 {
    /// Number of attributes (fixed; the paper uses 100).
    pub attributes: usize,
    /// Number of dominant eigenvalues (paper: 50).
    pub principal_components: usize,
    /// Dominant eigenvalue of the data spectrum.
    pub principal_eigenvalue: f64,
    /// Small eigenvalue of the data spectrum.
    pub small_eigenvalue: f64,
    /// Records per generated data set.
    pub records: usize,
    /// Average per-attribute noise variance (the total noise budget is this
    /// value times the number of attributes, matching an i.i.d. scheme with
    /// `σ² = noise_variance`).
    pub noise_variance: f64,
    /// Similarity sweep: `1` = noise spectrum proportional to the data's,
    /// `0` = flat (independent), `-1` = reversed (anti-similar).
    pub similarity_levels: Vec<f64>,
    /// Independent repetitions averaged per sweep point.
    pub trials: usize,
    /// Base random seed.
    pub seed: u64,
    /// Schemes to evaluate (the paper plots SF, PCA-DR and improved BE-DR).
    pub schemes: Vec<SchemeKind>,
}

impl Default for Experiment4 {
    fn default() -> Self {
        Experiment4 {
            attributes: 100,
            principal_components: 50,
            principal_eigenvalue: 400.0,
            small_eigenvalue: 4.0,
            records: 1_000,
            noise_variance: 25.0,
            similarity_levels: vec![1.0, 0.75, 0.5, 0.25, 0.0, -0.25, -0.5, -0.75, -1.0],
            trials: 3,
            seed: 0x5EED_0004,
            schemes: figure_4_set(),
        }
    }
}

impl Experiment4 {
    /// The full-size configuration used by the `figure4` binary and bench.
    pub fn full() -> Self {
        Self::default()
    }

    /// A scaled-down configuration for tests and smoke runs.
    pub fn quick() -> Self {
        Experiment4 {
            attributes: 20,
            principal_components: 10,
            records: 300,
            similarity_levels: vec![1.0, 0.0, -1.0],
            trials: 1,
            ..Self::default()
        }
    }

    fn validate(&self) -> Result<()> {
        if self.similarity_levels.is_empty() {
            return Err(ExperimentError::InvalidConfig {
                reason: "similarity_levels must not be empty".to_string(),
            });
        }
        if self
            .similarity_levels
            .iter()
            .any(|&a| !((-1.0..=1.0).contains(&a) && a.is_finite()))
        {
            return Err(ExperimentError::InvalidConfig {
                reason: "similarity levels must lie in [-1, 1]".to_string(),
            });
        }
        if self.principal_components == 0 || self.principal_components >= self.attributes {
            return Err(ExperimentError::InvalidConfig {
                reason: format!(
                    "need 1 <= principal components < attributes, got {} of {}",
                    self.principal_components, self.attributes
                ),
            });
        }
        if self.noise_variance.is_nan()
            || self.noise_variance <= 0.0
            || self.trials == 0
            || self.records < 2
            || self.schemes.is_empty()
        {
            return Err(ExperimentError::InvalidConfig {
                reason: "need positive noise variance, at least 1 trial, 2 records and 1 scheme"
                    .to_string(),
            });
        }
        Ok(())
    }

    /// The experiment as a declarative scenario grid: the similarity sweep
    /// (correlated-noise axis) crossed with the scheme set. The x coordinate
    /// of every result is the *measured* correlation dissimilarity
    /// (Definition 8.1), averaged over trials, exactly as the historical
    /// driver reported it.
    pub fn grid(&self) -> ScenarioGrid {
        let mut base = ScenarioSpec::synthetic_quick("figure4", self.records, 1, 1);
        // The real workload (the template's is a placeholder); the noise
        // model comes from the similarity axis below.
        base.data = DataSpec::SyntheticMvn {
            spectrum: SpectrumSpec::PrincipalPlusSmall {
                p: self.principal_components,
                principal: self.principal_eigenvalue,
                m: self.attributes,
                small: self.small_eigenvalue,
            },
            records: self.records,
        };
        base.trials = self.trials;
        base.seed = self.seed;
        let similarity_axis = GridAxis {
            name: "alpha".to_string(),
            values: self
                .similarity_levels
                .iter()
                .enumerate()
                // The sweep index prefixes the label (and drives the seed),
                // so repeated similarity levels stay distinct sweep points —
                // the historical driver behaviour.
                .map(|(idx, &alpha)| GridAxisValue {
                    label: format!("{idx}:{alpha}"),
                    x: Some(alpha),
                    overrides: vec![
                        Override::Noise(NoiseSpec::CorrelatedSimilar {
                            similarity: alpha,
                            noise_variance: self.noise_variance,
                        }),
                        Override::SeedOffset((idx as u64) * 1_000),
                    ],
                })
                .collect(),
        };
        ScenarioGrid {
            base,
            axes: vec![similarity_axis, GridAxis::schemes(&self.schemes)],
        }
    }

    /// Runs the sweep and returns the Figure 4 series (sorted by increasing
    /// correlation dissimilarity, matching the paper's x-axis).
    pub fn run(&self) -> Result<ExperimentSeries> {
        self.validate()?;
        let results = self.grid().run()?;
        let mut series = series_from_results(
            "Figure 4: increasing the correlation dissimilarity of data and noise",
            "correlation dissimilarity",
            &results,
        );
        series
            .points
            .sort_by(|a, b| a.x.partial_cmp(&b.x).unwrap_or(std::cmp::Ordering::Equal));
        Ok(series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = Experiment4::quick();
        c.similarity_levels.clear();
        assert!(c.run().is_err());
        let mut c = Experiment4::quick();
        c.similarity_levels = vec![2.0];
        assert!(c.run().is_err());
        let mut c = Experiment4::quick();
        c.noise_variance = 0.0;
        assert!(c.run().is_err());
        let mut c = Experiment4::quick();
        c.principal_components = c.attributes;
        assert!(c.run().is_err());
    }

    #[test]
    fn quick_run_reproduces_figure_4_shape() {
        let series = Experiment4::quick().run().unwrap();
        assert_eq!(series.points.len(), 3);

        // x values (dissimilarities) are sorted ascending and distinct:
        // alpha = 1 (similar) gives the smallest dissimilarity.
        assert!(series.points[0].x < series.points[1].x);
        assert!(series.points[1].x < series.points[2].x);

        // The defense works: PCA-DR and BE-DR have their *highest* error at the
        // most similar noise (smallest dissimilarity) and their lowest error at
        // the most dissimilar noise.
        for scheme in [SchemeKind::PcaDr, SchemeKind::BeDr] {
            let s = series.series_for(scheme);
            assert!(
                s.first().unwrap().1 > s.last().unwrap().1,
                "{scheme:?} error should decrease with dissimilarity: {s:?}"
            );
        }
    }
}
