//! Experiment 1 (Figure 1): increasing the number of attributes.
//!
//! The number of principal components is fixed at `p = 5` while the number of
//! attributes `m` grows. Because the total variance is rescaled so the average
//! per-attribute variance stays constant, the UDR baseline stays flat; the
//! correlation-exploiting schemes (SF, PCA-DR, BE-DR) improve as `m` grows
//! because a fixed amount of information is spread redundantly over more and
//! more attributes.

use crate::config::{figure_1_to_3_set, ExperimentSeries, SchemeKind};
use crate::error::{ExperimentError, Result};
use crate::scenario::{
    series_from_results, DataSpec, GridAxis, GridAxisValue, NoiseSpec, Override, ScenarioGrid,
    ScenarioSpec, SpectrumSpec,
};
use serde::{Deserialize, Serialize};

/// Configuration of Experiment 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Experiment1 {
    /// Number of principal components (the paper uses 5).
    pub principal_components: usize,
    /// Sweep over the number of attributes `m`.
    pub attribute_counts: Vec<usize>,
    /// Records per generated data set.
    pub records: usize,
    /// Fixed eigenvalue of every non-principal component ("relatively small
    /// numbers" in the paper); the principal eigenvalues absorb the rest of
    /// the constant variance budget.
    pub small_eigenvalue: f64,
    /// Average per-attribute variance, held constant across the sweep so the
    /// UDR baseline stays flat (Equation 12).
    pub mean_attribute_variance: f64,
    /// Standard deviation of the independent Gaussian disguising noise.
    pub noise_sigma: f64,
    /// Independent repetitions averaged per sweep point.
    pub trials: usize,
    /// Base random seed.
    pub seed: u64,
    /// Schemes to evaluate.
    pub schemes: Vec<SchemeKind>,
}

impl Default for Experiment1 {
    fn default() -> Self {
        Experiment1 {
            principal_components: 5,
            attribute_counts: vec![5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100],
            records: 1_000,
            small_eigenvalue: 4.0,
            mean_attribute_variance: 100.0,
            noise_sigma: 5.0,
            trials: 3,
            seed: 0x5EED_0001,
            schemes: figure_1_to_3_set(),
        }
    }
}

impl Experiment1 {
    /// The full-size configuration used by the `figure1` binary and bench.
    pub fn full() -> Self {
        Self::default()
    }

    /// A scaled-down configuration for tests and smoke runs.
    pub fn quick() -> Self {
        Experiment1 {
            attribute_counts: vec![5, 10, 20],
            records: 250,
            trials: 1,
            ..Self::default()
        }
    }

    fn validate(&self) -> Result<()> {
        if self.attribute_counts.is_empty() {
            return Err(ExperimentError::InvalidConfig {
                reason: "attribute_counts must not be empty".to_string(),
            });
        }
        if self
            .attribute_counts
            .iter()
            .any(|&m| m < self.principal_components)
        {
            return Err(ExperimentError::InvalidConfig {
                reason: format!(
                    "every attribute count must be >= the number of principal components ({})",
                    self.principal_components
                ),
            });
        }
        if self.trials == 0 || self.records < 2 || self.schemes.is_empty() {
            return Err(ExperimentError::InvalidConfig {
                reason: "need at least 1 trial, 2 records and 1 scheme".to_string(),
            });
        }
        Ok(())
    }

    /// The experiment as a declarative scenario grid: the `m` sweep crossed
    /// with the scheme set over one shared in-memory workload per point.
    ///
    /// Seeding matches the historical hand-written driver exactly
    /// (`trial_seed = child_seed(seed, m·1000 + trial)`, disguise seed
    /// `child_seed(trial_seed, 1)`), so the rebased grid reproduces its
    /// numbers bit for bit.
    pub fn grid(&self) -> ScenarioGrid {
        // The template's workload is a placeholder — every m-axis value
        // overrides the data source below.
        let mut base = ScenarioSpec::synthetic_quick("figure1", self.records, 1, 1);
        base.noise = NoiseSpec::Gaussian {
            sigma: self.noise_sigma,
        };
        base.trials = self.trials;
        base.seed = self.seed;
        let m_axis = GridAxis {
            name: "m".to_string(),
            values: self
                .attribute_counts
                .iter()
                .enumerate()
                // The sweep index prefixes the label so repeated attribute
                // counts stay distinct sweep points (the historical driver
                // accepted them).
                .map(|(idx, &m)| GridAxisValue {
                    label: format!("{idx}:{m}"),
                    x: Some(m as f64),
                    overrides: vec![
                        // Non-principal eigenvalues stay fixed at
                        // `small_eigenvalue`; the p principal ones absorb the
                        // rest of the (constant) per-attribute variance
                        // budget so UDR stays flat (Eq. 12).
                        Override::Data(DataSpec::SyntheticMvn {
                            spectrum: SpectrumSpec::PrincipalFillingTotal {
                                p: self.principal_components,
                                m,
                                small: self.small_eigenvalue,
                                total_variance: self.mean_attribute_variance * m as f64,
                            },
                            records: self.records,
                        }),
                        Override::SeedOffset((m as u64) * 1_000),
                    ],
                })
                .collect(),
        };
        ScenarioGrid {
            base,
            axes: vec![m_axis, GridAxis::schemes(&self.schemes)],
        }
    }

    /// Runs the sweep and returns the Figure 1 series.
    pub fn run(&self) -> Result<ExperimentSeries> {
        self.validate()?;
        let results = self.grid().run()?;
        Ok(series_from_results(
            "Figure 1: increasing the number of attributes (p = 5 fixed)",
            "number of attributes",
            &results,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = Experiment1::quick();
        c.attribute_counts.clear();
        assert!(c.run().is_err());
        let mut c = Experiment1::quick();
        c.attribute_counts = vec![3]; // below p = 5
        assert!(c.run().is_err());
        let mut c = Experiment1::quick();
        c.trials = 0;
        assert!(c.run().is_err());
    }

    #[test]
    fn quick_run_reproduces_figure_1_shape() {
        let series = Experiment1::quick().run().unwrap();
        assert_eq!(series.points.len(), 3);

        // UDR stays roughly flat (its error only depends on the per-attribute
        // variance, which is held constant).
        let udr = series.series_for(SchemeKind::Udr);
        let udr_min = udr.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
        let udr_max = udr
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(udr_max - udr_min < 0.6, "UDR should be flat: {udr:?}");

        // The correlation-based schemes improve as m grows: error at the largest
        // m is lower than at the smallest m.
        for scheme in [SchemeKind::PcaDr, SchemeKind::BeDr] {
            let s = series.series_for(scheme);
            assert!(
                s.last().unwrap().1 < s.first().unwrap().1,
                "{scheme:?} should improve with m: {s:?}"
            );
        }

        // At the most correlated point BE-DR beats UDR decisively.
        let last = series.points.last().unwrap();
        assert!(last.rmse_of(SchemeKind::BeDr).unwrap() < last.rmse_of(SchemeKind::Udr).unwrap());
    }

    #[test]
    fn deterministic_across_runs() {
        let a = Experiment1::quick().run().unwrap();
        let b = Experiment1::quick().run().unwrap();
        assert_eq!(a, b);
    }
}
