//! Ablation studies over design choices the paper leaves implicit.
//!
//! * [`SelectionAblation`] — how the principal-component selection rule
//!   (largest gap vs fixed count vs variance fraction) changes PCA-DR accuracy.
//! * [`NoiseLevelAblation`] — how the disguising noise level σ moves every
//!   scheme (all of them degrade, but the correlation-based schemes keep their
//!   relative advantage).
//! * [`SampleSizeAblation`] — how many records the adversary needs before the
//!   covariance estimate (Theorem 5.1) is good enough for the attacks to work.
//! * [`NoiseShapeAblation`] — Gaussian versus uniform disguising noise at the
//!   same variance (the attacks only use second moments, so the results barely
//!   change — which is itself a finding worth demonstrating).

use crate::config::{figure_1_to_3_set, ExperimentSeries, SchemeKind};
use crate::error::{ExperimentError, Result};
use crate::scenario::{
    series_from_results, AttackSpec, DataSpec, EngineSpec, GridAxis, GridAxisValue, MetricKind,
    NoiseSpec, Override, ScenarioGrid, ScenarioSpec, SpectrumSpec,
};
use randrecon_core::ComponentSelection;
use randrecon_stats::rng::child_seed;
use serde::{Deserialize, Serialize};

/// A labelled single-number result, used by the ablations that do not sweep a
/// numeric axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Human-readable description of the variant.
    pub label: String,
    /// RMSE of the variant.
    pub rmse: f64,
}

/// A labelled table of ablation rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationTable {
    /// Name of the ablation.
    pub name: String,
    /// The rows.
    pub rows: Vec<AblationRow>,
}

impl AblationTable {
    /// Renders the table as fixed-width text.
    pub fn to_table(&self) -> String {
        let mut out = format!("# {}\n", self.name);
        for row in &self.rows {
            out.push_str(&format!("{:<40} {:>10.4}\n", row.label, row.rmse));
        }
        out
    }
}

/// Shared workload parameters for the ablations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationWorkload {
    /// Number of attributes.
    pub attributes: usize,
    /// Number of principal components.
    pub principal_components: usize,
    /// Principal eigenvalue.
    pub principal_eigenvalue: f64,
    /// Non-principal eigenvalue.
    pub small_eigenvalue: f64,
    /// Records per data set.
    pub records: usize,
    /// Noise standard deviation.
    pub noise_sigma: f64,
    /// Base seed.
    pub seed: u64,
}

impl Default for AblationWorkload {
    fn default() -> Self {
        AblationWorkload {
            attributes: 50,
            principal_components: 5,
            principal_eigenvalue: 400.0,
            small_eigenvalue: 4.0,
            records: 1_000,
            noise_sigma: 10.0,
            seed: 0x5EED_00AB,
        }
    }
}

impl AblationWorkload {
    /// A smaller workload for tests.
    pub fn quick() -> Self {
        AblationWorkload {
            attributes: 16,
            principal_components: 3,
            records: 300,
            ..Self::default()
        }
    }

    /// The workload as a pinned-seed scenario template: one shared data set
    /// (`dataset_seed = seed`, the historical `AblationWorkload::generate`
    /// seeding) disguised with `child_seed(seed, 1)`, ready for ablation
    /// grids to override the axis they study.
    fn base_spec(&self, label: &str) -> ScenarioSpec {
        ScenarioSpec {
            label: label.to_string(),
            x: 0.0,
            data: DataSpec::SyntheticMvn {
                spectrum: SpectrumSpec::PrincipalPlusSmall {
                    p: self.principal_components,
                    principal: self.principal_eigenvalue,
                    m: self.attributes,
                    small: self.small_eigenvalue,
                },
                records: self.records,
            },
            noise: NoiseSpec::Gaussian {
                sigma: self.noise_sigma,
            },
            attack: AttackSpec::Scheme(SchemeKind::BeDr),
            engine: EngineSpec::InMemory,
            metrics: vec![MetricKind::Rmse],
            trials: 1,
            seed: self.seed,
            seed_offset: 0,
            dataset_seed: Some(self.seed),
            noise_seed: Some(child_seed(self.seed, 1)),
        }
    }
}

/// Ablation over the principal-component selection rule used by PCA-DR.
#[derive(Debug, Clone, Default)]
pub struct SelectionAblation {
    /// Workload to evaluate on.
    pub workload: AblationWorkload,
}

impl SelectionAblation {
    /// Runs PCA-DR with each selection rule on the same disguised data set
    /// (a one-axis scenario grid over the selection rule; the pinned seeds
    /// make every variant attack the identical disguised table).
    pub fn run(&self) -> Result<AblationTable> {
        let p_true = self.workload.principal_components;
        let variants: Vec<(String, ComponentSelection)> = vec![
            (
                "largest gap (paper default)".to_string(),
                ComponentSelection::LargestGap,
            ),
            (
                format!("fixed count p = {p_true} (oracle)"),
                ComponentSelection::FixedCount(p_true),
            ),
            (
                format!(
                    "fixed count p = {} (too many)",
                    (p_true * 3).min(self.workload.attributes)
                ),
                ComponentSelection::FixedCount((p_true * 3).min(self.workload.attributes)),
            ),
            (
                "fixed count p = 1 (too few)".to_string(),
                ComponentSelection::FixedCount(1),
            ),
            (
                "variance fraction 0.90".to_string(),
                ComponentSelection::VarianceFraction(0.90),
            ),
            (
                "variance fraction 0.99".to_string(),
                ComponentSelection::VarianceFraction(0.99),
            ),
        ];
        let grid = ScenarioGrid {
            base: self.workload.base_spec("ablation-selection"),
            axes: vec![GridAxis {
                name: "selection".to_string(),
                values: variants
                    .iter()
                    .map(|(label, selection)| GridAxisValue {
                        label: label.clone(),
                        x: None,
                        overrides: vec![Override::Attack(AttackSpec::PcaDr {
                            selection: *selection,
                        })],
                    })
                    .collect(),
            }],
        };
        let results = grid.run()?;
        Ok(AblationTable {
            name: "PCA-DR component-selection ablation".to_string(),
            rows: variants
                .into_iter()
                .zip(results)
                .map(|((label, _), result)| {
                    let rmse = result
                        .rmse()
                        .ok_or_else(|| ExperimentError::MetricMissing {
                            label: result.label.clone(),
                            metric: "rmse",
                        })?;
                    Ok(AblationRow { label, rmse })
                })
                .collect::<Result<Vec<_>>>()?,
        })
    }
}

/// Ablation over the disguising-noise standard deviation.
#[derive(Debug, Clone)]
pub struct NoiseLevelAblation {
    /// Workload to evaluate on (its `noise_sigma` field is ignored).
    pub workload: AblationWorkload,
    /// Noise standard deviations to sweep.
    pub sigmas: Vec<f64>,
    /// Schemes to evaluate.
    pub schemes: Vec<SchemeKind>,
}

impl Default for NoiseLevelAblation {
    fn default() -> Self {
        NoiseLevelAblation {
            workload: AblationWorkload::default(),
            sigmas: vec![2.0, 5.0, 10.0, 20.0, 40.0],
            schemes: figure_1_to_3_set(),
        }
    }
}

impl NoiseLevelAblation {
    /// A smaller configuration for tests.
    pub fn quick() -> Self {
        NoiseLevelAblation {
            workload: AblationWorkload::quick(),
            sigmas: vec![2.0, 20.0],
            ..Self::default()
        }
    }

    /// Runs the sweep, returning a series with σ on the x-axis. One shared
    /// data set (the pinned dataset seed), a fresh disguise per σ
    /// (`child_seed(seed, σ.to_bits())`, the historical seeding).
    pub fn run(&self) -> Result<ExperimentSeries> {
        if self.sigmas.is_empty() || self.sigmas.iter().any(|&s| !(s > 0.0 && s.is_finite())) {
            return Err(ExperimentError::InvalidConfig {
                reason: "noise sigmas must be a non-empty list of positive numbers".to_string(),
            });
        }
        let grid = ScenarioGrid {
            base: self.workload.base_spec("ablation-noise-level"),
            axes: vec![
                GridAxis {
                    name: "sigma".to_string(),
                    values: self
                        .sigmas
                        .iter()
                        .map(|&sigma| GridAxisValue {
                            label: format!("{sigma}"),
                            x: Some(sigma),
                            overrides: vec![
                                Override::Noise(NoiseSpec::Gaussian { sigma }),
                                Override::NoiseSeed(Some(child_seed(
                                    self.workload.seed,
                                    sigma.to_bits(),
                                ))),
                            ],
                        })
                        .collect(),
                },
                GridAxis::schemes(&self.schemes),
            ],
        };
        let results = grid.run()?;
        Ok(series_from_results(
            "Ablation: disguising-noise level",
            "noise standard deviation",
            &results,
        ))
    }
}

/// Ablation over the number of records available to the adversary.
#[derive(Debug, Clone)]
pub struct SampleSizeAblation {
    /// Workload to evaluate on (its `records` field is ignored).
    pub workload: AblationWorkload,
    /// Record counts to sweep.
    pub record_counts: Vec<usize>,
    /// Schemes to evaluate.
    pub schemes: Vec<SchemeKind>,
}

impl Default for SampleSizeAblation {
    fn default() -> Self {
        SampleSizeAblation {
            workload: AblationWorkload::default(),
            record_counts: vec![100, 300, 1_000, 3_000, 10_000],
            schemes: vec![SchemeKind::Udr, SchemeKind::PcaDr, SchemeKind::BeDr],
        }
    }
}

impl SampleSizeAblation {
    /// A smaller configuration for tests.
    pub fn quick() -> Self {
        SampleSizeAblation {
            workload: AblationWorkload::quick(),
            record_counts: vec![100, 1_000],
            ..Self::default()
        }
    }

    /// Runs the sweep, returning a series with the record count on the x-axis
    /// (fresh data per count, seeded `child_seed(seed, n)` as historically).
    pub fn run(&self) -> Result<ExperimentSeries> {
        if self.record_counts.is_empty() || self.record_counts.iter().any(|&n| n < 2) {
            return Err(ExperimentError::InvalidConfig {
                reason: "record counts must be a non-empty list of values >= 2".to_string(),
            });
        }
        let w = &self.workload;
        let grid = ScenarioGrid {
            base: w.base_spec("ablation-sample-size"),
            axes: vec![
                GridAxis {
                    name: "n".to_string(),
                    values: self
                        .record_counts
                        .iter()
                        .map(|&n| GridAxisValue {
                            label: n.to_string(),
                            x: Some(n as f64),
                            overrides: vec![
                                Override::Data(DataSpec::SyntheticMvn {
                                    spectrum: SpectrumSpec::PrincipalPlusSmall {
                                        p: w.principal_components,
                                        principal: w.principal_eigenvalue,
                                        m: w.attributes,
                                        small: w.small_eigenvalue,
                                    },
                                    records: n,
                                }),
                                Override::DatasetSeed(Some(child_seed(w.seed, n as u64))),
                                Override::NoiseSeed(None),
                            ],
                        })
                        .collect(),
                },
                GridAxis::schemes(&self.schemes),
            ],
        };
        let results = grid.run()?;
        Ok(series_from_results(
            "Ablation: adversary sample size",
            "number of records",
            &results,
        ))
    }
}

/// Ablation comparing Gaussian and uniform disguising noise at equal variance.
#[derive(Debug, Clone, Default)]
pub struct NoiseShapeAblation {
    /// Workload to evaluate on.
    pub workload: AblationWorkload,
}

impl NoiseShapeAblation {
    /// Runs BE-DR and UDR against both noise shapes (a {noise × scheme}
    /// scenario grid over one shared data set, disguise seed pinned to
    /// `child_seed(seed, 2)` as historically).
    pub fn run(&self) -> Result<AblationTable> {
        let sigma = self.workload.noise_sigma;
        let noises = [
            ("gaussian noise", NoiseSpec::Gaussian { sigma }),
            ("uniform noise", NoiseSpec::Uniform { sigma }),
        ];
        let schemes = [SchemeKind::Udr, SchemeKind::BeDr];
        let mut base = self.workload.base_spec("ablation-noise-shape");
        base.noise_seed = Some(child_seed(self.workload.seed, 2));
        let grid = ScenarioGrid {
            base,
            axes: vec![GridAxis::noises(&noises), GridAxis::schemes(&schemes)],
        };
        let results = grid.run()?;
        // Row labels derive from the same arrays the axes were built from,
        // in the grid's row-major expansion order.
        let labels = noises.iter().flat_map(|(noise_label, _)| {
            schemes
                .iter()
                .map(move |scheme| format!("{noise_label} / {}", scheme.label()))
        });
        Ok(AblationTable {
            name: "Noise-shape ablation (equal variance)".to_string(),
            rows: labels
                .zip(results)
                .map(|(label, result)| {
                    let rmse = result
                        .rmse()
                        .ok_or_else(|| ExperimentError::MetricMissing {
                            label: result.label.clone(),
                            metric: "rmse",
                        })?;
                    Ok(AblationRow { label, rmse })
                })
                .collect::<Result<Vec<_>>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_ablation_oracle_and_gap_agree() {
        let ablation = SelectionAblation {
            workload: AblationWorkload::quick(),
        };
        let table = ablation.run().unwrap();
        assert_eq!(table.rows.len(), 6);
        let gap = table.rows[0].rmse;
        let oracle = table.rows[1].rmse;
        // The largest-gap rule should find (approximately) the oracle count on
        // this clean spectrum.
        assert!(
            (gap - oracle).abs() / oracle < 0.05,
            "gap {gap} vs oracle {oracle}"
        );
        // Keeping only 1 component discards real information and is worse.
        let too_few = &table.rows[3];
        assert!(too_few.rmse > oracle);
        assert!(table.to_table().contains("largest gap"));
    }

    #[test]
    fn noise_level_ablation_errors_increase_with_sigma() {
        let series = NoiseLevelAblation::quick().run().unwrap();
        assert_eq!(series.points.len(), 2);
        for scheme in [SchemeKind::Udr, SchemeKind::BeDr] {
            let s = series.series_for(scheme);
            assert!(
                s[1].1 > s[0].1,
                "{scheme:?} should degrade with more noise: {s:?}"
            );
        }
        let mut bad = NoiseLevelAblation::quick();
        bad.sigmas = vec![];
        assert!(bad.run().is_err());
    }

    #[test]
    fn sample_size_ablation_more_records_help_be_dr() {
        let series = SampleSizeAblation::quick().run().unwrap();
        let be = series.series_for(SchemeKind::BeDr);
        assert!(
            be[1].1 <= be[0].1 * 1.05,
            "BE-DR should not get worse with 10x more records: {be:?}"
        );
        let mut bad = SampleSizeAblation::quick();
        bad.record_counts = vec![1];
        assert!(bad.run().is_err());
    }

    #[test]
    fn noise_shape_ablation_runs_and_is_comparable() {
        let ablation = NoiseShapeAblation {
            workload: AblationWorkload::quick(),
        };
        let table = ablation.run().unwrap();
        assert_eq!(table.rows.len(), 4);
        // BE-DR under gaussian vs uniform noise of the same variance should be
        // in the same ballpark (both rely only on second moments).
        let be_gauss = table
            .rows
            .iter()
            .find(|r| r.label.contains("gaussian") && r.label.contains("BE-DR"))
            .unwrap()
            .rmse;
        let be_unif = table
            .rows
            .iter()
            .find(|r| r.label.contains("uniform") && r.label.contains("BE-DR"))
            .unwrap()
            .rmse;
        assert!(
            (be_gauss - be_unif).abs() / be_gauss < 0.25,
            "{be_gauss} vs {be_unif}"
        );
    }
}
