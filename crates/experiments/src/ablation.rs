//! Ablation studies over design choices the paper leaves implicit.
//!
//! * [`SelectionAblation`] — how the principal-component selection rule
//!   (largest gap vs fixed count vs variance fraction) changes PCA-DR accuracy.
//! * [`NoiseLevelAblation`] — how the disguising noise level σ moves every
//!   scheme (all of them degrade, but the correlation-based schemes keep their
//!   relative advantage).
//! * [`SampleSizeAblation`] — how many records the adversary needs before the
//!   covariance estimate (Theorem 5.1) is good enough for the attacks to work.
//! * [`NoiseShapeAblation`] — Gaussian versus uniform disguising noise at the
//!   same variance (the attacks only use second moments, so the results barely
//!   change — which is itself a finding worth demonstrating).

use crate::config::{ExperimentSeries, SchemeKind, SeriesPoint};
use crate::error::{ExperimentError, Result};
use crate::runner::parallel_map;
use crate::workload::evaluate_schemes;
use randrecon_core::{pca_dr::PcaDr, ComponentSelection, Reconstructor};
use randrecon_data::synthetic::{EigenSpectrum, SyntheticDataset};
use randrecon_metrics::rmse;
use randrecon_noise::additive::AdditiveRandomizer;
use randrecon_stats::rng::{child_seed, seeded_rng};
use serde::{Deserialize, Serialize};

/// A labelled single-number result, used by the ablations that do not sweep a
/// numeric axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Human-readable description of the variant.
    pub label: String,
    /// RMSE of the variant.
    pub rmse: f64,
}

/// A labelled table of ablation rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationTable {
    /// Name of the ablation.
    pub name: String,
    /// The rows.
    pub rows: Vec<AblationRow>,
}

impl AblationTable {
    /// Renders the table as fixed-width text.
    pub fn to_table(&self) -> String {
        let mut out = format!("# {}\n", self.name);
        for row in &self.rows {
            out.push_str(&format!("{:<40} {:>10.4}\n", row.label, row.rmse));
        }
        out
    }
}

/// Shared workload parameters for the ablations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationWorkload {
    /// Number of attributes.
    pub attributes: usize,
    /// Number of principal components.
    pub principal_components: usize,
    /// Principal eigenvalue.
    pub principal_eigenvalue: f64,
    /// Non-principal eigenvalue.
    pub small_eigenvalue: f64,
    /// Records per data set.
    pub records: usize,
    /// Noise standard deviation.
    pub noise_sigma: f64,
    /// Base seed.
    pub seed: u64,
}

impl Default for AblationWorkload {
    fn default() -> Self {
        AblationWorkload {
            attributes: 50,
            principal_components: 5,
            principal_eigenvalue: 400.0,
            small_eigenvalue: 4.0,
            records: 1_000,
            noise_sigma: 10.0,
            seed: 0x5EED_00AB,
        }
    }
}

impl AblationWorkload {
    /// A smaller workload for tests.
    pub fn quick() -> Self {
        AblationWorkload {
            attributes: 16,
            principal_components: 3,
            records: 300,
            ..Self::default()
        }
    }

    fn generate(
        &self,
    ) -> Result<(
        SyntheticDataset,
        AdditiveRandomizer,
        randrecon_data::DataTable,
    )> {
        let spectrum = EigenSpectrum::principal_plus_small(
            self.principal_components,
            self.principal_eigenvalue,
            self.attributes,
            self.small_eigenvalue,
        )?;
        let ds = SyntheticDataset::generate(&spectrum, self.records, self.seed)?;
        let randomizer = AdditiveRandomizer::gaussian(self.noise_sigma)?;
        let disguised =
            randomizer.disguise(&ds.table, &mut seeded_rng(child_seed(self.seed, 1)))?;
        Ok((ds, randomizer, disguised))
    }
}

/// Ablation over the principal-component selection rule used by PCA-DR.
#[derive(Debug, Clone, Default)]
pub struct SelectionAblation {
    /// Workload to evaluate on.
    pub workload: AblationWorkload,
}

impl SelectionAblation {
    /// Runs PCA-DR with each selection rule on the same disguised data set.
    pub fn run(&self) -> Result<AblationTable> {
        let (ds, randomizer, disguised) = self.workload.generate()?;
        let p_true = self.workload.principal_components;
        let variants: Vec<(String, ComponentSelection)> = vec![
            (
                "largest gap (paper default)".to_string(),
                ComponentSelection::LargestGap,
            ),
            (
                format!("fixed count p = {p_true} (oracle)"),
                ComponentSelection::FixedCount(p_true),
            ),
            (
                format!(
                    "fixed count p = {} (too many)",
                    (p_true * 3).min(self.workload.attributes)
                ),
                ComponentSelection::FixedCount((p_true * 3).min(self.workload.attributes)),
            ),
            (
                "fixed count p = 1 (too few)".to_string(),
                ComponentSelection::FixedCount(1),
            ),
            (
                "variance fraction 0.90".to_string(),
                ComponentSelection::VarianceFraction(0.90),
            ),
            (
                "variance fraction 0.99".to_string(),
                ComponentSelection::VarianceFraction(0.99),
            ),
        ];
        let mut rows = Vec::with_capacity(variants.len());
        for (label, selection) in variants {
            let attack = PcaDr { selection };
            let reconstruction = attack.reconstruct(&disguised, randomizer.model())?;
            rows.push(AblationRow {
                label,
                rmse: rmse(&ds.table, &reconstruction)?,
            });
        }
        Ok(AblationTable {
            name: "PCA-DR component-selection ablation".to_string(),
            rows,
        })
    }
}

/// Ablation over the disguising-noise standard deviation.
#[derive(Debug, Clone)]
pub struct NoiseLevelAblation {
    /// Workload to evaluate on (its `noise_sigma` field is ignored).
    pub workload: AblationWorkload,
    /// Noise standard deviations to sweep.
    pub sigmas: Vec<f64>,
    /// Schemes to evaluate.
    pub schemes: Vec<SchemeKind>,
}

impl Default for NoiseLevelAblation {
    fn default() -> Self {
        NoiseLevelAblation {
            workload: AblationWorkload::default(),
            sigmas: vec![2.0, 5.0, 10.0, 20.0, 40.0],
            schemes: SchemeKind::figure_1_to_3_set(),
        }
    }
}

impl NoiseLevelAblation {
    /// A smaller configuration for tests.
    pub fn quick() -> Self {
        NoiseLevelAblation {
            workload: AblationWorkload::quick(),
            sigmas: vec![2.0, 20.0],
            ..Self::default()
        }
    }

    /// Runs the sweep, returning a series with σ on the x-axis.
    pub fn run(&self) -> Result<ExperimentSeries> {
        if self.sigmas.is_empty() || self.sigmas.iter().any(|&s| !(s > 0.0 && s.is_finite())) {
            return Err(ExperimentError::InvalidConfig {
                reason: "noise sigmas must be a non-empty list of positive numbers".to_string(),
            });
        }
        let spectrum = EigenSpectrum::principal_plus_small(
            self.workload.principal_components,
            self.workload.principal_eigenvalue,
            self.workload.attributes,
            self.workload.small_eigenvalue,
        )?;
        let ds = SyntheticDataset::generate(&spectrum, self.workload.records, self.workload.seed)?;
        let points = parallel_map(self.sigmas.clone(), |&sigma| {
            let randomizer = AdditiveRandomizer::gaussian(sigma)?;
            let disguised = randomizer.disguise(
                &ds.table,
                &mut seeded_rng(child_seed(self.workload.seed, sigma.to_bits())),
            )?;
            Ok(SeriesPoint {
                x: sigma,
                rmse: evaluate_schemes(&ds.table, &disguised, randomizer.model(), &self.schemes)?,
            })
        })?;
        Ok(ExperimentSeries {
            name: "Ablation: disguising-noise level".to_string(),
            x_label: "noise standard deviation".to_string(),
            points,
        })
    }
}

/// Ablation over the number of records available to the adversary.
#[derive(Debug, Clone)]
pub struct SampleSizeAblation {
    /// Workload to evaluate on (its `records` field is ignored).
    pub workload: AblationWorkload,
    /// Record counts to sweep.
    pub record_counts: Vec<usize>,
    /// Schemes to evaluate.
    pub schemes: Vec<SchemeKind>,
}

impl Default for SampleSizeAblation {
    fn default() -> Self {
        SampleSizeAblation {
            workload: AblationWorkload::default(),
            record_counts: vec![100, 300, 1_000, 3_000, 10_000],
            schemes: vec![SchemeKind::Udr, SchemeKind::PcaDr, SchemeKind::BeDr],
        }
    }
}

impl SampleSizeAblation {
    /// A smaller configuration for tests.
    pub fn quick() -> Self {
        SampleSizeAblation {
            workload: AblationWorkload::quick(),
            record_counts: vec![100, 1_000],
            ..Self::default()
        }
    }

    /// Runs the sweep, returning a series with the record count on the x-axis.
    pub fn run(&self) -> Result<ExperimentSeries> {
        if self.record_counts.is_empty() || self.record_counts.iter().any(|&n| n < 2) {
            return Err(ExperimentError::InvalidConfig {
                reason: "record counts must be a non-empty list of values >= 2".to_string(),
            });
        }
        let points = parallel_map(self.record_counts.clone(), |&n| {
            let spectrum = EigenSpectrum::principal_plus_small(
                self.workload.principal_components,
                self.workload.principal_eigenvalue,
                self.workload.attributes,
                self.workload.small_eigenvalue,
            )?;
            let seed = child_seed(self.workload.seed, n as u64);
            let ds = SyntheticDataset::generate(&spectrum, n, seed)?;
            let randomizer = AdditiveRandomizer::gaussian(self.workload.noise_sigma)?;
            let disguised = randomizer.disguise(&ds.table, &mut seeded_rng(child_seed(seed, 1)))?;
            Ok(SeriesPoint {
                x: n as f64,
                rmse: evaluate_schemes(&ds.table, &disguised, randomizer.model(), &self.schemes)?,
            })
        })?;
        Ok(ExperimentSeries {
            name: "Ablation: adversary sample size".to_string(),
            x_label: "number of records".to_string(),
            points,
        })
    }
}

/// Ablation comparing Gaussian and uniform disguising noise at equal variance.
#[derive(Debug, Clone, Default)]
pub struct NoiseShapeAblation {
    /// Workload to evaluate on.
    pub workload: AblationWorkload,
}

impl NoiseShapeAblation {
    /// Runs BE-DR and UDR against both noise shapes.
    pub fn run(&self) -> Result<AblationTable> {
        let spectrum = EigenSpectrum::principal_plus_small(
            self.workload.principal_components,
            self.workload.principal_eigenvalue,
            self.workload.attributes,
            self.workload.small_eigenvalue,
        )?;
        let ds = SyntheticDataset::generate(&spectrum, self.workload.records, self.workload.seed)?;
        let schemes = [SchemeKind::Udr, SchemeKind::BeDr];
        let mut rows = Vec::new();
        for (label, randomizer) in [
            (
                "gaussian noise",
                AdditiveRandomizer::gaussian(self.workload.noise_sigma)?,
            ),
            (
                "uniform noise",
                AdditiveRandomizer::uniform(self.workload.noise_sigma)?,
            ),
        ] {
            let disguised = randomizer.disguise(
                &ds.table,
                &mut seeded_rng(child_seed(self.workload.seed, 2)),
            )?;
            for &scheme in &schemes {
                let result =
                    evaluate_schemes(&ds.table, &disguised, randomizer.model(), &[scheme])?;
                rows.push(AblationRow {
                    label: format!("{label} / {}", scheme.label()),
                    rmse: result[0].1,
                });
            }
        }
        Ok(AblationTable {
            name: "Noise-shape ablation (equal variance)".to_string(),
            rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_ablation_oracle_and_gap_agree() {
        let ablation = SelectionAblation {
            workload: AblationWorkload::quick(),
        };
        let table = ablation.run().unwrap();
        assert_eq!(table.rows.len(), 6);
        let gap = table.rows[0].rmse;
        let oracle = table.rows[1].rmse;
        // The largest-gap rule should find (approximately) the oracle count on
        // this clean spectrum.
        assert!(
            (gap - oracle).abs() / oracle < 0.05,
            "gap {gap} vs oracle {oracle}"
        );
        // Keeping only 1 component discards real information and is worse.
        let too_few = &table.rows[3];
        assert!(too_few.rmse > oracle);
        assert!(table.to_table().contains("largest gap"));
    }

    #[test]
    fn noise_level_ablation_errors_increase_with_sigma() {
        let series = NoiseLevelAblation::quick().run().unwrap();
        assert_eq!(series.points.len(), 2);
        for scheme in [SchemeKind::Udr, SchemeKind::BeDr] {
            let s = series.series_for(scheme);
            assert!(
                s[1].1 > s[0].1,
                "{scheme:?} should degrade with more noise: {s:?}"
            );
        }
        let mut bad = NoiseLevelAblation::quick();
        bad.sigmas = vec![];
        assert!(bad.run().is_err());
    }

    #[test]
    fn sample_size_ablation_more_records_help_be_dr() {
        let series = SampleSizeAblation::quick().run().unwrap();
        let be = series.series_for(SchemeKind::BeDr);
        assert!(
            be[1].1 <= be[0].1 * 1.05,
            "BE-DR should not get worse with 10x more records: {be:?}"
        );
        let mut bad = SampleSizeAblation::quick();
        bad.record_counts = vec![1];
        assert!(bad.run().is_err());
    }

    #[test]
    fn noise_shape_ablation_runs_and_is_comparable() {
        let ablation = NoiseShapeAblation {
            workload: AblationWorkload::quick(),
        };
        let table = ablation.run().unwrap();
        assert_eq!(table.rows.len(), 4);
        // BE-DR under gaussian vs uniform noise of the same variance should be
        // in the same ballpark (both rely only on second moments).
        let be_gauss = table
            .rows
            .iter()
            .find(|r| r.label.contains("gaussian") && r.label.contains("BE-DR"))
            .unwrap()
            .rmse;
        let be_unif = table
            .rows
            .iter()
            .find(|r| r.label.contains("uniform") && r.label.contains("BE-DR"))
            .unwrap()
            .rmse;
        assert!(
            (be_gauss - be_unif).abs() / be_gauss < 0.25,
            "{be_gauss} vs {be_unif}"
        );
    }
}
