//! Experiment 2 (Figure 2): increasing the number of principal components.
//!
//! The number of attributes is fixed at `m = 100` while the number of
//! principal components `p` grows from 2 toward `m`. More principal components
//! means *less* redundancy among attributes, so the correlation-exploiting
//! schemes degrade toward the UDR baseline as `p → m` while UDR itself stays
//! flat (total variance is held constant, Equation 12).

use crate::config::{figure_1_to_3_set, ExperimentSeries, SchemeKind};
use crate::error::{ExperimentError, Result};
use crate::scenario::{
    series_from_results, DataSpec, GridAxis, GridAxisValue, NoiseSpec, Override, ScenarioGrid,
    ScenarioSpec, SpectrumSpec,
};
use serde::{Deserialize, Serialize};

/// Configuration of Experiment 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Experiment2 {
    /// Number of attributes (fixed; the paper uses 100).
    pub attributes: usize,
    /// Sweep over the number of principal components `p`.
    pub principal_component_counts: Vec<usize>,
    /// Records per generated data set.
    pub records: usize,
    /// Fixed eigenvalue of every non-principal component; the principal
    /// eigenvalues absorb the rest of the constant variance budget.
    pub small_eigenvalue: f64,
    /// Average per-attribute variance held constant across the sweep.
    pub mean_attribute_variance: f64,
    /// Standard deviation of the independent Gaussian disguising noise.
    pub noise_sigma: f64,
    /// Independent repetitions averaged per sweep point.
    pub trials: usize,
    /// Base random seed.
    pub seed: u64,
    /// Schemes to evaluate.
    pub schemes: Vec<SchemeKind>,
}

impl Default for Experiment2 {
    fn default() -> Self {
        Experiment2 {
            attributes: 100,
            principal_component_counts: vec![2, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100],
            records: 1_000,
            small_eigenvalue: 4.0,
            mean_attribute_variance: 100.0,
            noise_sigma: 5.0,
            trials: 3,
            seed: 0x5EED_0002,
            schemes: figure_1_to_3_set(),
        }
    }
}

impl Experiment2 {
    /// The full-size configuration used by the `figure2` binary and bench.
    pub fn full() -> Self {
        Self::default()
    }

    /// A scaled-down configuration for tests and smoke runs.
    pub fn quick() -> Self {
        Experiment2 {
            attributes: 24,
            principal_component_counts: vec![2, 8, 24],
            records: 250,
            trials: 1,
            ..Self::default()
        }
    }

    fn validate(&self) -> Result<()> {
        if self.principal_component_counts.is_empty() {
            return Err(ExperimentError::InvalidConfig {
                reason: "principal_component_counts must not be empty".to_string(),
            });
        }
        if self
            .principal_component_counts
            .iter()
            .any(|&p| p == 0 || p > self.attributes)
        {
            return Err(ExperimentError::InvalidConfig {
                reason: format!(
                    "every principal-component count must satisfy 1 <= p <= m (m = {})",
                    self.attributes
                ),
            });
        }
        if self.trials == 0 || self.records < 2 || self.schemes.is_empty() {
            return Err(ExperimentError::InvalidConfig {
                reason: "need at least 1 trial, 2 records and 1 scheme".to_string(),
            });
        }
        Ok(())
    }

    /// The experiment as a declarative scenario grid (seeding matches the
    /// historical driver: `trial_seed = child_seed(seed, p·1000 + trial)`).
    pub fn grid(&self) -> ScenarioGrid {
        // The template's workload is a placeholder — every p-axis value
        // overrides the data source below.
        let mut base = ScenarioSpec::synthetic_quick("figure2", self.records, 1, 1);
        base.noise = NoiseSpec::Gaussian {
            sigma: self.noise_sigma,
        };
        base.trials = self.trials;
        base.seed = self.seed;
        let p_axis = GridAxis {
            name: "p".to_string(),
            values: self
                .principal_component_counts
                .iter()
                .enumerate()
                // The sweep index prefixes the label so repeated counts stay
                // distinct sweep points (the historical driver accepted them).
                .map(|(idx, &p)| GridAxisValue {
                    label: format!("{idx}:{p}"),
                    x: Some(p as f64),
                    overrides: vec![
                        // Non-principal eigenvalues stay at `small_eigenvalue`;
                        // the p principal ones share the rest of the constant
                        // variance budget (flat spectrum when p = m).
                        Override::Data(DataSpec::SyntheticMvn {
                            spectrum: SpectrumSpec::PrincipalFillingTotal {
                                p,
                                m: self.attributes,
                                small: self.small_eigenvalue,
                                total_variance: self.mean_attribute_variance
                                    * self.attributes as f64,
                            },
                            records: self.records,
                        }),
                        Override::SeedOffset((p as u64) * 1_000),
                    ],
                })
                .collect(),
        };
        ScenarioGrid {
            base,
            axes: vec![p_axis, GridAxis::schemes(&self.schemes)],
        }
    }

    /// Runs the sweep and returns the Figure 2 series.
    pub fn run(&self) -> Result<ExperimentSeries> {
        self.validate()?;
        let results = self.grid().run()?;
        Ok(series_from_results(
            &format!(
                "Figure 2: increasing the number of principal components (m = {} fixed)",
                self.attributes
            ),
            "number of principal components",
            &results,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = Experiment2::quick();
        c.principal_component_counts.clear();
        assert!(c.run().is_err());
        let mut c = Experiment2::quick();
        c.principal_component_counts = vec![0];
        assert!(c.run().is_err());
        let mut c = Experiment2::quick();
        c.principal_component_counts = vec![25]; // > m = 24
        assert!(c.run().is_err());
        let mut c = Experiment2::quick();
        c.schemes.clear();
        assert!(c.run().is_err());
    }

    #[test]
    fn quick_run_reproduces_figure_2_shape() {
        let series = Experiment2::quick().run().unwrap();
        assert_eq!(series.points.len(), 3);

        // Correlation-based schemes are best at small p (high correlation) and
        // degrade as p approaches m.
        for scheme in [SchemeKind::PcaDr, SchemeKind::BeDr] {
            let s = series.series_for(scheme);
            assert!(
                s.first().unwrap().1 < s.last().unwrap().1,
                "{scheme:?} should degrade as p grows: {s:?}"
            );
        }

        // At p = m, BE-DR converges toward UDR (no correlation left to exploit).
        let last = series.points.last().unwrap();
        let be = last.rmse_of(SchemeKind::BeDr).unwrap();
        let udr = last.rmse_of(SchemeKind::Udr).unwrap();
        assert!(
            (be - udr).abs() / udr < 0.15,
            "BE-DR {be} vs UDR {udr} at p = m"
        );

        // At the most correlated point (p = 2) BE-DR clearly beats UDR.
        let first = series.points.first().unwrap();
        assert!(
            first.rmse_of(SchemeKind::BeDr).unwrap()
                < 0.8 * first.rmse_of(SchemeKind::Udr).unwrap()
        );
    }
}
