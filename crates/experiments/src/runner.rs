//! Parallel sweep execution.
//!
//! Every figure is a sweep over an independent list of x-axis points, so the
//! points are evaluated on a scoped thread pool (one OS thread per point up to
//! the available parallelism). Determinism is preserved because each point
//! derives its own RNG stream from the experiment seed.

use crate::error::{ExperimentError, Result};
use std::sync::Mutex;

/// Runs `f` over `items` in parallel (bounded by the machine's available
/// parallelism) and returns the results in the original item order.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Result<Vec<R>>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> Result<R> + Sync,
{
    let n = items.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n)
        .max(1);

    let results: Mutex<Vec<Option<Result<R>>>> =
        Mutex::new((0..n).map(|_| None).collect());
    let next: Mutex<usize> = Mutex::new(0);
    let items_ref = &items;
    let f_ref = &f;
    let results_ref = &results;
    let next_ref = &next;

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move |_| loop {
                let idx = {
                    let mut guard = next_ref.lock().expect("index lock poisoned");
                    if *guard >= n {
                        break;
                    }
                    let i = *guard;
                    *guard += 1;
                    i
                };
                let outcome = f_ref(&items_ref[idx]);
                results_ref.lock().expect("result lock poisoned")[idx] = Some(outcome);
            });
        }
    })
    .map_err(|_| ExperimentError::WorkerFailed {
        reason: "a worker thread panicked during the sweep".to_string(),
    })?;

    let collected = results.into_inner().expect("result lock poisoned");
    let mut out = Vec::with_capacity(n);
    for (i, slot) in collected.into_iter().enumerate() {
        match slot {
            Some(Ok(v)) => out.push(v),
            Some(Err(e)) => return Err(e),
            None => {
                return Err(ExperimentError::WorkerFailed {
                    reason: format!("sweep point {i} produced no result"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..50).collect();
        let out = parallel_map(items, |&x| Ok(x * 2)).unwrap();
        assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let out: Vec<u64> = parallel_map(Vec::<u64>::new(), |&x| Ok(x)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn propagates_errors() {
        let items: Vec<u64> = (0..10).collect();
        let err = parallel_map(items, |&x| {
            if x == 7 {
                Err(ExperimentError::InvalidConfig {
                    reason: "boom".into(),
                })
            } else {
                Ok(x)
            }
        });
        assert!(err.is_err());
    }

    #[test]
    fn heavier_work_still_ordered() {
        let items: Vec<u64> = (0..16).collect();
        let out = parallel_map(items, |&x| {
            // Unequal amounts of work to encourage out-of-order completion.
            let mut acc = 0u64;
            for i in 0..(x * 10_000) {
                acc = acc.wrapping_add(i);
            }
            Ok((x, acc))
        })
        .unwrap();
        for (i, &(x, _)) in out.iter().enumerate() {
            assert_eq!(i as u64, x);
        }
    }
}
